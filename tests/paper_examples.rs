//! The paper's worked examples, executed end-to-end.

use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_dist::{ContinuousDist, Normal};
use gubpi_interval::Interval;
use gubpi_lang::{infer, parse};
use gubpi_semantics::bigstep::run_on_trace;
use gubpi_symbolic::{symbolic_paths, SymExecOptions};
use gubpi_types::infer_interval_types;

const PEDESTRIAN: &str = "
    let start = 3 * sample uniform(0, 1) in
    let rec walk x =
      if x <= 0 then 0 else
        let step = sample uniform(0, 1) in
        if sample <= 0.5 then step + walk (x + step)
        else step + walk (x - step)
    in
    let distance = walk start in
    observe distance from normal(1.1, 0.1);
    start";

/// Example 2.1: on s = ⟨0.1, 0.2, 0.4, 0.7, 0.8⟩ the pedestrian walks
/// 0.2 away and 0.7 home, giving val = 0.3 and wt = pdf_N(1.1,0.1)(0.9).
#[test]
fn example_2_1_trace_semantics() {
    let p = parse(PEDESTRIAN).unwrap();
    let out = run_on_trace(&p, &[0.1, 0.2, 0.4, 0.7, 0.8]).unwrap();
    assert!((out.value - 0.3).abs() < 1e-12);
    let expected = Normal::new(1.1, 0.1).pdf(0.9);
    assert!((out.weight() - expected).abs() < 1e-12);
}

/// Example C.2: the pedestrian's symbolic paths satisfy Assumption 1
/// (every sample variable used at most once per value).
#[test]
fn example_c_2_single_use_assumption() {
    let p = parse(PEDESTRIAN).unwrap();
    let simple = infer(&p).unwrap();
    let typing = infer_interval_types(&p, &simple);
    let paths = symbolic_paths(
        &p,
        &typing,
        SymExecOptions {
            max_fix_unfoldings: 4,
            ..Default::default()
        },
    );
    assert!(paths.len() > 4);
    for path in paths.iter().filter(|q| !q.truncated) {
        assert!(path.satisfies_single_use(), "{path}");
        // Exact paths carry exactly the observe score.
        assert_eq!(path.scores.len(), 1);
    }
}

/// Example 5.2 / 6.2: the pedestrian fixpoint types as
/// `[a,b] → ⟨[0,∞] | [1,1]⟩`, so approxFix replaces it by
/// `λ_. score([1,1]); [0,∞]` — i.e. adds no weight factor.
#[test]
fn example_5_2_and_6_2_fixpoint_typing() {
    let p = parse(PEDESTRIAN).unwrap();
    let simple = infer(&p).unwrap();
    let typing = infer_interval_types(&p, &simple);
    let mut fix_bounds = None;
    p.root.walk(&mut |e| {
        if matches!(e.kind, gubpi_lang::ExprKind::Fix(..)) {
            fix_bounds = typing.fix_apply_bounds(e.id);
        }
    });
    let (value, weight) = fix_bounds.expect("pedestrian has one fixpoint");
    assert_eq!(weight, Interval::ONE);
    assert_eq!(value, Interval::NON_NEG);
}

/// Example 3.1(iii): T2 = {⟨[1/2,1]^n, [0,1/2]⟩} is compatible and
/// exhaustive; T1 (with [0,1/3] tails) is compatible but not exhaustive.
#[test]
fn example_3_1_compatibility_and_exhaustivity() {
    use gubpi_interval::BoxN;
    use gubpi_semantics::bounds::{covered_volume, pairwise_compatible};
    let make = |tail: f64, n_max: usize| -> Vec<BoxN> {
        (0..n_max)
            .map(|n| {
                let mut dims = vec![Interval::new(0.5, 1.0); n];
                dims.push(Interval::new(0.0, tail));
                BoxN::new(dims)
            })
            .collect()
    };
    let t1 = make(1.0 / 3.0, 8);
    let t2 = make(0.5, 8);
    assert!(pairwise_compatible(&t1));
    assert!(pairwise_compatible(&t2));
    // T2 covers everything except (1/2, 1]^8 (measure 2⁻⁸ at depth 8).
    let c2 = covered_volume(&t2);
    assert!((c2 - (1.0 - 0.5f64.powi(8))).abs() < 1e-9, "c2={c2}");
    // T1 leaves strictly more uncovered.
    let c1 = covered_volume(&t1);
    assert!(c1 < c2);
}

/// Example C.3: the program with unbounded weight function. Its
/// normalising constant is finite (the program is integrable); the lower
/// bound converges toward Z from below while finitely many paths cannot
/// pin the upper bound (it stays ≥ Z).
#[test]
fn example_c_3_unbounded_weight() {
    // P ≡ μφ s. if(sample − s, score(2); φ(s/2), 1) applied to 1.
    let src = "
        let rec loop s =
          if sample <= s then (score(2); loop (s / 2)) else 1
        in loop 1";
    let a = Analyzer::from_source(
        src,
        AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    // Z = Σ_{n≥0} 2ⁿ(1 − 2⁻ⁿ)·∏_{i<n} 2⁻ⁱ  (n loop entries, then exit).
    let mut z = 0.0;
    let mut prefix = 1.0; // ∏ 2^{-i}
    for n in 0..30 {
        let weight = 2.0f64.powi(n);
        let exit_prob = 1.0 - 2.0f64.powi(-n);
        z += weight * exit_prob * prefix;
        prefix *= 2.0f64.powi(-n);
    }
    let (lo, hi) = a.normalizing_constant();
    assert!(lo <= z + 1e-9, "lo={lo} vs Z={z}");
    assert!(
        lo > 0.8 * z,
        "explored mass should be near Z: lo={lo} Z={z}"
    );
    assert!(hi >= z - 1e-9, "hi={hi} vs Z={z}");
}

/// Example 6.1's path structure: every exact pedestrian path returns
/// `3·α₀` and draws an odd number of samples (start + step/coin pairs).
#[test]
fn example_6_1_path_shape() {
    let p = parse(PEDESTRIAN).unwrap();
    let simple = infer(&p).unwrap();
    let typing = infer_interval_types(&p, &simple);
    let paths = symbolic_paths(
        &p,
        &typing,
        SymExecOptions {
            max_fix_unfoldings: 3,
            ..Default::default()
        },
    );
    for path in paths.iter().filter(|q| !q.truncated) {
        for probe in [0.0, 0.25, 0.9] {
            let mut s = vec![0.5; path.n_samples.max(1)];
            s[0] = probe;
            let v = path.result.eval(&s);
            assert!((v.lo() - 3.0 * probe).abs() < 1e-12);
        }
        assert_eq!(path.n_samples % 2, 1, "{path}");
    }
}
