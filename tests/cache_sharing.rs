//! Cross-`Analyzer` memo-cache sharing and cache behaviour under
//! concurrent mixed queries.
//!
//! The shared cache ([`SharedQueryCache`]) must be: *sound* (entries are
//! verified by structural path equality before reuse), *race-free*
//! (concurrent analyzers never double-insert an entry or lose a counter
//! update), and *invisible* (warm answers are bit-identical to cold
//! ones).

use gubpi_core::{AnalysisOptions, Analyzer, SharedQueryCache, Threads};
use gubpi_interval::Interval;

const SRC: &str = "let x = sample in (if x <= 0.5 then score(2 * x) else score(1)); x";

fn opts(threads: Threads) -> AnalysisOptions {
    AnalysisOptions {
        threads,
        ..Default::default()
    }
}

#[test]
fn cross_analyzer_sharing_hits_warm_entries() {
    let cache = SharedQueryCache::new();
    let a = Analyzer::from_source_with_cache(SRC, opts(Threads::Off), &cache).unwrap();
    let n_paths = a.paths().len() as u64;
    let u = Interval::new(0.1, 0.6);

    let ra = a.denotation_bounds(u);
    assert_eq!(
        cache.stats().hit_miss(),
        (0, n_paths),
        "first analyzer fills the cache"
    );
    assert_eq!(cache.entry_count() as u64, n_paths);

    // A second analyzer over the same source re-executes symbolically but
    // reuses every per-path bound.
    let b = Analyzer::from_source_with_cache(SRC, opts(Threads::Off), &cache).unwrap();
    let rb = b.denotation_bounds(u);
    assert_eq!(ra.0.to_bits(), rb.0.to_bits());
    assert_eq!(ra.1.to_bits(), rb.1.to_bits());
    assert_eq!(
        cache.stats().hit_miss(),
        (n_paths, n_paths),
        "second analyzer must hit every entry exactly once"
    );
    assert_eq!(
        cache.entry_count() as u64,
        n_paths,
        "hits must not re-insert entries"
    );

    // `shared_cache` hands out the same cache.
    let c = Analyzer::from_source_with_cache(SRC, opts(Threads::Off), &a.shared_cache()).unwrap();
    let rc = c.denotation_bounds(u);
    assert_eq!(ra, rc);
    assert_eq!(cache.stats().hit_miss(), (2 * n_paths, n_paths));
}

#[test]
fn unrelated_programs_share_a_cache_without_aliasing() {
    let cache = SharedQueryCache::new();
    let a = Analyzer::from_source_with_cache("sample", opts(Threads::Off), &cache).unwrap();
    let b = Analyzer::from_source_with_cache("2 * sample - 1", opts(Threads::Off), &cache).unwrap();
    let u = Interval::new(0.0, 0.5);
    let (a_lo, a_hi) = a.denotation_bounds(u);
    let (b_lo, b_hi) = b.denotation_bounds(u);
    // P(sample ∈ [0, 0.5]) = 0.5; P(2·sample − 1 ∈ [0, 0.5]) = 0.25.
    assert!((a_lo - 0.5).abs() < 1e-9 && (a_hi - 0.5).abs() < 1e-9);
    assert!((b_lo - 0.25).abs() < 1e-9 && (b_hi - 0.25).abs() < 1e-9);
    let (hits, misses) = cache.stats().hit_miss();
    assert_eq!(hits, 0, "structurally different paths must not alias");
    assert_eq!(misses, 2);
}

#[test]
fn concurrent_mixed_queries_keep_the_cache_consistent() {
    let cache = SharedQueryCache::new();
    let a = Analyzer::from_source_with_cache(SRC, opts(Threads::Fixed(2)), &cache).unwrap();
    let b = Analyzer::from_source_with_cache(SRC, opts(Threads::Fixed(2)), &cache).unwrap();
    let n_paths = a.paths().len() as u64;
    let queries = [
        Interval::new(0.0, 0.25),
        Interval::new(0.25, 0.5),
        Interval::new(0.5, 1.0),
        Interval::new(0.0, 1.0),
    ];

    // Reference bits from a cold sequential analyzer.
    let reference = Analyzer::from_source(SRC, opts(Threads::Off)).unwrap();
    let expected: Vec<(f64, f64)> = queries
        .iter()
        .map(|&u| reference.denotation_bounds(u))
        .collect();

    // Two analyzers hammer the shared cache from two threads, walking
    // the query list in opposite orders so lookups and inserts overlap.
    let results = std::thread::scope(|scope| {
        let ha = scope.spawn(|| queries.map(|u| a.denotation_bounds(u)));
        let hb = scope.spawn(|| {
            let mut out = queries.map(|_u| (0.0, 0.0));
            for (i, &u) in queries.iter().enumerate().rev() {
                out[i] = b.denotation_bounds(u);
            }
            out
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });
    for (i, &(lo, hi)) in expected.iter().enumerate() {
        for got in [results.0[i], results.1[i]] {
            assert_eq!(lo.to_bits(), got.0.to_bits(), "query {i} lower bound");
            assert_eq!(hi.to_bits(), got.1.to_bits(), "query {i} upper bound");
        }
    }

    // Counter totals are exact (each per-path lookup counted once), and
    // racing inserts never duplicate an entry.
    let (hits, misses) = cache.stats().hit_miss();
    let total = 2 * n_paths * queries.len() as u64;
    assert_eq!(hits + misses, total, "every lookup counted exactly once");
    assert!(
        misses >= n_paths * queries.len() as u64,
        "each query must be computed at least once"
    );
    assert_eq!(
        cache.entry_count() as u64,
        n_paths * queries.len() as u64,
        "no double inserts under concurrency"
    );
}

#[test]
fn shared_clear_cache_affects_every_analyzer_but_no_result() {
    let cache = SharedQueryCache::new();
    let a = Analyzer::from_source_with_cache(SRC, opts(Threads::Off), &cache).unwrap();
    let b = Analyzer::from_source_with_cache(SRC, opts(Threads::Off), &cache).unwrap();
    let u = Interval::new(0.2, 0.8);
    let r1 = a.denotation_bounds(u);
    b.clear_cache();
    assert_eq!(cache.stats(), gubpi_core::CacheStats::default());
    assert_eq!(cache.entry_count(), 0);
    let r2 = a.denotation_bounds(u);
    assert_eq!(r1, r2, "clearing must never change bounds");
    assert_eq!(cache.stats().hit_miss(), (0, a.paths().len() as u64));
}

#[test]
fn default_analyzers_keep_private_caches() {
    // Without an explicit shared cache, two analyzers never see each
    // other's entries (the PR-2 behaviour, preserved).
    let a = Analyzer::from_source(SRC, opts(Threads::Off)).unwrap();
    let b = Analyzer::from_source(SRC, opts(Threads::Off)).unwrap();
    let u = Interval::new(0.1, 0.9);
    let _ = a.denotation_bounds(u);
    let _ = b.denotation_bounds(u);
    assert_eq!(a.cache_stats().hits, 0);
    assert_eq!(
        b.cache_stats().hits,
        0,
        "no cross-talk between private caches"
    );
}
