//! Parallel ≡ sequential: the bounds reported by the analysis engine
//! must be **bit-identical** under every `Threads` setting.
//!
//! This is the contract that lets the parallel engine exist at all: the
//! paper's guarantees are about the *reported* floating-point bounds, so
//! the thread count may change wall-clock time but never a single bit of
//! any result. The engine enforces this by bounding each path
//! independently and reducing in fixed path order; these tests hold the
//! line on randomly generated programs and on the paper's models.

use gubpi_core::{AnalysisOptions, Analyzer, Method, Threads};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;
use proptest::prelude::*;

/// Every `Threads` setting the engine must agree across. `Fixed(2)`
/// matters: with fewer workers than paths or chunks, the engine mixes
/// grains (path-level vs region-level) and the frontier sharder leaves
/// some forks sequential — all of which must stay invisible.
const SETTINGS: &[Threads] = &[
    Threads::Off,
    Threads::Fixed(1),
    Threads::Fixed(2),
    Threads::Fixed(4),
    Threads::Auto,
];

/// Random SPCF model sources: arithmetic over samples, branching on
/// sample-dependent guards, and score-reweighted sub-terms — enough to
/// exercise the linear semantics, the grid fallback and multi-path
/// reduction.
fn model_source() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(|n| n.to_string()),
        Just("sample".to_owned()),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("(if {c} <= 1 then {t} else {e})")),
            (inner.clone(), inner)
                .prop_map(|(a, b)| format!("(let x = sample in score(sigmoid({a})); {b} + x)")),
        ]
    })
}

fn analyzer(src: &str, threads: Threads, method: Method) -> Analyzer {
    let mut opts = AnalysisOptions {
        method,
        threads,
        ..Default::default()
    };
    // Keep random programs cheap: they can draw up to ~10 samples, and
    // the grid semantics is exponential in that dimension.
    opts.bounds.splits = 8;
    opts.bounds.region_budget = 10_000;
    Analyzer::from_source(src, opts).unwrap_or_else(|e| panic!("{src}: {e}"))
}

fn assert_bits_eq(reference: (f64, f64), got: (f64, f64), ctx: &str) {
    assert!(
        reference.0.to_bits() == got.0.to_bits() && reference.1.to_bits() == got.1.to_bits(),
        "{ctx}: {got:?} differs from sequential {reference:?}"
    );
}

/// Runs the three query shapes under every setting and demands
/// bit-identical results against the sequential (`Threads::Off`) engine.
fn check_all_settings(src: &str, build: impl Fn(Threads) -> Analyzer) {
    let u = Interval::new(0.25, 1.0);
    let wide = Interval::new(0.0, 1.5);
    let reference = build(Threads::Off);
    let ref_den = reference.denotation_bounds(wide);
    let ref_post = reference.posterior_probability(u);
    let ref_hist = reference.histogram(Interval::new(-1.0, 3.0), 6);
    for &threads in SETTINGS {
        let a = build(threads);
        assert_eq!(
            a.paths().len(),
            reference.paths().len(),
            "{src}: path set must not depend on threading"
        );
        assert_bits_eq(
            ref_den,
            a.denotation_bounds(wide),
            &format!("{src} denotation_bounds under {threads:?}"),
        );
        assert_bits_eq(
            ref_post,
            a.posterior_probability(u),
            &format!("{src} posterior_probability under {threads:?}"),
        );
        let h = a.histogram(Interval::new(-1.0, 3.0), 6);
        for b in 0..h.bins() {
            assert_bits_eq(
                ref_hist.unnormalized(b),
                h.unnormalized(b),
                &format!("{src} histogram bin {b} under {threads:?}"),
            );
        }
        assert_bits_eq(
            ref_hist.left_tail,
            h.left_tail,
            &format!("{src} left tail under {threads:?}"),
        );
        assert_bits_eq(
            ref_hist.right_tail,
            h.right_tail,
            &format!("{src} right tail under {threads:?}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn random_programs_bound_identically_across_thread_counts(src in model_source()) {
        check_all_settings(&src, |threads| analyzer(&src, threads, Method::Auto));
    }

    #[test]
    fn grid_method_is_also_deterministic(src in model_source()) {
        check_all_settings(&src, |threads| analyzer(&src, threads, Method::Grid));
    }
}

/// The models exercised by `tests/paper_examples.rs`, including the
/// recursive pedestrian (many paths, mixed linear/grid, truncation).
#[test]
fn paper_example_models_bound_identically_across_thread_counts() {
    const PEDESTRIAN: &str = "
        let start = 3 * sample uniform(0, 1) in
        let rec walk x =
          if x <= 0 then 0 else
            let step = sample uniform(0, 1) in
            if sample <= 0.5 then step + walk (x + step)
            else step + walk (x - step)
        in
        let d = walk start in
        observe d from normal(1.1, 0.1);
        start";
    const GEOMETRIC: &str = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
    const UNBOUNDED_WEIGHT: &str = "
        let rec loop s =
          if sample <= s then (score(2); loop (s / 2)) else 1
        in loop 1";
    for (src, unfold) in [(PEDESTRIAN, 3u32), (GEOMETRIC, 8), (UNBOUNDED_WEIGHT, 6)] {
        check_all_settings(src, |threads| {
            let mut opts = AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: unfold,
                    ..Default::default()
                },
                threads,
                ..Default::default()
            };
            opts.bounds.splits = 8;
            Analyzer::from_source(src, opts).unwrap()
        });
    }
}

/// Region-level parallelism: a model with one dominant (or unique) path
/// gives path-level parallelism nothing to split, so the engine bounds
/// the path's grid cells / chunk combinations on the pool instead. The
/// bounds must not betray which grain ran.
#[test]
fn single_dominant_path_models_bound_identically_across_thread_counts() {
    // One path, non-linear result: §6.3 grid with splits³ cells.
    const NONLINEAR_SINGLE: &str =
        "let x = sample in let y = sample in let z = sample in score(sigmoid(x * y + z)); x * y";
    // One path, two boxed score expressions: §6.4 chunk product.
    const LINEAR_SINGLE: &str =
        "let x = sample in let y = sample in score(x + y); score(2 - x); x + y";
    for src in [NONLINEAR_SINGLE, LINEAR_SINGLE] {
        for method in [Method::Auto, Method::Grid] {
            let probe = analyzer(src, Threads::Off, method);
            assert_eq!(probe.paths().len(), 1, "{src}: must be a single path");
            check_all_settings(src, |threads| analyzer(src, threads, method));
        }
    }
}

/// The frontier sharder must not change the *path set* either — this is
/// implied by `check_all_settings`'s path-count assertion, but pin the
/// stronger structural property on the recursive pedestrian.
#[test]
fn frontier_sharding_keeps_paths_structurally_identical() {
    const SRC: &str = "
        let start = 3 * sample in
        let rec walk x =
          if x <= 0 then 0 else
            let step = sample in
            if sample <= 0.5 then step + walk (x + step)
            else step + walk (x - step)
        in
        let d = walk start in
        observe d from normal(1.1, 0.1);
        start";
    let build = |threads| {
        let opts = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 4,
                ..Default::default()
            },
            threads,
            ..Default::default()
        };
        Analyzer::from_source(SRC, opts).unwrap()
    };
    let reference = build(Threads::Off);
    for &threads in SETTINGS {
        let a = build(threads);
        assert_eq!(reference.paths().len(), a.paths().len());
        for (i, (p, q)) in reference.paths().iter().zip(a.paths()).enumerate() {
            assert_eq!(p, q, "path {i} differs under {threads:?}");
        }
    }
}

/// The memo cache must be invisible: a warm analyzer answers with the
/// same bits as a cold one, under any thread count.
#[test]
fn cache_reuse_is_bit_identical_across_thread_counts() {
    let src = "let x = sample in (if x <= 0.5 then score(2 * x) else score(1)); x";
    let u = Interval::new(0.1, 0.6);
    let cold = analyzer(src, Threads::Off, Method::Auto).denotation_bounds(u);
    for &threads in SETTINGS {
        let a = analyzer(src, threads, Method::Auto);
        let first = a.denotation_bounds(u);
        let warm = a.denotation_bounds(u);
        let hits = a.cache_stats().hits;
        assert!(hits >= a.paths().len() as u64, "second query must hit");
        assert_bits_eq(cold, first, "cold query");
        assert_bits_eq(cold, warm, "warm query");
    }
}

/// The persistent pool must be shareable across analyzers (like the
/// query cache) with zero effect on results: two analyzers on one
/// explicit pool answer bit-identically to analyzers on fresh pools —
/// and the shared pool's workers are reused, not respawned.
#[test]
fn pool_reuse_across_analyzers_is_bit_identical() {
    use gubpi_core::{SharedQueryCache, WorkerPool};
    let src = "
        let start = 3 * sample in
        let rec walk x =
          if x <= 0 then 0 else
            let step = sample in
            if sample <= 0.5 then step + walk (x + step)
            else step + walk (x - step)
        in
        let d = walk start in
        observe d from normal(1.1, 0.1);
        start";
    let opts = || {
        let mut o = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 3,
                ..Default::default()
            },
            threads: Threads::Fixed(4),
            ..Default::default()
        };
        o.bounds.splits = 8;
        o
    };
    let u = Interval::new(0.0, 1.5);
    // Reference: fresh pool (and fresh cache) per analyzer.
    let fresh = |_: usize| {
        let pool = WorkerPool::new();
        let a = Analyzer::from_source_with(src, opts(), &SharedQueryCache::new(), &pool).unwrap();
        a.denotation_bounds(u)
    };
    let reference = fresh(0);
    assert_eq!(reference, fresh(1), "fresh pools agree with each other");

    // Shared: one pool, two analyzers (each with a private cache so the
    // second one really recomputes on the pool's warm workers).
    let pool = WorkerPool::new();
    let a = Analyzer::from_source_with(src, opts(), &SharedQueryCache::new(), &pool).unwrap();
    let ra = a.denotation_bounds(u);
    let spawned_after_first = pool.spawned_workers();
    let b = Analyzer::from_source_with(src, opts(), &SharedQueryCache::new(), &pool).unwrap();
    let rb = b.denotation_bounds(u);
    assert_eq!(
        pool.spawned_workers(),
        spawned_after_first,
        "the second analyzer must reuse the warm workers"
    );
    for got in [ra, rb] {
        assert_bits_eq(reference, got, "shared-pool analyzer");
    }
    assert!(
        a.pool().same_pool(b.pool()),
        "both analyzers must hold handles to the one shared pool"
    );
}

/// Cross-path work stealing: a model with one dominant grid path and a
/// trivial side path gives the pool workers that finish the trivial
/// path nothing to do *except* steal region chunks from the dominant
/// sweep. The steal must show up in the pool counters and must not
/// change a single bit of the bounds.
#[test]
fn dominant_path_model_exercises_region_stealing() {
    use gubpi_core::{SharedQueryCache, WorkerPool};
    // Path 1: trivial (one sample). Path 2: 4 samples, non-linear
    // result ⇒ §6.3 grid with splits⁴ cells — the dominant sweep.
    let src = "
        if sample <= 0.1 then 0 else
          let x = sample in let y = sample in let z = sample in
          score(sigmoid(x * y + z)); x * y * z";
    let build = |threads, pool: &WorkerPool| {
        let mut opts = AnalysisOptions {
            threads,
            ..Default::default()
        };
        opts.bounds.splits = 8;
        Analyzer::from_source_with(src, opts, &SharedQueryCache::new(), pool).unwrap()
    };
    let seq_pool = WorkerPool::new();
    let reference = build(Threads::Off, &seq_pool);
    assert_eq!(reference.paths().len(), 2, "dominant + trivial path");
    let u = Interval::new(0.0, 0.5);
    let ref_bounds = reference.denotation_bounds(u);

    let pool = WorkerPool::new();
    // Scheduling decides *who* claims each chunk, so a single run may
    // legitimately see the caller claim everything (1-CPU CI runners);
    // repeat until a steal is observed, bounded so a genuine regression
    // (stealing impossible) still fails loudly. Every repetition must
    // be bit-identical regardless.
    let mut stole = false;
    for _ in 0..50 {
        let a = build(Threads::Fixed(4), &pool);
        let got = a.denotation_bounds(u);
        assert_bits_eq(ref_bounds, got, "dominant-path model under stealing");
        if pool.stats().region_steals > 0 {
            stole = true;
            break;
        }
    }
    assert!(
        stole,
        "4 workers on a dominant sweep never stole a region chunk: {:?}",
        pool.stats()
    );
    assert!(pool.stats().path_tasks > 0);
}

/// Acceptance sweep: every width from 1 to 8 (plus Off/Auto) answers
/// with the sequential bits on a mixed recursive model.
#[test]
fn widths_one_through_eight_are_bit_identical() {
    let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
    let build = |threads| {
        let opts = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 8,
                ..Default::default()
            },
            threads,
            ..Default::default()
        };
        Analyzer::from_source(src, opts).unwrap()
    };
    let u = Interval::new(-0.5, 2.5);
    let reference = build(Threads::Off).denotation_bounds(u);
    for n in 1..=8usize {
        let got = build(Threads::Fixed(n)).denotation_bounds(u);
        assert_bits_eq(reference, got, &format!("Fixed({n})"));
    }
    assert_bits_eq(reference, build(Threads::Auto).denotation_bounds(u), "Auto");
}

/// The compiled interval-tape kernel vs the tree-walking interpreter:
/// same bounds, **bit for bit**, on every query shape and under every
/// thread count (CI runs this whole file under `GUBPI_THREADS` ∈
/// {2, 4, 8}, so the comparison also covers steal schedules).
#[test]
fn kernel_and_interpreter_report_identical_bits() {
    let sources = [
        // Non-linear single path: pure §6.3 grid sweep.
        "let x = sample in let y = sample in let z = sample in score(sigmoid(x * y + z)); x * y",
        // Linear with boxed scores: §6.4 chunk combinations.
        "let x = sample in let y = sample in score(x + y); score(2 - x); x + y",
        // Recursive: mixed path set with approxFix interval literals.
        "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0",
    ];
    for src in sources {
        let build = |threads: Threads, use_kernel: bool| {
            let mut opts = AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: 6,
                    ..Default::default()
                },
                threads,
                ..Default::default()
            };
            opts.bounds.splits = 8;
            opts.bounds.use_kernel = use_kernel;
            Analyzer::from_source(src, opts).unwrap()
        };
        let u = Interval::new(0.0, 1.5);
        let reference = build(Threads::Off, false);
        let ref_den = reference.denotation_bounds(u);
        let ref_hist = reference.histogram(Interval::new(-1.0, 3.0), 5);
        for &threads in SETTINGS {
            let a = build(threads, true);
            assert_bits_eq(
                ref_den,
                a.denotation_bounds(u),
                &format!("{src}: kernel under {threads:?} vs interpreter"),
            );
            let h = a.histogram(Interval::new(-1.0, 3.0), 5);
            for b in 0..h.bins() {
                assert_bits_eq(
                    ref_hist.unnormalized(b),
                    h.unnormalized(b),
                    &format!("{src}: kernel histogram bin {b} under {threads:?}"),
                );
            }
        }
    }
}

/// Gap-driven adaptive refinement must preserve the bit-identity
/// contract: worklist selection, scoring and integration run on the
/// caller's thread in canonical (score, sequence) order, and workers
/// only evaluate replayed cell batches — so the refinement tree, and
/// therefore every reported bound, is the same under every thread
/// count and steal schedule, on a fresh pool or a reused warm one.
/// `gap_target > 0` additionally exercises the early-stop round logic.
#[test]
fn adaptive_refinement_is_bit_identical_across_thread_counts() {
    use gubpi_core::{SharedQueryCache, WorkerPool};
    // Trivial side path + non-linear dominant path: the dominant sweep
    // is grid-destined, so it goes through the adaptive refiner, and
    // idle workers have refinement child-cell batches to steal.
    let src = "
        if sample <= 0.1 then 0 else
          let x = sample in let y = sample in let z = sample in
          score(sigmoid(x * y + z)); x * y * z";
    let u = Interval::new(0.0, 0.5);
    for gap_target in [0.0, 0.05] {
        let build = |threads: Threads, pool: &WorkerPool| {
            let mut opts = AnalysisOptions {
                threads,
                ..Default::default()
            };
            opts.bounds.splits = 8;
            opts.refine = true;
            opts.gap_target = gap_target;
            Analyzer::from_source_with(src, opts, &SharedQueryCache::new(), pool).unwrap()
        };
        let seq_pool = WorkerPool::new();
        let reference = build(Threads::Off, &seq_pool).denotation_bounds(u);
        assert!(
            seq_pool.stats().refine_rounds > 0,
            "the dominant path must actually refine"
        );
        for threads in SETTINGS.iter().copied().chain([Threads::Fixed(8)]) {
            let pool = WorkerPool::new();
            let fresh = build(threads, &pool).denotation_bounds(u);
            assert_bits_eq(
                reference,
                fresh,
                &format!("adaptive (gap_target {gap_target}) fresh pool under {threads:?}"),
            );
            // A second analyzer on the same (now warm) pool: steal
            // schedules differ, bits must not.
            let warm = build(threads, &pool).denotation_bounds(u);
            assert_bits_eq(
                reference,
                warm,
                &format!("adaptive (gap_target {gap_target}) warm pool under {threads:?}"),
            );
        }
    }
}

/// The worker-count clamp: a query with a single unit of work on a wide
/// setting must run inline — no pool dispatch, no empty partials, no
/// threads spawned for nothing.
#[test]
fn one_unit_queries_run_inline_on_wide_pools() {
    use gubpi_core::{SharedQueryCache, WorkerPool};
    let pool = WorkerPool::new();
    let opts = AnalysisOptions {
        threads: Threads::Fixed(8),
        ..Default::default()
    };
    // One linear path whose query plan is a single polytope volume:
    // exactly one unit of schedulable work.
    let a = Analyzer::from_source_with("sample", opts, &SharedQueryCache::new(), &pool).unwrap();
    assert_eq!(a.paths().len(), 1);
    let before = pool.stats();
    let (lo, hi) = a.denotation_bounds(Interval::new(0.0, 0.5));
    assert!((lo - 0.5).abs() < 1e-9 && (hi - 0.5).abs() < 1e-9);
    let after = pool.stats();
    assert_eq!(after.dispatches, before.dispatches, "no pool dispatch");
    assert_eq!(after.inline_runs, before.inline_runs + 1, "ran inline");
    assert_eq!(pool.spawned_workers(), 0, "no threads for a 1-unit query");
}
