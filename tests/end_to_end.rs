//! End-to-end behaviour of the analyzer on representative models.

use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;

fn analyzer(src: &str, unfold: u32) -> Analyzer {
    Analyzer::from_source(
        src,
        AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: unfold,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("model compiles")
}

#[test]
fn conjugate_style_posterior_shifts_upward() {
    // Uniform prior, observation at 0.8 → posterior favours large bias.
    let a = analyzer("let b = sample in observe 0.8 from normal(b, 0.25); b", 2);
    let (lo_hi, _) = a.posterior_probability(Interval::new(0.5, 1.0));
    let (_, hi_lo) = a.posterior_probability(Interval::new(0.0, 0.5));
    assert!(lo_hi > 0.5, "upper half must dominate: lo={lo_hi}");
    assert!(hi_lo < 0.5, "lower half must be dominated: hi={hi_lo}");
}

#[test]
fn discrete_bayes_net_is_exact() {
    // P(burglary | alarm) = 4/11 with the priors below.
    let src = "
        let burglary = flip(0.125) in
        let earthquake = flip(0.25) in
        let alarm = max(burglary, earthquake) in
        if alarm >= 1 then burglary else fail";
    let a = analyzer(src, 2);
    let (lo, hi) = a.posterior_probability(Interval::new(0.5, 1.5));
    let exact = 4.0 / 11.0;
    assert!(lo <= exact + 1e-9 && exact <= hi + 1e-9);
    assert!(hi - lo < 1e-9, "discrete model must be exact: [{lo}, {hi}]");
}

#[test]
fn hard_rejection_renormalizes() {
    // Condition sample ≥ 0.5 by failing otherwise: posterior uniform on
    // [0.5, 1], so P(x ≥ 0.75) = 1/2.
    let a = analyzer("let x = sample in if x >= 0.5 then x else fail", 2);
    let (lo, hi) = a.posterior_probability(Interval::new(0.75, 1.0));
    assert!(lo <= 0.5 + 1e-9 && 0.5 <= hi + 1e-9, "[{lo}, {hi}]");
    assert!(hi - lo < 1e-6);
}

#[test]
fn recursive_geometric_histogram() {
    let a = analyzer(
        "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0",
        10,
    );
    let h = a.histogram(Interval::new(-0.5, 5.5), 6);
    // Bin k holds the integer k with mass 2^{-(k+1)}.
    for k in 0..6 {
        let (lo, hi) = h.unnormalized(k);
        let want = 0.5f64.powi(k as i32 + 1);
        assert!(
            lo <= want + 1e-9 && want <= hi + 1e-9,
            "bin {k}: {want} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn histogram_exact_is_at_least_as_tight() {
    let src = "let x = sample in score(x); x";
    let a = analyzer(src, 2);
    let domain = Interval::new(0.0, 1.0);
    let fast = a.histogram(domain, 5);
    let exact = a.histogram_exact(domain, 5);
    for i in 0..5 {
        let (fl, fh) = fast.unnormalized(i);
        let (el, eh) = exact.unnormalized(i);
        assert!(el >= fl - 1e-9, "bin {i}: exact lower {el} < fast {fl}");
        assert!(eh <= fh + 1e-9, "bin {i}: exact upper {eh} > fast {fh}");
        // Both contain the truth ∫ x dx over the bin.
        let b = fast.bin(i);
        let truth = 0.5 * (b.hi() * b.hi() - b.lo() * b.lo());
        assert!(el <= truth + 1e-9 && truth <= eh + 1e-9);
    }
}

#[test]
fn almost_surely_rejected_programs_have_no_posterior() {
    let a = analyzer("fail; sample", 2);
    let (z_lo, z_hi) = a.normalizing_constant();
    assert_eq!(z_lo, 0.0);
    assert_eq!(z_hi, 0.0);
    let h = a.histogram(Interval::new(0.0, 1.0), 4);
    assert!(h.normalized().is_empty());
}

#[test]
fn front_end_errors_propagate() {
    assert!(Analyzer::from_source("let x = in x", AnalysisOptions::default()).is_err());
    assert!(Analyzer::from_source("fn x -> x", AnalysisOptions::default()).is_err());
    assert!(Analyzer::from_source("y + 1", AnalysisOptions::default()).is_err());
}

#[test]
fn render_histogram_is_printable() {
    let a = analyzer("sample", 2);
    let h = a.histogram(Interval::new(0.0, 1.0), 4);
    let s = gubpi_core::render_histogram(&h, 30);
    assert_eq!(s.lines().count(), 5);
    assert!(s.contains("Z in ["));
}
