//! Statistical soundness: guaranteed bounds must contain high-precision
//! Monte-Carlo estimates across the model zoo (Corollary 6.3 in action).

use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_interval::Interval;
use gubpi_lang::parse;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(source, query, unfold)` triples covering branching, scoring,
/// observation, recursion and non-linear operators.
const ZOO: &[(&str, (f64, f64), u32)] = &[
    ("sample", (0.2, 0.7), 2),
    ("sample + sample", (0.5, 1.2), 2),
    ("let x = sample in score(2 * x); x", (0.3, 0.9), 2),
    (
        "observe 0.4 from normal(sample, 0.3); sample",
        (0.0, 0.5),
        2,
    ),
    (
        "if sample <= 0.3 then sample else 2 * sample",
        (0.4, 1.1),
        2,
    ),
    ("exp(sample) / 2", (0.6, 1.2), 2),
    ("min(sample, sample) + 0.1", (0.3, 0.8), 2),
    (
        "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0",
        (-0.5, 1.5),
        8,
    ),
    (
        "let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1; sample",
        (0.0, 0.5),
        8,
    ),
    (
        "let p = sample in (if sample <= p then score(2) else score(1)); p",
        (0.5, 1.0),
        2,
    ),
];

fn posterior_mc(src: &str, u: Interval, seed: u64) -> f64 {
    let p = parse(src).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = importance_sample(&p, 60_000, ImportanceOptions::default(), &mut rng);
    ws.probability_in(u.lo(), u.hi())
}

#[test]
fn bounds_contain_monte_carlo_posteriors() {
    for (i, (src, (a, b), unfold)) in ZOO.iter().enumerate() {
        let u = Interval::new(*a, *b);
        let analyzer = Analyzer::from_source(
            src,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: *unfold,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{src}: {e}"));
        let (lo, hi) = analyzer.posterior_probability(u);
        assert!(lo <= hi + 1e-12, "{src}: inverted bounds [{lo}, {hi}]");
        let mc = posterior_mc(src, u, 1000 + i as u64);
        // 60k samples: allow 1.5% statistical slack.
        assert!(
            lo - 0.015 <= mc && mc <= hi + 0.015,
            "{src}: MC {mc} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn unnormalized_bounds_contain_evidence_estimates() {
    for (i, (src, _, unfold)) in ZOO.iter().enumerate() {
        let analyzer = Analyzer::from_source(
            src,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: *unfold,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (z_lo, z_hi) = analyzer.normalizing_constant();
        let p = parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(7_000 + i as u64);
        let ws = importance_sample(&p, 60_000, ImportanceOptions::default(), &mut rng);
        let z_mc = ws.evidence_estimate();
        assert!(
            z_lo - 0.02 <= z_mc && z_mc <= z_hi + 0.02 * (1.0 + z_hi.abs()),
            "{src}: Ẑ = {z_mc} outside [{z_lo}, {z_hi}]"
        );
    }
}

#[test]
fn refining_splits_never_loosens_bounds() {
    let src = "let x = sample in score(x + sample); x";
    let u = Interval::new(0.25, 0.75);
    let mut prev_width = f64::INFINITY;
    for splits in [4usize, 8, 16, 32] {
        let mut opts = AnalysisOptions::default();
        opts.bounds.splits = splits;
        let a = Analyzer::from_source(src, opts).unwrap();
        let (lo, hi) = a.denotation_bounds(u);
        let width = hi - lo;
        assert!(
            width <= prev_width + 1e-9,
            "splits={splits}: width {width} > previous {prev_width}"
        );
        prev_width = width;
    }
    assert!(
        prev_width < 0.05,
        "32 splits should be tight, got {prev_width}"
    );
}

#[test]
fn deeper_unfolding_never_loosens_z_bounds() {
    let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
    let mut prev = (0.0f64, f64::INFINITY);
    for unfold in [2u32, 4, 8, 12] {
        let a = Analyzer::from_source(
            src,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: unfold,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (lo, hi) = a.normalizing_constant();
        assert!(lo >= prev.0 - 1e-9, "unfold={unfold}: lower regressed");
        assert!(hi <= prev.1 + 1e-9, "unfold={unfold}: upper regressed");
        prev = (lo, hi);
    }
    // Z = 1 for this almost-surely-terminating score-free program.
    assert!(prev.0 > 0.999 && prev.1 >= 1.0 - 1e-9);
}
