//! Differential suite: the compiled interval-tape kernel must agree
//! with the tree-walking interpreter **to the bit** on arbitrary
//! symbolic values, constraints and boxes.
//!
//! The kernel's whole contract is "same bits, less work": hash-consed
//! CSE, constant pre-folding, fused constraint passes and lane-blocked
//! evaluation may change *how* a range is computed but never a single
//! bit of any reported endpoint. These tests drive randomly generated
//! `SymVal` trees — including interval literals (the `approxFix`
//! artefacts), ±∞ endpoints, NaN-repairing additions of opposite
//! infinities, and out-of-domain distribution parameters (the zero-
//! density totality fix) — across random boxes and compare every
//! endpoint bit pattern against `range_over_box` / the four-walk
//! `process_region` semantics.

use std::sync::Arc;

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::PrimOp;
use gubpi_symbolic::{CmpDir, SymConstraint, SymPath, SymVal, Tape, LANES};
use proptest::prelude::*;

/// Constant palette: ordinary magnitudes, signed zeros, huge values and
/// both infinities (NaN constants are excluded — `Interval::point(NaN)`
/// panics identically in the interpreter and the compiler, so there is
/// nothing differential to observe).
const CONSTS: &[f64] = &[
    0.0,
    -0.0,
    0.5,
    -1.5,
    2.0,
    0.25,
    -3.0,
    1e300,
    -1e300,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

/// Interval-literal palette (what `approxFix` and truncation produce):
/// bounded, half-bounded and fully unbounded.
fn interval_palette() -> Vec<Interval> {
    vec![
        Interval::new(0.0, 1.0),
        Interval::new(-0.5, 0.5),
        Interval::new(0.25, 0.25),
        Interval::new(0.0, f64::INFINITY),
        Interval::new(f64::NEG_INFINITY, 0.0),
        Interval::REAL,
        Interval::new(-2.0, 3.0),
    ]
}

const UNARY: &[PrimOp] = &[
    PrimOp::Neg,
    PrimOp::Abs,
    PrimOp::Exp,
    PrimOp::Ln,
    PrimOp::Sqrt,
    PrimOp::Sigmoid,
    PrimOp::Floor,
    PrimOp::NormalQuantile,
    PrimOp::ExponentialQuantile,
    PrimOp::CauchyQuantile,
];

const BINARY: &[PrimOp] = &[
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Div,
    PrimOp::Min,
    PrimOp::Max,
    PrimOp::ExponentialPdf,
];

/// Ternary ops are all distribution pdfs/quantiles — feeding them
/// arbitrary subtrees as parameters exercises exactly the
/// out-of-domain (zero-density / sound-enclosure) code paths.
const TERNARY: &[PrimOp] = &[
    PrimOp::NormalPdf,
    PrimOp::UniformPdf,
    PrimOp::BetaPdf,
    PrimOp::CauchyPdf,
    PrimOp::BetaQuantile,
];

/// Random symbolic values over `dims` sample variables. Built with raw
/// `SymVal::Prim` nodes (not the folding smart constructor) so constant
/// subtrees survive to the tape compiler and exercise its pre-folding.
fn arb_val(dims: usize) -> impl Strategy<Value = Arc<SymVal>> {
    let leaf = prop_oneof![
        (0..CONSTS.len()).prop_map(|i| Arc::new(SymVal::Const(CONSTS[i]))),
        (0..interval_palette().len())
            .prop_map(|i| Arc::new(SymVal::Interval(interval_palette()[i]))),
        (0..dims).prop_map(|i| Arc::new(SymVal::Sample(i))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            ((0..UNARY.len()), inner.clone())
                .prop_map(|(op, a)| Arc::new(SymVal::Prim(UNARY[op], vec![a]))),
            ((0..BINARY.len()), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Arc::new(SymVal::Prim(BINARY[op], vec![a, b]))),
            ((0..TERNARY.len()), inner.clone(), inner.clone(), inner)
                .prop_map(|(op, a, b, c)| Arc::new(SymVal::Prim(TERNARY[op], vec![a, b, c]))),
        ]
    })
}

/// Random evaluation boxes: mostly sub-boxes of `[0, 1]` (the sample
/// space), with degenerate points and unbounded dimensions mixed in.
fn arb_box(dims: usize) -> impl Strategy<Value = BoxN> {
    let dim = prop_oneof![
        (0..8usize, 0..8usize).prop_map(|(a, b)| {
            let (lo, hi) = (a.min(b) as f64 / 8.0, (a.max(b) as f64 + 1.0) / 8.0);
            Interval::new(lo, hi.min(1.0))
        }),
        (0..9usize).prop_map(|a| Interval::point(a as f64 / 8.0)),
        Just(Interval::new(0.0, f64::INFINITY)),
        Just(Interval::new(-1.0, 2.0)),
    ];
    proptest::collection::vec(dim, dims..=dims).prop_map(BoxN::new)
}

fn assert_bits(got: Interval, want: Interval, ctx: &str) {
    assert!(
        got.lo().to_bits() == want.lo().to_bits() && got.hi().to_bits() == want.hi().to_bits(),
        "{ctx}: tape {got:?} differs from tree {want:?}"
    );
}

const DIMS: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Tape::for_value` ≡ `SymVal::range_over_box`, bit for bit.
    #[test]
    fn value_tapes_match_tree_ranges((v, b) in (arb_val(DIMS), arb_box(DIMS))) {
        let tape = Tape::for_value(DIMS, &v);
        let mut scratch = tape.scratch();
        let got = tape.eval_value(b.intervals(), &mut scratch);
        assert_bits(got, v.range_over_box(&b), "value tape");
    }

    /// Full fused path evaluation ≡ the four independent tree walks
    /// (∃-pass, ∀-pass, weight product, result range).
    #[test]
    fn path_tapes_match_the_four_walks(
        (result, c1, c2, score, b) in (
            arb_val(DIMS), arb_val(DIMS), arb_val(DIMS), arb_val(DIMS), arb_box(DIMS),
        ),
        dir1 in (0..2usize).prop_map(|b| b == 1),
        dir2 in (0..2usize).prop_map(|b| b == 1),
    ) {
        let dir = |le: bool| if le { CmpDir::LeZero } else { CmpDir::GtZero };
        let path = SymPath {
            result,
            n_samples: DIMS,
            constraints: vec![
                SymConstraint { value: c1, dir: dir(dir1) },
                SymConstraint { value: c2, dir: dir(dir2) },
            ],
            scores: vec![score],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let tape = Tape::for_path(&path);
        let mut scratch = tape.scratch();
        let got = tape.eval_cell(b.intervals(), &mut scratch);
        let pos = path.constraints_on_box(&b, false);
        match got {
            None => prop_assert!(!pos, "tape excluded a possibly-inside cell"),
            Some(cell) => {
                prop_assert!(pos, "tape kept a definitely-outside cell");
                assert_bits(cell.value, path.result.range_over_box(&b), "result");
                assert_bits(cell.weight, path.weight_range_over_box(&b), "weight");
                prop_assert_eq!(cell.definite, path.constraints_on_box(&b, true));
            }
        }
    }

    /// Lane-blocked SoA evaluation ≡ scalar evaluation, lane by lane
    /// (the batched fast paths replicate the `Interval` operators).
    #[test]
    fn block_eval_matches_scalar_eval(
        (result, guard, score) in (arb_val(DIMS), arb_val(DIMS), arb_val(DIMS)),
        boxes in proptest::collection::vec(arb_box(DIMS), 1..(2 * LANES)),
    ) {
        let path = SymPath {
            result,
            n_samples: DIMS,
            constraints: vec![SymConstraint { value: guard, dir: CmpDir::LeZero }],
            scores: vec![score],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let tape = Tape::for_path(&path);
        let mut scalar = tape.scratch();
        let mut block = tape.scratch();
        for chunk in boxes.chunks(LANES) {
            for (lane, b) in chunk.iter().enumerate() {
                for (d, iv) in b.intervals().iter().enumerate() {
                    block.set_input(d, lane, *iv);
                }
            }
            let any = tape.eval_block(&mut block, chunk.len());
            for (lane, b) in chunk.iter().enumerate() {
                let want = tape.eval_cell(b.intervals(), &mut scalar);
                let got = if any { block.lane(lane) } else { None };
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        assert_bits(g.value, w.value, "lane value");
                        assert_bits(g.weight, w.weight, "lane weight");
                        prop_assert_eq!(g.definite, w.definite);
                    }
                    (g, w) => prop_assert!(false, "lane {}: {:?} vs {:?}", lane, g, w),
                }
            }
        }
    }
}

/// Deterministic corner cases the random generator may only rarely hit:
/// opposite-infinity additions (NaN repair), out-of-domain distribution
/// parameters (the PR-2 totality fix), and `approxFix`-style interval
/// literals feeding pdfs.
#[test]
fn corner_cases_agree_bit_for_bit() {
    let s = |i: usize| Arc::new(SymVal::Sample(i));
    let c = |x: f64| Arc::new(SymVal::Const(x));
    let iv = |i: Interval| Arc::new(SymVal::Interval(i));
    let prim = |op: PrimOp, args: Vec<Arc<SymVal>>| Arc::new(SymVal::Prim(op, args));

    let cases: Vec<Arc<SymVal>> = vec![
        // ∞ − ∞ inside a sum: the interpreter's NaN repair must be
        // replicated exactly by the tape's SoA Add/Sub fast paths.
        prim(
            PrimOp::Add,
            vec![
                prim(PrimOp::Sub, vec![c(f64::INFINITY), iv(Interval::NON_NEG)]),
                s(0),
            ],
        ),
        // 0 · [0, ∞]: the `0 · ∞ = 0` convention in the Mul fast path.
        prim(
            PrimOp::Mul,
            vec![prim(PrimOp::Mul, vec![c(0.0), s(0)]), iv(Interval::NON_NEG)],
        ),
        // Negative σ from a sample: zero-density totality fix — the
        // enclosure's lower endpoint must drop to 0 identically.
        prim(
            PrimOp::NormalPdf,
            vec![c(0.0), prim(PrimOp::Sub, vec![s(0), c(0.5)]), s(1)],
        ),
        // Entirely invalid rate: exactly [0, 0] on both sides.
        prim(PrimOp::ExponentialPdf, vec![c(-1.0), s(0)]),
        // Invalid beta shapes → [0, ∞] enclosure.
        prim(PrimOp::BetaPdf, vec![c(0.0), c(2.0), s(0)]),
        // approxFix interval literal as a pdf argument.
        prim(
            PrimOp::NormalPdf,
            vec![
                c(1.1),
                c(0.1),
                prim(PrimOp::Add, vec![s(0), iv(Interval::new(-0.25, 0.25))]),
            ],
        ),
        // Division by a zero-straddling interval → [−∞, ∞].
        prim(
            PrimOp::Div,
            vec![c(1.0), prim(PrimOp::Sub, vec![s(0), c(0.5)])],
        ),
        // Signed zero through Neg/Abs/Min chains.
        prim(
            PrimOp::Min,
            vec![
                prim(PrimOp::Neg, vec![c(0.0)]),
                prim(PrimOp::Abs, vec![s(1)]),
            ],
        ),
    ];
    let boxes = [
        BoxN::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]),
        BoxN::new(vec![Interval::point(0.5), Interval::point(0.25)]),
        BoxN::new(vec![
            Interval::new(0.5, 0.75),
            Interval::new(0.0, f64::INFINITY),
        ]),
        BoxN::new(vec![Interval::new(0.0, 0.5), Interval::new(-1.0, 2.0)]),
    ];
    for v in &cases {
        let tape = Tape::for_value(2, v);
        let mut scratch = tape.scratch();
        for b in &boxes {
            let got = tape.eval_value(b.intervals(), &mut scratch);
            assert_bits(got, v.range_over_box(b), &format!("{v} over {b:?}"));
        }
    }
}

/// Interval literals in constraints: the ∃/∀ distinction must survive
/// the fused pass (a constraint that possibly-but-not-definitely holds
/// yields `Some` with `definite == false`).
#[test]
fn interval_constraints_keep_the_forall_exists_distinction() {
    let path = SymPath {
        result: Arc::new(SymVal::Sample(0)),
        n_samples: 1,
        constraints: vec![SymConstraint {
            // (α₀ + [0, 1]) ≤ 0: at α₀ ∈ [−0.5, −0.5] the range is
            // [−0.5, 0.5] — possibly, not definitely, ≤ 0.
            value: Arc::new(SymVal::Prim(
                PrimOp::Add,
                vec![
                    Arc::new(SymVal::Sample(0)),
                    Arc::new(SymVal::Interval(Interval::UNIT)),
                ],
            )),
            dir: CmpDir::LeZero,
        }],
        scores: vec![],
        truncated: false,
        budget_truncated: false,
        tail: None,
    };
    let tape = Tape::for_path(&path);
    let mut scratch = tape.scratch();
    let straddle = tape
        .eval_cell(&[Interval::point(-0.5)], &mut scratch)
        .expect("possibly inside");
    assert!(!straddle.definite, "not all refinements satisfy ≤ 0");
    let inside = tape
        .eval_cell(&[Interval::point(-1.5)], &mut scratch)
        .expect("definitely inside");
    assert!(inside.definite);
    assert!(tape
        .eval_cell(&[Interval::point(0.5)], &mut scratch)
        .is_none());
}
