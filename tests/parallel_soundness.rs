//! Stress test: Monte-Carlo estimates vs the parallel engine's bounds.
//!
//! Corollary 6.3 under concurrency — many importance-sampling and MH
//! estimates, across seeds, on the paper's models must all fall inside
//! the `[lo, hi]` bounds computed with `Threads::Fixed(4)` (and those
//! bounds must themselves agree bit-for-bit with the sequential engine,
//! which `tests/parallel_determinism.rs` checks separately).

use gubpi_core::{AnalysisOptions, Analyzer, Threads};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_inference::mh::{mh_sample, MhOptions};
use gubpi_interval::Interval;
use gubpi_lang::parse;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(source, query, unfold)` — the paper-example zoo: branching,
/// scoring, observation, recursion (pedestrian), unbounded weights.
const MODELS: &[(&str, (f64, f64), u32)] = &[
    ("sample", (0.2, 0.7), 2),
    ("let x = sample in score(x); x", (0.3, 0.9), 2),
    (
        "observe 0.4 from normal(sample, 0.3); sample",
        (0.0, 0.5),
        2,
    ),
    (
        "if sample <= 0.3 then sample else 2 * sample",
        (0.4, 1.1),
        2,
    ),
    (
        "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0",
        (-0.5, 1.5),
        8,
    ),
    (
        // The pedestrian (Fig. 1) at a shallow unfolding depth: many
        // paths, mixed linear/grid bounding, truncated tails.
        "let start = 3 * sample uniform(0, 1) in
         let rec walk x =
           if x <= 0 then 0 else
             let step = sample uniform(0, 1) in
             if sample <= 0.5 then step + walk (x + step)
             else step + walk (x - step)
         in
         let d = walk start in
         observe d from normal(1.1, 0.1);
         start",
        (0.0, 1.0),
        3,
    ),
];

/// Test threads get 2 MiB stacks; the pedestrian's deep recursive runs
/// (evaluator depth up to 700) need more in debug builds.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(f)
        .expect("spawn test worker")
        .join()
        .expect("test worker panicked");
}

fn parallel_analyzer(src: &str, unfold: u32) -> Analyzer {
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: unfold,
            ..Default::default()
        },
        threads: Threads::Fixed(4),
        ..Default::default()
    };
    opts.bounds.splits = 16;
    Analyzer::from_source(src, opts).unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// Importance sampling across many seeds: every posterior estimate must
/// land inside the parallel bounds (1.5% slack for 40k-sample MC noise,
/// as in `tests/soundness.rs`).
#[test]
fn importance_sampling_estimates_fall_inside_parallel_bounds() {
    with_big_stack(|| {
        for (i, (src, (a, b), unfold)) in MODELS.iter().enumerate() {
            let u = Interval::new(*a, *b);
            let analyzer = parallel_analyzer(src, *unfold);
            let (lo, hi) = analyzer.posterior_probability(u);
            assert!(lo <= hi + 1e-12, "{src}: inverted bounds [{lo}, {hi}]");
            let program = parse(src).unwrap();
            for seed in 0..5u64 {
                let mut rng = StdRng::seed_from_u64(1_000 * (i as u64 + 1) + seed);
                let ws =
                    importance_sample(&program, 40_000, ImportanceOptions::default(), &mut rng);
                let mc = ws.probability_in(u.lo(), u.hi());
                assert!(
                    lo - 0.015 <= mc && mc <= hi + 0.015,
                    "{src} (seed {seed}): IS estimate {mc} outside [{lo}, {hi}]"
                );
            }
        }
    });
}

/// The same contract for trace MH (wider slack: MH samples are
/// autocorrelated, so the effective sample size is smaller).
#[test]
fn mh_estimates_fall_inside_parallel_bounds() {
    with_big_stack(|| {
        for (i, (src, (a, b), unfold)) in MODELS.iter().enumerate() {
            let u = Interval::new(*a, *b);
            let analyzer = parallel_analyzer(src, *unfold);
            let (lo, hi) = analyzer.posterior_probability(u);
            let program = parse(src).unwrap();
            for seed in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(9_000 * (i as u64 + 1) + seed);
                let chain = mh_sample(&program, 6_000, MhOptions::default(), &mut rng);
                assert!(!chain.values.is_empty(), "{src}: MH found no start state");
                let inside = chain
                    .values
                    .iter()
                    .filter(|v| u.lo() <= **v && **v <= u.hi())
                    .count();
                let mc = inside as f64 / chain.values.len() as f64;
                assert!(
                    lo - 0.05 <= mc && mc <= hi + 0.05,
                    "{src} (seed {seed}): MH estimate {mc} outside [{lo}, {hi}]"
                );
            }
        }
    });
}

/// Evidence (normalising-constant) estimates vs the parallel engine's
/// `Z` bounds, across seeds.
#[test]
fn evidence_estimates_fall_inside_parallel_z_bounds() {
    with_big_stack(|| {
        for (i, (src, _, unfold)) in MODELS.iter().enumerate() {
            let analyzer = parallel_analyzer(src, *unfold);
            let (z_lo, z_hi) = analyzer.normalizing_constant();
            let program = parse(src).unwrap();
            for seed in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(5_000 * (i as u64 + 1) + seed);
                let ws =
                    importance_sample(&program, 40_000, ImportanceOptions::default(), &mut rng);
                let z_mc = ws.evidence_estimate();
                assert!(
                    z_lo - 0.02 <= z_mc && z_mc <= z_hi + 0.02 * (1.0 + z_hi.abs()),
                    "{src} (seed {seed}): Ẑ = {z_mc} outside [{z_lo}, {z_hi}]"
                );
            }
        }
    });
}
