//! Soundness of gap-driven adaptive region refinement: adaptive bounds
//! must stay inside the one-shot uniform sweep's bounds at an equal
//! cell budget, the realised gap must never widen as the budget (or
//! bisection depth) grows, refined bounds must still contain
//! high-precision Monte-Carlo posteriors, and the `--no-refine` escape
//! hatch must reproduce the plain uniform machinery bit for bit.
//!
//! Every assertion here is stable because the refiner is deterministic:
//! the worklist is ordered by (score desc, sequence asc) and replayed
//! identically for every thread count (see
//! `tests/parallel_determinism.rs`), so a bound verified once holds on
//! every run.

use gubpi_core::{
    bound_path_grid_only_threaded, AnalysisOptions, Analyzer, Method, SingleQuery, Threads,
};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_interval::Interval;
use gubpi_lang::parse;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Classic grass model (same source as the table2 benchmark): rain 1/2,
/// sprinkler 3/10, grass wet if rain (w.p. 9/10) or sprinkler
/// (w.p. 8/10); observe wet; query P(rain | wet) ≈ 0.7079.
const GRASS: &str = r#"
    let rain = flip(0.5) in
    let sprinkler = flip(0.3) in
    let wet_rain = if rain >= 1 then flip(0.9) else 0 in
    let wet_spr = if sprinkler >= 1 then flip(0.8) else 0 in
    let wet = max(wet_rain, wet_spr) in
    if wet >= 1 then rain else fail"#;

/// Figure 6a (cav-example-7): geometric accumulation with an unbounded
/// loop — continuous mass plus an atom of size 0.6 at 0.
const FIG6A: &str = r#"
    let rec go x =
      if sample <= 0.6 then x else go (x + sample uniform(0, 1))
    in go 0"#;

/// The pedestrian model (same source as `tests/tail_soundness.rs`):
/// data-guarded random walk with a normal observation.
const PEDESTRIAN: &str = r#"
    let start = 3 * sample uniform(0, 1) in
    let rec walk x =
      if x <= 0 then 0 else
        let step = sample uniform(0, 1) in
        if sample <= 0.5 then step + walk (x + step)
        else step + walk (x - step)
    in
    let distance = walk start in
    observe distance from normal(1.1, 0.1);
    start"#;

/// Smooth single-dominant-path model: a non-linear score over three
/// samples, so the dominant path is grid-destined under `Method::Auto`
/// and its gap lives in the interior (not on threshold surfaces).
const SMOOTH: &str = "
    if sample <= 0.1 then 0 else
      let x = sample in let y = sample in let z = sample in
      score(sigmoid(x * y + z)); x * y * z";

fn analyzer(src: &str, unfold: u32, opts: AnalysisOptions) -> Analyzer {
    let mut opts = opts;
    opts.sym = SymExecOptions {
        max_fix_unfoldings: unfold,
        ..Default::default()
    };
    Analyzer::from_source(src, opts).expect("model compiles")
}

/// Grid-forced options with the refinement knobs pinned explicitly (the
/// `Default` impl reads `GUBPI_NO_REFINE`/`GUBPI_GAP_TARGET`, which must
/// not leak into these assertions).
fn grid_opts(splits: usize, refine: bool) -> AnalysisOptions {
    let mut opts = AnalysisOptions {
        method: Method::Grid,
        threads: Threads::Off,
        refine,
        gap_target: 0.0,
        max_refine_depth: 12,
        ..Default::default()
    };
    opts.bounds.splits = splits;
    opts
}

/// Test threads get 2 MiB stacks; the pedestrian's deep recursive MC
/// runs need more in debug builds (same helper as
/// `tests/tail_soundness.rs`).
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(f)
        .expect("spawn test worker")
        .join()
        .expect("test worker panicked");
}

fn posterior_mc(src: &str, u: Interval, samples: usize, seed: u64) -> f64 {
    let p = parse(src).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = importance_sample(&p, samples, ImportanceOptions::default(), &mut rng);
    ws.probability_in(u.lo(), u.hi())
}

#[test]
fn adaptive_bounds_contained_in_uniform_sweep_at_equal_budget() {
    // At the same cell budget (`splits^n` per path) the adaptive
    // refiner spends its cells where the gap is, so its realised gap
    // must be no wider than the one-shot uniform sweep's on every
    // model. Where the gap mass sits on threshold surfaces (grass's
    // flip boundaries, fig6a's loop guard) the refiner resolves both
    // sides at once, so the stronger two-sided containment holds too;
    // a diffuse interior gap (the smooth model) may trade a hair of
    // upper slack for a much larger lower-bound gain, so only the gap
    // contract is asserted there.
    let zoo: &[(&str, &str, u32, Interval, bool)] = &[
        ("grass", GRASS, 8, Interval::new(0.5, 1.5), true),
        ("fig6a", FIG6A, 6, Interval::new(-0.5, 0.5), true),
        ("smooth", SMOOTH, 8, Interval::new(0.0, 0.5), false),
    ];
    for &(name, src, unfold, u, two_sided) in zoo {
        for splits in [8usize, 12] {
            let uniform = analyzer(src, unfold, grid_opts(splits, false)).denotation_bounds(u);
            let adaptive = analyzer(src, unfold, grid_opts(splits, true)).denotation_bounds(u);
            assert!(
                adaptive.1 - adaptive.0 <= uniform.1 - uniform.0,
                "{name} (splits {splits}): adaptive gap {} wider than uniform gap {}",
                adaptive.1 - adaptive.0,
                uniform.1 - uniform.0
            );
            if two_sided {
                assert!(
                    adaptive.0 >= uniform.0 && adaptive.1 <= uniform.1,
                    "{name} (splits {splits}): adaptive [{}, {}] escapes uniform [{}, {}]",
                    adaptive.0,
                    adaptive.1,
                    uniform.0,
                    uniform.1
                );
            }
        }
    }
}

#[test]
fn gap_never_widens_as_budget_or_depth_grows() {
    let u = Interval::new(0.0, 0.5);
    // Budget sweep: doubling `splits` multiplies the per-path cell
    // budget by 2^n; the realised adaptive gap must not widen.
    let mut last = f64::INFINITY;
    for splits in [4usize, 8, 16] {
        let (lo, hi) = analyzer(SMOOTH, 8, grid_opts(splits, true)).denotation_bounds(u);
        let gap = hi - lo;
        assert!(
            gap <= last,
            "splits {splits}: gap {gap} widened past {last}"
        );
        last = gap;
    }
    // Depth sweep at a fixed budget: allowing deeper bisection below
    // the seed grid can only tighten (extra depth is only used when a
    // cell's gap score says it pays).
    let mut last = f64::INFINITY;
    for depth in [0u32, 1, 2, 4, 12] {
        let mut opts = grid_opts(8, true);
        opts.max_refine_depth = depth;
        let (lo, hi) = analyzer(SMOOTH, 8, opts).denotation_bounds(u);
        let gap = hi - lo;
        assert!(gap <= last, "depth {depth}: gap {gap} widened past {last}");
        last = gap;
    }
}

#[test]
fn refined_bounds_contain_monte_carlo_posteriors() {
    with_big_stack(|| {
        let zoo: &[(&str, &str, u32, Interval, usize)] = &[
            ("grass", GRASS, 8, Interval::new(0.5, 1.5), 60_000),
            ("fig6a", FIG6A, 6, Interval::new(-0.5, 0.5), 60_000),
            ("pedestrian", PEDESTRIAN, 4, Interval::new(0.0, 1.0), 20_000),
        ];
        for &(name, src, unfold, u, samples) in zoo {
            let mc = posterior_mc(src, u, samples, 0x7A11);
            let a = analyzer(src, unfold, grid_opts(8, true));
            let (lo, hi) = a.posterior_probability(u);
            // MC slack: ±0.02 covers the sampling error comfortably at
            // these sample counts (same tolerance as
            // `tests/tail_soundness.rs`).
            assert!(
                lo <= mc + 0.02 && mc <= hi + 0.02,
                "{name}: MC {mc} outside refined [{lo}, {hi}]"
            );
        }
    });
}

#[test]
fn refine_off_matches_uniform_path_sums() {
    // `--no-refine` must reproduce the plain uniform machinery bit for
    // bit: the analyzer's grid-forced, refinement-off bounds equal the
    // in-path-order sum of per-path uniform sweeps.
    let zoo: &[(&str, &str, u32, Interval)] = &[
        ("grass", GRASS, 8, Interval::new(0.5, 1.5)),
        ("smooth", SMOOTH, 8, Interval::new(0.0, 0.5)),
    ];
    for &(name, src, unfold, u) in zoo {
        let a = analyzer(src, unfold, grid_opts(8, false));
        let (lo, hi) = a.denotation_bounds(u);
        let (mut sum_lo, mut sum_hi) = (0.0f64, 0.0f64);
        for p in a.paths() {
            let mut sink = SingleQuery::new(u);
            bound_path_grid_only_threaded(p, grid_opts(8, false).bounds, Threads::Off, &mut sink);
            sum_lo += sink.lo;
            sum_hi += sink.hi;
        }
        assert_eq!(
            lo.to_bits(),
            sum_lo.to_bits(),
            "{name}: refine-off lower bound drifted from the uniform path sum"
        );
        assert_eq!(
            hi.to_bits(),
            sum_hi.to_bits(),
            "{name}: refine-off upper bound drifted from the uniform path sum"
        );
    }
}
