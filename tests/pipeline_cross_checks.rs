//! Cross-checks between independent implementations inside the pipeline:
//! linear vs grid semantics, exact vs certified volumes, fast vs exact
//! histograms — all must bracket the same truths.

use gubpi_core::{bound_path, bound_path_query, PathBoundOptions, SingleQuery};
use gubpi_core::{AnalysisOptions, Analyzer, Method};
use gubpi_interval::Interval;
use gubpi_lang::{infer, parse};
use gubpi_symbolic::{symbolic_paths, SymExecOptions, SymPath};
use gubpi_types::infer_interval_types;
use proptest::prelude::*;

fn paths_of(src: &str) -> Vec<SymPath> {
    let p = parse(src).unwrap();
    let simple = infer(&p).unwrap();
    let typing = infer_interval_types(&p, &simple);
    symbolic_paths(&p, &typing, SymExecOptions::default())
}

/// Query both the linear (polytope) and grid semantics on linear models;
/// the intersection must be non-empty and the linear bounds at least as
/// tight in total width.
#[test]
fn linear_and_grid_agree_on_linear_models() {
    let cases = [
        ("sample + sample", Interval::new(0.4, 1.1)),
        (
            "if sample + sample <= 0.8 then 1 else 0",
            Interval::new(0.5, 1.5),
        ),
        ("let x = sample in score(x); x", Interval::new(0.25, 0.8)),
    ];
    for (src, u) in cases {
        let linear = Analyzer::from_source(src, AnalysisOptions::default()).unwrap();
        let grid = Analyzer::from_source(
            src,
            AnalysisOptions {
                method: Method::Grid,
                ..Default::default()
            },
        )
        .unwrap();
        let (ll, lh) = linear.denotation_bounds(u);
        let (gl, gh) = grid.denotation_bounds(u);
        assert!(ll <= gh + 1e-9 && gl <= lh + 1e-9, "{src}: disjoint bounds");
        assert!(
            lh - ll <= gh - gl + 1e-9,
            "{src}: linear [{ll},{lh}] wider than grid [{gl},{gh}]"
        );
    }
}

/// Certified box volumes must bracket the exact Lasserre-based bounds.
#[test]
fn certified_volumes_bracket_exact_bounds() {
    let u = Interval::new(0.5, 1.5);
    for src in [
        "if sample + sample <= 0.75 then 1 else 0",
        "if sample + sample + sample <= 1.2 then 1 else 0",
    ] {
        for path in paths_of(src) {
            let exact = bound_path_query(&path, u, PathBoundOptions::default());
            let certified = bound_path_query(
                &path,
                u,
                PathBoundOptions {
                    certified_volumes: true,
                    volume_budget: 4_000,
                    ..Default::default()
                },
            );
            assert!(
                certified.0 <= exact.0 + 1e-7,
                "{src}: certified lower {} above exact {}",
                certified.0,
                exact.0
            );
            assert!(
                certified.1 >= exact.1 - 1e-7,
                "{src}: certified upper {} below exact {}",
                certified.1,
                exact.1
            );
        }
    }
}

/// The sink-based region stream and the direct query must agree for
/// point queries on linear paths up to the sink's bin-boundary slack.
#[test]
fn sink_and_query_are_consistent() {
    let u = Interval::new(0.13, 0.77); // avoids chunk boundaries
    for src in ["sample", "let x = sample in score(x + 0.5); x"] {
        for path in paths_of(src) {
            let (ql, qh) = bound_path_query(&path, u, PathBoundOptions::default());
            let mut sink = SingleQuery::new(u);
            bound_path(&path, PathBoundOptions::default(), &mut sink);
            // The query folds U into the polytope, so it is at least as
            // tight; both must stay ordered.
            assert!(sink.lo <= ql + 1e-9, "{src}: sink lower too high");
            assert!(sink.hi >= qh - 1e-9, "{src}: sink upper too low");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random query intervals: query bounds are always ordered, within
    /// [0, Z_hi], and monotone under interval inclusion.
    #[test]
    fn query_bounds_are_monotone_in_u(a in 0.0f64..1.0, w1 in 0.01f64..0.5, w2 in 0.01f64..0.5) {
        let src = "let x = sample in score(x + sample); x";
        let analyzer = Analyzer::from_source(src, AnalysisOptions::default()).unwrap();
        let small = Interval::new(a, (a + w1).min(1.0));
        let big = Interval::new((a - w2).max(0.0), (a + w1).min(1.0));
        let (sl, sh) = analyzer.denotation_bounds(small);
        let (bl, bh) = analyzer.denotation_bounds(big);
        prop_assert!(sl <= sh + 1e-12);
        prop_assert!(bl <= bh + 1e-12);
        // U ⊆ V ⇒ ⟦P⟧(U) ≤ ⟦P⟧(V): the bounds must allow this ordering.
        prop_assert!(sl <= bh + 1e-9, "lower of subset exceeds upper of superset");
    }

    /// The posterior probability of U and of its complement-ish split
    /// must be able to sum to 1.
    #[test]
    fn posterior_probabilities_are_coherent(cut in 0.1f64..0.9) {
        let src = "let x = sample in score(2 - x); x";
        let analyzer = Analyzer::from_source(src, AnalysisOptions::default()).unwrap();
        let (l1, h1) = analyzer.posterior_probability(Interval::new(0.0, cut));
        let (l2, h2) = analyzer.posterior_probability(Interval::new(cut, 1.0));
        prop_assert!(l1 + l2 <= 1.0 + 1e-6, "lowers sum over 1");
        prop_assert!(h1 + h2 >= 1.0 - 1e-6, "uppers sum under 1");
        prop_assert!((0.0..=1.0).contains(&l1) && h1 <= 1.0);
    }
}
