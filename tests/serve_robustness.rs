//! Chaos and robustness suite for the serving front-end.
//!
//! The serving contract under test (see `gubpi_serve`):
//!
//! - **Anytime soundness** — a deadline-expired query returns a
//!   *degraded* but guaranteed enclosure (checked against Monte Carlo
//!   and against the untimed bounds), never a torn result or an error;
//! - **Panic containment** — an injected worker panic yields a typed
//!   `worker_panicked` reply and the daemon (and shared pool) keep
//!   serving;
//! - **Determinism under perturbation** — delay-only fault schedules
//!   leave every reported bound bit-identical to a clean run;
//! - **Cache hygiene** — degraded results are never cached, so a
//!   timed-out query followed by the identical untimed query returns
//!   the full-precision bound.
//!
//! The fault plan and its boundary counter are process-global, so every
//! test in this file serializes on one lock — otherwise a `panic@0`
//! armed by one test could fire inside another's task boundary.

use std::sync::{Mutex, MutexGuard, OnceLock};

use gubpi_core::{AnalysisOptions, Analyzer, SharedQueryCache};
use gubpi_inference::{importance_sample, ImportanceOptions};
use gubpi_pool::{set_fault_plan, FaultKind, FaultPlan};
use gubpi_serve::{start, start_with_cache, Client, QueryKind, QueryRequest, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-dimensional model that bounds in milliseconds: the workhorse for
/// bit-identity and fault-matrix checks.
const SMALL: &str =
    "let x = sample in let y = sample in score(x + y); if x * y <= 0.25 then x else y";

/// A 3-dimensional model whose uniform sweep (32³ regions per path)
/// spans many scheduler chunk boundaries, so a `cancel@N` injection on
/// the request's deadline token always interrupts it mid-sweep. (Pure
/// wall-clock deadlines are not used to force degradation here: the
/// budget-capped sweep can finish inside a few milliseconds on a fast
/// machine, which made timing-based variants of these tests flaky.)
const MEDIUM: &str = "let a = sample in let b = sample in let c = sample in \
                      score(a + b + c); a + b + c";

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn req(kind: QueryKind, source: &str, lo: f64, hi: f64, timeout_ms: Option<u64>) -> QueryRequest {
    QueryRequest {
        kind,
        source: source.to_string(),
        lo,
        hi,
        timeout_ms,
        region_budget: None,
    }
}

#[test]
fn concurrent_mixed_load_is_sound_and_within_budget() {
    let _serial = fault_lock();
    let server = start(ServeConfig {
        max_inflight: 8,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let workers: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let r = if i % 2 == 0 {
                    // Small untimed queries must come back complete.
                    req(QueryKind::Denotation, SMALL, 0.0, 0.5, None)
                } else {
                    // Timed medium queries may degrade but must stay
                    // sound and well-formed.
                    req(QueryKind::Denotation, MEDIUM, 0.5, 1.5, Some(30))
                };
                (i, c.query(r).expect("transport").expect("admitted query"))
            })
        })
        .collect();
    for w in workers {
        let (i, o) = w.join().expect("worker thread");
        assert!(o.lo <= o.hi, "torn bound [{}, {}]", o.lo, o.hi);
        assert!(
            (0.0..=1.0).contains(&o.completeness),
            "completeness {} outside [0, 1]",
            o.completeness
        );
        if i % 2 == 0 {
            assert!(!o.degraded, "untimed small query degraded");
            assert_eq!(o.completeness, 1.0);
        }
    }
    // A tiny per-request region budget is clamped server-side and must
    // still produce a sound (coarse) enclosure, not an error.
    let mut c = Client::connect(addr).expect("connect");
    let o = c
        .query(QueryRequest {
            region_budget: Some(10),
            ..req(QueryKind::Denotation, MEDIUM, 0.5, 1.5, None)
        })
        .expect("transport")
        .expect("budgeted query");
    assert!(o.lo <= o.hi && !o.degraded);
    server.shutdown();
}

#[test]
fn deadline_expired_queries_return_containing_degraded_bounds() {
    let _serial = fault_lock();
    let server = start(ServeConfig::default()).expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    // A zero deadline expires before any work can start: the one
    // deadline case that is an error, because no prefix exists to
    // anchor even a degraded bound to.
    let err = c
        .query(req(QueryKind::Posterior, MEDIUM, 1.0, 2.0, Some(0)))
        .expect("transport")
        .expect_err("zero deadline must be rejected");
    assert_eq!(err.code, "deadline_exceeded");

    // Interrupt the sweep mid-way: the reply must be degraded yet
    // still contain both the untimed reference bounds and a Monte-
    // Carlo estimate of the posterior. The 4 ms deadline creates the
    // request's cancellation token; the armed `cancel@2` injection
    // fires that same token at the second task boundary, so the
    // interruption is deterministic even on machines fast enough to
    // finish the budget-capped sweep inside the deadline.
    set_fault_plan(Some(FaultPlan {
        kind: FaultKind::Cancel,
        at: 2,
    }));
    let o = c
        .query(req(QueryKind::Posterior, MEDIUM, 1.0, 2.0, Some(4)))
        .expect("transport")
        .expect("deadline must degrade, not fail");
    set_fault_plan(None);
    assert!(o.degraded, "cancelled sweep reported a complete result");
    assert!(o.lo <= o.hi && o.completeness < 1.0);
    let a = Analyzer::from_source(MEDIUM, AnalysisOptions::default()).expect("model compiles");
    let (rlo, rhi) = a.posterior_probability(gubpi_interval::Interval::new(1.0, 2.0));
    assert!(
        o.lo <= rlo + 1e-12 && rhi <= o.hi + 1e-12,
        "degraded [{}, {}] must enclose the untimed [{rlo}, {rhi}]",
        o.lo,
        o.hi
    );
    let program = gubpi_lang::parse(MEDIUM).expect("model parses");
    let mut rng = StdRng::seed_from_u64(23);
    let ws = importance_sample(&program, 20_000, ImportanceOptions::default(), &mut rng);
    let mc = ws.probability_in(1.0, 2.0);
    assert!(
        o.lo - 0.01 <= mc && mc <= o.hi + 0.01,
        "degraded [{}, {}] excludes MC {mc}",
        o.lo,
        o.hi
    );
    server.shutdown();
}

#[test]
fn fault_matrix_leaves_daemon_serviceable() {
    let _serial = fault_lock();
    let server = start(ServeConfig::default()).expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let clean = c
        .query(req(QueryKind::Denotation, SMALL, 0.0, 0.5, None))
        .expect("transport")
        .expect("clean query");
    for kind in [FaultKind::Panic, FaultKind::Delay, FaultKind::Cancel] {
        for at in [0u64, 1, 3, 7] {
            set_fault_plan(Some(FaultPlan { kind, at }));
            let hit = c
                .query(req(QueryKind::Denotation, SMALL, 0.0, 0.5, Some(5_000)))
                .expect("transport survives every injected fault");
            set_fault_plan(None);
            match (kind, hit) {
                // A panic either fires inside this query (typed error)
                // or the boundary index was past the schedule (clean).
                (FaultKind::Panic, Err(e)) => assert_eq!(e.code, "worker_panicked"),
                (FaultKind::Panic, Ok(o)) => assert!(o.lo <= o.hi),
                // Delays perturb only the schedule: bit-identical.
                (FaultKind::Delay, Ok(o)) => {
                    assert_eq!(o.lo.to_bits(), clean.lo.to_bits(), "delay@{at} moved lo");
                    assert_eq!(o.hi.to_bits(), clean.hi.to_bits(), "delay@{at} moved hi");
                    assert!(!o.degraded);
                }
                (FaultKind::Delay, Err(e)) => panic!("delay@{at} errored: {e:?}"),
                // An adversarial cancel may degrade the result, but the
                // degraded enclosure must contain the clean one.
                (FaultKind::Cancel, Ok(o)) => {
                    assert!(o.lo <= o.hi);
                    assert!(
                        o.lo <= clean.lo + 1e-12 && clean.hi <= o.hi + 1e-12,
                        "cancel@{at}: [{}, {}] must enclose [{}, {}]",
                        o.lo,
                        o.hi,
                        clean.lo,
                        clean.hi
                    );
                }
                (FaultKind::Cancel, Err(e)) => panic!("cancel@{at} errored: {e:?}"),
            }
            // Whatever was injected, the daemon must serve the next
            // query cleanly and bit-identically.
            let after = c
                .query(req(QueryKind::Denotation, SMALL, 0.0, 0.5, None))
                .expect("transport")
                .expect("daemon serviceable after fault");
            assert_eq!(after.lo.to_bits(), clean.lo.to_bits());
            assert_eq!(after.hi.to_bits(), clean.hi.to_bits());
            assert!(!after.degraded);
        }
    }
    server.shutdown();
}

#[test]
fn degraded_results_are_never_cached() {
    let _serial = fault_lock();
    let cache = SharedQueryCache::new();
    let server = start_with_cache(ServeConfig::default(), cache.clone()).expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    // Cancel the sweep at the first region-chunk boundary (the 60 s
    // timeout only exists to give the request a token for `cancel@1`
    // to fire — wall-clock never expires): a deterministically
    // degraded result that must NOT be cached.
    set_fault_plan(Some(FaultPlan {
        kind: FaultKind::Cancel,
        at: 1,
    }));
    let degraded = c
        .query(req(QueryKind::Denotation, MEDIUM, 0.5, 1.5, Some(60_000)))
        .expect("transport")
        .expect("cancellation must degrade, not fail");
    set_fault_plan(None);
    assert!(
        degraded.degraded,
        "cancelled sweep reported a complete result"
    );

    // The identical untimed query through the same cache must return
    // the full-precision bound, bit-identical to a fresh analyzer.
    let full = c
        .query(req(QueryKind::Denotation, MEDIUM, 0.5, 1.5, None))
        .expect("transport")
        .expect("untimed query");
    assert!(!full.degraded, "stale degraded entry served from cache");
    assert_eq!(full.completeness, 1.0);
    let fresh = Analyzer::from_source(MEDIUM, AnalysisOptions::default())
        .expect("model compiles")
        .denotation_bounds(gubpi_interval::Interval::new(0.5, 1.5));
    assert_eq!(full.lo.to_bits(), fresh.0.to_bits());
    assert_eq!(full.hi.to_bits(), fresh.1.to_bits());
    server.shutdown();
}
