//! Soundness of the geometric tail enclosures for truncated recursions:
//! tail-tightened bounds must still contain high-precision Monte-Carlo
//! estimates at every path budget, and upper bounds must only improve
//! as the budget grows — with and without the `--no-tail` escape hatch.
//!
//! Two regimes are covered: plain geometric tails (the per-step
//! continue mass contracts below 1 on its own) and the ranked,
//! *eventually*-geometric tails the ranking-synthesis pass certifies
//! for data-guarded loops (countdown's bounded prefix, pedestrian's
//! escape-mass fallback), where the plain analysis is stuck at `c = 1`.

use gubpi_core::{AnalysisOptions, Analyzer, PathBoundOptions};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_interval::Interval;
use gubpi_lang::parse;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Plain geometric loop: per-unfolding contraction 1/2, no scores.
const GEOMETRIC: &str = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";

/// Scored unbounded loop: contraction 1/4 (coin 1/2 × score 1/2).
const SCORED_GEOMETRIC: &str =
    "let rec geo x = if sample <= 0.5 then x else (score(0.5); geo (x + 1)) in geo 0";

/// Data-guarded countdown: no probabilistic contraction at all (the
/// recursing branch continues with mass 1), but the argument strictly
/// decreases from an entry value ≤ 3, so the ranking pass certifies a
/// bounded prefix. Every run returns 0 with weight 1, so `Z = 1`
/// exactly.
const COUNTDOWN: &str =
    "let rec count x = if x <= 0 then 0 else count (x - 1) in count (2 + sample)";

/// The pedestrian model: data-guarded loop the static analysis cannot
/// contract below 1. The ranking pass rescues its ⊤ paths with the
/// single-call escape-mass certificate (terminating suffix mass ≤ 1),
/// so the upper bounds stay finite at every budget.
const PEDESTRIAN: &str = r#"
    let start = 3 * sample uniform(0, 1) in
    let rec walk x =
      if x <= 0 then 0 else
        let step = sample uniform(0, 1) in
        if sample <= 0.5 then step + walk (x + step)
        else step + walk (x - step)
    in
    let distance = walk start in
    observe distance from normal(1.1, 0.1);
    start"#;

fn analyzer(src: &str, unfold: u32, max_paths: usize, use_tail: bool) -> Analyzer {
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: unfold,
            max_paths,
            ..Default::default()
        },
        bounds: PathBoundOptions {
            use_tail,
            ..Default::default()
        },
        ..Default::default()
    };
    opts.bounds.splits = 8;
    Analyzer::from_source(src, opts).expect("model compiles")
}

/// Test threads get 2 MiB stacks; the pedestrian's deep recursive MC
/// runs need more in debug builds (same helper as
/// `tests/parallel_soundness.rs`).
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(f)
        .expect("spawn test worker")
        .join()
        .expect("test worker panicked");
}

fn posterior_mc(src: &str, u: Interval, samples: usize, seed: u64) -> f64 {
    let p = parse(src).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = importance_sample(&p, samples, ImportanceOptions::default(), &mut rng);
    ws.probability_in(u.lo(), u.hi())
}

#[test]
fn tail_enclosed_bounds_contain_monte_carlo_posteriors() {
    // Budgets from "almost everything is a ⊤ path" to "no ⊤ paths at
    // all": the tail-tightened bounds must bracket the Monte-Carlo
    // posterior at every point of that sweep.
    with_big_stack(|| {
        let zoo: &[(&str, &str, Interval, u32, usize)] = &[
            ("geometric", GEOMETRIC, Interval::new(-0.5, 1.5), 16, 60_000),
            (
                "scored-geometric",
                SCORED_GEOMETRIC,
                Interval::new(-0.5, 1.5),
                16,
                60_000,
            ),
            ("pedestrian", PEDESTRIAN, Interval::new(0.0, 1.0), 4, 20_000),
        ];
        for &(name, src, u, unfold, samples) in zoo {
            let mc = posterior_mc(src, u, samples, 0x7A11);
            for max_paths in [6usize, 24, 2_000] {
                let a = analyzer(src, unfold, max_paths, true);
                let (lo, hi) = a.posterior_probability(u);
                // MC slack: ±0.02 covers the sampling error comfortably
                // at these sample counts.
                assert!(
                    lo <= mc + 0.02 && mc <= hi + 0.02,
                    "{name} (budget {max_paths}): MC {mc} outside [{lo}, {hi}]"
                );
            }
        }
    });
}

#[test]
fn tail_enclosed_z_bounds_contain_the_exact_mass() {
    // Both geometric variants have closed-form normalising constants:
    // Σ_k (1/2)^{k+1} = 1 and Σ_k (1/2)^{k+1}(1/2)^k = 2/3. The
    // tail-tightened Z enclosure must contain them at every budget.
    for (name, src, z) in [
        ("geometric", GEOMETRIC, 1.0),
        ("scored-geometric", SCORED_GEOMETRIC, 2.0 / 3.0),
    ] {
        for max_paths in [6usize, 24, 2_000] {
            let a = analyzer(src, 16, max_paths, true);
            let (lo, hi) = a.normalizing_constant();
            assert!(
                lo <= z && z <= hi,
                "{name} (budget {max_paths}): Z {z} outside [{lo}, {hi}]"
            );
            assert!(
                hi.is_finite(),
                "{name} (budget {max_paths}): tails must keep Z finite"
            );
        }
    }
}

#[test]
fn upper_bounds_are_monotone_in_the_path_budget() {
    // Growing the path budget converts ⊤ paths into exact prefixes with
    // deeper (smaller-volume) remainders: the Z upper bound must never
    // get worse — with tails substituting the geometric remainder, and
    // without them (`--no-tail`, where it drops from +∞ to finite once
    // the last ⊤ path disappears).
    for use_tail in [true, false] {
        for (name, src) in [
            ("geometric", GEOMETRIC),
            ("scored-geometric", SCORED_GEOMETRIC),
        ] {
            let mut prev = f64::INFINITY;
            for max_paths in [6usize, 12, 48, 4_000] {
                let a = analyzer(src, 16, max_paths, use_tail);
                let (_, hi) = a.denotation_bounds(Interval::REAL);
                assert!(
                    hi <= prev,
                    "{name} (use_tail={use_tail}): hi {hi} worse than {prev} at budget {max_paths}"
                );
                prev = hi;
            }
            assert!(
                prev.is_finite(),
                "{name} (use_tail={use_tail}): generous budgets must end finite"
            );
        }
    }
}

#[test]
fn ranked_tails_keep_the_pedestrian_upper_bound_finite() {
    // The headline of the ranking pass: the pedestrian walk has no
    // geometric contraction (c = 1), so before ranked tails its Z upper
    // bound was +∞ at any ⊤-producing budget. The escape-mass
    // certificate bounds the terminating suffix mass by 1, and the
    // bound must stay finite — and sound — across the budget sweep.
    with_big_stack(|| {
        let mc = posterior_mc(PEDESTRIAN, Interval::new(0.0, 1.0), 20_000, 0x7A11);
        for max_paths in [6usize, 24, 2_000] {
            let on = analyzer(PEDESTRIAN, 4, max_paths, true);
            let off = analyzer(PEDESTRIAN, 4, max_paths, false);
            let r = on.exec_report();
            assert_eq!(
                r.ranked_tail_paths, r.budget_truncated_paths,
                "budget {max_paths}: every pedestrian ⊤ path should carry a ranked tail"
            );
            let (lo_on, hi_on) = on.denotation_bounds(Interval::REAL);
            let (lo_off, hi_off) = off.denotation_bounds(Interval::REAL);
            assert_eq!(
                lo_on.to_bits(),
                lo_off.to_bits(),
                "budget {max_paths}: ranked tails must not move lower bounds"
            );
            assert!(
                hi_on.is_finite(),
                "budget {max_paths}: ranked tail must keep Z's upper bound finite, got {hi_on}"
            );
            if r.budget_truncated_paths > 0 {
                assert_eq!(
                    hi_off,
                    f64::INFINITY,
                    "budget {max_paths}: --no-tail must revert to the bare ⊤"
                );
            }
            // Posterior probabilities still bracket the MC estimate.
            let (plo, phi) = on.posterior_probability(Interval::new(0.0, 1.0));
            assert!(
                plo <= mc + 0.02 && mc <= phi + 0.02,
                "budget {max_paths}: MC {mc} outside [{plo}, {phi}]"
            );
        }
    });
}

#[test]
fn countdown_bounds_pin_the_exact_normalising_constant() {
    // The countdown loop terminates deterministically (bounded-prefix
    // certificate), returning 0 with weight 1 on every run: Z = 1
    // exactly. The enclosure must contain it at every budget, and the
    // ranked tail must keep the upper bound finite even when the path
    // budget cuts the loop short.
    for max_paths in [2usize, 6, 24, 2_000] {
        let a = analyzer(COUNTDOWN, 16, max_paths, true);
        let (lo, hi) = a.normalizing_constant();
        assert!(
            lo <= 1.0 && 1.0 <= hi,
            "budget {max_paths}: Z = 1 outside [{lo}, {hi}]"
        );
        assert!(
            hi.is_finite(),
            "budget {max_paths}: countdown upper bound must stay finite, got {hi}"
        );
    }
    // At a generous budget the loop is fully explored and the bounds
    // collapse to (essentially) the exact value.
    let a = analyzer(COUNTDOWN, 16, 2_000, true);
    let (lo, hi) = a.normalizing_constant();
    assert!(hi - lo < 1e-6, "fully explored countdown: [{lo}, {hi}]");
}

#[test]
fn ranked_upper_bounds_are_monotone_for_the_pedestrian() {
    // Budget-monotonicity for the ranked (escape-mass) tail: its
    // multiplier is constant across cut depths, so deeper cuts only
    // shrink the continuation weight and the Z upper bound must never
    // get worse as the path budget grows.
    with_big_stack(|| {
        let mut prev = f64::INFINITY;
        for max_paths in [6usize, 12, 48, 500] {
            let a = analyzer(PEDESTRIAN, 4, max_paths, true);
            let (_, hi) = a.denotation_bounds(Interval::REAL);
            assert!(
                hi <= prev,
                "pedestrian: hi {hi} worse than {prev} at budget {max_paths}"
            );
            assert!(hi.is_finite(), "budget {max_paths}: hi must be finite");
            prev = hi;
        }
    });
}

#[test]
fn no_tail_mode_reverts_to_bare_top_and_identical_lower_bounds() {
    // The `--no-tail` contract: at a ⊤-producing budget the upper bound
    // reverts to +∞ (pre-enclosure behaviour) while lower bounds agree
    // bit for bit with the tail-enabled run.
    for src in [GEOMETRIC, SCORED_GEOMETRIC] {
        let on = analyzer(src, 16, 6, true);
        let off = analyzer(src, 16, 6, false);
        assert!(on.exec_report().tail_enclosed_paths > 0);
        for u in [Interval::REAL, Interval::new(-0.5, 1.5)] {
            let (lo_on, hi_on) = on.denotation_bounds(u);
            let (lo_off, hi_off) = off.denotation_bounds(u);
            assert_eq!(lo_on.to_bits(), lo_off.to_bits());
            assert!(hi_on.is_finite());
            assert_eq!(hi_off, f64::INFINITY);
        }
    }
}
