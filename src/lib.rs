//! GuBPI — *Guaranteed bounds for posterior inference in universal
//! probabilistic programming* (Beutner, Ong & Zaiser, PLDI 2022).
//!
//! This facade crate re-exports every layer of the workspace under one
//! roof so downstream users (and the top-level integration tests and
//! examples) can depend on a single crate. The layers, bottom to top:
//!
//! * [`pool`] — the persistent work-stealing executor;
//! * [`interval`] — interval arithmetic, boxes, the bound lattice;
//! * [`dist`] — validated distributions and special functions;
//! * [`lang`] — the SPCF front end (lexer, parser, types, primitives);
//! * [`types`] — the weight-aware interval type system;
//! * [`polytope`] — H-polytopes and volume computation;
//! * [`symbolic`] — symbolic execution producing path constraints;
//! * [`semantics`] — concrete and interval trace semantics;
//! * [`core`] — the analyzer orchestrating bounds end to end;
//! * [`inference`] — sampling baselines (IS, MH, HMC) and SBC.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use gubpi_core as core;
pub use gubpi_dist as dist;
pub use gubpi_inference as inference;
pub use gubpi_interval as interval;
pub use gubpi_lang as lang;
pub use gubpi_polytope as polytope;
pub use gubpi_pool as pool;
pub use gubpi_semantics as semantics;
pub use gubpi_symbolic as symbolic;
pub use gubpi_types as types;
