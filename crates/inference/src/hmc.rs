//! Hamiltonian Monte Carlo over a fixed-length truncated trace.
//!
//! **This sampler is deliberately faithful to the failure mode of Fig. 1
//! of the GuBPI paper.** Universal programs draw a *variable* number of
//! samples; HMC needs a fixed-dimensional state space. Like the Pyro
//! setup in Appendix F.1, we embed the program into `[0, 1]^N` for a
//! fixed `N`: the program reads a prefix of the state, surplus
//! coordinates are padding, and states whose control path would need more
//! than `N` draws are rejected. The state is transformed to `R^N` by the
//! logit map (with its Jacobian), and leapfrog integration uses central
//! finite-difference gradients.
//!
//! On fixed-dimension models this is a perfectly good HMC; on
//! nonparametric models (the pedestrian) the embedding biases the
//! posterior — exactly the wrong histogram that GuBPI's guaranteed bounds
//! expose.

use gubpi_lang::Program;
use gubpi_semantics::bigstep::{run_on_trace_prefix_with, EvalOptions};
use rand::Rng;
use rand::RngExt;

/// Options for trace-space HMC.
#[derive(Copy, Clone, Debug)]
pub struct HmcOptions {
    /// The fixed trace dimension `N`.
    pub dim: usize,
    /// Leapfrog step size.
    pub step_size: f64,
    /// Leapfrog steps per proposal.
    pub leapfrog_steps: usize,
    /// Burn-in proposals.
    pub burn_in: usize,
    /// Evaluator limits.
    pub eval: EvalOptions,
}

impl Default for HmcOptions {
    fn default() -> HmcOptions {
        HmcOptions {
            dim: 16,
            step_size: 0.1,
            leapfrog_steps: 10,
            burn_in: 200,
            eval: EvalOptions {
                fuel: 1_000_000,
                max_depth: 700,
            },
        }
    }
}

/// An HMC chain.
#[derive(Clone, Debug, Default)]
pub struct HmcChain {
    /// Kept program return values.
    pub values: Vec<f64>,
    /// Acceptance rate.
    pub acceptance_rate: f64,
}

/// Log target over unconstrained `z ∈ R^N`:
/// `log wt_P(σ(z))` plus the logit Jacobian `Σ log σ(zᵢ)(1−σ(zᵢ))`.
fn log_target(program: &Program, z: &[f64], opts: &HmcOptions) -> (f64, Option<f64>) {
    let s: Vec<f64> = z.iter().map(|&zi| sigmoid(zi)).collect();
    match run_on_trace_prefix_with(program, &s, opts.eval) {
        Ok((o, consumed)) => {
            // Jacobian only over coordinates the program actually uses;
            // padding dims keep their own (cancelling) prior.
            let mut lj = 0.0;
            for &si in &s[..consumed] {
                lj += (si * (1.0 - si)).ln();
            }
            (o.log_weight + lj, Some(o.value))
        }
        Err(_) => (f64::NEG_INFINITY, None),
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn grad_log_target(program: &Program, z: &[f64], opts: &HmcOptions) -> Vec<f64> {
    let h = 1e-4;
    let mut g = vec![0.0; z.len()];
    let mut zp = z.to_vec();
    for i in 0..z.len() {
        zp[i] = z[i] + h;
        let (fp, _) = log_target(program, &zp, opts);
        zp[i] = z[i] - h;
        let (fm, _) = log_target(program, &zp, opts);
        zp[i] = z[i];
        g[i] = if fp.is_finite() && fm.is_finite() {
            (fp - fm) / (2.0 * h)
        } else {
            0.0
        };
    }
    g
}

/// Runs HMC for `n` kept samples.
pub fn hmc_sample<R: Rng>(program: &Program, n: usize, opts: HmcOptions, rng: &mut R) -> HmcChain {
    // Initialise from forward runs that fit within the embedding.
    let mut z: Vec<f64> = loop {
        let cand: Vec<f64> = (0..opts.dim)
            .map(|_| {
                let u: f64 = rng.random::<f64>().clamp(1e-9, 1.0 - 1e-9);
                (u / (1.0 - u)).ln()
            })
            .collect();
        let (lt, _) = log_target(program, &cand, &opts);
        if lt.is_finite() {
            break cand;
        }
    };

    let mut chain = HmcChain::default();
    let mut accepted = 0usize;
    let total = opts.burn_in + n;
    for it in 0..total {
        let p0: Vec<f64> = (0..opts.dim).map(|_| gauss(rng)).collect();
        let (lt0, _) = log_target(program, &z, &opts);
        let h0 = -lt0 + 0.5 * p0.iter().map(|p| p * p).sum::<f64>();

        // Leapfrog.
        let mut zq = z.clone();
        let mut p = p0.clone();
        let mut g = grad_log_target(program, &zq, &opts);
        for _ in 0..opts.leapfrog_steps {
            for i in 0..opts.dim {
                p[i] += 0.5 * opts.step_size * g[i];
            }
            for i in 0..opts.dim {
                zq[i] += opts.step_size * p[i];
            }
            g = grad_log_target(program, &zq, &opts);
            for i in 0..opts.dim {
                p[i] += 0.5 * opts.step_size * g[i];
            }
        }

        let (lt1, val1) = log_target(program, &zq, &opts);
        let h1 = -lt1 + 0.5 * p.iter().map(|q| q * q).sum::<f64>();
        let accept = lt1.is_finite() && (h0 - h1 >= 0.0 || rng.random::<f64>().ln() < h0 - h1);
        if accept {
            z = zq;
            accepted += 1;
            let _ = val1;
        }
        if it >= opts.burn_in {
            let (_, v) = log_target(program, &z, &opts);
            if let Some(v) = v {
                chain.values.push(v);
            }
        }
    }
    chain.acceptance_rate = accepted as f64 / total as f64;
    chain
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hmc_is_correct_on_fixed_dimension_models() {
        // Posterior density ∝ pdf_N(0.7, 0.2)(x) restricted to [0,1];
        // mean ≈ 0.7 (truncation effect tiny).
        let p = parse("let x = sample in observe x from normal(0.7, 0.2); x").unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let opts = HmcOptions {
            dim: 1,
            step_size: 0.25,
            leapfrog_steps: 8,
            burn_in: 200,
            ..Default::default()
        };
        let chain = hmc_sample(&p, 1_500, opts, &mut rng);
        assert!(
            chain.acceptance_rate > 0.4,
            "rate={}",
            chain.acceptance_rate
        );
        let mean: f64 = chain.values.iter().sum::<f64>() / chain.values.len() as f64;
        assert!((mean - 0.7).abs() < 0.08, "mean={mean}");
    }

    #[test]
    fn hmc_runs_on_nonparametric_models_without_crashing() {
        // The pedestrian-style model; correctness is NOT expected here —
        // that is the point of Fig. 1. Just check mechanics.
        let p = parse(
            "let rec walk x =
               if x <= 0 then 0 else walk (x - sample)
             in
             let d = walk (sample) in
             observe d from normal(0.5, 0.2);
             d",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let opts = HmcOptions {
            dim: 8,
            burn_in: 20,
            ..Default::default()
        };
        let chain = hmc_sample(&p, 50, opts, &mut rng);
        assert!(!chain.values.is_empty());
    }
}
