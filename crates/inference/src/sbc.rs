//! Simulation-based calibration (§7.4, Appendix F.3).
//!
//! SBC validates a posterior sampler against a generative model: draw
//! `θ ~ prior`, synthesise data `y | θ`, sample `θ₁…θ_L` from the
//! sampler's posterior given `y`, and record the rank of `θ` among the
//! `θᵢ`. If the sampler is exact, ranks are uniform on `{0, …, L}`; a
//! χ² uniformity score flags miscalibration.

use gubpi_dist::math::gamma_q;
use rand::Rng;
use rand::RngExt;

/// SBC configuration.
#[derive(Copy, Clone, Debug)]
pub struct SbcConfig {
    /// Number of simulations `N` (paper suggests `N = 10·L`).
    pub simulations: usize,
    /// Posterior samples per simulation `L` (paper: a power of two minus
    /// one, e.g. 63).
    pub posterior_samples: usize,
    /// Histogram bins for the χ² statistic.
    pub bins: usize,
}

impl Default for SbcConfig {
    fn default() -> SbcConfig {
        SbcConfig {
            simulations: 630,
            posterior_samples: 63,
            bins: 16,
        }
    }
}

/// The result of an SBC run.
#[derive(Clone, Debug)]
pub struct SbcResult {
    /// Rank histogram counts (`bins` cells over `{0, …, L}`).
    pub rank_counts: Vec<usize>,
    /// χ² statistic against the uniform distribution.
    pub chi2: f64,
    /// Asymptotic p-value `P(X²_{bins−1} ≥ chi2)`.
    pub p_value: f64,
}

impl SbcResult {
    /// Convenience: calibration rejected at the 0.005 level (strongly
    /// non-uniform ranks)?
    pub fn is_miscalibrated(&self) -> bool {
        self.p_value < 0.005
    }
}

/// Runs SBC.
///
/// * `prior` draws `θ`;
/// * `simulate` draws synthetic data `y | θ`;
/// * `posterior` produces `L` posterior samples of `θ` given `y`.
pub fn run_sbc<R: Rng>(
    mut prior: impl FnMut(&mut R) -> f64,
    mut simulate: impl FnMut(f64, &mut R) -> f64,
    mut posterior: impl FnMut(f64, usize, &mut R) -> Vec<f64>,
    cfg: SbcConfig,
    rng: &mut R,
) -> SbcResult {
    let l = cfg.posterior_samples;
    let mut counts = vec![0usize; cfg.bins];
    let mut done = 0usize;
    while done < cfg.simulations {
        let theta = prior(rng);
        let y = simulate(theta, rng);
        let post = posterior(y, l, rng);
        if post.len() < l {
            continue; // sampler failed; retry with a fresh simulation
        }
        // Rank of θ among the posterior samples, uniform tie-breaking.
        let mut rank = 0usize;
        let mut ties = 0usize;
        for &p in &post[..l] {
            if p < theta {
                rank += 1;
            } else if p == theta {
                ties += 1;
            }
        }
        if ties > 0 {
            rank += rng.random_range(0..=ties);
        }
        // rank ∈ {0, …, L}; map onto bins.
        let bin = (rank * cfg.bins) / (l + 1);
        counts[bin.min(cfg.bins - 1)] += 1;
        done += 1;
    }
    let expected = cfg.simulations as f64 / cfg.bins as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // p = Q(k/2, chi2/2) for k = bins − 1 degrees of freedom.
    let dof = (cfg.bins - 1) as f64;
    let p_value = gamma_q(dof / 2.0, chi2 / 2.0);
    SbcResult {
        rank_counts: counts,
        chi2,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Conjugate toy model: θ ~ U(0,1), y | θ ~ Bernoulli-ish noisy obs.
    /// An exact posterior sampler must calibrate; a broken one must not.
    fn noisy_obs(theta: f64, rng: &mut StdRng) -> f64 {
        // y = θ + uniform noise on [−0.1, 0.1]
        theta + (rng.random::<f64>() - 0.5) * 0.2
    }

    /// Exact posterior for the model above: θ | y ~ U(y−0.1, y+0.1) ∩ [0,1].
    fn exact_posterior(y: f64, l: usize, rng: &mut StdRng) -> Vec<f64> {
        let lo = (y - 0.1).max(0.0);
        let hi = (y + 0.1).min(1.0);
        (0..l)
            .map(|_| lo + rng.random::<f64>() * (hi - lo))
            .collect()
    }

    /// A *wrong* sampler: ignores the data half the time.
    fn broken_posterior(y: f64, l: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..l)
            .map(|_| {
                let lo = (y - 0.02).max(0.0);
                let hi = (y + 0.02).min(1.0);
                lo + rng.random::<f64>() * (hi - lo)
            })
            .collect()
    }

    #[test]
    fn exact_sampler_calibrates() {
        let mut rng = StdRng::seed_from_u64(17);
        let r = run_sbc(
            |rng| rng.random::<f64>(),
            noisy_obs,
            exact_posterior,
            SbcConfig::default(),
            &mut rng,
        );
        assert!(!r.is_miscalibrated(), "chi2={} p={}", r.chi2, r.p_value);
        assert_eq!(r.rank_counts.iter().sum::<usize>(), 630);
    }

    #[test]
    fn broken_sampler_is_flagged() {
        let mut rng = StdRng::seed_from_u64(19);
        let r = run_sbc(
            |rng| rng.random::<f64>(),
            noisy_obs,
            broken_posterior,
            SbcConfig::default(),
            &mut rng,
        );
        // Over-concentrated posteriors push ranks to the extremes — the
        // U-shape of Fig. 11.
        assert!(r.is_miscalibrated(), "chi2={} p={}", r.chi2, r.p_value);
        let first = r.rank_counts[0] + r.rank_counts.last().unwrap();
        let middle = r.rank_counts[r.rank_counts.len() / 2];
        assert!(
            first > middle * 2,
            "expected U-shape, got {:?}",
            r.rank_counts
        );
    }
}
