//! Likelihood-weighted importance sampling.

use gubpi_lang::Program;
use gubpi_semantics::bigstep::{sample_run_with, EvalOptions};
use rand::Rng;

/// Options for importance sampling.
#[derive(Copy, Clone, Debug)]
pub struct ImportanceOptions {
    /// Evaluator limits per run.
    pub eval: EvalOptions,
}

impl Default for ImportanceOptions {
    fn default() -> ImportanceOptions {
        ImportanceOptions {
            eval: EvalOptions {
                fuel: 1_000_000,
                max_depth: 700,
            },
        }
    }
}

/// A set of weighted posterior samples.
#[derive(Clone, Debug, Default)]
pub struct WeightedSamples {
    /// Returned values.
    pub values: Vec<f64>,
    /// Log weights (aligned with `values`).
    pub log_weights: Vec<f64>,
    /// Runs that failed to terminate within limits (their prior mass is
    /// treated as rejected — the same truncation every sampler applies to
    /// non-AST programs).
    pub rejected: usize,
}

impl WeightedSamples {
    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Self-normalised weighted posterior mean.
    pub fn weighted_mean(&self) -> f64 {
        let max_lw = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if max_lw == f64::NEG_INFINITY {
            return f64::NAN;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (v, lw) in self.values.iter().zip(&self.log_weights) {
            let w = (lw - max_lw).exp();
            num += w * v;
            den += w;
        }
        num / den
    }

    /// Self-normalised posterior probability of `value ∈ [lo, hi]`.
    pub fn probability_in(&self, lo: f64, hi: f64) -> f64 {
        let max_lw = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if max_lw == f64::NEG_INFINITY {
            return f64::NAN;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (v, lw) in self.values.iter().zip(&self.log_weights) {
            let w = (lw - max_lw).exp();
            if *v >= lo && *v <= hi {
                num += w;
            }
            den += w;
        }
        num / den
    }

    /// Weighted histogram (normalised to total mass 1) over `[lo, hi]`
    /// with `bins` bins; returns per-bin masses.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Vec<f64> {
        let mut h = vec![0.0f64; bins];
        let max_lw = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if max_lw == f64::NEG_INFINITY {
            return h;
        }
        let mut total = 0.0;
        for (v, lw) in self.values.iter().zip(&self.log_weights) {
            let w = (lw - max_lw).exp();
            total += w;
            if *v >= lo && *v < hi {
                let b = (((v - lo) / (hi - lo)) * bins as f64) as usize;
                h[b.min(bins - 1)] += w;
            }
        }
        if total > 0.0 {
            for x in &mut h {
                *x /= total;
            }
        }
        h
    }

    /// The (unnormalised) evidence estimate `Ẑ = mean of weights`,
    /// counting rejected runs as weight 0.
    pub fn evidence_estimate(&self) -> f64 {
        let n = self.len() + self.rejected;
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = self.log_weights.iter().map(|lw| lw.exp()).sum();
        sum / n as f64
    }
}

/// Draws `n` likelihood-weighted samples by running the program forward.
pub fn importance_sample<R: Rng>(
    program: &Program,
    n: usize,
    opts: ImportanceOptions,
    rng: &mut R,
) -> WeightedSamples {
    let mut out = WeightedSamples::default();
    for _ in 0..n {
        match sample_run_with(program, rng, opts.eval) {
            Ok(o) => {
                out.values.push(o.value);
                out.log_weights.push(o.log_weight);
            }
            Err(_) => out.rejected += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unweighted_uniform_mean() {
        let p = parse("sample").unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let s = importance_sample(&p, 20_000, ImportanceOptions::default(), &mut rng);
        assert_eq!(s.rejected, 0);
        assert!((s.weighted_mean() - 0.5).abs() < 0.02);
        assert!((s.probability_in(0.0, 0.25) - 0.25).abs() < 0.02);
    }

    #[test]
    fn scores_tilt_the_posterior() {
        // density ∝ x on [0,1]: mean 2/3, P(X ≤ 1/2) = 1/4.
        let p = parse("let x = sample in score(x); x").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let s = importance_sample(&p, 20_000, ImportanceOptions::default(), &mut rng);
        assert!((s.weighted_mean() - 2.0 / 3.0).abs() < 0.02);
        assert!((s.probability_in(0.0, 0.5) - 0.25).abs() < 0.02);
        // evidence = ∫ x dx = 1/2
        assert!((s.evidence_estimate() - 0.5).abs() < 0.02);
    }

    #[test]
    fn histogram_masses_sum_to_one() {
        let p = parse("sample").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = importance_sample(&p, 5_000, ImportanceOptions::default(), &mut rng);
        let h = s.histogram(0.0, 1.0, 10);
        let total: f64 = h.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for b in h {
            assert!((b - 0.1).abs() < 0.05);
        }
    }

    #[test]
    fn invalid_dist_params_give_zero_weight_runs_instead_of_panicking() {
        // σ = sample − 0.5 is negative with probability 1/2: those runs
        // terminate with weight 0 (density 0), not a process abort, and
        // they contribute nothing to the posterior.
        let p = parse("observe 0.4 from normal(0, sample - 0.5); sample").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let s = importance_sample(&p, 2_000, ImportanceOptions::default(), &mut rng);
        assert_eq!(s.rejected, 0);
        let zero_weight = s
            .log_weights
            .iter()
            .filter(|lw| **lw == f64::NEG_INFINITY)
            .count();
        assert!(zero_weight > 500, "zero-weight runs: {zero_weight}");
        assert!(zero_weight < 2_000, "some σ draws are valid");
        // Posterior mass concentrates on samples > 0.5 (valid σ only).
        let mean = s.weighted_mean();
        assert!((0.5..=1.0).contains(&mean), "mean = {mean}");
        // Invalid beta shapes zero out every run: the evidence is 0.
        let b = parse("observe 0.5 from beta(0 - sample, 1); 1").unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let s = importance_sample(&b, 100, ImportanceOptions::default(), &mut rng);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.evidence_estimate(), 0.0);
    }

    #[test]
    fn nonterminating_runs_are_rejected_not_hung() {
        let p = parse("let rec spin x = spin (x + sample) in spin 0").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let opts = ImportanceOptions {
            eval: EvalOptions {
                fuel: 5_000,
                max_depth: 200,
            },
        };
        let s = importance_sample(&p, 10, opts, &mut rng);
        assert_eq!(s.rejected, 10);
        assert!(s.is_empty());
        assert!(s.weighted_mean().is_nan());
    }
}
