//! Stochastic inference baselines for SPCF programs.
//!
//! The GuBPI paper's evaluation compares its guaranteed bounds against
//! the output of stochastic inference engines (Fig. 1/7, §7.4). This
//! crate implements those baselines on our own trace semantics:
//!
//! * [`importance`] — likelihood-weighted importance sampling (the
//!   algorithm behind Anglican's IS in Fig. 1);
//! * [`mh`] — single-site ("lightweight") Metropolis–Hastings over
//!   traces;
//! * [`hmc`] — Hamiltonian Monte Carlo with leapfrog integration and
//!   finite-difference gradients over a **fixed-length truncated trace**.
//!   This deliberately repeats Pyro's modelling error on nonparametric
//!   models (treating a trans-dimensional program as fixed-dimensional),
//!   reproducing the *wrong* histogram of Fig. 1 that GuBPI's bounds then
//!   refute;
//! * [`sbc`] — simulation-based calibration (rank-statistic uniformity,
//!   §7.4 / Appendix F.3) with a χ² uniformity score;
//! * [`diagnostics`] — effective sample size and autocorrelation.
//!
//! # Example
//!
//! ```
//! use gubpi_inference::importance::{importance_sample, ImportanceOptions};
//! use gubpi_lang::parse;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let p = parse("let x = sample in score(x); x").unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let samples = importance_sample(&p, 4_000, ImportanceOptions::default(), &mut rng);
//! let mean = samples.weighted_mean();
//! assert!((mean - 2.0 / 3.0).abs() < 0.05); // E[x | density 2x] = 2/3
//! ```

pub mod diagnostics;
pub mod hmc;
pub mod importance;
pub mod mh;
pub mod sbc;

pub use importance::{importance_sample, ImportanceOptions, WeightedSamples};
