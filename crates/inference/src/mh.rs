//! Single-site ("lightweight") Metropolis–Hastings over traces.
//!
//! The classic trace-MH of Wingate et al.: propose a change to one
//! uniform draw of the current trace (resampling it uniformly), rerun the
//! program on the modified trace, and accept with probability
//! `min(1, w' · n / (w · n'))` where `w` is the execution weight and `n`
//! the trace length (the length ratio accounts for dimension changes
//! under the uniform base measure on `⋃ [0,1]^n`).

use gubpi_lang::Program;
use gubpi_semantics::bigstep::{run_on_trace_with, EvalOptions, Outcome};
use rand::Rng;
use rand::RngExt;

/// Options for trace MH.
#[derive(Copy, Clone, Debug)]
pub struct MhOptions {
    /// Evaluator limits per run.
    pub eval: EvalOptions,
    /// Burn-in iterations discarded from the front.
    pub burn_in: usize,
    /// Keep every `thin`-th sample.
    pub thin: usize,
}

impl Default for MhOptions {
    fn default() -> MhOptions {
        MhOptions {
            eval: EvalOptions {
                fuel: 1_000_000,
                max_depth: 700,
            },
            burn_in: 500,
            thin: 1,
        }
    }
}

/// The result of an MH run.
#[derive(Clone, Debug, Default)]
pub struct MhChain {
    /// Kept posterior samples (program return values).
    pub values: Vec<f64>,
    /// Acceptance rate over all proposals.
    pub acceptance_rate: f64,
}

/// Runs single-site MH for `n` kept samples.
///
/// Initialises by forward simulation until a positive-weight trace is
/// found (likelihood weighting provides the initial state).
pub fn mh_sample<R: Rng>(program: &Program, n: usize, opts: MhOptions, rng: &mut R) -> MhChain {
    // Initial state by forward runs.
    let mut current: Option<Outcome> = None;
    for _ in 0..10_000 {
        if let Ok(o) = gubpi_semantics::bigstep::sample_run_with(program, rng, opts.eval) {
            if o.log_weight > f64::NEG_INFINITY {
                current = Some(o);
                break;
            }
        }
    }
    let Some(mut current) = current else {
        return MhChain::default();
    };

    let total_iters = opts.burn_in + n * opts.thin.max(1);
    let mut accepted = 0usize;
    let mut values = Vec::with_capacity(n);
    for it in 0..total_iters {
        let proposal = propose(program, &current, opts, rng);
        if let Some(p) = proposal {
            // Acceptance in log space; the n/n' factor corrects for
            // trans-dimensional moves under the trace base measure.
            let log_alpha = p.log_weight - current.log_weight + (current.trace.len() as f64).ln()
                - (p.trace.len().max(1) as f64).ln();
            if log_alpha >= 0.0 || rng.random::<f64>().ln() < log_alpha {
                current = p;
                accepted += 1;
            }
        }
        if it >= opts.burn_in && (it - opts.burn_in).is_multiple_of(opts.thin.max(1)) {
            values.push(current.value);
        }
    }
    MhChain {
        values,
        acceptance_rate: accepted as f64 / total_iters as f64,
    }
}

/// Single-site proposal: resample one position; keep the prefix, let the
/// program regenerate the suffix by fresh draws when it runs longer.
fn propose<R: Rng>(
    program: &Program,
    current: &Outcome,
    opts: MhOptions,
    rng: &mut R,
) -> Option<Outcome> {
    let len = current.trace.len();
    if len == 0 {
        return None;
    }
    let site = rng.random_range(0..len);
    let mut base = current.trace.clone();
    base[site] = rng.random::<f64>();
    // Rerun; when the new control path needs more samples, extend with
    // fresh randomness; when it needs fewer, truncate.
    for _ in 0..64 {
        match run_on_trace_with(program, &base, opts.eval) {
            Ok(o) => return Some(o),
            Err(gubpi_semantics::bigstep::EvalError::TraceExhausted) => {
                base.push(rng.random::<f64>());
            }
            Err(gubpi_semantics::bigstep::EvalError::TraceNotConsumed) => {
                base.pop();
            }
            Err(_) => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mh_recovers_uniform() {
        let p = parse("sample").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let chain = mh_sample(&p, 4_000, MhOptions::default(), &mut rng);
        let mean: f64 = chain.values.iter().sum::<f64>() / chain.values.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
        assert!(chain.acceptance_rate > 0.5);
    }

    #[test]
    fn mh_tracks_tilted_density() {
        // density ∝ x: mean 2/3.
        let p = parse("let x = sample in score(x); x").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let chain = mh_sample(&p, 6_000, MhOptions::default(), &mut rng);
        let mean: f64 = chain.values.iter().sum::<f64>() / chain.values.len() as f64;
        assert!((mean - 2.0 / 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn mh_handles_transdimensional_models() {
        // Geometric number of draws; P(k = 0) = 1/2.
        let p = parse("let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0").unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let chain = mh_sample(&p, 6_000, MhOptions::default(), &mut rng);
        let zeros = chain.values.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / chain.values.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "frac={frac}");
    }
}
