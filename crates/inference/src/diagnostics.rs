//! Chain diagnostics: autocorrelation, effective sample size and the
//! Gelman–Rubin convergence statistic.

/// The Gelman–Rubin potential scale reduction factor `R̂` over several
/// chains of equal length: values well above 1 indicate that the chains
/// have not mixed (the standard MCMC convergence check referenced by the
/// paper's discussion of Fig. 1).
///
/// Returns `NaN` for fewer than two chains or chains shorter than 4.
pub fn gelman_rubin(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    if m < 2 {
        return f64::NAN;
    }
    let n = chains.iter().map(Vec::len).min().unwrap_or(0);
    if n < 4 {
        return f64::NAN;
    }
    let means: Vec<f64> = chains.iter().map(|c| mean(&c[..n])).collect();
    let grand = mean(&means);
    // Between-chain variance B/n and within-chain variance W.
    let b_over_n = means
        .iter()
        .map(|mu| (mu - grand) * (mu - grand))
        .sum::<f64>()
        / (m as f64 - 1.0);
    let w = chains
        .iter()
        .map(|c| {
            let mu = mean(&c[..n]);
            c[..n].iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / (n as f64 - 1.0)
        })
        .sum::<f64>()
        / m as f64;
    if w <= 0.0 {
        return f64::NAN;
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b_over_n;
    (var_plus / w).sqrt()
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (denominator `n`).
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    mean(&xs.iter().map(|x| (x - m) * (x - m)).collect::<Vec<_>>())
}

/// Autocorrelation of the chain at lag `k` (1 at lag 0; 0 for
/// degenerate chains).
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if k >= n {
        return 0.0;
    }
    let m = mean(xs);
    let var = variance(xs);
    if var == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n - k {
        acc += (xs[i] - m) * (xs[i + k] - m);
    }
    acc / (n as f64 * var)
}

/// Effective sample size via the initial-positive-sequence estimator:
/// `ESS = n / (1 + 2 Σ ρ_k)` truncated at the first non-positive
/// autocorrelation.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return n as f64;
    }
    let mut rho_sum = 0.0;
    for k in 1..n / 2 {
        let r = autocorrelation(xs, k);
        if r <= 0.0 {
            break;
        }
        rho_sum += r;
    }
    n as f64 / (1.0 + 2.0 * rho_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_chain_has_full_ess() {
        // A deterministic low-discrepancy sequence behaves like iid noise
        // for this estimator.
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64) / 1000.0)
            .collect();
        let ess = effective_sample_size(&xs);
        assert!(ess > 500.0, "ess={ess}");
        assert!((mean(&xs) - 0.5).abs() < 0.05);
    }

    #[test]
    fn perfectly_correlated_chain_has_tiny_ess() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) / 1000.0).collect(); // a ramp
        let ess = effective_sample_size(&xs);
        assert!(ess < 50.0, "ess={ess}");
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    fn autocorrelation_at_lag_zero_is_one() {
        let xs = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
        assert_eq!(autocorrelation(&xs, 10), 0.0);
    }

    #[test]
    fn degenerate_chains() {
        let xs = [2.0; 10];
        assert_eq!(variance(&xs), 0.0);
        assert_eq!(autocorrelation(&xs, 1), 0.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn gelman_rubin_flags_unmixed_chains() {
        // Two chains exploring the same distribution: R̂ ≈ 1.
        let noise = |seed: u64, shift: f64| -> Vec<f64> {
            (0..500)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed);
                    shift + ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
                })
                .collect()
        };
        let mixed = gelman_rubin(&[noise(1, 0.0), noise(2, 0.0), noise(3, 0.0)]);
        assert!((mixed - 1.0).abs() < 0.05, "R̂ = {mixed}");
        // Chains stuck in different modes: R̂ ≫ 1.
        let stuck = gelman_rubin(&[noise(1, -2.0), noise(2, 2.0)]);
        assert!(stuck > 2.0, "R̂ = {stuck}");
        // Degenerate inputs.
        assert!(gelman_rubin(&[noise(1, 0.0)]).is_nan());
        assert!(gelman_rubin(&[vec![1.0], vec![2.0]]).is_nan());
    }
}
