//! Cooperative cancellation and deadline tokens.
//!
//! A [`CancelToken`] is the single signal threaded through the whole
//! execution stack — scheduler chunk loops, symbolic frontier
//! evaluation, adaptive-refinement rounds — so a deadline or an
//! explicit cancel turns a long-running query into an **anytime sound
//! result** instead of a torn bound or a kill. Cancellation is purely
//! cooperative: work already claimed always runs to completion (the
//! scheduler's monotone-cursor soundness argument depends on it), and
//! checkpoints only decide whether to claim *more*.
//!
//! Tokens are cheap to clone (one `Arc`) and safe to poll from any
//! thread. Two polling tiers keep the hot paths hot:
//!
//! * [`CancelToken::is_cancelled`] — full check: the latched flag
//!   *or* an expired deadline (which latches the flag, so every later
//!   fast poll observes it). Costs one `Instant::now()`; intended for
//!   chunk/round/request checkpoints.
//! * [`CancelToken::is_cancelled_fast`] — flag-only relaxed load for
//!   per-node hot loops; deadline expiry becomes visible as soon as any
//!   checkpoint (on any thread sharing the token) runs the full check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TokenInner {
    /// Latched once true — by `cancel()` or by an observed deadline.
    cancelled: AtomicBool,
    /// Absolute expiry; `None` means "manual cancel only".
    deadline: Option<Instant>,
}

/// A shareable cooperative cancellation/deadline signal.
///
/// `Clone` shares the signal: cancelling any clone cancels them all.
/// A token with no deadline never cancels on its own — it is the
/// "never" token that keeps uncancelled runs on the exact historical
/// code path.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that expires at the absolute instant `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Cancels the token (and every clone) immediately and permanently.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Full cancellation check: latched flag or expired deadline.
    /// Observing an expired deadline latches the flag, so subsequent
    /// [`CancelToken::is_cancelled_fast`] polls — on any thread — see it.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Flag-only relaxed check for hot loops (no clock read). Pair with
    /// a periodic [`CancelToken::is_cancelled`] so deadline expiry is
    /// eventually observed.
    pub fn is_cancelled_fast(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The deadline, if this token has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left before the deadline (`None` when there is no deadline;
    /// `Some(ZERO)` once expired or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return self.inner.deadline.map(|_| Duration::ZERO);
        }
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_and_latched() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled_fast());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled_fast());
        assert!(u.is_cancelled());
    }

    #[test]
    fn deadline_expiry_latches_the_fast_flag() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        // The fast poll cannot see the (never-observed) deadline ...
        assert!(!t.is_cancelled_fast());
        // ... but the full check latches it for every later fast poll.
        assert!(t.is_cancelled());
        assert!(t.is_cancelled_fast());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().expect("has a deadline") > Duration::from_secs(3000));
        assert!(t.deadline().is_some());
    }

    #[test]
    fn never_token_has_no_deadline() {
        let t = CancelToken::new();
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }
}
