//! The unified deterministic task model.
//!
//! A bounding query is a set of per-path jobs; each job is either a
//! precomputed item stream ([`PathJob::Ready`]) or a *sweep* — a flat
//! index space of pure region computations ([`PathJob::Sweep`]). The
//! scheduler executes two kinds of [`Task`]:
//!
//! * [`Task::Path`] — a participant adopts a whole path and drains its
//!   region space chunk by chunk;
//! * [`Task::Regions`] — one contiguous chunk of one path's region
//!   space, the unit in which idle participants **steal work from
//!   still-running paths**.
//!
//! Paths are dealt round-robin into per-participant deques. A
//! participant pops its own deque front; when empty it steals a path
//! from the back of another deque; when no unclaimed path remains it
//! claims region chunks from any unfinished sweep — so a query no
//! longer chooses path-grain *or* region-grain, and workers that finish
//! the shallow paths converge on the dominant one.
//!
//! # Determinism guarantee
//!
//! Every sweep's chunk boundaries are a pure function of its size and
//! the resolved width (all claims go through one shared cursor with one
//! chunk size), so the *partition* of the index space is identical no
//! matter which participant claimed which chunk. Each chunk's item
//! buffer is recorded with its start index, and [`run_jobs_with`]
//! replays all buffers to the caller's fold in **(path index, region
//! index) order** — the concatenation visits every region of every path
//! exactly as a sequential sweep would, so every reported bound is
//! bit-identical across thread counts and steal schedules. With a
//! resolved width of 1 (or ≤ 1 unit of work) the scheduler degrades to
//! a streaming sequential sweep on the calling thread: no buffering, no
//! pool wake-up, no empty partials.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cancel::CancelToken;
use crate::fault::fault_point;
use crate::pool::WorkerPool;

/// One schedulable unit of the unified task model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Task {
    /// Adopt path `idx`: drain its region space chunk by chunk.
    Path(usize),
    /// Process one contiguous chunk of path `path`'s region space.
    Regions {
        /// Index of the path whose space the chunk belongs to.
        path: usize,
        /// Half-open region-index range of the chunk.
        range: Range<usize>,
    },
}

/// The pure batched computation of a sweep: `process(range, buf)`
/// appends the items of every index in `range` (possibly none per
/// index) to `buf`, **in increasing index order**. Handing whole ranges
/// to the plan lets it amortise per-chunk setup (kernel scratch
/// allocation, incremental odometer decoding, lane-blocked evaluation)
/// across thousands of regions instead of paying it per cell.
pub type RegionFn<'a, T> = Box<dyn Fn(Range<usize>, &mut Vec<T>) + Sync + 'a>;

/// One per-path job handed to the scheduler.
pub enum PathJob<'a, T> {
    /// The item stream is already known (sampleless paths, infeasible
    /// polytopes): nothing to schedule, the items are folded directly.
    Ready(Vec<T>),
    /// A flat index space of pure region computations.
    Sweep {
        /// Size of the index space (`0..total`).
        total: usize,
        /// Deterministic per-region cost estimate (e.g. the compiled
        /// tape length); seeds the adaptive chunk width. Must be a pure
        /// function of the plan — never of timing or thread identity.
        cost: u64,
        /// The pure batched computation over an index range.
        process: RegionFn<'a, T>,
    },
}

/// The scheduler's minimum chunk grain, mirroring the compiled
/// kernel's lane-block width (`gubpi_symbolic::LANES` asserts the two
/// stay equal). Sweeps are evaluated in lane blocks of this many
/// regions at once; a chunk narrower than one block wastes vector
/// lanes *and* pays a full per-chunk setup (scratch allocation, buffer,
/// replay entry) for a fraction of a block's work.
pub const LANE_GRAIN: usize = 16;

/// Deterministic chunk width of a region sweep: a **pure function of
/// `(total, width, cost)`**, so the partition of the index space — and
/// therefore every replayed bound — is bit-identical across runs, steal
/// schedules and pool states.
///
/// The width adapts to the plan's per-region cost estimate: expensive
/// regions (long tapes, high-dimensional volumes) get smaller chunks so
/// idle workers can steal meaningful work, cheap regions get larger
/// chunks so the scheduler's atomic traffic and buffer overhead stay
/// negligible. Three guards bracket the cost-derived width: at most ~4
/// chunks per participant of headroom is kept (the PR-4 fairness
/// split), a sweep never shatters into more than `MAX_CHUNKS` (4096)
/// chunks no matter how expensive its regions look, and a chunk never
/// drops below one [`LANE_GRAIN`] lane block (unless the sweep itself
/// is smaller). The lane floor is what keeps *small, expensive* sweeps
/// — adaptive-refinement rounds hand the scheduler a few dozen
/// deep-tape child cells at a time — from shattering into one-region
/// chunks whose scratch setup outweighs the work.
pub fn chunk_width(total: usize, width: usize, cost: u64) -> usize {
    /// Target work units (cost × regions) per chunk.
    const TARGET_CHUNK_COST: u64 = 1 << 20;
    /// Upper bound on chunks per sweep (caps buffer/replay overhead).
    const MAX_CHUNKS: usize = 4096;
    let fair = total.div_ceil(width.max(1) * 4).max(1);
    let by_cost = usize::try_from(TARGET_CHUNK_COST / cost.max(1))
        .unwrap_or(usize::MAX)
        .max(1);
    by_cost
        .min(fair)
        .max(total.div_ceil(MAX_CHUNKS))
        .max(LANE_GRAIN.min(total))
        .max(1)
}

/// Per-sweep shared claiming state.
struct Space {
    total: usize,
    chunk: usize,
    cursor: AtomicUsize,
    /// First participant to claim a chunk (`usize::MAX` while
    /// unclaimed); later claims by other participants are steals.
    owner: AtomicUsize,
}

/// Local steal/task counters, flushed into the pool stats once per run.
#[derive(Default)]
struct RunCounters {
    path_tasks: AtomicU64,
    region_tasks: AtomicU64,
    path_steals: AtomicU64,
    region_steals: AtomicU64,
}

/// How much of one job's region space completed before a run returned.
///
/// Claimed chunks always run to completion and claims advance one
/// monotone cursor, so the completed regions of a cancelled sweep are
/// exactly the contiguous prefix `0..done` — the folded item stream of
/// an interrupted job is the prefix of the sequential stream, never a
/// gapped subset.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SweepProgress {
    /// Regions evaluated and folded (a contiguous prefix of the space).
    pub done: usize,
    /// Size of the job's region space ([`PathJob::Ready`] jobs report
    /// their item count and are always complete).
    pub total: usize,
}

impl SweepProgress {
    /// Did the whole region space fold?
    pub fn complete(&self) -> bool {
        self.done >= self.total
    }
}

/// Executes `jobs` on up to `width` participants (the caller plus pool
/// workers) and folds every produced item into `fold` in deterministic
/// **(path index, region index) order**.
///
/// `fold(path_idx, item)` always runs on the calling thread.
pub fn run_jobs_with<T: Send + Sync>(
    pool: &WorkerPool,
    width: usize,
    jobs: Vec<PathJob<'_, T>>,
    fold: impl FnMut(usize, T),
) {
    run_jobs_inner(pool, width, jobs, None, fold);
}

/// [`run_jobs_with`] polling a cooperative [`CancelToken`] at every
/// chunk boundary (claims and the sequential fast path alike).
///
/// On cancellation, work already claimed still completes; each job's
/// folded items are the contiguous **prefix** of its sequential stream
/// reported in the returned [`SweepProgress`] (see its docs for the
/// monotone-cursor argument). `Ready` jobs always fold fully. A run
/// that is never cancelled behaves exactly like [`run_jobs_with`] —
/// same partition, same replay, bit-identical fold sequence.
pub fn run_jobs_cancellable<T: Send + Sync>(
    pool: &WorkerPool,
    width: usize,
    jobs: Vec<PathJob<'_, T>>,
    cancel: &CancelToken,
    fold: impl FnMut(usize, T),
) -> Vec<SweepProgress> {
    run_jobs_inner(pool, width, jobs, Some(cancel), fold)
}

fn run_jobs_inner<T: Send + Sync>(
    pool: &WorkerPool,
    width: usize,
    jobs: Vec<PathJob<'_, T>>,
    cancel: Option<&CancelToken>,
    mut fold: impl FnMut(usize, T),
) -> Vec<SweepProgress> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Deterministic chunk size per sweep, seeded from the plan's cost
    // estimate (see `chunk_width`). The value only shapes scheduling —
    // the folded item stream is partition-independent.
    let width = width.max(1);
    let spaces: Vec<Option<Space>> = jobs
        .iter()
        .map(|j| match j {
            PathJob::Ready(_) => None,
            PathJob::Sweep { total, .. } if *total == 0 => None,
            PathJob::Sweep { total, cost, .. } => {
                let chunk = chunk_width(*total, width, *cost);
                pool.stats_cells()
                    .last_chunk_width
                    .store(chunk as u64, Ordering::Relaxed);
                Some(Space {
                    total: *total,
                    chunk,
                    cursor: AtomicUsize::new(0),
                    owner: AtomicUsize::new(usize::MAX),
                })
            }
        })
        .collect();
    // Units of schedulable work decide the effective width (the clamp
    // that keeps a 1-job query from waking an 8-worker pool).
    let units: usize = spaces
        .iter()
        .flatten()
        .map(|s| s.total.div_ceil(s.chunk))
        .sum();
    let width = width.min(units.max(1));
    if width <= 1 {
        pool.note_inline_run();
        return run_sequential(jobs, cancel, fold);
    }

    let deques: Vec<Mutex<VecDeque<Task>>> =
        (0..width).map(|_| Mutex::new(VecDeque::new())).collect();
    for (next, i) in (0..jobs.len()).filter(|&i| spaces[i].is_some()).enumerate() {
        deques[next % width]
            .lock()
            .expect("deque poisoned")
            .push_back(Task::Path(i));
    }
    let out: Mutex<Vec<(usize, usize, Vec<T>)>> = Mutex::new(Vec::new());
    let counters = RunCounters::default();
    let next_participant = AtomicUsize::new(0);
    let participant = || {
        let me = next_participant.fetch_add(1, Ordering::Relaxed) % width;
        participant_loop(me, width, &jobs, &spaces, &deques, &out, &counters, cancel);
    };
    pool.run_quota(width - 1, &participant);
    flush_counters(pool, &counters);

    // Completed prefix per sweep: every claimed chunk ran to completion
    // and claims are monotone, so the cursor (capped by the total) *is*
    // the prefix length — even when cancellation stopped further claims.
    let progress: Vec<SweepProgress> = jobs
        .iter()
        .zip(&spaces)
        .map(|(job, space)| match (job, space) {
            (PathJob::Ready(items), _) => SweepProgress {
                done: items.len(),
                total: items.len(),
            },
            (PathJob::Sweep { total, .. }, None) => SweepProgress {
                done: 0,
                total: *total,
            },
            (PathJob::Sweep { total, .. }, Some(sp)) => SweepProgress {
                done: sp.cursor.load(Ordering::Relaxed).min(*total),
                total: *total,
            },
        })
        .collect();

    // Deterministic reduce: group chunk buffers per path, order them by
    // region start, and replay — (path index, region index) order, bit
    // for bit the sequential sweep.
    let mut per_path: Vec<Vec<(usize, Vec<T>)>> = Vec::with_capacity(jobs.len());
    per_path.resize_with(jobs.len(), Vec::new);
    for (path, start, items) in out.into_inner().expect("out poisoned") {
        per_path[path].push((start, items));
    }
    for (i, (job, mut partials)) in jobs.into_iter().zip(per_path).enumerate() {
        match job {
            PathJob::Ready(items) => {
                for item in items {
                    fold(i, item);
                }
            }
            PathJob::Sweep { .. } => {
                partials.sort_unstable_by_key(|&(start, _)| start);
                for (_, items) in partials {
                    for item in items {
                        fold(i, item);
                    }
                }
            }
        }
    }
    progress
}

/// The width-1 fast path: stream every job straight into the fold, in
/// order, with a single reused buffer — no partials, no pool. Sweeps
/// stream chunk by chunk (same width-1 chunking as the parallel
/// partition) so the buffer stays bounded on huge region spaces.
///
/// Cancellation is checked at the same grain as the parallel mode —
/// once per chunk, before it runs — so an interrupted job's folded
/// stream is a chunk-aligned prefix. `Ready` jobs still fold fully
/// after a cancellation: their items are precomputed contributions.
fn run_sequential<T>(
    jobs: Vec<PathJob<'_, T>>,
    cancel: Option<&CancelToken>,
    mut fold: impl FnMut(usize, T),
) -> Vec<SweepProgress> {
    let mut buf = Vec::new();
    let mut progress = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.into_iter().enumerate() {
        match job {
            PathJob::Ready(items) => {
                progress.push(SweepProgress {
                    done: items.len(),
                    total: items.len(),
                });
                for item in items {
                    fold(i, item);
                }
            }
            PathJob::Sweep {
                total,
                cost,
                process,
            } => {
                let chunk = chunk_width(total, 1, cost);
                let mut start = 0;
                while start < total {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        break;
                    }
                    fault_point(cancel);
                    let end = (start + chunk).min(total);
                    process(start..end, &mut buf);
                    for item in buf.drain(..) {
                        fold(i, item);
                    }
                    start = end;
                }
                progress.push(SweepProgress { done: start, total });
            }
        }
    }
    progress
}

fn participant_loop<T: Send + Sync>(
    me: usize,
    width: usize,
    jobs: &[PathJob<'_, T>],
    spaces: &[Option<Space>],
    deques: &[Mutex<VecDeque<Task>>],
    out: &Mutex<Vec<(usize, usize, Vec<T>)>>,
    counters: &RunCounters,
    cancel: Option<&CancelToken>,
) {
    loop {
        // 0. Cooperative cancellation: stop claiming new work. Claimed
        // chunks always completed, so the per-sweep cursors still
        // describe exact completed prefixes.
        if cancel.is_some_and(CancelToken::is_cancelled) {
            break;
        }
        // 1. Own deque, front.
        let own = deques[me].lock().expect("deque poisoned").pop_front();
        if let Some(task) = own {
            counters.path_tasks.fetch_add(1, Ordering::Relaxed);
            run_task(task, me, jobs, spaces, out, counters, cancel);
            continue;
        }
        // 2. Steal a path from the back of another participant's deque.
        let stolen = (1..width).find_map(|k| {
            deques[(me + k) % width]
                .lock()
                .expect("deque poisoned")
                .pop_back()
        });
        if let Some(task) = stolen {
            counters.path_tasks.fetch_add(1, Ordering::Relaxed);
            counters.path_steals.fetch_add(1, Ordering::Relaxed);
            run_task(task, me, jobs, spaces, out, counters, cancel);
            continue;
        }
        // 3. No unclaimed path anywhere: steal region chunks from a
        // still-running sweep (the dominant-path case).
        let chunk = spaces.iter().enumerate().find_map(|(p, sp)| {
            let sp = sp.as_ref()?;
            (sp.cursor.load(Ordering::Relaxed) < sp.total)
                .then(|| claim_chunk(p, sp))
                .flatten()
        });
        if let Some(task) = chunk {
            run_task(task, me, jobs, spaces, out, counters, cancel);
            continue;
        }
        // 4. Every deque empty, every cursor exhausted (work is never
        // added after start, so this is a stable condition): done.
        break;
    }
}

/// Claims the next chunk of `sp`'s region space, if any is left.
fn claim_chunk(path: usize, sp: &Space) -> Option<Task> {
    let start = sp.cursor.fetch_add(sp.chunk, Ordering::Relaxed);
    if start >= sp.total {
        None
    } else {
        Some(Task::Regions {
            path,
            range: start..(start + sp.chunk).min(sp.total),
        })
    }
}

fn run_task<T: Send + Sync>(
    task: Task,
    me: usize,
    jobs: &[PathJob<'_, T>],
    spaces: &[Option<Space>],
    out: &Mutex<Vec<(usize, usize, Vec<T>)>>,
    counters: &RunCounters,
    cancel: Option<&CancelToken>,
) {
    match task {
        Task::Path(p) => {
            let sp = spaces[p].as_ref().expect("scheduled paths have spaces");
            loop {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    break;
                }
                match claim_chunk(p, sp) {
                    Some(chunk) => run_task(chunk, me, jobs, spaces, out, counters, cancel),
                    None => break,
                }
            }
        }
        Task::Regions { path, range } => {
            // Task boundary: the deterministic fault-injection hook
            // (one relaxed load when no plan is armed).
            fault_point(cancel);
            let sp = spaces[path].as_ref().expect("scheduled paths have spaces");
            let first =
                sp.owner
                    .compare_exchange(usize::MAX, me, Ordering::Relaxed, Ordering::Relaxed);
            if first.is_err_and(|owner| owner != me) {
                counters.region_steals.fetch_add(1, Ordering::Relaxed);
            }
            counters.region_tasks.fetch_add(1, Ordering::Relaxed);
            let PathJob::Sweep { process, .. } = &jobs[path] else {
                unreachable!("spaces exist only for sweeps");
            };
            let mut items = Vec::new();
            let start = range.start;
            process(range, &mut items);
            out.lock().expect("out poisoned").push((path, start, items));
        }
    }
}

fn flush_counters(pool: &WorkerPool, c: &RunCounters) {
    let s = pool.stats_cells();
    s.path_tasks
        .fetch_add(c.path_tasks.load(Ordering::Relaxed), Ordering::Relaxed);
    s.region_tasks
        .fetch_add(c.region_tasks.load(Ordering::Relaxed), Ordering::Relaxed);
    s.path_steals
        .fetch_add(c.path_steals.load(Ordering::Relaxed), Ordering::Relaxed);
    s.region_steals
        .fetch_add(c.region_steals.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity sweeps: every region index yields itself.
    fn sweep_jobs(sizes: &[usize]) -> Vec<PathJob<'static, usize>> {
        sizes
            .iter()
            .map(|&n| PathJob::Sweep {
                total: n,
                cost: 1,
                process: Box::new(|range, buf| buf.extend(range)),
            })
            .collect()
    }

    fn collect(
        pool: &WorkerPool,
        width: usize,
        jobs: Vec<PathJob<'_, usize>>,
    ) -> Vec<(usize, usize)> {
        let mut got = Vec::new();
        run_jobs_with(pool, width, jobs, |p, item| got.push((p, item)));
        got
    }

    #[test]
    fn items_fold_in_path_then_region_order() {
        let pool = WorkerPool::new();
        let reference = collect(&pool, 1, sweep_jobs(&[5, 0, 3, 1000, 2]));
        for width in [2usize, 3, 4, 8] {
            let got = collect(&pool, width, sweep_jobs(&[5, 0, 3, 1000, 2]));
            assert_eq!(got, reference, "width {width}");
        }
    }

    #[test]
    fn ready_jobs_fold_without_scheduling() {
        let pool = WorkerPool::new();
        let jobs = vec![
            PathJob::Ready(vec![10usize, 11]),
            PathJob::Sweep {
                total: 3,
                cost: 1,
                process: Box::new(|range, buf| buf.extend(range)),
            },
            PathJob::Ready(vec![99]),
        ];
        let got = collect(&pool, 4, jobs);
        assert_eq!(got, vec![(0, 10), (0, 11), (1, 0), (1, 1), (1, 2), (2, 99)]);
    }

    #[test]
    fn tiny_work_runs_inline_without_waking_the_pool() {
        let pool = WorkerPool::new();
        let before = pool.stats();
        let got = collect(&pool, 8, sweep_jobs(&[1]));
        assert_eq!(got, vec![(0, 0)]);
        let after = pool.stats();
        assert_eq!(after.dispatches, before.dispatches, "no dispatch");
        assert_eq!(after.inline_runs, before.inline_runs + 1);
        assert_eq!(pool.spawned_workers(), 0, "no threads for a 1-unit query");
    }

    #[test]
    fn dominant_sweep_is_stolen_from() {
        // One huge path and several trivial ones: participants that
        // drain the trivial paths must steal chunks of the dominant
        // sweep. With 4 participants and ~16 chunks the steal counter
        // must move (every participant starts on its own deque, so at
        // least the three non-owners end up claiming foreign chunks).
        let pool = WorkerPool::new();
        let before = pool.stats();
        let got = collect(&pool, 4, sweep_jobs(&[100_000, 1, 1, 1]));
        assert_eq!(got.len(), 100_003);
        let after = pool.stats();
        assert!(after.dispatches > before.dispatches);
        assert_eq!(
            after.region_tasks - before.region_tasks,
            100_000usize.div_ceil(chunk_width(100_000, 4, 1)) as u64 + 3,
            "chunk partition is a pure function of (total, width, cost)"
        );
        assert_eq!(
            after.last_chunk_width,
            chunk_width(1, 4, 1) as u64,
            "gauge reflects the most recently planned sweep (the trailing 1-region paths)"
        );
    }

    #[test]
    fn chunk_width_is_pure_and_cost_adaptive() {
        // Cheap regions reproduce the fairness split (~4 chunks/worker).
        assert_eq!(chunk_width(100_000, 4, 1), 6250);
        // Expensive regions shrink the chunk toward the cost target ...
        let heavy = chunk_width(100_000, 4, 1 << 12);
        assert!(heavy < 6250, "heavy regions must chunk finer: {heavy}");
        assert_eq!(heavy, (1usize << 20) >> 12);
        // ... but never below the 4096-chunk cap, a lane block, or the
        // sweep itself.
        assert_eq!(chunk_width(1 << 20, 4, u64::MAX), (1usize << 20) / 4096);
        assert_eq!(chunk_width(10, 4, u64::MAX), 10);
        assert_eq!(chunk_width(100, 4, u64::MAX), LANE_GRAIN);
        // Monotone determinism: same inputs, same width — every call.
        for &(t, w, c) in &[(1usize, 1usize, 1u64), (12345, 3, 77), (1 << 20, 8, 500)] {
            assert_eq!(chunk_width(t, w, c), chunk_width(t, w, c));
            assert!(chunk_width(t, w, c) >= 1);
        }
    }

    #[test]
    fn few_expensive_regions_chunk_at_lane_blocks() {
        // An adaptive-refinement round: a small batch of expensive
        // cells. The raw cost target would shatter it into one-region
        // chunks; the lane floor must hold the width at one lane block,
        // observable through the `last_chunk_width` gauge.
        let pool = WorkerPool::new();
        assert_eq!(chunk_width(40, 4, 1 << 20), LANE_GRAIN);
        let jobs: Vec<PathJob<'_, usize>> = vec![PathJob::Sweep {
            total: 40,
            cost: 1 << 20,
            process: Box::new(|range, buf| buf.extend(range)),
        }];
        let got = collect(&pool, 4, jobs);
        assert_eq!(got.len(), 40);
        assert_eq!(pool.stats().last_chunk_width, LANE_GRAIN as u64);
    }

    #[test]
    fn cost_changes_chunking_but_not_the_folded_stream() {
        let pool = WorkerPool::new();
        let jobs_with_cost = |cost: u64| -> Vec<PathJob<'static, usize>> {
            vec![PathJob::Sweep {
                total: 50_000,
                cost,
                process: Box::new(|range, buf| buf.extend(range)),
            }]
        };
        let reference = collect(&pool, 1, jobs_with_cost(1));
        for cost in [1u64, 64, 4096, u64::MAX] {
            for width in [2usize, 4] {
                let got = collect(&pool, width, jobs_with_cost(cost));
                assert_eq!(got, reference, "cost {cost} width {width}");
            }
        }
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let pool = WorkerPool::new();
        let before = pool.stats();
        run_jobs_with(&pool, 8, Vec::<PathJob<'_, usize>>::new(), |_, _: usize| {
            panic!("no items")
        });
        assert_eq!(pool.stats(), before);
    }

    #[test]
    fn uncancelled_token_runs_are_bit_identical_to_plain_runs() {
        let pool = WorkerPool::new();
        let reference = collect(&pool, 1, sweep_jobs(&[5, 0, 3, 1000, 2]));
        for width in [1usize, 2, 4, 8] {
            let mut got = Vec::new();
            let token = CancelToken::new();
            let progress = run_jobs_cancellable(
                &pool,
                width,
                sweep_jobs(&[5, 0, 3, 1000, 2]),
                &token,
                |p, item| got.push((p, item)),
            );
            assert_eq!(got, reference, "width {width}");
            assert!(progress.iter().all(SweepProgress::complete));
            assert_eq!(
                progress.iter().map(|p| p.total).collect::<Vec<_>>(),
                vec![5, 0, 3, 1000, 2]
            );
        }
    }

    #[test]
    fn pre_cancelled_runs_fold_only_ready_jobs() {
        let pool = WorkerPool::new();
        for width in [1usize, 4] {
            let token = CancelToken::new();
            token.cancel();
            let jobs: Vec<PathJob<'_, usize>> = vec![
                PathJob::Ready(vec![7, 8]),
                PathJob::Sweep {
                    total: 100_000,
                    cost: 1,
                    process: Box::new(|range, buf| buf.extend(range)),
                },
            ];
            let mut got = Vec::new();
            let progress =
                run_jobs_cancellable(&pool, width, jobs, &token, |p, item| got.push((p, item)));
            assert_eq!(got, vec![(0, 7), (0, 8)], "width {width}");
            assert!(progress[0].complete());
            assert_eq!(
                progress[1],
                SweepProgress {
                    done: 0,
                    total: 100_000
                }
            );
        }
    }

    #[test]
    fn mid_run_cancellation_folds_an_exact_prefix() {
        // The sweep cancels its own token once it sees index 5_000; the
        // folded stream must then be a contiguous prefix of the
        // sequential stream matching the reported progress, at every
        // width.
        let pool = WorkerPool::new();
        for width in [1usize, 2, 4, 8] {
            let token = CancelToken::new();
            let tok = token.clone();
            let jobs: Vec<PathJob<'_, usize>> = vec![PathJob::Sweep {
                total: 1_000_000,
                cost: 1,
                process: Box::new(move |range, buf| {
                    if range.contains(&5_000) {
                        tok.cancel();
                    }
                    buf.extend(range);
                }),
            }];
            let mut got = Vec::new();
            let progress =
                run_jobs_cancellable(&pool, width, jobs, &token, |_, item| got.push(item));
            let done = progress[0].done;
            assert!(done < 1_000_000, "width {width}: cancellation must bite");
            assert_eq!(got.len(), done, "width {width}");
            assert!(
                got.iter().copied().eq(0..done),
                "width {width}: folded stream must be the exact prefix 0..{done}"
            );
        }
    }

    #[test]
    fn deadline_tokens_cancel_mid_sweep() {
        let pool = WorkerPool::new();
        let token = CancelToken::with_timeout(std::time::Duration::from_millis(5));
        let jobs: Vec<PathJob<'_, usize>> = vec![PathJob::Sweep {
            total: usize::MAX / 2,
            cost: 1 << 14,
            process: Box::new(|range, buf| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                buf.push(range.start);
            }),
        }];
        let mut chunks = 0usize;
        let progress = run_jobs_cancellable(&pool, 2, jobs, &token, |_, _| chunks += 1);
        assert!(!progress[0].complete(), "an unbounded sweep must be cut");
        assert!(token.is_cancelled());
    }

    #[test]
    fn panics_inside_sweeps_propagate() {
        let pool = WorkerPool::new();
        let jobs: Vec<PathJob<'_, usize>> = vec![PathJob::Sweep {
            total: 1000,
            cost: 1,
            process: Box::new(|range, _| assert!(!range.contains(&999), "boom")),
        }];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs_with(&pool, 4, jobs, |_, _: usize| {});
        }));
        assert!(r.is_err());
    }
}
