//! The persistent worker pool.
//!
//! PRs 2–3 parallelised with *per-call scoped spawns*: every query (and
//! every big symbolic fork) paid a thread spawn + join. This module
//! replaces that machinery with one long-lived executor: OS threads are
//! spawned **lazily** the first time a caller asks for width > 1, then
//! parked on a condvar between queries, so a production service keeps
//! its workers hot across requests. One pool is shared process-wide by
//! default ([`WorkerPool::global`]) and explicit pools can be shared
//! across `Analyzer` instances exactly like a `SharedQueryCache`.
//!
//! Two primitives cover every consumer:
//!
//! * [`WorkerPool::run_quota`] — enlist up to `extra` pool workers to
//!   run a work-claiming closure alongside the caller (used by the
//!   deterministic task scheduler in [`crate::sched`]). The caller
//!   always participates; queued helper slots that no worker picks up
//!   before the work runs dry are cancelled, so a small query never
//!   blocks on pool capacity.
//! * [`WorkerPool::fork_join`] — run `f` on the calling thread and `g`
//!   on an idle worker when one is available (inline otherwise); used by
//!   the symbolic-execution frontier. Join steals the task back if no
//!   worker claimed it yet, so a join never waits on *unstarted* work —
//!   the chain of waiters always ends at a thread making progress,
//!   which rules out deadlock by construction.
//!
//! # Safety
//!
//! Both primitives hand the pool **borrowed** closures through a raw
//! `*const dyn Fn` (the workers are long-lived, so `std::thread::scope`
//! cannot tie the lifetimes). The invariant that makes this sound is
//! enforced in exactly two places: `run_quota` returns only after every
//! claimed helper slot has finished and every unclaimed slot has been
//! purged from the queue (both transitions happen under the pool
//! mutex), and `fork_join` returns only after the forked task was
//! either stolen back (under the same mutex) or reported `Done` by the
//! worker running it. Either way no worker can touch the closure after
//! the owning frame unwinds. Panics inside tasks are caught, carried
//! across the latch and resumed on the caller.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on threads a single pool will ever spawn — a backstop
/// against pathological width requests, far above any real worker
/// count.
const MAX_POOL_THREADS: usize = 256;

/// A borrowed task closure smuggled to long-lived workers; see the
/// module-level safety contract.
#[derive(Copy, Clone)]
struct RawTask(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the
// run_quota/fork_join latches guarantee it outlives every call.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

impl RawTask {
    /// SAFETY: caller guarantees the closure outlives every call (the
    /// run_quota / fork_join latches; see the module docs).
    unsafe fn new(task: &(dyn Fn() + Sync)) -> RawTask {
        let short: *const (dyn Fn() + Sync + '_) = task;
        RawTask(std::mem::transmute::<
            *const (dyn Fn() + Sync + '_),
            *const (dyn Fn() + Sync + 'static),
        >(short))
    }

    /// SAFETY: caller must uphold the module-level liveness contract.
    unsafe fn call(self) {
        (*self.0)()
    }
}

/// One helper slot of a [`WorkerPool::run_quota`] call.
struct QuotaJob {
    task: RawTask,
    /// Set (under the pool mutex) once the caller finished its own pass;
    /// queued slots observing it are dropped instead of run.
    cancelled: AtomicBool,
    /// Helpers currently *running* the task; incremented under the pool
    /// mutex at claim time so cancellation can never race a startup.
    active: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A forked task (symbolic-frontier else-continuation) waiting for a
/// worker, for steal-back, or for completion.
struct ForkJob {
    task: RawTask,
    /// `false` until a worker (or the joining caller) claimed the task.
    claimed: AtomicBool,
    finished: Mutex<bool>,
    done: Condvar,
}

enum Assignment {
    Slot(Arc<QuotaJob>),
    Fork(Arc<ForkJob>),
}

struct State {
    queue: VecDeque<Assignment>,
    /// Threads spawned so far (monotone; workers never exit before
    /// shutdown).
    spawned: usize,
    /// Workers currently parked on the condvar.
    idle: usize,
    /// Largest participation width ever requested (`reserve`); bounds
    /// lazy spawning so a width-2 analysis never inflates the pool to
    /// hardware size.
    width_hint: usize,
    shutdown: bool,
}

/// Monotone counters describing what the executor has done — the
/// observability hooks the scheduler tests assert against.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// OS threads spawned over the pool's lifetime.
    pub spawned_workers: u64,
    /// Parallel task-set dispatches (`run_quota` with helpers enlisted).
    pub dispatches: u64,
    /// Task sets resolved inline on the caller (width or work ≤ 1) —
    /// the clamp that keeps a 1-job query from waking an 8-worker pool.
    pub inline_runs: u64,
    /// `Task::Path` adoptions (a participant took ownership of a path).
    pub path_tasks: u64,
    /// `Task::Regions` executions (one contiguous chunk of one path's
    /// region space).
    pub region_tasks: u64,
    /// Paths popped from *another* participant's deque.
    pub path_steals: u64,
    /// Region chunks claimed from a path first claimed by another
    /// participant — cross-path work stealing actually happening.
    pub region_steals: u64,
    /// Symbolic-frontier forks shipped to a pool worker.
    pub forks_parallel: u64,
    /// Symbolic-frontier forks run inline (no idle worker, or stolen
    /// back at join).
    pub forks_inline: u64,
    /// Chunk width chosen for the most recently planned region sweep —
    /// a gauge (not monotone) exposing the adaptive, cost-seeded
    /// chunking decision (`gubpi_pool::chunk_width`).
    pub last_chunk_width: u64,
    /// Gap-driven adaptive refinement rounds driven to completion (one
    /// per lockstep worklist batch the refiner dispatched as a sweep).
    pub refine_rounds: u64,
    /// Worklist cells bisected during adaptive refinement (each split
    /// re-evaluates two child cells on the compiled tape).
    pub refine_splits: u64,
    /// `f64::to_bits` of the total (upper − lower) gap left by the most
    /// recently finished adaptive refinement run — a gauge, like
    /// [`PoolStats::last_chunk_width`]; decode with
    /// [`PoolStats::last_refine_gap`].
    pub last_refine_gap_bits: u64,
}

impl PoolStats {
    /// The [`PoolStats::last_refine_gap_bits`] gauge as an `f64`.
    pub fn last_refine_gap(&self) -> f64 {
        f64::from_bits(self.last_refine_gap_bits)
    }
}

#[derive(Default)]
pub(crate) struct StatsCells {
    spawned_workers: AtomicU64,
    dispatches: AtomicU64,
    inline_runs: AtomicU64,
    pub(crate) path_tasks: AtomicU64,
    pub(crate) region_tasks: AtomicU64,
    pub(crate) path_steals: AtomicU64,
    pub(crate) region_steals: AtomicU64,
    forks_parallel: AtomicU64,
    forks_inline: AtomicU64,
    pub(crate) last_chunk_width: AtomicU64,
    refine_rounds: AtomicU64,
    refine_splits: AtomicU64,
    last_refine_gap_bits: AtomicU64,
}

struct Inner {
    state: Mutex<State>,
    /// Workers park here waiting for assignments.
    work: Condvar,
    pub(crate) stats: StatsCells,
    /// Live `WorkerPool` handles; the last one to drop shuts the
    /// workers down (worker threads hold `Arc<Inner>` but no handle).
    handles: AtomicUsize,
}

/// A handle to a persistent worker pool. Cloning is cheap (handle
/// copy); the threads shut down when the last handle drops.
///
/// ```
/// use gubpi_pool::WorkerPool;
///
/// let pool = WorkerPool::new();
/// let (a, b) = pool.fork_join(|| 1 + 1, || 2 + 2);
/// assert_eq!((a, b), (2, 4));
/// ```
pub struct WorkerPool {
    inner: Arc<Inner>,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl Clone for WorkerPool {
    fn clone(&self) -> WorkerPool {
        self.inner.handles.fetch_add(1, Ordering::Relaxed);
        WorkerPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if self.inner.handles.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut st = self.inner.state.lock().expect("pool poisoned");
            st.shutdown = true;
            self.inner.work.notify_all();
        }
    }
}

impl WorkerPool {
    /// A fresh pool with **zero** threads; workers are spawned lazily
    /// when a caller first asks for parallel width.
    pub fn new() -> WorkerPool {
        WorkerPool {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    spawned: 0,
                    idle: 0,
                    width_hint: 1,
                    shutdown: false,
                }),
                work: Condvar::new(),
                stats: StatsCells::default(),
                handles: AtomicUsize::new(1),
            }),
        }
    }

    /// The process-wide default pool, shared by every `Analyzer` that
    /// is not constructed with an explicit pool. Never shuts down.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Records that callers may ask for up to `width` participants,
    /// allowing the pool to grow to `width − 1` threads on demand. Does
    /// not spawn anything by itself.
    pub fn reserve(&self, width: usize) {
        let mut st = self.inner.state.lock().expect("pool poisoned");
        st.width_hint = st.width_hint.max(width.min(MAX_POOL_THREADS + 1));
    }

    /// Counter snapshot (monotone; see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        let s = &self.inner.stats;
        PoolStats {
            spawned_workers: s.spawned_workers.load(Ordering::Relaxed),
            dispatches: s.dispatches.load(Ordering::Relaxed),
            inline_runs: s.inline_runs.load(Ordering::Relaxed),
            path_tasks: s.path_tasks.load(Ordering::Relaxed),
            region_tasks: s.region_tasks.load(Ordering::Relaxed),
            path_steals: s.path_steals.load(Ordering::Relaxed),
            region_steals: s.region_steals.load(Ordering::Relaxed),
            forks_parallel: s.forks_parallel.load(Ordering::Relaxed),
            forks_inline: s.forks_inline.load(Ordering::Relaxed),
            last_chunk_width: s.last_chunk_width.load(Ordering::Relaxed),
            refine_rounds: s.refine_rounds.load(Ordering::Relaxed),
            refine_splits: s.refine_splits.load(Ordering::Relaxed),
            last_refine_gap_bits: s.last_refine_gap_bits.load(Ordering::Relaxed),
        }
    }

    /// Records one finished adaptive-refinement run: `rounds` lockstep
    /// worklist rounds, `splits` cell bisections, and the final
    /// (upper − lower) gap (stored as a bits gauge; see
    /// [`PoolStats::last_refine_gap`]).
    pub fn note_refinement(&self, rounds: u64, splits: u64, final_gap: f64) {
        let s = &self.inner.stats;
        s.refine_rounds.fetch_add(rounds, Ordering::Relaxed);
        s.refine_splits.fetch_add(splits, Ordering::Relaxed);
        s.last_refine_gap_bits
            .store(final_gap.to_bits(), Ordering::Relaxed);
    }

    /// Number of worker threads spawned so far.
    pub fn spawned_workers(&self) -> usize {
        self.inner.state.lock().expect("pool poisoned").spawned
    }

    /// Do two handles drive the same underlying pool? (Handles are
    /// distinct structs, so pointer-comparing them says nothing.)
    pub fn same_pool(&self, other: &WorkerPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    pub(crate) fn note_inline_run(&self) {
        self.inner.stats.inline_runs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats_cells(&self) -> &StatsCells {
        &self.inner.stats
    }

    /// Runs `task` on the calling thread **and** on up to `extra` pool
    /// workers concurrently, returning once every participant is done.
    ///
    /// `task` must be a work-claiming loop: participants race to claim
    /// units from shared state and return when nothing is left, so a
    /// helper that arrives late (or never) is harmless. With
    /// `extra == 0` this is a plain inline call.
    ///
    /// Panics in any participant are propagated to the caller (after
    /// all participants finished, so the borrowed closure stays valid).
    pub(crate) fn run_quota(&self, extra: usize, task: &(dyn Fn() + Sync)) {
        if extra == 0 {
            task();
            return;
        }
        let job = Arc::new(QuotaJob {
            // SAFETY: `task` outlives this call; see the latch protocol.
            task: unsafe { RawTask::new(task) },
            cancelled: AtomicBool::new(false),
            active: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.inner.state.lock().expect("pool poisoned");
            st.width_hint = st.width_hint.max((extra + 1).min(MAX_POOL_THREADS + 1));
            let cap = st.width_hint.saturating_sub(1).min(MAX_POOL_THREADS);
            let missing = extra.min(cap).saturating_sub(st.idle);
            for _ in 0..missing {
                if st.spawned >= cap {
                    break;
                }
                self.spawn_worker(&mut st);
            }
            for _ in 0..extra {
                st.queue.push_back(Assignment::Slot(Arc::clone(&job)));
            }
            self.inner.work.notify_all();
            self.inner.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        }
        // The caller is always a participant.
        let caller_panic = catch_unwind(AssertUnwindSafe(task)).err();
        // Purge helper slots nobody claimed; claimed ones are tracked by
        // `active` and awaited below.
        {
            let mut st = self.inner.state.lock().expect("pool poisoned");
            job.cancelled.store(true, Ordering::Relaxed);
            st.queue
                .retain(|a| !matches!(a, Assignment::Slot(j) if Arc::ptr_eq(j, &job)));
        }
        let mut active = job.active.lock().expect("pool poisoned");
        while *active > 0 {
            active = job.done.wait(active).expect("pool poisoned");
        }
        drop(active);
        if let Some(p) = caller_panic {
            resume_unwind(p);
        }
        let helper_panic = job.panic.lock().expect("pool poisoned").take();
        if let Some(p) = helper_panic {
            resume_unwind(p);
        }
    }

    /// Runs `f` on the calling thread and `g` on an idle pool worker
    /// when one is available (inline otherwise), returning both results
    /// as `(f(), g())`.
    ///
    /// Used by the symbolic-execution frontier: purity plus pre-split
    /// path budgets make the result independent of whether the fork was
    /// actually shipped, so the availability heuristic can never
    /// perturb the produced path set.
    pub fn fork_join<A, B: Send>(
        &self,
        f: impl FnOnce() -> A,
        g: impl FnOnce() -> B + Send,
    ) -> (A, B) {
        // Admission under the lock: ship only when an idle worker is not
        // already promised to queued work, or when the pool may still
        // grow within its width hint.
        let accepted = {
            let mut st = self.inner.state.lock().expect("pool poisoned");
            if st.shutdown {
                false
            } else if st.idle > st.queue.len() {
                true
            } else if st.spawned < st.width_hint.saturating_sub(1).min(MAX_POOL_THREADS) {
                self.spawn_worker(&mut st);
                true
            } else {
                false
            }
        };
        if !accepted {
            self.inner
                .stats
                .forks_inline
                .fetch_add(1, Ordering::Relaxed);
            let a = f();
            let b = g();
            return (a, b);
        }

        // Output slot + one-shot claim cell for the FnOnce.
        let result: Mutex<Option<std::thread::Result<B>>> = Mutex::new(None);
        let pending: Mutex<Option<_>> = Mutex::new(Some(g));
        let job_holder: Mutex<Option<Arc<ForkJob>>> = Mutex::new(None);
        let runner = || {
            let Some(g) = pending.lock().expect("fork poisoned").take() else {
                return;
            };
            let r = catch_unwind(AssertUnwindSafe(g));
            *result.lock().expect("fork poisoned") = Some(r);
            // Signal completion on the job handle.
            let job = job_holder
                .lock()
                .expect("fork poisoned")
                .clone()
                .expect("job registered before dispatch");
            let mut fin = job.finished.lock().expect("fork poisoned");
            *fin = true;
            job.done.notify_all();
        };
        let job = Arc::new(ForkJob {
            // SAFETY: `runner` outlives this call; see the join protocol.
            task: unsafe { RawTask::new(&runner) },
            claimed: AtomicBool::new(false),
            finished: Mutex::new(false),
            done: Condvar::new(),
        });
        *job_holder.lock().expect("fork poisoned") = Some(Arc::clone(&job));
        {
            let mut st = self.inner.state.lock().expect("pool poisoned");
            st.queue.push_back(Assignment::Fork(Arc::clone(&job)));
            self.inner.work.notify_one();
        }

        // Join: steal the task back if nobody claimed it yet (under the
        // pool mutex, so the claim cannot race), otherwise wait for the
        // running worker to report completion.
        let join = || {
            let stolen = {
                let mut st = self.inner.state.lock().expect("pool poisoned");
                if job.claimed.load(Ordering::Relaxed) {
                    false
                } else {
                    job.claimed.store(true, Ordering::Relaxed);
                    st.queue
                        .retain(|x| !matches!(x, Assignment::Fork(j) if Arc::ptr_eq(j, &job)));
                    true
                }
            };
            if stolen {
                self.inner
                    .stats
                    .forks_inline
                    .fetch_add(1, Ordering::Relaxed);
                runner();
            } else {
                self.inner
                    .stats
                    .forks_parallel
                    .fetch_add(1, Ordering::Relaxed);
                let mut fin = job.finished.lock().expect("fork poisoned");
                while !*fin {
                    fin = job.done.wait(fin).expect("fork poisoned");
                }
            }
        };

        // `f` may panic; the borrowed runner must be joined *before* the
        // unwind leaves this frame, or a worker could touch freed stack.
        let a = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(a) => {
                join();
                a
            }
            Err(p) => {
                join();
                resume_unwind(p);
            }
        };
        let r = result
            .lock()
            .expect("fork poisoned")
            .take()
            .expect("fork task ran to completion");
        match r {
            Ok(b) => (a, b),
            Err(p) => resume_unwind(p),
        }
    }

    /// Spawns one worker thread. Must be called with the state lock
    /// held (`st` proves it).
    fn spawn_worker(&self, st: &mut State) {
        let inner = Arc::clone(&self.inner);
        st.spawned += 1;
        self.inner
            .stats
            .spawned_workers
            .fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name("gubpi-pool-worker".to_owned())
            .spawn(move || worker_loop(&inner))
            .expect("worker thread spawns");
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let assignment = {
            let mut st = inner.state.lock().expect("pool poisoned");
            loop {
                match st.queue.pop_front() {
                    Some(Assignment::Slot(job)) => {
                        if job.cancelled.load(Ordering::Relaxed) {
                            continue;
                        }
                        // Claim under the pool mutex: cancellation
                        // (also under the mutex) either removed this
                        // slot or will await this increment.
                        *job.active.lock().expect("pool poisoned") += 1;
                        break Some(Assignment::Slot(job));
                    }
                    Some(Assignment::Fork(job)) => {
                        if job.claimed.swap(true, Ordering::Relaxed) {
                            continue; // stolen back by the joiner
                        }
                        break Some(Assignment::Fork(job));
                    }
                    None => {
                        if st.shutdown {
                            break None;
                        }
                        st.idle += 1;
                        st = inner.work.wait(st).expect("pool poisoned");
                        st.idle -= 1;
                    }
                }
            }
        };
        let Some(assignment) = assignment else { return };
        match assignment {
            Assignment::Slot(job) => {
                // SAFETY: `active > 0` holds until the decrement below,
                // and run_quota waits for it before invalidating `task`.
                let r = catch_unwind(AssertUnwindSafe(|| unsafe { job.task.call() }));
                if let Err(p) = r {
                    let mut slot = job.panic.lock().expect("pool poisoned");
                    slot.get_or_insert(p);
                }
                let mut active = job.active.lock().expect("pool poisoned");
                *active -= 1;
                if *active == 0 {
                    job.done.notify_all();
                }
            }
            Assignment::Fork(job) => {
                // SAFETY: fork_join waits for `finished` (set by the
                // runner itself) before invalidating `task`; the runner
                // catches panics internally.
                unsafe { job.task.call() }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_quota_zero_extra_is_inline() {
        let pool = WorkerPool::new();
        let hits = AtomicUsize::new(0);
        pool.run_quota(0, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.spawned_workers(), 0, "no threads for inline work");
    }

    #[test]
    fn run_quota_enlists_helpers_and_completes() {
        let pool = WorkerPool::new();
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        pool.run_quota(3, &|| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= 1000 {
                break;
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 1000);
        assert!(pool.spawned_workers() <= 3);
        // The pool persists: a second dispatch reuses the workers.
        let before = pool.spawned_workers();
        cursor.store(0, Ordering::Relaxed);
        pool.run_quota(3, &|| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= 100 {
                break;
            }
        });
        assert_eq!(pool.spawned_workers(), before, "workers are reused");
    }

    #[test]
    fn run_quota_propagates_panics() {
        let pool = WorkerPool::new();
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run_quota(2, &|| panic!("boom"));
        }));
        assert!(r.is_err());
        // The pool survives a panicking task set.
        let ok = AtomicUsize::new(0);
        pool.run_quota(2, &|| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ok.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn fork_join_runs_both_sides() {
        let pool = WorkerPool::new();
        pool.reserve(2);
        for i in 0..32 {
            let (a, b) = pool.fork_join(|| i * 2, || i * 3);
            assert_eq!((a, b), (i * 2, i * 3));
        }
        let s = pool.stats();
        assert_eq!(s.forks_parallel + s.forks_inline, 32);
    }

    #[test]
    fn fork_join_without_reserve_stays_inline() {
        let pool = WorkerPool::new();
        let (a, b) = pool.fork_join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(pool.spawned_workers(), 0);
        assert_eq!(pool.stats().forks_inline, 1);
    }

    #[test]
    fn fork_join_propagates_child_panics() {
        let pool = WorkerPool::new();
        pool.reserve(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.fork_join(|| 1, || -> i32 { panic!("child boom") })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn fork_join_joins_the_child_before_a_caller_panic_unwinds() {
        // If `f` panics while `g` is in flight on a worker, the unwind
        // must not leave the frame before the child finished — the
        // worker borrows the caller's stack. The child's side effect
        // proves it ran to completion.
        let pool = WorkerPool::new();
        pool.reserve(2);
        for _ in 0..16 {
            let child_ran = AtomicUsize::new(0);
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.fork_join(
                    || -> i32 { panic!("caller boom") },
                    || child_ran.fetch_add(1, Ordering::Relaxed),
                )
            }));
            assert!(r.is_err());
            assert_eq!(child_ran.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn nested_forks_terminate() {
        // A fork tree deeper than the worker count must resolve inline
        // past capacity instead of deadlocking.
        let pool = WorkerPool::new();
        pool.reserve(3);
        fn tree(pool: &WorkerPool, depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = pool.fork_join(|| tree(pool, depth - 1), || tree(pool, depth - 1));
            a + b
        }
        assert_eq!(tree(&pool, 8), 256);
    }

    #[test]
    fn dropping_the_last_handle_shuts_down() {
        let pool = WorkerPool::new();
        pool.run_quota(2, &|| {});
        let clone = pool.clone();
        drop(pool);
        // Still alive through the second handle.
        clone.run_quota(2, &|| {});
        drop(clone); // workers asked to exit; nothing to assert beyond "no hang"
    }
}
