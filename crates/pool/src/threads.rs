//! The [`Threads`] knob: how wide a query may run on the worker pool.

/// Degree of parallelism for one analysis (symbolic execution and
/// per-path bounding alike).
///
/// The default is [`Threads::Auto`]. `Auto` honours the `GUBPI_THREADS`
/// environment variable (`off`, `auto`, or a positive worker count) so
/// whole test suites and CI jobs can be pinned without code changes;
/// explicit `Fixed`/`Off` settings ignore the environment.
///
/// With the persistent executor ([`crate::WorkerPool`]) the setting no
/// longer spawns threads per call: it caps how many pool workers may
/// *participate* in a given query. Reported bounds are bit-identical
/// across every setting.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Threads {
    /// Use `GUBPI_THREADS` if set, otherwise the available hardware
    /// parallelism.
    #[default]
    Auto,
    /// Exactly `n` workers (values of 0 and 1 both mean sequential).
    Fixed(usize),
    /// Sequential execution on the calling thread.
    Off,
}

impl Threads {
    /// Parses a `GUBPI_THREADS`-style string (`"off"`, `"auto"`, or a
    /// **positive** worker count).
    ///
    /// `"0"` is rejected rather than parsed as `Fixed(0)`: `Fixed(0)`
    /// silently clamps to one worker, so accepting it would make
    /// `GUBPI_THREADS=0` (or `repro --threads 0`) run sequentially while
    /// looking like a valid parallel setting. The CLI surfaces the
    /// `None` as an explicit error; the `GUBPI_THREADS` fallback inside
    /// [`Threads::worker_count`] degrades invalid values to sequential
    /// (never to full fan-out). Spell sequential as `off`.
    pub fn parse(s: &str) -> Option<Threads> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "seq" | "sequential" => Some(Threads::Off),
            "auto" | "" => Some(Threads::Auto),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(Threads::Fixed),
        }
    }

    /// The number of workers to use for `jobs` independent units of
    /// work. Never exceeds `jobs` (a 1-job query on an 8-worker pool
    /// resolves to 1 and runs inline — the pool is not even woken).
    pub fn worker_count(self, jobs: usize) -> usize {
        let raw = match self {
            Threads::Off => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => match std::env::var("GUBPI_THREADS") {
                Ok(v) => match Threads::parse(&v) {
                    Some(Threads::Auto) => hardware_threads(),
                    Some(Threads::Off) => 1,
                    Some(Threads::Fixed(n)) => n.max(1),
                    // An explicitly set but invalid GUBPI_THREADS
                    // (including "0") must not silently fan out to every
                    // core: degrade to sequential, the conservative
                    // reading of "the user tried to restrict threading".
                    None => 1,
                },
                Err(_) => hardware_threads(),
            },
        };
        raw.min(jobs.max(1))
    }
}

pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Threads::Off.worker_count(100), 1);
        assert_eq!(Threads::Fixed(0).worker_count(100), 1);
        assert_eq!(Threads::Fixed(4).worker_count(100), 4);
        // Never more workers than jobs.
        assert_eq!(Threads::Fixed(16).worker_count(3), 3);
        assert_eq!(Threads::Fixed(8).worker_count(1), 1);
        assert!(Threads::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn parse_accepts_the_env_syntax() {
        assert_eq!(Threads::parse("off"), Some(Threads::Off));
        assert_eq!(Threads::parse("auto"), Some(Threads::Auto));
        assert_eq!(Threads::parse("4"), Some(Threads::Fixed(4)));
        assert_eq!(Threads::parse(" 2 "), Some(Threads::Fixed(2)));
        assert_eq!(Threads::parse("bogus"), None);
    }

    #[test]
    fn parse_rejects_zero_workers() {
        // Regression: "0" used to parse as Fixed(0), which worker_count
        // silently clamps to 1 — a parallel-looking setting that ran
        // sequentially. Zero must be an error; sequential is "off".
        assert_eq!(Threads::parse("0"), None);
        assert_eq!(Threads::parse(" 0 "), None);
        assert_eq!(Threads::parse("00"), None);
    }
}
