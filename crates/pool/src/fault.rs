//! Deterministic fault injection at task boundaries.
//!
//! The scheduler calls [`fault_point`] once per region chunk (and the
//! sequential fast path does the same at its chunk boundaries), passing
//! the run's cancellation token when it has one. A global, explicitly
//! armed [`FaultPlan`] decides what happens at the `N`-th boundary
//! since arming:
//!
//! * `panic@N` — panic inside the task (the pool's panic containment
//!   must keep the process serviceable);
//! * `delay@N` — sleep a few milliseconds (perturbs steal schedules;
//!   bounds must stay bit-identical because replay order is
//!   deterministic);
//! * `cancel@N` — fire the run's cancellation token (exercises the
//!   anytime degraded-result path at an adversarial instant).
//!
//! Plans are armed programmatically ([`set_fault_plan`], used by the
//! chaos tests) or from the `GUBPI_FAULT` environment variable
//! ([`arm_fault_from_env`], wired into the serving daemon and `repro`).
//! The boundary counter is global and monotone from the moment of
//! arming, so a schedule is reproducible for a fixed workload. When no
//! plan is armed the hook is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cancel::CancelToken;

/// What an armed fault does when its boundary index is reached.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the task body.
    Panic,
    /// Sleep briefly, perturbing the steal schedule only.
    Delay,
    /// Fire the current run's cancellation token.
    Cancel,
}

/// An armed fault: `kind` fires at the `at`-th task boundary
/// (0-indexed) observed since the plan was armed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Zero-based boundary index at which to inject it.
    pub at: u64,
}

impl FaultPlan {
    /// Parses the `GUBPI_FAULT` syntax: `panic@N`, `delay@N` or
    /// `cancel@N`. Returns `None` for anything else (including the
    /// empty string), so an unset or garbled variable degrades to "no
    /// faults" rather than aborting a serving process.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let (kind, at) = spec.trim().split_once('@')?;
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "delay" => FaultKind::Delay,
            "cancel" => FaultKind::Cancel,
            _ => return None,
        };
        Some(FaultPlan {
            kind,
            at: at.parse().ok()?,
        })
    }
}

/// Fast gate: `false` means `fault_point` is a single relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The armed plan (if any); mutated only by `set_fault_plan`.
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// Task boundaries observed since the last arming.
static BOUNDARIES: AtomicU64 = AtomicU64::new(0);
/// Faults actually fired since the last arming (stats surface).
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Arms `plan` (or disarms with `None`) and resets the boundary and
/// injection counters. Affects every scheduler run in the process —
/// callers that share a process (tests!) must serialize around it.
pub fn set_fault_plan(plan: Option<FaultPlan>) {
    let mut slot = PLAN.lock().expect("fault plan poisoned");
    *slot = plan;
    BOUNDARIES.store(0, Ordering::SeqCst);
    INJECTED.store(0, Ordering::SeqCst);
    ARMED.store(plan.is_some(), Ordering::SeqCst);
}

/// Arms the plan described by `GUBPI_FAULT`, if set and well-formed.
/// Returns the armed plan.
pub fn arm_fault_from_env() -> Option<FaultPlan> {
    let plan = std::env::var("GUBPI_FAULT")
        .ok()
        .as_deref()
        .and_then(FaultPlan::parse);
    set_fault_plan(plan);
    plan
}

/// Faults fired since the plan was last armed.
pub fn faults_injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// The task-boundary hook. Called by the scheduler once per region
/// chunk; near-free (one relaxed load) unless a plan is armed.
///
/// `token` is the current run's cancellation token, when it has one —
/// `cancel@N` injections fire it; with no token they count the
/// boundary but inject nothing.
pub fn fault_point(token: Option<&CancelToken>) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let plan = match *PLAN.lock().expect("fault plan poisoned") {
        Some(p) => p,
        None => return,
    };
    let idx = BOUNDARIES.fetch_add(1, Ordering::SeqCst);
    if idx != plan.at {
        return;
    }
    INJECTED.fetch_add(1, Ordering::SeqCst);
    match plan.kind {
        FaultKind::Panic => panic!("injected fault: panic@{idx}"),
        FaultKind::Delay => std::thread::sleep(Duration::from_millis(2)),
        FaultKind::Cancel => {
            if let Some(t) = token {
                t.cancel();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_kinds_and_rejects_garbage() {
        assert_eq!(
            FaultPlan::parse("panic@3"),
            Some(FaultPlan {
                kind: FaultKind::Panic,
                at: 3
            })
        );
        assert_eq!(
            FaultPlan::parse(" delay@0 "),
            Some(FaultPlan {
                kind: FaultKind::Delay,
                at: 0
            })
        );
        assert_eq!(
            FaultPlan::parse("cancel@17"),
            Some(FaultPlan {
                kind: FaultKind::Cancel,
                at: 17
            })
        );
        for bad in [
            "", "panic", "panic@", "panic@x", "abort@1", "@3", "panic@-1",
        ] {
            assert_eq!(FaultPlan::parse(bad), None, "{bad:?}");
        }
    }

    // Behavioural coverage of `fault_point` lives in the scheduler's
    // chaos tests (`tests/serve_robustness.rs`), which serialize around
    // the global plan; unit-testing it here would race the other pool
    // tests in this binary.
}
