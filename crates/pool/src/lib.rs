//! `gubpi-pool` — the persistent work-stealing executor behind the
//! GuBPI analysis engine.
//!
//! One long-lived [`WorkerPool`] (shared process-wide by default, or
//! explicitly across `Analyzer` instances like a shared query cache)
//! executes a unified deterministic task model: [`Task::Path`] adopts a
//! whole symbolic path, [`Task::Regions`] processes one contiguous
//! chunk of a path's region space, and idle workers **steal** region
//! chunks from still-running dominant paths. All partial results are
//! replayed in (path index, region index) order, so every reported
//! bound is bit-identical across thread counts and steal schedules —
//! see [`run_jobs_with`] for the full argument.
//!
//! The crate sits at the bottom of the workspace (std only) so both the
//! symbolic executor (frontier forking via [`WorkerPool::fork_join`])
//! and the core analyzer (query scheduling via [`run_jobs_with`]) can
//! share one set of warm workers. `gubpi_core::pool` re-exports this
//! API.

mod cancel;
mod fault;
mod pool;
mod sched;
mod threads;

pub use cancel::CancelToken;
pub use fault::{
    arm_fault_from_env, fault_point, faults_injected, set_fault_plan, FaultKind, FaultPlan,
};
pub use pool::{PoolStats, WorkerPool};
pub use sched::{
    chunk_width, run_jobs_cancellable, run_jobs_with, PathJob, RegionFn, SweepProgress, Task,
    LANE_GRAIN,
};
pub use threads::Threads;
