//! Property-based tests for interval arithmetic.
//!
//! The central soundness property (Lemma 3.1 rests on it): whenever
//! `x ∈ X` and `y ∈ Y`, every lifted operation satisfies `x ∘ y ∈ X ∘I Y`.

use gubpi_interval::{widen, BoxN, Interval, Lattice};
use proptest::prelude::*;

/// A strategy for finite intervals with endpoints in `[-100, 100]`.
fn finite_interval() -> impl Strategy<Value = Interval> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(a, b)| Interval::from_unordered(a, b))
}

/// A strategy for an interval together with a member point.
fn interval_with_point() -> impl Strategy<Value = (Interval, f64)> {
    (finite_interval(), 0.0f64..=1.0).prop_map(|(i, t)| {
        let x = i.lo() + t * (i.hi() - i.lo());
        (i, x)
    })
}

proptest! {
    #[test]
    fn add_is_sound(((x_iv, x), (y_iv, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!((x_iv + y_iv).contains(x + y));
    }

    #[test]
    fn sub_is_sound(((x_iv, x), (y_iv, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!((x_iv - y_iv).contains(x - y));
    }

    #[test]
    fn mul_is_sound(((x_iv, x), (y_iv, y)) in (interval_with_point(), interval_with_point())) {
        let prod = x_iv * y_iv;
        // Allow one ulp of slack: endpoint arithmetic rounds to nearest.
        prop_assert!(prod.outward().contains(x * y), "{x}*{y} ∉ {prod:?}");
    }

    #[test]
    fn neg_abs_are_sound((x_iv, x) in interval_with_point()) {
        prop_assert!((-x_iv).contains(-x));
        prop_assert!(x_iv.abs().contains(x.abs()));
    }

    #[test]
    fn min_max_are_sound(((x_iv, x), (y_iv, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!(x_iv.min_i(y_iv).contains(x.min(y)));
        prop_assert!(x_iv.max_i(y_iv).contains(x.max(y)));
    }

    #[test]
    fn exp_sigmoid_are_sound((x_iv, x) in interval_with_point()) {
        prop_assert!(x_iv.exp().outward().contains(x.exp()));
        let s = 1.0 / (1.0 + (-x).exp());
        prop_assert!(x_iv.sigmoid().outward().contains(s));
    }

    #[test]
    fn powi_is_sound((x_iv, x) in interval_with_point(), n in 0i32..5) {
        prop_assert!(x_iv.powi(n).outward().contains(x.powi(n)));
    }

    #[test]
    fn recip_is_sound((x_iv, x) in interval_with_point()) {
        if x != 0.0 {
            prop_assert!(x_iv.recip().outward().contains(1.0 / x));
        }
    }

    #[test]
    fn join_is_lub(a in finite_interval(), b in finite_interval()) {
        let j = a.join(b);
        prop_assert!(a.subset_of(&j));
        prop_assert!(b.subset_of(&j));
    }

    #[test]
    fn meet_is_glb(a in finite_interval(), b in finite_interval()) {
        if let Some(m) = a.meet(b) {
            prop_assert!(m.subset_of(&a));
            prop_assert!(m.subset_of(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn split_partitions(i in finite_interval(), n in 1usize..8) {
        let parts = i.split(n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts[0].lo(), i.lo());
        prop_assert_eq!(parts[n - 1].hi(), i.hi());
        let total: f64 = parts.iter().map(Interval::width).sum();
        prop_assert!((total - i.width()).abs() <= 1e-9 * (1.0 + i.width().abs()));
        for w in parts.windows(2) {
            prop_assert!(w[0].almost_disjoint(&w[1]));
        }
    }

    #[test]
    fn widening_is_upper_bound_and_idempotent_limit(
        a in finite_interval(), b in finite_interval()
    ) {
        let la = Lattice::from(a);
        let lb = Lattice::from(b);
        let w = widen(la, lb);
        prop_assert!(la.join(lb).leq(w));
        // Widening twice with the same argument is stable.
        prop_assert_eq!(widen(w, lb), w);
    }

    #[test]
    fn lattice_laws(a in finite_interval(), b in finite_interval(), c in finite_interval()) {
        let (a, b, c) = (Lattice::from(a), Lattice::from(b), Lattice::from(c));
        // commutativity
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.meet(b), b.meet(a));
        // associativity of join
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        // absorption (one direction that holds for hull-join):
        prop_assert!(a.leq(a.join(b)));
        prop_assert!(a.meet(b).leq(a));
    }

    #[test]
    fn grid_volume_sums(b_dims in proptest::collection::vec(finite_interval(), 1..4),
                        splits in proptest::collection::vec(1usize..4, 1..4)) {
        let n = b_dims.len().min(splits.len());
        let b = BoxN::new(b_dims[..n].to_vec());
        let g = b.grid(&splits[..n]);
        let total: f64 = g.iter().map(BoxN::volume).sum();
        prop_assert!((total - b.volume()).abs() <= 1e-6 * (1.0 + b.volume().abs()));
    }
}
