//! Directed rounding helpers.
//!
//! Outward rounding lets interval results absorb one floating-point
//! rounding error per operation, so that computed bounds remain sound even
//! though the endpoint arithmetic itself rounds to nearest.

/// The next representable `f64` strictly below `x` (identity on `−∞`).
///
/// Zero steps to the largest negative subnormal; `NaN` is propagated.
#[inline]
pub fn next_after_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    f64::next_down(x)
}

/// The next representable `f64` strictly above `x` (identity on `+∞`).
#[inline]
pub fn next_after_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    f64::next_up(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_are_strict_for_finite_values() {
        for &x in &[0.0, 1.0, -1.0, 1e300, -1e-300, 0.1] {
            assert!(next_after_down(x) < x, "down({x})");
            assert!(next_after_up(x) > x, "up({x})");
        }
    }

    #[test]
    fn infinities_are_fixed_points() {
        assert_eq!(next_after_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(next_after_up(f64::INFINITY), f64::INFINITY);
        // The *other* direction does step off infinity.
        assert!(next_after_down(f64::INFINITY).is_finite());
        assert!(next_after_up(f64::NEG_INFINITY).is_finite());
    }

    #[test]
    fn step_is_one_ulp() {
        let x = 1.0f64;
        let up = next_after_up(x);
        assert_eq!(up, x + f64::EPSILON);
    }
}
