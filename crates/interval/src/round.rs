//! Directed rounding helpers.
//!
//! Outward rounding lets interval results absorb one floating-point
//! rounding error per operation, so that computed bounds remain sound even
//! though the endpoint arithmetic itself rounds to nearest.

/// The next representable `f64` strictly below `x` (identity on `−∞`).
///
/// Zero steps to the largest negative subnormal; `NaN` is propagated.
#[inline]
pub fn next_after_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    f64::next_down(x)
}

/// The next representable `f64` strictly above `x` (identity on `+∞`).
#[inline]
pub fn next_after_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    f64::next_up(x)
}

/// The rounding error of the floating-point sum `s = a + b` (finite
/// `s`): the exact residue `a + b − s`, by the Møller–Knuth two-sum
/// error-free transformation. Its sign tells a directed rounding which
/// way the computed sum missed.
fn two_sum_err(a: f64, b: f64, s: f64) -> f64 {
    let bv = s - a;
    let av = s - bv;
    (b - bv) + (a - av)
}

/// The sum `a + b` rounded towards `+∞` — exact when the
/// floating-point sum is exact, one ulp up only when round-to-nearest
/// actually rounded down. An overflow to `−∞` (both operands finite)
/// is repaired to `−MAX`, the tightest representable upper bound.
pub fn add_up(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        return s; // ∞ − ∞: no meaningful bound, propagate
    }
    if s == f64::NEG_INFINITY && a != f64::NEG_INFINITY && b != f64::NEG_INFINITY {
        return -f64::MAX;
    }
    if !s.is_finite() {
        return s;
    }
    if two_sum_err(a, b, s) > 0.0 {
        next_after_up(s)
    } else {
        s
    }
}

/// The sum `a + b` rounded towards `−∞` (see [`add_up`]).
pub fn add_down(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        return s;
    }
    if s == f64::INFINITY && a != f64::INFINITY && b != f64::INFINITY {
        return f64::MAX;
    }
    if !s.is_finite() {
        return s;
    }
    if two_sum_err(a, b, s) < 0.0 {
        next_after_down(s)
    } else {
        s
    }
}

/// An upper bound on `base^exp` for `base ∈ [0, 1]`, computed by
/// square-and-multiply with every partial product rounded **up** one
/// ulp. `pow_up(_, 0)` is exactly `1.0` (including `0^0`, the empty
/// product), and `pow_up(0.0, n)` is exactly `0.0` for `n > 0`.
///
/// Soundness: for non-negative reals, if `p ≥ base^m` and `q ≥ base^n`
/// then `up(p · q) ≥ base^{m+n}` — upper-rounding each step preserves
/// the invariant, so the result dominates the exact power. Used by the
/// tail-enclosure formulas in `gubpi_core::pathbounds`, where the
/// decay factor `c_eff^{k₀ − k}` must never be under-approximated.
pub fn pow_up(base: f64, exp: u32) -> f64 {
    debug_assert!((0.0..=1.0).contains(&base), "pow_up expects base in [0, 1]");
    let mut result = 1.0f64;
    let mut square = base;
    let mut n = exp;
    while n > 0 {
        if n & 1 == 1 {
            result = next_after_up(result * square).min(1.0);
        }
        n >>= 1;
        if n > 0 {
            square = next_after_up(square * square).min(1.0);
        }
    }
    // `0 · anything` and the final min keep the exact endpoints exact.
    if base == 0.0 && exp > 0 {
        0.0
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_are_strict_for_finite_values() {
        for &x in &[0.0, 1.0, -1.0, 1e300, -1e-300, 0.1] {
            assert!(next_after_down(x) < x, "down({x})");
            assert!(next_after_up(x) > x, "up({x})");
        }
    }

    #[test]
    fn infinities_are_fixed_points() {
        assert_eq!(next_after_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(next_after_up(f64::INFINITY), f64::INFINITY);
        // The *other* direction does step off infinity.
        assert!(next_after_down(f64::INFINITY).is_finite());
        assert!(next_after_up(f64::NEG_INFINITY).is_finite());
    }

    #[test]
    fn step_is_one_ulp() {
        let x = 1.0f64;
        let up = next_after_up(x);
        assert_eq!(up, x + f64::EPSILON);
    }

    #[test]
    fn zero_steps_into_the_subnormals() {
        // Both signed zeros step to the nearest subnormal on either
        // side — the steps must cross zero, not saturate at it.
        let tiny = f64::from_bits(1); // smallest positive subnormal
        for z in [0.0f64, -0.0f64] {
            assert_eq!(next_after_up(z), tiny, "up({z})");
            assert_eq!(next_after_down(z), -tiny, "down({z})");
        }
    }

    #[test]
    fn subnormal_steps_stay_strict_and_adjacent() {
        let tiny = f64::from_bits(1);
        assert_eq!(next_after_down(tiny), 0.0);
        assert_eq!(next_after_up(-tiny), -0.0);
        // Largest subnormal ↔ smallest normal is one step.
        let largest_subnormal = f64::from_bits(0x000F_FFFF_FFFF_FFFF);
        assert!(largest_subnormal < f64::MIN_POSITIVE);
        assert_eq!(next_after_up(largest_subnormal), f64::MIN_POSITIVE);
        assert_eq!(next_after_down(f64::MIN_POSITIVE), largest_subnormal);
    }

    #[test]
    fn max_steps_to_infinity_and_back() {
        assert_eq!(next_after_up(f64::MAX), f64::INFINITY);
        assert_eq!(next_after_down(f64::INFINITY), f64::MAX);
        assert_eq!(next_after_down(-f64::MAX), f64::NEG_INFINITY);
        assert_eq!(next_after_up(f64::NEG_INFINITY), -f64::MAX);
    }

    #[test]
    fn directed_sums_are_exact_when_the_sum_is() {
        assert_eq!(add_up(0.5, 0.25), 0.75);
        assert_eq!(add_down(0.5, 0.25), 0.75);
        assert_eq!(add_up(1.0, -1.0), 0.0);
        assert_eq!(add_down(1.0, -1.0), 0.0);
        assert_eq!(add_up(1.0, 0.0), 1.0);
        assert_eq!(add_down(-3.0, 0.0), -3.0);
    }

    #[test]
    fn directed_sums_step_only_against_the_rounding() {
        // 1 + ε/4 rounds down to 1: the upper bound must step, the
        // lower bound must not.
        let tiny = f64::EPSILON / 4.0;
        assert_eq!(add_up(1.0, tiny), next_after_up(1.0));
        assert_eq!(add_down(1.0, tiny), 1.0);
        // Mirrored: 1 − ε/4 rounds up to 1.
        assert_eq!(add_down(1.0, -tiny), next_after_down(1.0));
        assert_eq!(add_up(1.0, -tiny), 1.0);
        // The bracket always contains the true sum.
        for &(a, b) in &[(0.1, 0.2), (1e16, 1.0), (-0.3, 0.7), (1e-300, -1e-300)] {
            assert!(add_down(a, b) <= a + b && a + b <= add_up(a, b));
        }
    }

    #[test]
    fn directed_sums_handle_overflow_and_infinities() {
        assert_eq!(add_up(f64::MAX, f64::MAX), f64::INFINITY);
        assert_eq!(add_down(f64::MAX, f64::MAX), f64::MAX);
        assert_eq!(add_down(-f64::MAX, -f64::MAX), f64::NEG_INFINITY);
        assert_eq!(add_up(-f64::MAX, -f64::MAX), -f64::MAX);
        assert_eq!(add_up(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(add_down(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        assert!(add_up(f64::INFINITY, f64::NEG_INFINITY).is_nan());
    }

    #[test]
    fn pow_up_dominates_exact_powers() {
        // Exact endpoints stay exact…
        assert_eq!(pow_up(0.5, 0), 1.0);
        assert_eq!(pow_up(0.0, 0), 1.0);
        assert_eq!(pow_up(0.0, 7), 0.0);
        assert_eq!(pow_up(1.0, u32::MAX), 1.0);
        // …and everything else stays an upper bound on the real power,
        // within a few ulps of it.
        let p = pow_up(0.5, 3);
        assert!((0.125..0.125 * (1.0 + 8.0 * f64::EPSILON)).contains(&p));
        for &c in &[0.1, 0.3, 0.5, 0.9, 0.999] {
            for exp in [1u32, 2, 5, 17, 64, 1000] {
                let up = pow_up(c, exp);
                assert!(up >= c.powi(exp as i32), "pow_up({c}, {exp})");
                assert!(up <= 1.0);
            }
        }
        // Deep powers underflow towards zero without panicking.
        assert!(pow_up(0.5, 10_000) >= 0.0);
        assert!(pow_up(0.5, 10_000) < 1e-300);
    }
}
