//! The core [`Interval`] type and its arithmetic.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::round::{next_after_down, next_after_up};

/// A closed interval `[lo, hi]` over the extended reals.
///
/// Invariants: `lo ≤ hi`, neither endpoint is `NaN`. `lo` may be `−∞` and
/// `hi` may be `+∞` (the paper's `[0, ∞]` notation denotes exactly such an
/// interval).
///
/// # Example
///
/// ```
/// use gubpi_interval::Interval;
/// let w = Interval::new(0.25, 0.5);
/// assert!(w.contains(0.3));
/// assert_eq!(w.width(), 0.25);
/// ```
#[derive(Copy, Clone, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The unit interval `[0, 1]`, the co-domain of `sample`.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };
    /// The whole extended real line `[−∞, ∞]` (the paper's `⊤` value bound).
    pub const REAL: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };
    /// The non-negative reals `[0, ∞]` (the `⊤` weight bound).
    pub const NON_NEG: Interval = Interval {
        lo: 0.0,
        hi: f64::INFINITY,
    };
    /// The point interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };
    /// The point interval `[1, 1]`, written `1` in the typing rules.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is `NaN`. Use
    /// [`Interval::try_new`] for a fallible constructor.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval::try_new(lo, hi)
            .unwrap_or_else(|| panic!("invalid interval endpoints [{lo}, {hi}]"))
    }

    /// Creates the interval `[lo, hi]`, or `None` when `lo > hi` or an
    /// endpoint is `NaN`.
    #[inline]
    pub fn try_new(lo: f64, hi: f64) -> Option<Interval> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            None
        } else {
            Some(Interval { lo, hi })
        }
    }

    /// The degenerate (point) interval `[r, r]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is `NaN`.
    #[inline]
    pub fn point(r: f64) -> Interval {
        Interval::new(r, r)
    }

    /// Creates `[lo, hi]` after sorting the endpoints.
    #[inline]
    pub fn from_unordered(a: f64, b: f64) -> Interval {
        Interval::new(a.min(b), a.max(b))
    }

    /// The convex hull of a non-empty collection of intervals.
    ///
    /// Returns `None` for an empty iterator.
    pub fn hull_of<I: IntoIterator<Item = Interval>>(iter: I) -> Option<Interval> {
        iter.into_iter().reduce(|a, b| a.join(b))
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi − lo` (∞ for unbounded intervals, 0 for points).
    #[inline]
    pub fn width(&self) -> f64 {
        // `∞ − ∞` would be NaN; an interval like `[∞, ∞]` has width 0.
        if self.lo == self.hi {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Midpoint; finite intervals only give meaningful results.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        if self.lo.is_finite() && self.hi.is_finite() {
            0.5 * (self.lo + self.hi)
        } else if self.lo.is_finite() {
            self.lo
        } else if self.hi.is_finite() {
            self.hi
        } else {
            0.0
        }
    }

    /// Does the interval contain the point `x`?
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Is `self` a subset of `other` (the paper's `⊑` on intervals)?
    #[inline]
    pub fn subset_of(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Do the two intervals overlap (share at least one point)?
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Are the intervals *almost disjoint* (§3.3): overlap at most at a
    /// single shared endpoint?
    #[inline]
    pub fn almost_disjoint(&self, other: &Interval) -> bool {
        self.hi <= other.lo || other.hi <= self.lo
    }

    /// Greatest lower bound `⊓` (intersection), or `None` when disjoint.
    #[inline]
    pub fn meet(&self, other: Interval) -> Option<Interval> {
        Interval::try_new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Least upper bound `⊔` (convex hull).
    #[inline]
    pub fn join(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Is this a single point `[r, r]`?
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Are both endpoints finite?
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Splits the interval at its midpoint into two halves.
    ///
    /// # Panics
    ///
    /// Panics on non-finite intervals.
    pub fn bisect(&self) -> (Interval, Interval) {
        assert!(self.is_finite(), "cannot bisect an unbounded interval");
        let m = self.midpoint();
        (Interval::new(self.lo, m), Interval::new(m, self.hi))
    }

    /// Splits the interval into `n ≥ 1` equal-width closed sub-intervals
    /// (which pairwise share endpoints, hence are *almost disjoint*).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the interval is unbounded.
    pub fn split(&self, n: usize) -> Vec<Interval> {
        assert!(n > 0, "split requires n >= 1");
        assert!(self.is_finite(), "cannot split an unbounded interval");
        let step = self.width() / n as f64;
        let mut parts = Vec::with_capacity(n);
        let mut lo = self.lo;
        for i in 0..n {
            let hi = if i + 1 == n {
                self.hi
            } else {
                self.lo + (i + 1) as f64 * step
            };
            parts.push(Interval::new(lo, hi.max(lo)));
            lo = hi.max(lo);
        }
        let _ = step;
        parts
    }

    /// Nudges both endpoints outward by one ulp, giving a strict superset
    /// that absorbs one rounding error of the preceding computation.
    #[inline]
    pub fn outward(&self) -> Interval {
        Interval {
            lo: next_after_down(self.lo),
            hi: next_after_up(self.hi),
        }
    }

    /// Interval absolute value.
    pub fn abs(&self) -> Interval {
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            Interval::new(-self.hi, -self.lo)
        } else {
            Interval::new(0.0, self.hi.max(-self.lo))
        }
    }

    /// Pointwise minimum `minI` (Appendix A.2).
    pub fn min_i(&self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise maximum `maxI` (Appendix A.2).
    pub fn max_i(&self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Interval reciprocal `1 / self`.
    ///
    /// Returns `[−∞, ∞]` when `0` lies strictly inside the interval (the
    /// image is then disconnected and we take its hull).
    pub fn recip(&self) -> Interval {
        if self.lo > 0.0 || self.hi < 0.0 {
            Interval::from_unordered(recip_ext(self.lo), recip_ext(self.hi))
        } else if self.lo == 0.0 && self.hi == 0.0 {
            // 1/[0,0]: undefined; conventionally everything.
            Interval::REAL
        } else if self.lo == 0.0 {
            Interval::new(recip_ext(self.hi), f64::INFINITY)
        } else if self.hi == 0.0 {
            Interval::new(f64::NEG_INFINITY, recip_ext(self.lo))
        } else {
            Interval::REAL
        }
    }

    /// Interval division `self / other`.
    ///
    /// When the divisor is sign-definite and everything is finite, the
    /// endpoints are direct `f64` quotients (a single rounding, matching
    /// scalar division exactly on point intervals). Otherwise falls back
    /// to `self * other.recip()`, and to `[−∞, ∞]` when `0` lies strictly
    /// inside the divisor.
    pub fn div(&self, other: Interval) -> Interval {
        let sign_definite = other.lo > 0.0 || other.hi < 0.0;
        if sign_definite && self.is_finite() && other.is_finite() {
            let cands = [
                self.lo / other.lo,
                self.lo / other.hi,
                self.hi / other.lo,
                self.hi / other.hi,
            ];
            let mut lo = cands[0];
            let mut hi = cands[0];
            for &c in &cands[1..] {
                if c < lo {
                    lo = c;
                }
                if c > hi {
                    hi = c;
                }
            }
            Interval { lo, hi }
        } else {
            *self * other.recip()
        }
    }

    /// Lifts a monotonically *increasing* function (Appendix A.2):
    /// `f^I([a, b]) = [f(a), f(b)]`.
    pub fn map_increasing(&self, f: impl Fn(f64) -> f64) -> Interval {
        Interval::new(f(self.lo), f(self.hi))
    }

    /// Lifts a monotonically *decreasing* function (Appendix A.2):
    /// `f^I([a, b]) = [f(b), f(a)]`.
    pub fn map_decreasing(&self, f: impl Fn(f64) -> f64) -> Interval {
        Interval::new(f(self.hi), f(self.lo))
    }

    /// Lifts a *unimodal* function with a maximum at `mode` (increasing on
    /// `(−∞, mode]`, decreasing on `[mode, ∞)`) — e.g. a normal pdf.
    pub fn map_unimodal_max(&self, mode: f64, f: impl Fn(f64) -> f64) -> Interval {
        if self.hi <= mode {
            self.map_increasing(f)
        } else if self.lo >= mode {
            self.map_decreasing(f)
        } else {
            let top = f(mode);
            let bottom = f(self.lo).min(f(self.hi));
            Interval::new(bottom, top)
        }
    }

    /// Interval exponential (monotone increasing).
    pub fn exp(&self) -> Interval {
        self.map_increasing(f64::exp)
    }

    /// Interval natural logarithm; values `≤ 0` map to `−∞`.
    pub fn ln(&self) -> Interval {
        let f = |x: f64| if x <= 0.0 { f64::NEG_INFINITY } else { x.ln() };
        self.map_increasing(f)
    }

    /// Interval square root; the domain is clipped at `0`.
    pub fn sqrt(&self) -> Interval {
        let f = |x: f64| if x <= 0.0 { 0.0 } else { x.sqrt() };
        self.map_increasing(f)
    }

    /// Interval logistic sigmoid `1 / (1 + e^{−x})` (monotone increasing).
    pub fn sigmoid(&self) -> Interval {
        self.map_increasing(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Integer power `self^n`.
    pub fn powi(&self, n: i32) -> Interval {
        if n == 0 {
            return Interval::ONE;
        }
        if n < 0 {
            return self.powi(-n).recip();
        }
        if n % 2 == 1 {
            // odd: monotone increasing
            self.map_increasing(|x| x.powi(n))
        } else {
            // even: unimodal minimum at 0
            let a = self.abs();
            a.map_increasing(|x| x.powi(n))
        }
    }

    /// Truncates the interval to be a subset of `[0, ∞]`, the operation
    /// `⊓ [0, ∞]` used by the `score` typing rule; empty meets clamp to
    /// `[0, 0]`.
    pub fn clamp_non_neg(&self) -> Interval {
        self.meet(Interval::NON_NEG).unwrap_or(Interval::ZERO)
    }
}

/// Extended-real reciprocal: `1/±∞ = 0`, `1/0 = ∞` (sign handled by caller).
fn recip_ext(x: f64) -> f64 {
    if x == 0.0 {
        f64::INFINITY
    } else {
        1.0 / x
    }
}

/// Extended-real product with the convention `0 · ±∞ = 0`.
#[inline]
pub(crate) fn mul_ext(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

impl Add for Interval {
    type Output = Interval;
    #[inline]
    fn add(self, rhs: Interval) -> Interval {
        // `−∞ + ∞` cannot occur within one endpoint pair of valid
        // intervals in the same position (lo+lo, hi+hi) unless mixing
        // opposite infinities; guard by NaN-repair toward the safe side.
        let lo = self.lo + rhs.lo;
        let hi = self.hi + rhs.hi;
        Interval {
            lo: if lo.is_nan() { f64::NEG_INFINITY } else { lo },
            hi: if hi.is_nan() { f64::INFINITY } else { hi },
        }
    }
}

impl Sub for Interval {
    type Output = Interval;
    #[inline]
    fn sub(self, rhs: Interval) -> Interval {
        self + (-rhs)
    }
}

impl Neg for Interval {
    type Output = Interval;
    #[inline]
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let cands = [
            mul_ext(self.lo, rhs.lo),
            mul_ext(self.lo, rhs.hi),
            mul_ext(self.hi, rhs.lo),
            mul_ext(self.hi, rhs.hi),
        ];
        let mut lo = cands[0];
        let mut hi = cands[0];
        for &c in &cands[1..] {
            if c < lo {
                lo = c;
            }
            if c > hi {
                hi = c;
            }
        }
        Interval { lo, hi }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?}]", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "[{:.*}, {:.*}]", prec, self.lo, prec, self.hi)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl From<f64> for Interval {
    fn from(r: f64) -> Interval {
        Interval::point(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(-1.0, 2.0);
        assert_eq!(i.lo(), -1.0);
        assert_eq!(i.hi(), 2.0);
        assert_eq!(i.width(), 3.0);
        assert_eq!(i.midpoint(), 0.5);
        assert!(Interval::try_new(2.0, 1.0).is_none());
        assert!(Interval::try_new(f64::NAN, 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn invalid_construction_panics() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn addition_matches_appendix_a2() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(10.0, 20.0);
        assert_eq!(a + b, Interval::new(11.0, 22.0));
        assert_eq!(a - b, Interval::new(-19.0, -8.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
    }

    #[test]
    fn multiplication_sign_cases() {
        let pos = Interval::new(2.0, 3.0);
        let neg = Interval::new(-3.0, -2.0);
        let mix = Interval::new(-1.0, 2.0);
        assert_eq!(pos * pos, Interval::new(4.0, 9.0));
        assert_eq!(pos * neg, Interval::new(-9.0, -4.0));
        assert_eq!(neg * neg, Interval::new(4.0, 9.0));
        assert_eq!(mix * pos, Interval::new(-3.0, 6.0));
        assert_eq!(mix * mix, Interval::new(-2.0, 4.0));
    }

    #[test]
    fn zero_times_infinity_is_zero() {
        let w = Interval::new(0.0, f64::INFINITY);
        let z = Interval::ZERO;
        assert_eq!(w * z, Interval::ZERO);
        assert_eq!(z * w, Interval::ZERO);
        // [0,1] × [0,∞] = [0,∞]
        assert_eq!(Interval::UNIT * w, w);
    }

    #[test]
    fn abs_min_max() {
        let i = Interval::new(-2.0, 1.0);
        assert_eq!(i.abs(), Interval::new(0.0, 2.0));
        assert_eq!(Interval::new(-3.0, -1.0).abs(), Interval::new(1.0, 3.0));
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.min_i(b), Interval::new(0.0, 3.0));
        assert_eq!(a.max_i(b), Interval::new(2.0, 5.0));
    }

    #[test]
    fn meet_join_subset() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.meet(b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.join(b), Interval::new(0.0, 3.0));
        assert!(Interval::new(1.0, 2.0).subset_of(&a));
        assert!(!a.subset_of(&b));
        let c = Interval::new(5.0, 6.0);
        assert_eq!(a.meet(c), None);
    }

    #[test]
    fn almost_disjoint_shares_endpoint() {
        let a = Interval::new(0.0, 0.5);
        let b = Interval::new(0.5, 1.0);
        let c = Interval::new(0.4, 1.0);
        assert!(a.almost_disjoint(&b));
        assert!(!a.almost_disjoint(&c));
    }

    #[test]
    fn recip_and_div() {
        assert_eq!(Interval::new(2.0, 4.0).recip(), Interval::new(0.25, 0.5));
        assert_eq!(
            Interval::new(-4.0, -2.0).recip(),
            Interval::new(-0.5, -0.25)
        );
        assert_eq!(Interval::new(-1.0, 1.0).recip(), Interval::REAL);
        assert_eq!(
            Interval::new(0.0, 2.0).recip(),
            Interval::new(0.5, f64::INFINITY)
        );
        let x = Interval::new(1.0, 2.0);
        let y = Interval::new(2.0, 4.0);
        assert_eq!(x.div(y), Interval::new(0.25, 1.0));
    }

    #[test]
    fn split_covers_and_is_compatible() {
        let i = Interval::new(0.0, 1.0);
        let parts = i.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].lo(), 0.0);
        assert_eq!(parts[3].hi(), 1.0);
        for w in parts.windows(2) {
            assert_eq!(w[0].hi(), w[1].lo());
            assert!(w[0].almost_disjoint(&w[1]));
        }
    }

    #[test]
    fn unimodal_lifting_of_a_bump() {
        // f(x) = 1 − |x| has its max at 0.
        let f = |x: f64| 1.0 - x.abs();
        let left = Interval::new(-2.0, -1.0).map_unimodal_max(0.0, f);
        assert_eq!(left, Interval::new(-1.0, 0.0));
        let strad = Interval::new(-0.5, 1.0).map_unimodal_max(0.0, f);
        assert_eq!(strad, Interval::new(0.0, 1.0));
    }

    #[test]
    fn powers() {
        let i = Interval::new(-2.0, 3.0);
        assert_eq!(i.powi(2), Interval::new(0.0, 9.0));
        assert_eq!(i.powi(3), Interval::new(-8.0, 27.0));
        assert_eq!(i.powi(0), Interval::ONE);
    }

    #[test]
    fn outward_strictly_contains() {
        let i = Interval::new(0.1, 0.2);
        let o = i.outward();
        assert!(o.lo() < i.lo());
        assert!(o.hi() > i.hi());
        assert!(i.subset_of(&o));
    }

    #[test]
    fn clamp_non_neg_matches_score_rule() {
        assert_eq!(
            Interval::new(-1.0, 2.0).clamp_non_neg(),
            Interval::new(0.0, 2.0)
        );
        assert_eq!(Interval::new(-2.0, -1.0).clamp_non_neg(), Interval::ZERO);
        assert_eq!(
            Interval::new(1.0, 2.0).clamp_non_neg(),
            Interval::new(1.0, 2.0)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Interval::new(0.5, 1.0)), "[0.5, 1]");
        assert_eq!(format!("{:.2}", Interval::new(0.5, 1.0)), "[0.50, 1.00]");
    }
}
