//! Interval arithmetic for guaranteed posterior bounds.
//!
//! This crate provides the numeric substrate of the GuBPI reproduction:
//! closed intervals over the extended reals `R ∪ {−∞, +∞}` (§3.1 of the
//! paper), the interval lattice with bottom element and widening operator
//! used by the weight-aware type system (Appendix A.1 and D), and
//! `n`-dimensional boxes used by the interval trace semantics and the
//! polytope-based linear semantics (§6.4).
//!
//! # Conventions
//!
//! * Intervals are **closed**: `[a, b] = { x | a ≤ x ≤ b }` with
//!   `a ∈ R ∪ {−∞}`, `b ∈ R ∪ {+∞}` and `a ≤ b`. Following the paper we
//!   write `[0, ∞]` rather than `[0, ∞)`.
//! * The product `0 · ±∞` is defined to be `0`, matching the
//!   measure-theoretic convention used for weights (a weight of `0`
//!   annihilates even an unbounded score bound).
//! * `NaN` endpoints are rejected at construction time.
//!
//! # Example
//!
//! ```
//! use gubpi_interval::Interval;
//!
//! let x = Interval::new(0.0, 1.0);
//! let y = Interval::new(2.0, 3.0);
//! assert_eq!(x + y, Interval::new(2.0, 4.0));
//! assert!((x * y).contains(1.7));
//! ```

mod boxes;
mod interval;
mod lattice;
mod round;
pub mod simd;

pub use boxes::BoxN;
pub use interval::Interval;
pub use lattice::{widen, Lattice};
pub use round::{add_down, add_up, next_after_down, next_after_up, pow_up};
