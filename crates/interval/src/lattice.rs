//! The interval lattice with bottom element, and the widening operator.
//!
//! Appendix A.1 of the paper turns the poset of intervals under inclusion
//! into a lattice by adjoining a bottom element `⊥` (the empty interval).
//! The constraint solver of the weight-aware type system (Appendix D)
//! iterates over this lattice and uses the widening operator `∇` to break
//! infinite ascending chains.

use std::fmt;

use crate::Interval;

/// An element of the interval lattice: either `⊥` (empty) or an interval.
///
/// # Example
///
/// ```
/// use gubpi_interval::{Interval, Lattice};
///
/// let a = Lattice::from(Interval::new(0.0, 1.0));
/// assert_eq!(Lattice::Bottom.join(a), a);
/// assert_eq!(Lattice::Bottom.meet(a), Lattice::Bottom);
/// ```
#[derive(Copy, Clone, PartialEq, Default)]
pub enum Lattice {
    /// The empty interval `⊥`.
    #[default]
    Bottom,
    /// A non-empty interval.
    Elem(Interval),
}

impl Lattice {
    /// Least upper bound `⊔`.
    pub fn join(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Bottom, x) | (x, Lattice::Bottom) => x,
            (Lattice::Elem(a), Lattice::Elem(b)) => Lattice::Elem(a.join(b)),
        }
    }

    /// Greatest lower bound `⊓`; disjoint intervals meet at `⊥`.
    pub fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
            (Lattice::Elem(a), Lattice::Elem(b)) => match a.meet(b) {
                Some(i) => Lattice::Elem(i),
                None => Lattice::Bottom,
            },
        }
    }

    /// The partial order `⊑` (with `⊥ ⊑ x` for all `x`).
    pub fn leq(self, other: Lattice) -> bool {
        match (self, other) {
            (Lattice::Bottom, _) => true,
            (_, Lattice::Bottom) => false,
            (Lattice::Elem(a), Lattice::Elem(b)) => a.subset_of(&b),
        }
    }

    /// Extracts the interval, or `None` at `⊥`.
    pub fn interval(self) -> Option<Interval> {
        match self {
            Lattice::Bottom => None,
            Lattice::Elem(i) => Some(i),
        }
    }

    /// Extracts the interval, substituting `fallback` at `⊥`.
    pub fn interval_or(self, fallback: Interval) -> Interval {
        self.interval().unwrap_or(fallback)
    }

    /// Is this the bottom element?
    pub fn is_bottom(self) -> bool {
        matches!(self, Lattice::Bottom)
    }
}

impl From<Interval> for Lattice {
    fn from(i: Interval) -> Lattice {
        Lattice::Elem(i)
    }
}

impl fmt::Debug for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lattice::Bottom => write!(f, "⊥"),
            Lattice::Elem(i) => write!(f, "{i:?}"),
        }
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lattice::Bottom => write!(f, "⊥"),
            Lattice::Elem(i) => fmt::Display::fmt(i, f),
        }
    }
}

/// The widening operator `∇` of Appendix D.3, with landmark thresholds.
///
/// `widen(old, new)` over-approximates `old ⊔ new`; any endpoint of `new`
/// that escapes `old` is pushed outward to the next landmark in
/// `{−∞, 0, 1, +∞}`. The landmarks `0` and `1` matter for *weight*
/// variables: a recursive score chain like `ν ⊒ 0.5 · ν ⊔ 1` stabilises
/// at the precise `[0, 1]` instead of `[−∞, 1]`. Each endpoint can move
/// through the finite landmark set at most a fixed number of times, so
/// every ascending chain stabilises.
pub fn widen(old: Lattice, new: Lattice) -> Lattice {
    match (old, new) {
        (Lattice::Bottom, x) | (x, Lattice::Bottom) => x,
        (Lattice::Elem(a), Lattice::Elem(b)) => {
            let lo = if b.lo() < a.lo() {
                // largest landmark ≤ b.lo()
                if b.lo() >= 1.0 {
                    1.0
                } else if b.lo() >= 0.0 {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            } else {
                a.lo()
            };
            let hi = if b.hi() > a.hi() {
                // smallest landmark ≥ b.hi()
                if b.hi() <= 0.0 {
                    0.0
                } else if b.hi() <= 1.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                a.hi()
            };
            Lattice::Elem(Interval::new(lo, hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(lo: f64, hi: f64) -> Lattice {
        Lattice::Elem(Interval::new(lo, hi))
    }

    #[test]
    fn bottom_is_identity_for_join_and_absorbing_for_meet() {
        let x = e(0.0, 1.0);
        assert_eq!(Lattice::Bottom.join(x), x);
        assert_eq!(x.join(Lattice::Bottom), x);
        assert_eq!(Lattice::Bottom.meet(x), Lattice::Bottom);
        assert!(Lattice::Bottom.leq(x));
        assert!(!x.leq(Lattice::Bottom));
    }

    #[test]
    fn disjoint_meet_is_bottom() {
        assert_eq!(e(0.0, 1.0).meet(e(2.0, 3.0)), Lattice::Bottom);
        assert_eq!(e(0.0, 1.5).meet(e(1.0, 3.0)), e(1.0, 1.5));
    }

    #[test]
    fn widening_pushes_escaping_endpoints_outward() {
        // Matches the definition in Appendix D.3 (with landmarks).
        assert_eq!(widen(e(0.0, 1.0), e(0.5, 0.8)), e(0.0, 1.0));
        assert_eq!(widen(e(0.0, 1.0), e(0.0, 2.0)), e(0.0, f64::INFINITY));
        assert_eq!(widen(e(0.0, 1.0), e(-1.0, 1.0)), e(f64::NEG_INFINITY, 1.0));
        assert_eq!(
            widen(e(0.0, 1.0), e(-1.0, 2.0)),
            Lattice::Elem(Interval::REAL)
        );
        assert_eq!(widen(Lattice::Bottom, e(1.0, 2.0)), e(1.0, 2.0));
    }

    #[test]
    fn widening_lands_on_weight_landmarks() {
        // A shrinking weight chain stabilises at [0, 1], not [−∞, 1].
        assert_eq!(widen(e(0.25, 1.0), e(0.125, 1.0)), e(0.0, 1.0));
        // Growth capped below 1 lands on 1 first.
        assert_eq!(widen(e(0.0, 0.5), e(0.0, 0.75)), e(0.0, 1.0));
        assert_eq!(widen(e(0.0, 1.0), e(0.0, 1.5)), e(0.0, f64::INFINITY));
        // Negative growth below zero still reaches −∞.
        assert_eq!(widen(e(-1.0, 0.0), e(-2.0, 0.0)), e(f64::NEG_INFINITY, 0.0));
    }

    #[test]
    fn widening_is_an_upper_bound() {
        let old = e(0.0, 1.0);
        let new = e(-0.5, 3.0);
        let w = widen(old, new);
        assert!(old.join(new).leq(w));
    }

    #[test]
    fn widening_stabilises_chains() {
        // The canonical non-terminating chain ν₃ ≡ ν₃ + 1 from Appendix D.3.
        let mut x = e(0.0, 0.0);
        for step in 0..100 {
            let bumped = match x {
                Lattice::Elem(i) => Lattice::Elem(i + Interval::ONE),
                Lattice::Bottom => unreachable!(),
            };
            let next = widen(x, bumped);
            if next == x {
                assert!(step <= 2, "stabilised late");
                return;
            }
            x = next;
        }
        panic!("widening failed to stabilise");
    }
}
