//! `n`-dimensional boxes (Cartesian products of intervals).
//!
//! Boxes appear in two roles in the paper: as *interval traces* (finite
//! sequences of sub-intervals of `[0, 1]`, §3.2) and as the score-value
//! boxes of the optimised linear semantics (§6.4).

use std::fmt;
use std::ops::Index;

use crate::Interval;

/// An axis-aligned box `I₁ × ⋯ × I_n`.
///
/// # Example
///
/// ```
/// use gubpi_interval::{BoxN, Interval};
///
/// let b = BoxN::new(vec![Interval::UNIT, Interval::new(0.0, 0.5)]);
/// assert_eq!(b.dim(), 2);
/// assert_eq!(b.volume(), 0.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct BoxN {
    dims: Vec<Interval>,
}

impl BoxN {
    /// Creates a box from its per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> BoxN {
        BoxN { dims }
    }

    /// The unit cube `[0, 1]^n`.
    pub fn unit_cube(n: usize) -> BoxN {
        BoxN {
            dims: vec![Interval::UNIT; n],
        }
    }

    /// The empty product (dimension 0, volume 1). This is the box analogue
    /// of the empty interval trace `⟨⟩`.
    pub fn empty() -> BoxN {
        BoxN { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// The volume `∏ (bᵢ − aᵢ)` (the paper's `vol`, §3.3).
    pub fn volume(&self) -> f64 {
        self.dims.iter().map(Interval::width).product()
    }

    /// Does the box contain the point `p` (of matching dimension)?
    pub fn contains(&self, p: &[f64]) -> bool {
        p.len() == self.dim() && self.dims.iter().zip(p).all(|(i, &x)| i.contains(x))
    }

    /// Is `self` a subset of `other`?
    pub fn subset_of(&self, other: &BoxN) -> bool {
        self.dim() == other.dim()
            && self
                .dims
                .iter()
                .zip(other.dims.iter())
                .all(|(a, b)| a.subset_of(b))
    }

    /// Are the two boxes *compatible* in the sense of §3.3: almost disjoint
    /// in at least one shared position?
    pub fn compatible(&self, other: &BoxN) -> bool {
        let shared = self.dim().min(other.dim());
        (0..shared).any(|i| self.dims[i].almost_disjoint(&other.dims[i]))
    }

    /// Appends a dimension, consuming the box (builder style).
    pub fn extended(mut self, i: Interval) -> BoxN {
        self.dims.push(i);
        self
    }

    /// Splits the box into two halves along its widest (finite) dimension.
    ///
    /// Returns `None` for 0-dimensional or degenerate (zero-width) boxes.
    pub fn bisect_widest(&self) -> Option<(BoxN, BoxN)> {
        let (idx, widest) = self
            .dims
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_finite())
            .max_by(|a, b| a.1.width().total_cmp(&b.1.width()))?;
        if widest.width() == 0.0 {
            return None;
        }
        let (left, right) = widest.bisect();
        let mut a = self.dims.clone();
        let mut b = self.dims.clone();
        a[idx] = left;
        b[idx] = right;
        Some((BoxN::new(a), BoxN::new(b)))
    }

    /// The grid of boxes obtained by splitting each dimension into
    /// `splits[d]` equal parts. The result has `∏ splits[d]` boxes that are
    /// pairwise compatible and cover `self`.
    ///
    /// # Panics
    ///
    /// Panics if `splits.len() != self.dim()` or any count is zero.
    pub fn grid(&self, splits: &[usize]) -> Vec<BoxN> {
        assert_eq!(
            splits.len(),
            self.dim(),
            "split counts must match dimension"
        );
        let parts: Vec<Vec<Interval>> = self
            .dims
            .iter()
            .zip(splits)
            .map(|(i, &n)| i.split(n))
            .collect();
        let mut out: Vec<Vec<Interval>> = vec![Vec::new()];
        for dim_parts in &parts {
            let mut next = Vec::with_capacity(out.len() * dim_parts.len());
            for prefix in &out {
                for p in dim_parts {
                    let mut row = prefix.clone();
                    row.push(*p);
                    next.push(row);
                }
            }
            out = next;
        }
        out.into_iter().map(BoxN::new).collect()
    }

    /// The smallest box containing both inputs (dimension-wise join).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn join(&self, other: &BoxN) -> BoxN {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in join");
        BoxN::new(
            self.dims
                .iter()
                .zip(other.dims.iter())
                .map(|(a, b)| a.join(*b))
                .collect(),
        )
    }
}

impl Index<usize> for BoxN {
    type Output = Interval;
    fn index(&self, i: usize) -> &Interval {
        &self.dims[i]
    }
}

impl FromIterator<Interval> for BoxN {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> BoxN {
        BoxN::new(iter.into_iter().collect())
    }
}

impl fmt::Debug for BoxN {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (k, i) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i:?}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_unit_cube_is_one() {
        assert_eq!(BoxN::unit_cube(5).volume(), 1.0);
        assert_eq!(BoxN::empty().volume(), 1.0);
    }

    #[test]
    fn example_3_1_compatibility() {
        // Example 3.1(ii): {⟨[0,0.6]⟩, ⟨[0.3,1]⟩} is not compatible.
        let a = BoxN::new(vec![Interval::new(0.0, 0.6)]);
        let b = BoxN::new(vec![Interval::new(0.3, 1.0)]);
        assert!(!a.compatible(&b));

        // From Example 3.1(iii): T2 members ⟨[1/2,1], [0,1/2]⟩ and
        // ⟨[1/2,1], [1/2,1], [0,1/2]⟩ are compatible (position 2).
        let t0 = BoxN::new(vec![Interval::new(0.5, 1.0), Interval::new(0.0, 0.5)]);
        let t1 = BoxN::new(vec![
            Interval::new(0.5, 1.0),
            Interval::new(0.5, 1.0),
            Interval::new(0.0, 0.5),
        ]);
        assert!(t0.compatible(&t1));
    }

    #[test]
    fn grid_covers_with_right_count_and_compatibility() {
        let b = BoxN::unit_cube(2);
        let g = b.grid(&[2, 3]);
        assert_eq!(g.len(), 6);
        let total: f64 = g.iter().map(BoxN::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (i, x) in g.iter().enumerate() {
            assert!(x.subset_of(&b));
            for y in &g[i + 1..] {
                assert!(x.compatible(y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn bisect_widest_splits_the_right_dimension() {
        let b = BoxN::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 4.0)]);
        let (l, r) = b.bisect_widest().unwrap();
        assert_eq!(l[1], Interval::new(0.0, 2.0));
        assert_eq!(r[1], Interval::new(2.0, 4.0));
        assert_eq!(l[0], Interval::new(0.0, 1.0));
        assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_boxes_do_not_bisect() {
        let b = BoxN::new(vec![Interval::point(0.5)]);
        assert!(b.bisect_widest().is_none());
        assert!(BoxN::empty().bisect_widest().is_none());
    }

    #[test]
    fn contains_checks_every_dimension() {
        let b = BoxN::new(vec![Interval::UNIT, Interval::new(2.0, 3.0)]);
        assert!(b.contains(&[0.5, 2.5]));
        assert!(!b.contains(&[0.5, 1.0]));
        assert!(!b.contains(&[0.5]));
    }
}
