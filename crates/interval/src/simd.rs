//! A portable `f64x4` lane shim for the compiled region kernel.
//!
//! The kernel's `Tape::eval_block` walks structure-of-arrays endpoint
//! buffers in lane-blocks; this module makes those loops explicit
//! 4-wide vector operations instead of relying on autovectorization.
//! Every operation is defined **elementwise in terms of the exact
//! scalar expression the kernel's scalar backend uses** — `f64::min` /
//! `f64::max` (not the subtly different SSE2 `minpd`/`maxpd`), the
//! `0 · ±∞ = 0` extended product, and NaN repair by replacement — so
//! the vector and scalar backends are bit-identical by construction.
//! The differential test in `gubpi_symbolic::kernel` re-proves this on
//! real tapes.
//!
//! Both backends are always compiled; the `simd` cargo feature only
//! selects which one `Tape::eval_block` dispatches to by default.
//! The wrapper is `#[repr(transparent)]` over `[f64; 4]` and every op
//! is a tight fixed-length loop, which LLVM reliably lowers to vector
//! instructions on targets that have them.

/// Four `f64` lanes operated on elementwise.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

/// Number of lanes in [`F64x4`].
pub const SIMD_LANES: usize = 4;

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline]
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; 4])
    }

    /// Loads four consecutive lanes from `src` starting at `at`.
    #[inline]
    pub fn load(src: &[f64], at: usize) -> F64x4 {
        F64x4([src[at], src[at + 1], src[at + 2], src[at + 3]])
    }

    /// Stores the four lanes into `dst` starting at `at`.
    #[inline]
    pub fn store(self, dst: &mut [f64], at: usize) {
        dst[at..at + 4].copy_from_slice(&self.0);
    }

    /// Elementwise extended product with `0 · ±∞ = 0` — the weight
    /// convention from the crate root, lane-for-lane identical to the
    /// kernel's scalar `mul_ext`.
    #[inline]
    pub fn mul_ext(self, rhs: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = if a == 0.0 || b == 0.0 { 0.0 } else { a * b };
        }
        F64x4(out)
    }

    /// Elementwise `f64::min` (NaN-discarding, unlike SSE2 `minpd`).
    #[inline]
    pub fn min(self, rhs: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a.min(b);
        }
        F64x4(out)
    }

    /// Elementwise `f64::max` (NaN-discarding, unlike SSE2 `maxpd`).
    #[inline]
    pub fn max(self, rhs: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a.max(b);
        }
        F64x4(out)
    }

    /// Replaces NaN lanes with `replacement` — the kernel's endpoint
    /// repair after `∞ + −∞` (lower endpoints get `−∞`, upper `+∞`).
    #[inline]
    pub fn repair_nan(self, replacement: f64) -> F64x4 {
        let mut out = self.0;
        for o in out.iter_mut() {
            if o.is_nan() {
                *o = replacement;
            }
        }
        F64x4(out)
    }

    /// Candidate scan for a lower endpoint: per lane, `acc` unless the
    /// candidate compares strictly smaller (`if c < acc { c }`). This
    /// mirrors the kernel's scalar multiply candidate scan exactly,
    /// including its NaN behaviour (a NaN candidate never replaces).
    #[inline]
    pub fn scan_lo(self, cand: F64x4) -> F64x4 {
        let mut out = self.0;
        for (o, &c) in out.iter_mut().zip(cand.0.iter()) {
            if c < *o {
                *o = c;
            }
        }
        F64x4(out)
    }

    /// Candidate scan for an upper endpoint: per lane, `acc` unless the
    /// candidate compares strictly greater. See [`F64x4::scan_lo`].
    #[inline]
    pub fn scan_hi(self, cand: F64x4) -> F64x4 {
        let mut out = self.0;
        for (o, &c) in out.iter_mut().zip(cand.0.iter()) {
            if c > *o {
                *o = c;
            }
        }
        F64x4(out)
    }
}

/// Elementwise `a + b` (IEEE semantics, may produce NaN for
/// `∞ + −∞`; pair with [`F64x4::repair_nan`]).
impl std::ops::Add for F64x4 {
    type Output = F64x4;

    #[inline]
    fn add(self, rhs: F64x4) -> F64x4 {
        let mut out = [0.0; 4];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = a + b;
        }
        F64x4(out)
    }
}

/// Elementwise negation.
impl std::ops::Neg for F64x4 {
    type Output = F64x4;

    #[inline]
    fn neg(self) -> F64x4 {
        let mut out = [0.0; 4];
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = -a;
        }
        F64x4(out)
    }
}

/// Elementwise three-case absolute value of the interval `[lo, hi]`,
/// returning the `(lo, hi)` lane pairs of `|[lo, hi]|`:
/// `lo ≥ 0 → (lo, hi)`, `hi ≤ 0 → (−hi, −lo)`, else `(0, max(hi, −lo))`
/// — the same case split as the kernel's scalar `Abs` lane loop.
#[inline]
pub fn abs_lanes(lo: F64x4, hi: F64x4) -> (F64x4, F64x4) {
    let mut out_lo = [0.0; 4];
    let mut out_hi = [0.0; 4];
    for i in 0..4 {
        let (l, h) = (lo.0[i], hi.0[i]);
        let (al, ah) = if l >= 0.0 {
            (l, h)
        } else if h <= 0.0 {
            (-h, -l)
        } else {
            (0.0, h.max(-l))
        };
        out_lo[i] = al;
        out_hi[i] = ah;
    }
    (F64x4(out_lo), F64x4(out_hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    const WEIRD: [f64; 8] = [
        0.0,
        -0.0,
        1.5,
        -2.25,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        1e308,
    ];

    #[test]
    fn mul_ext_annihilates_zero_times_infinity() {
        let zeros = F64x4([0.0, -0.0, 0.0, -0.0]);
        let infs = F64x4([
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        ]);
        assert_eq!(zeros.mul_ext(infs).0, [0.0; 4]);
        assert_eq!(infs.mul_ext(zeros).0, [0.0; 4]);
    }

    #[test]
    fn lane_ops_match_scalar_expressions_bitwise() {
        for &a in &WEIRD {
            for &b in &WEIRD {
                let va = F64x4::splat(a);
                let vb = F64x4::splat(b);
                let scalar_mul = if a == 0.0 || b == 0.0 { 0.0 } else { a * b };
                for lane in 0..4 {
                    assert_eq!((va + vb).0[lane].to_bits(), (a + b).to_bits());
                    assert_eq!(va.mul_ext(vb).0[lane].to_bits(), scalar_mul.to_bits());
                    assert_eq!(va.min(vb).0[lane].to_bits(), a.min(b).to_bits());
                    assert_eq!(va.max(vb).0[lane].to_bits(), a.max(b).to_bits());
                    assert_eq!((-va).0[lane].to_bits(), (-a).to_bits());
                }
            }
        }
    }

    #[test]
    fn repair_nan_replaces_only_nan_lanes() {
        let v = F64x4([1.0, f64::NAN, f64::INFINITY, f64::NAN]);
        let r = v.repair_nan(f64::NEG_INFINITY);
        assert_eq!(
            r.0,
            [1.0, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY]
        );
    }

    #[test]
    fn candidate_scans_ignore_nan_candidates() {
        let acc = F64x4::splat(2.0);
        let cand = F64x4([f64::NAN, 1.0, 3.0, f64::NAN]);
        assert_eq!(acc.scan_lo(cand).0, [2.0, 1.0, 2.0, 2.0]);
        assert_eq!(acc.scan_hi(cand).0, [2.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn abs_lanes_covers_all_three_sign_cases() {
        let lo = F64x4([1.0, -3.0, -2.0, 0.0]);
        let hi = F64x4([2.0, -1.0, 5.0, 0.0]);
        let (alo, ahi) = abs_lanes(lo, hi);
        assert_eq!(alo.0, [1.0, 1.0, 0.0, 0.0]);
        assert_eq!(ahi.0, [2.0, 3.0, 5.0, 0.0]);
    }

    #[test]
    fn load_store_round_trip() {
        let src = [9.0, 8.0, 7.0, 6.0, 5.0, 4.0];
        let v = F64x4::load(&src, 1);
        assert_eq!(v.0, [8.0, 7.0, 6.0, 5.0]);
        let mut dst = [0.0; 6];
        v.store(&mut dst, 2);
        assert_eq!(dst, [0.0, 0.0, 8.0, 7.0, 6.0, 5.0]);
    }
}
