//! The benchmark model zoo: every program used by the paper's evaluation
//! (§7), re-modelled in our SPCF surface syntax.
//!
//! The original sources of [56] and the PSI repository are not all
//! published; models marked "re-modelled" are reconstructed from the
//! papers' prose and parameters are chosen to reproduce the *shape* of
//! the reported results (see EXPERIMENTS.md for per-benchmark notes).

use gubpi_interval::Interval;

/// A probability-estimation benchmark (Table 1 / Table 4).
#[derive(Clone, Debug)]
pub struct ProbBenchmark {
    /// Benchmark name as in Table 1.
    pub name: &'static str,
    /// Query label (Table 4).
    pub query_label: &'static str,
    /// SPCF source; the program returns an indicator (1 = event).
    pub source: &'static str,
    /// The query set on the returned value.
    pub u: Interval,
    /// Fixpoint unfolding budget suitable for the model.
    pub unfold: u32,
}

/// The Table 1 / Table 4 suite (benchmarks of Sankaranarayanan et al.,
/// re-modelled).
pub fn table1() -> Vec<ProbBenchmark> {
    let event = Interval::new(0.5, 1.5); // indicator == 1
    vec![
        ProbBenchmark {
            name: "tug-of-war",
            query_label: "total_a_b < total_t_s",
            // Teams with asymmetric strength priors; laziness halves a
            // pull with probability 1/4 (re-modelled).
            source: r#"
                let a = sample uniform(0, 1.2) in
                let b = sample uniform(0, 1.2) in
                let t = sample uniform(0, 1) in
                let s = sample uniform(0, 1) in
                let pull_ts = if sample <= 0.25 then t / 2 + s else t + s in
                let pull_ab = if sample <= 0.25 then a / 2 + b else a + b in
                if pull_ts < pull_ab then 1 else 0"#,
            u: event,
            unfold: 4,
        },
        ProbBenchmark {
            name: "tug-of-war",
            query_label: "total_a_s < total_b_t",
            source: r#"
                let a = sample uniform(0, 1.2) in
                let b = sample uniform(0, 1.2) in
                let t = sample uniform(0, 1) in
                let s = sample uniform(0, 1) in
                let pull_as = if sample <= 0.25 then a / 2 + s else a + s in
                let pull_bt = if sample <= 0.25 then b / 2 + t else b + t in
                if pull_as < pull_bt then 1 else 0"#,
            u: event,
            unfold: 4,
        },
        ProbBenchmark {
            name: "beauquier-3",
            query_label: "count < 1",
            // Token ring with 3 processes: legitimate iff the first two
            // bits differ; count = daemon steps to stabilise
            // (re-modelled).
            source: r#"
                let b1 = flip(0.5) in
                let b2 = flip(0.5) in
                let rec stabilise c =
                  if c >= 3 then c else
                  if sample <= 0.5 then stabilise (c + 1) else c
                in
                let count = if b1 + b2 >= 2 then stabilise 1 else
                            if b1 + b2 <= 0 then stabilise 1 else 0 in
                if count < 1 then 1 else 0"#,
            u: event,
            unfold: 8,
        },
        ProbBenchmark {
            name: "ex-book-s",
            query_label: "count >= 2",
            // Number of heads in five fair flips.
            source: r#"
                let count = flip(0.5) + flip(0.5) + flip(0.5) + flip(0.5) + flip(0.5) in
                if count >= 2 then 1 else 0"#,
            u: event,
            unfold: 2,
        },
        ProbBenchmark {
            name: "ex-book-s",
            query_label: "count >= 4",
            source: r#"
                let count = flip(0.5) + flip(0.5) + flip(0.5) + flip(0.5) + flip(0.5) in
                if count >= 4 then 1 else 0"#,
            u: event,
            unfold: 2,
        },
        ProbBenchmark {
            name: "ex-cart",
            query_label: "count >= 1",
            // A cart advances by uniform(0.3, 0.7) per step until it
            // passes 1 (re-modelled).
            source: r#"
                let rec go x =
                  if x >= 1 then 0 else 1 + go (x + sample uniform(0.3, 0.7))
                in
                let count = go 0 in
                if count >= 1 then 1 else 0"#,
            u: event,
            unfold: 8,
        },
        ProbBenchmark {
            name: "ex-cart",
            query_label: "count >= 2",
            source: r#"
                let rec go x =
                  if x >= 1 then 0 else 1 + go (x + sample uniform(0.3, 0.7))
                in
                let count = go 0 in
                if count >= 2 then 1 else 0"#,
            u: event,
            unfold: 8,
        },
        ProbBenchmark {
            name: "ex-cart",
            query_label: "count >= 4",
            source: r#"
                let rec go x =
                  if x >= 1 then 0 else 1 + go (x + sample uniform(0.3, 0.7))
                in
                let count = go 0 in
                if count >= 4 then 1 else 0"#,
            u: event,
            unfold: 8,
        },
        ProbBenchmark {
            name: "ex-ckd-epi-s",
            query_label: "f1 <= 4.4 and f >= 4.6",
            // Simplified eGFR-style formula on log scale: two correlated
            // nonlinear functions of creatinine and age (re-modelled).
            source: r#"
                let scr = sample uniform(0.6, 1.4) in
                let age = sample uniform(20, 80) in
                let f1 = 5 - 0.8 * log(scr) - 0.009 * age in
                let f = 5 - 1.2 * log(scr) - 0.007 * age in
                if f1 <= 4.4 then (if f >= 4.6 then 1 else 0) else 0"#,
            u: event,
            unfold: 2,
        },
        ProbBenchmark {
            name: "ex-ckd-epi-s",
            query_label: "f1 >= 4.6 and f <= 4.4",
            source: r#"
                let scr = sample uniform(0.6, 1.4) in
                let age = sample uniform(20, 80) in
                let f1 = 5 - 0.8 * log(scr) - 0.009 * age in
                let f = 5 - 1.2 * log(scr) - 0.007 * age in
                if f1 >= 4.6 then (if f <= 4.4 then 1 else 0) else 0"#,
            u: event,
            unfold: 2,
        },
        ProbBenchmark {
            name: "ex-fig6",
            query_label: "c <= 1",
            source: fig6_source(1),
            u: event,
            unfold: 10,
        },
        ProbBenchmark {
            name: "ex-fig6",
            query_label: "c <= 2",
            source: fig6_source(2),
            u: event,
            unfold: 10,
        },
        ProbBenchmark {
            name: "ex-fig6",
            query_label: "c <= 5",
            source: fig6_source(5),
            u: event,
            unfold: 10,
        },
        ProbBenchmark {
            name: "ex-fig6",
            query_label: "c <= 8",
            source: fig6_source(8),
            u: event,
            unfold: 16,
        },
        ProbBenchmark {
            name: "ex-fig7",
            query_label: "x <= 1000",
            // Geometric doubling: x ≤ 1000 unless ten doublings happen.
            source: r#"
                let rec grow x =
                  if x > 1000 then x else
                  if sample <= 0.5 then x else grow (2 * x)
                in
                let x = grow 1 in
                if x <= 1000 then 1 else 0"#,
            u: event,
            unfold: 14,
        },
        ProbBenchmark {
            name: "example4",
            query_label: "x + y > 14",
            source: r#"
                let x = sample uniform(0, 10) in
                let y = sample uniform(0, 10) in
                if x + y > 14 then 1 else 0"#,
            u: event,
            unfold: 2,
        },
        ProbBenchmark {
            name: "example5",
            query_label: "x + y > z + 5",
            source: r#"
                let x = sample uniform(0, 10) in
                let y = sample uniform(0, 10) in
                let z = sample uniform(0, 10) in
                if x + y > z + 5 then 1 else 0"#,
            u: event,
            unfold: 2,
        },
        ProbBenchmark {
            name: "herman-3",
            query_label: "count < 1",
            // Herman's ring with 3 processes: stable iff not all three
            // coins agree (re-modelled; see EXPERIMENTS.md).
            source: r#"
                let b1 = flip(0.5) in
                let b2 = flip(0.5) in
                let b3 = flip(0.5) in
                let tokens = if b1 + b2 + b3 >= 3 then 3 else
                             if b1 + b2 + b3 <= 0 then 3 else 1 in
                if tokens <= 1 then 1 else 0"#,
            u: event,
            unfold: 2,
        },
    ]
}

fn fig6_source(c: usize) -> &'static str {
    // x starts uniform on [0, 10]; steps are uniform(0, 4); c counts the
    // steps needed to leave [0, 10].
    match c {
        1 => {
            r#"
            let rec go x = if x > 10 then 0 else 1 + go (x + sample uniform(0, 4)) in
            let c = go (sample uniform(0, 10)) in
            if c <= 1 then 1 else 0"#
        }
        2 => {
            r#"
            let rec go x = if x > 10 then 0 else 1 + go (x + sample uniform(0, 4)) in
            let c = go (sample uniform(0, 10)) in
            if c <= 2 then 1 else 0"#
        }
        5 => {
            r#"
            let rec go x = if x > 10 then 0 else 1 + go (x + sample uniform(0, 4)) in
            let c = go (sample uniform(0, 10)) in
            if c <= 5 then 1 else 0"#
        }
        _ => {
            r#"
            let rec go x = if x > 10 then 0 else 1 + go (x + sample uniform(0, 4)) in
            let c = go (sample uniform(0, 10)) in
            if c <= 8 then 1 else 0"#
        }
    }
}

/// A discrete exact-inference benchmark (Table 2): GuBPI must produce
/// (near-)tight bounds agreeing with the exact posterior probability of
/// the program returning 1.
#[derive(Clone, Debug)]
pub struct DiscreteBenchmark {
    /// Benchmark name as in Table 2.
    pub name: &'static str,
    /// SPCF source returning an indicator in {0, 1} (conditioning done
    /// with `fail`).
    pub source: &'static str,
    /// Exact posterior probability `P(result = 1)` as a rational
    /// `(num, den)` — derivations in `groundtruth`.
    pub exact: (i128, i128),
}

/// The Table 2 suite (discrete models from the PSI repository).
pub fn table2() -> Vec<DiscreteBenchmark> {
    vec![
        DiscreteBenchmark {
            name: "burglarAlarm",
            // burglary 1/8, earthquake 1/4; alarm iff burglary or
            // earthquake; observe alarm; posterior P(burglary | alarm).
            source: r#"
                let burglary = flip(0.125) in
                let earthquake = flip(0.25) in
                let alarm = max(burglary, earthquake) in
                if alarm >= 1 then burglary else fail"#,
            exact: crate::groundtruth::burglar_alarm(),
        },
        DiscreteBenchmark {
            name: "coins",
            // Two fair coins; observe at least one head; P(both heads).
            source: r#"
                let c1 = flip(0.5) in
                let c2 = flip(0.5) in
                if c1 + c2 >= 1 then (if c1 + c2 >= 2 then 1 else 0) else fail"#,
            exact: (1, 3),
        },
        DiscreteBenchmark {
            name: "twoCoins",
            // Observe the first coin is heads; P(second heads) = 1/2.
            source: r#"
                let c1 = flip(0.5) in
                let c2 = flip(0.5) in
                if c1 >= 1 then c2 else fail"#,
            exact: (1, 2),
        },
        DiscreteBenchmark {
            name: "grass",
            // Classic grass model: rain 1/2, sprinkler 3/10; grass wet if
            // rain (w.p. 9/10) or sprinkler (w.p. 8/10); observe wet;
            // P(rain | wet).
            source: r#"
                let rain = flip(0.5) in
                let sprinkler = flip(0.3) in
                let wet_rain = if rain >= 1 then flip(0.9) else 0 in
                let wet_spr = if sprinkler >= 1 then flip(0.8) else 0 in
                let wet = max(wet_rain, wet_spr) in
                if wet >= 1 then rain else fail"#,
            exact: crate::groundtruth::grass(),
        },
        DiscreteBenchmark {
            name: "noisyOr",
            // Two noisy causes of a symptom; observe symptom; P(cause1).
            source: r#"
                let cause1 = flip(0.4) in
                let cause2 = flip(0.3) in
                let s1 = if cause1 >= 1 then flip(0.7) else 0 in
                let s2 = if cause2 >= 1 then flip(0.6) else 0 in
                let symptom = max(s1, s2) in
                if symptom >= 1 then cause1 else fail"#,
            exact: crate::groundtruth::noisy_or(),
        },
        DiscreteBenchmark {
            name: "murderMystery",
            // Alice (prior 3/10) uses a gun w.p. 3/100; Bob (7/10) w.p.
            // 8/10. Observe a gun was used; P(alice).
            source: r#"
                let alice = flip(0.3) in
                let gun = if alice >= 1 then flip(0.03) else flip(0.8) in
                if gun >= 1 then alice else fail"#,
            exact: crate::groundtruth::murder_mystery(),
        },
        DiscreteBenchmark {
            name: "bertrand",
            // Bertrand's boxes: pick a box (gg, gs, ss), draw a coin;
            // observe gold; P(other coin gold).
            source: r#"
                let box = if sample <= 0.33333333333333333 then 0 else
                          if sample <= 0.5 then 1 else 2 in
                let draw_gold = if box <= 0 then 1 else
                                if box <= 1 then flip(0.5) else 0 in
                if draw_gold >= 1 then (if box <= 0 then 1 else 0) else fail"#,
            exact: (2, 3),
        },
        DiscreteBenchmark {
            name: "coinPattern",
            // Flip twice; observe not both tails; P(pattern HT).
            source: r#"
                let c1 = flip(0.5) in
                let c2 = flip(0.5) in
                if c1 + c2 >= 1 then
                  (if c1 >= 1 then (if c2 <= 0 then 1 else 0) else 0)
                else fail"#,
            exact: (1, 3),
        },
        DiscreteBenchmark {
            name: "ev-model1",
            // Mixture evidence model: z ~ flip(0.5); observation channel
            // depends on z; P(z | obs = 1).
            source: r#"
                let z = flip(0.5) in
                let obs = if z >= 1 then flip(0.9) else flip(0.2) in
                if obs >= 1 then z else fail"#,
            exact: (9, 11),
        },
        DiscreteBenchmark {
            name: "ev-model2",
            source: r#"
                let z = flip(0.25) in
                let obs = if z >= 1 then flip(0.8) else flip(0.4) in
                if obs >= 1 then z else fail"#,
            exact: (2, 5),
        },
        DiscreteBenchmark {
            name: "gossip",
            // Two gossip channels relay a bit with independent flips;
            // observe agreement; P(original bit = 1) stays 1/2 by
            // symmetry.
            source: r#"
                let bit = flip(0.5) in
                let relay1 = if flip(0.8) >= 1 then bit else 1 - bit in
                let relay2 = if flip(0.8) >= 1 then bit else 1 - bit in
                if relay1 >= relay2 then (if relay2 >= relay1 then bit else fail) else fail"#,
            exact: (1, 2),
        },
        DiscreteBenchmark {
            name: "coinBiasSmall",
            // Uniform prior on the bias, three observed heads; posterior
            // predictive P(next head) = 4/5 (rule of succession).
            source: r#"
                let bias = sample in
                score(bias); score(bias); score(bias);
                flip(bias)"#,
            exact: (4, 5),
        },
    ]
}

/// A plain geometric loop: stop with probability 1/2 per iteration,
/// return the iteration count. No scores, so the static per-unfolding
/// contraction is exactly the continue probability 1/2 — the canonical
/// model for the truncated-recursion tail enclosure (`repro
/// tail-report` and the tail soundness suite).
pub const GEOMETRIC: &str = r#"
    let rec geo x =
      if sample <= 0.5 then x
      else geo (x + 1)
    in geo 0"#;

/// A *scored* unbounded loop: each iteration both continues with
/// probability 1/2 and pays a factor-1/2 soft conditioning score, so
/// the per-unfolding contraction is 1/4. Exercises the score-aware
/// side of the tail analysis (the geometric remainder must account for
/// the in-body `score`, not just the branch probability).
pub const SCORED_GEOMETRIC: &str = r#"
    let rec geo x =
      if sample <= 0.5 then x
      else (score(0.5); geo (x + 1))
    in geo 0"#;

/// A data-guarded countdown: the loop argument strictly decreases by 1
/// per unfolding, so it terminates deterministically within a bounded
/// number of steps — but there is *no* probabilistic contraction (the
/// recursing branch has continue mass 1), so the plain geometric tail
/// analysis cannot bound it. The ranking pass synthesizes a
/// bounded-prefix certificate instead: the entry value is at most
/// `2 + sample ≤ 3`, so the guard `x ≤ 0` must fail within a few
/// unfoldings. Since every path terminates with weight 1, `Z = 1`
/// exactly — the tail soundness suite pins the bounds against that.
pub const COUNTDOWN: &str = r#"
    let rec count x =
      if x <= 0 then 0
      else count (x - 1)
    in count (2 + sample)"#;

/// The pedestrian program of Example 1.1 (Fig. 1 / Fig. 7).
pub const PEDESTRIAN: &str = r#"
    let start = 3 * sample uniform(0, 1) in
    let rec walk x =
      if x <= 0 then 0 else
        let step = sample uniform(0, 1) in
        if sample <= 0.5 then step + walk (x + step)
        else step + walk (x - step)
    in
    let distance = walk start in
    observe distance from normal(1.1, 0.1);
    start"#;

/// A figure benchmark: a model with a histogram domain.
#[derive(Clone, Debug)]
pub struct FigureBenchmark {
    /// Figure id, e.g. "5c".
    pub id: &'static str,
    /// Human description from the figure caption.
    pub description: &'static str,
    /// SPCF source.
    pub source: &'static str,
    /// Histogram domain.
    pub domain: Interval,
    /// Bin count.
    pub bins: usize,
    /// Fixpoint unfolding budget.
    pub unfold: u32,
    /// Splits per boxed dimension / grid dimension.
    pub splits: usize,
}

/// The non-recursive figure models (Fig. 5).
pub fn figure5() -> Vec<FigureBenchmark> {
    vec![
        FigureBenchmark {
            id: "5a",
            description: "coinBias: beta(2,5) prior, 8 coin flips observed (5 heads)",
            source: r#"
                let p = sample in
                score(pdf_beta(2, 5, p));
                score(p); score(p); score(p); score(p); score(p);
                score(1 - p); score(1 - p); score(1 - p);
                p"#,
            domain: Interval::new(0.0, 1.0),
            bins: 20,
            unfold: 2,
            splits: 24,
        },
        FigureBenchmark {
            id: "5b",
            description: "max of two i.i.d. standard normal samples",
            source: "max(sample normal(0, 1), sample normal(0, 1))",
            domain: Interval::new(-3.0, 3.0),
            bins: 20,
            unfold: 2,
            splits: 48,
        },
        FigureBenchmark {
            id: "5c",
            description: "binary Gaussian mixture: modes near -2 and 2",
            source: r#"
                let x = if sample <= 0.5 then sample normal(0 - 2, 0.7)
                        else sample normal(2, 0.7) in
                observe 0.3 from normal(x, 2.5);
                x"#,
            domain: Interval::new(-5.0, 5.0),
            bins: 20,
            unfold: 2,
            splits: 48,
        },
        FigureBenchmark {
            id: "5d",
            description: "Neal's funnel: y ~ N(0,3), x ~ N(0, exp(y/4)); marginal of x",
            source: r#"
                let y = sample normal(0, 3) in
                let x = sample normal(0, 1) * exp(y / 4) in
                x"#,
            domain: Interval::new(-4.0, 4.0),
            bins: 16,
            unfold: 2,
            splits: 40,
        },
    ]
}

/// The recursive figure models (Fig. 6).
pub fn figure6() -> Vec<FigureBenchmark> {
    vec![
        FigureBenchmark {
            id: "6a",
            description: "cav-example-7: geometric accumulation, unbounded loop",
            source: r#"
                let rec go x =
                  if sample <= 0.6 then x else go (x + sample uniform(0, 1))
                in go 0"#,
            domain: Interval::new(0.0, 4.0),
            bins: 16,
            unfold: 6,
            splits: 16,
        },
        FigureBenchmark {
            id: "6b",
            description: "cav-example-5: unbounded loop with observation",
            source: r#"
                let rec go x =
                  if sample <= 0.5 then x else go (x + sample uniform(0, 1))
                in
                let v = go 0 in
                observe v from normal(1, 0.5);
                v"#,
            domain: Interval::new(0.0, 4.0),
            bins: 16,
            unfold: 6,
            splits: 16,
        },
        FigureBenchmark {
            id: "6c",
            description: "add_uniform_with_counter: steps to cross a threshold",
            source: r#"
                let rec count x =
                  if x >= 2 then 0 else 1 + count (x + sample uniform(0, 1))
                in count 0"#,
            domain: Interval::new(0.0, 10.0),
            bins: 10,
            unfold: 10,
            splits: 12,
        },
        FigureBenchmark {
            id: "6d",
            description: "random-box-walk: cumulative distance of a biased walk",
            source: r#"
                let rec walk pos acc =
                  if pos >= 1 then acc else
                    let s = sample uniform(0, 1) in
                    if s <= 0.5 then walk (pos - s / 4) (acc + s)
                    else walk (pos + s) (acc + s)
                in walk 0 0"#,
            domain: Interval::new(0.0, 5.0),
            bins: 16,
            unfold: 6,
            splits: 12,
        },
        FigureBenchmark {
            id: "6e",
            description: "growing-walk: step size grows with distance; observed at 3",
            source: r#"
                let rec walk x =
                  if sample <= 0.5 then x else walk (x + (0.5 + x / 2) * sample)
                in
                let d = walk 1 in
                observe d from normal(3, 1);
                d"#,
            domain: Interval::new(0.0, 8.0),
            bins: 16,
            unfold: 6,
            splits: 12,
        },
        FigureBenchmark {
            id: "6f",
            description: "param-estimation-recursive: posterior on step probability p",
            source: r#"
                let p = sample in
                let rec walk loc n =
                  if n <= 0 then loc else
                  if sample <= p then walk (loc - 1) (n - 1)
                  else walk (loc + 1) (n - 1)
                in
                let final = walk 0 4 in
                observe final from normal(1, 0.5);
                p"#,
            domain: Interval::new(0.0, 1.0),
            bins: 16,
            unfold: 6,
            splits: 16,
        },
    ]
}

/// Every built-in model as a `(label, source)` pair — the universe
/// `repro analyze` lints and the prune report sweeps. Labels are unique:
/// Table 1 entries carry their query label, figures their sub-figure id.
pub fn catalog() -> Vec<(String, &'static str)> {
    let mut out = Vec::new();
    for b in table1() {
        out.push((format!("table1/{} ({})", b.name, b.query_label), b.source));
    }
    for b in table2() {
        out.push((format!("table2/{}", b.name), b.source));
    }
    out.push(("pedestrian".to_owned(), PEDESTRIAN));
    out.push(("geometric".to_owned(), GEOMETRIC));
    out.push(("scored-geometric".to_owned(), SCORED_GEOMETRIC));
    for b in figure5().into_iter().chain(figure6()) {
        out.push((format!("fig{}", b.id), b.source));
    }
    out
}

#[cfg(test)]
mod tests {
    use gubpi_lang::{infer, parse};

    /// Every model in the zoo must parse and type-check.
    #[test]
    fn all_models_parse_and_typecheck() {
        let mut sources: Vec<String> = Vec::new();
        for b in super::table1() {
            sources.push(b.source.to_owned());
        }
        for b in super::table2() {
            sources.push(b.source.to_owned());
        }
        for b in super::figure5().into_iter().chain(super::figure6()) {
            sources.push(b.source.to_owned());
        }
        sources.push(super::PEDESTRIAN.to_owned());
        sources.push(super::GEOMETRIC.to_owned());
        sources.push(super::SCORED_GEOMETRIC.to_owned());
        for src in sources {
            let p = parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
            infer(&p).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        }
    }

    #[test]
    fn table_sizes_match_paper() {
        assert_eq!(super::table1().len(), 18, "Table 1 has 18 query rows");
        assert_eq!(super::table2().len(), 12, "Table 2 has 12 instances");
        assert_eq!(super::figure5().len(), 4);
        assert_eq!(super::figure6().len(), 6);
    }
}
