//! Shared benchmark runners.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use gubpi_core::{
    AnalysisOptions, Analyzer, CancelToken, ExecReport, QueryOutcome, Severity, SharedQueryCache,
};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::models::{FigureBenchmark, ProbBenchmark};

/// The query cache shared by every analyzer the harness builds over one
/// process (so a whole `repro` run reuses warm per-path bounds — sound
/// across unrelated models because hits re-verify paths structurally).
///
/// Bounded when `GUBPI_CACHE_CAP` is set to a positive entry count
/// (`repro --cache-cap N` wires the flag to the env var, mirroring
/// `--threads` / `GUBPI_THREADS`); unbounded otherwise. Invalid values
/// degrade to unbounded rather than aborting a long benchmark run.
pub fn shared_analysis_cache() -> &'static SharedQueryCache {
    static CACHE: OnceLock<SharedQueryCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        match std::env::var("GUBPI_CACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&cap| cap > 0)
        {
            Some(cap) => SharedQueryCache::with_capacity(cap),
            None => SharedQueryCache::new(),
        }
    })
}

/// Running totals of the static-analysis effects across every analyzer
/// the harness built this process, for the `--stats` report.
static PRUNED_BRANCHES: AtomicUsize = AtomicUsize::new(0);
static ZERO_SCORE_DROPS: AtomicUsize = AtomicUsize::new(0);
static BUDGET_TRUNCATED: AtomicUsize = AtomicUsize::new(0);
static DEPTH_TRUNCATED: AtomicUsize = AtomicUsize::new(0);
static TAIL_ENCLOSED: AtomicUsize = AtomicUsize::new(0);
static RANKED_TAIL: AtomicUsize = AtomicUsize::new(0);
static LINT_WARNINGS: AtomicUsize = AtomicUsize::new(0);

/// The [`ExecReport`] counters summed over every `shared_analyzer` call
/// so far (one symbolic execution per analyzer).
pub fn aggregated_exec_report() -> ExecReport {
    ExecReport {
        pruned_branches: PRUNED_BRANCHES.load(Ordering::Relaxed),
        zero_score_drops: ZERO_SCORE_DROPS.load(Ordering::Relaxed),
        budget_truncated_paths: BUDGET_TRUNCATED.load(Ordering::Relaxed),
        depth_truncated_paths: DEPTH_TRUNCATED.load(Ordering::Relaxed),
        tail_enclosed_paths: TAIL_ENCLOSED.load(Ordering::Relaxed),
        ranked_tail_paths: RANKED_TAIL.load(Ordering::Relaxed),
    }
}

/// Number of `Severity::Warning` lints seen across every `--lint`-mode
/// analyzer build; `repro --lint --deny-warnings` fails if nonzero.
pub fn lint_warnings_seen() -> usize {
    LINT_WARNINGS.load(Ordering::Relaxed)
}

/// Builds an analyzer attached to the harness-wide shared cache (and
/// therefore the process-global persistent worker pool).
///
/// Two env switches mirror the `repro` CLI the way `GUBPI_THREADS`
/// mirrors `--threads`: `GUBPI_NO_PRUNE` disables static dead-branch
/// pruning (the `--no-prune` escape hatch; bounds are bit-identical,
/// only the explored path count changes) and `GUBPI_LINT` prints the
/// program's lints as the analyzer is built (`--lint`). A third,
/// `GUBPI_NO_TAIL` (`--no-tail`), is consumed by
/// `PathBoundOptions::default()` itself and reverts budget-⊤ paths to
/// their bare `[0, ∞]` score placeholders.
pub fn shared_analyzer(source: &str, mut opts: AnalysisOptions) -> Analyzer {
    if env_flag("GUBPI_NO_PRUNE") {
        opts.prune = false;
    }
    let a = Analyzer::from_source_with_cache(source, opts, shared_analysis_cache())
        .expect("benchmark must compile");
    let r = a.exec_report();
    PRUNED_BRANCHES.fetch_add(r.pruned_branches, Ordering::Relaxed);
    ZERO_SCORE_DROPS.fetch_add(r.zero_score_drops, Ordering::Relaxed);
    BUDGET_TRUNCATED.fetch_add(r.budget_truncated_paths, Ordering::Relaxed);
    DEPTH_TRUNCATED.fetch_add(r.depth_truncated_paths, Ordering::Relaxed);
    TAIL_ENCLOSED.fetch_add(r.tail_enclosed_paths, Ordering::Relaxed);
    RANKED_TAIL.fetch_add(r.ranked_tail_paths, Ordering::Relaxed);
    if env_flag("GUBPI_LINT") {
        for lint in a.lints() {
            if lint.severity == Severity::Warning {
                LINT_WARNINGS.fetch_add(1, Ordering::Relaxed);
            }
            println!("lint: {}", lint.render(source));
        }
    }
    a
}

/// `true` iff the env var is set to anything but `""` or `"0"`.
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The process-wide deadline token from `GUBPI_TIMEOUT_MS` (`repro
/// --timeout-ms N`), armed at the first timed query, or `None` when no
/// deadline is configured. One token covers the whole run: once it
/// fires, every later query degrades to its coarse anytime bounds —
/// the run finishes fast with sound (wide) results instead of hanging.
pub fn deadline_token() -> Option<&'static CancelToken> {
    static TOKEN: OnceLock<Option<CancelToken>> = OnceLock::new();
    TOKEN
        .get_or_init(|| {
            std::env::var("GUBPI_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(|ms| CancelToken::with_timeout(Duration::from_millis(ms)))
        })
        .as_ref()
}

/// Degradation census across every timed query this process, for the
/// `--stats` report: timed queries, how many were degraded, and the
/// worst completeness fraction (stored as `f64` bits — non-negative
/// floats order the same way as their bit patterns, so `fetch_min`
/// works).
static TIMED_QUERIES: AtomicU64 = AtomicU64::new(0);
static DEGRADED_QUERIES: AtomicU64 = AtomicU64::new(0);
static MIN_COMPLETENESS_BITS: AtomicU64 = AtomicU64::new(0x3FF0_0000_0000_0000); // 1.0f64

/// Records one deadline-scoped query outcome in the census (the timed
/// helpers call this; `repro query` calls it directly because it needs
/// the full [`QueryOutcome`] for its report line and exit code).
pub fn note_query_outcome(o: &QueryOutcome) {
    TIMED_QUERIES.fetch_add(1, Ordering::Relaxed);
    if o.degraded {
        DEGRADED_QUERIES.fetch_add(1, Ordering::Relaxed);
    }
    MIN_COMPLETENESS_BITS.fetch_min(o.completeness.max(0.0).to_bits(), Ordering::Relaxed);
}

/// `(timed, degraded, min_completeness)` across every timed query so
/// far; `None` when no `GUBPI_TIMEOUT_MS` deadline is configured.
pub fn deadline_report() -> Option<(u64, u64, f64)> {
    deadline_token()?;
    Some((
        TIMED_QUERIES.load(Ordering::Relaxed),
        DEGRADED_QUERIES.load(Ordering::Relaxed),
        f64::from_bits(MIN_COMPLETENESS_BITS.load(Ordering::Relaxed)),
    ))
}

/// [`Analyzer::denotation_bounds`] under the process deadline (when
/// `GUBPI_TIMEOUT_MS` is set): past the deadline the bounds degrade to
/// sound coarse enclosures instead of blocking. Without a deadline
/// this is exactly `denotation_bounds`.
pub fn timed_denotation_bounds(a: &Analyzer, u: Interval) -> (f64, f64) {
    match deadline_token() {
        None => a.denotation_bounds(u),
        Some(token) => {
            let o = a.denotation_outcome(u, Some(token));
            note_query_outcome(&o);
            o.bounds()
        }
    }
}

/// [`Analyzer::posterior_probability`] under the process deadline; see
/// [`timed_denotation_bounds`].
pub fn timed_posterior_probability(a: &Analyzer, u: Interval) -> (f64, f64) {
    match deadline_token() {
        None => a.posterior_probability(u),
        Some(token) => {
            let o = a.posterior_outcome(u, Some(token));
            note_query_outcome(&o);
            o.bounds()
        }
    }
}

/// Runs the GuBPI analyzer on a Table 1 benchmark, returning the
/// guaranteed bounds on `P(result ∈ U)`.
pub fn analyze_prob_benchmark(b: &ProbBenchmark) -> (f64, f64) {
    let opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: b.unfold,
            ..Default::default()
        },
        ..Default::default()
    };
    timed_denotation_bounds(&shared_analyzer(b.source, opts), b.u)
}

/// Builds an analyzer configured for a figure benchmark.
pub fn analyzer_for_figure(b: &FigureBenchmark) -> Analyzer {
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: b.unfold,
            ..Default::default()
        },
        ..Default::default()
    };
    opts.bounds.splits = b.splits;
    shared_analyzer(b.source, opts)
}

/// Monte-Carlo estimate of `P(result ∈ U)` by likelihood weighting —
/// the statistical cross-check used in tests and EXPERIMENTS.md.
pub fn mc_probability(source: &str, u: Interval, samples: usize, seed: u64) -> f64 {
    let program = gubpi_lang::parse(source).expect("benchmark must parse");
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = gubpi_inference::importance_sample(
        &program,
        samples,
        gubpi_inference::ImportanceOptions::default(),
        &mut rng,
    );
    ws.probability_in(u.lo(), u.hi())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn table1_first_row_runs_end_to_end() {
        let b = &models::table1()[3]; // ex-book-s, count >= 2 (cheap)
        let (lo, hi) = analyze_prob_benchmark(b);
        // Binomial(5, 1/2): P(count ≥ 2) = 1 − 6/32 = 0.8125, and the
        // discrete model should be computed (near-)exactly.
        assert!(lo <= 0.8125 && 0.8125 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 1e-6, "[{lo}, {hi}]");
    }

    #[test]
    fn mc_agrees_with_bounds_on_example4() {
        let b = models::table1()
            .into_iter()
            .find(|b| b.name == "example4")
            .unwrap();
        let (lo, hi) = analyze_prob_benchmark(&b);
        let mc = mc_probability(b.source, b.u, 40_000, 7);
        assert!(
            lo - 0.01 <= mc && mc <= hi + 0.01,
            "mc={mc} outside [{lo}, {hi}]"
        );
        // Exact value 0.18 = (6²/2)/100 up to float rounding.
        assert!(lo <= 0.18 + 1e-12 && 0.18 <= hi + 1e-12);
    }
}
