//! Shared benchmark runners.

use std::sync::OnceLock;

use gubpi_core::{AnalysisOptions, Analyzer, SharedQueryCache};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::models::{FigureBenchmark, ProbBenchmark};

/// The query cache shared by every analyzer the harness builds over one
/// process (so a whole `repro` run reuses warm per-path bounds — sound
/// across unrelated models because hits re-verify paths structurally).
///
/// Bounded when `GUBPI_CACHE_CAP` is set to a positive entry count
/// (`repro --cache-cap N` wires the flag to the env var, mirroring
/// `--threads` / `GUBPI_THREADS`); unbounded otherwise. Invalid values
/// degrade to unbounded rather than aborting a long benchmark run.
pub fn shared_analysis_cache() -> &'static SharedQueryCache {
    static CACHE: OnceLock<SharedQueryCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        match std::env::var("GUBPI_CACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&cap| cap > 0)
        {
            Some(cap) => SharedQueryCache::with_capacity(cap),
            None => SharedQueryCache::new(),
        }
    })
}

/// Builds an analyzer attached to the harness-wide shared cache (and
/// therefore the process-global persistent worker pool).
pub fn shared_analyzer(source: &str, opts: AnalysisOptions) -> Analyzer {
    Analyzer::from_source_with_cache(source, opts, shared_analysis_cache())
        .expect("benchmark must compile")
}

/// Runs the GuBPI analyzer on a Table 1 benchmark, returning the
/// guaranteed bounds on `P(result ∈ U)`.
pub fn analyze_prob_benchmark(b: &ProbBenchmark) -> (f64, f64) {
    let opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: b.unfold,
            ..Default::default()
        },
        ..Default::default()
    };
    shared_analyzer(b.source, opts).denotation_bounds(b.u)
}

/// Builds an analyzer configured for a figure benchmark.
pub fn analyzer_for_figure(b: &FigureBenchmark) -> Analyzer {
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: b.unfold,
            ..Default::default()
        },
        ..Default::default()
    };
    opts.bounds.splits = b.splits;
    shared_analyzer(b.source, opts)
}

/// Monte-Carlo estimate of `P(result ∈ U)` by likelihood weighting —
/// the statistical cross-check used in tests and EXPERIMENTS.md.
pub fn mc_probability(source: &str, u: Interval, samples: usize, seed: u64) -> f64 {
    let program = gubpi_lang::parse(source).expect("benchmark must parse");
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = gubpi_inference::importance_sample(
        &program,
        samples,
        gubpi_inference::ImportanceOptions::default(),
        &mut rng,
    );
    ws.probability_in(u.lo(), u.hi())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn table1_first_row_runs_end_to_end() {
        let b = &models::table1()[3]; // ex-book-s, count >= 2 (cheap)
        let (lo, hi) = analyze_prob_benchmark(b);
        // Binomial(5, 1/2): P(count ≥ 2) = 1 − 6/32 = 0.8125, and the
        // discrete model should be computed (near-)exactly.
        assert!(lo <= 0.8125 && 0.8125 <= hi, "[{lo}, {hi}]");
        assert!(hi - lo < 1e-6, "[{lo}, {hi}]");
    }

    #[test]
    fn mc_agrees_with_bounds_on_example4() {
        let b = models::table1()
            .into_iter()
            .find(|b| b.name == "example4")
            .unwrap();
        let (lo, hi) = analyze_prob_benchmark(&b);
        let mc = mc_probability(b.source, b.u, 40_000, 7);
        assert!(
            lo - 0.01 <= mc && mc <= hi + 0.01,
            "mc={mc} outside [{lo}, {hi}]"
        );
        // Exact value 0.18 = (6²/2)/100 up to float rounding.
        assert!(lo <= 0.18 + 1e-12 && 0.18 <= hi + 1e-12);
    }
}
