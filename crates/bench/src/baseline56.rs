//! The probability-estimation baseline of Sankaranarayanan et al.
//! (PLDI 2013) — the "[56]" column of Table 1 — re-implemented on our
//! symbolic-execution machinery.
//!
//! Their method explores finitely many symbolic paths of a **score-free**
//! program, bounds each path's probability with coarse volume bounds, and
//! accounts for the unexplored paths by a cumulative-probability defect
//! `c`: if the explored paths carry mass `≥ 1 − c` and the event has
//! probability at most `b` on them, the whole-program probability is at
//! most `b + c`. Two deliberate differences from GuBPI (mirrored from the
//! papers):
//!
//! * no `score` support — programs with observations are rejected;
//! * per-path volumes are certified box bounds with a small budget
//!   (standing in for their interval/branch-and-bound volume estimates),
//!   not exact polytope volumes — bounds come out wider but faster.

use gubpi_core::{bound_path, BoundSink, PathBoundOptions};
use gubpi_interval::Interval;
use gubpi_lang::{infer, parse, LangError};
use gubpi_symbolic::{symbolic_paths, SymExecOptions, SymPath};
use gubpi_types::infer_interval_types;

/// Options for the baseline.
#[derive(Copy, Clone, Debug)]
pub struct BaselineOptions {
    /// Path-exploration depth (fixpoint unfoldings).
    pub unfold: u32,
    /// Volume budget per path (box subdivisions).
    pub volume_budget: usize,
    /// Splits per boxed expression.
    pub splits: usize,
}

impl Default for BaselineOptions {
    fn default() -> BaselineOptions {
        BaselineOptions {
            unfold: 6,
            volume_budget: 256,
            splits: 4,
        }
    }
}

/// Why the baseline refused a program.
#[derive(Debug)]
pub enum BaselineError {
    /// Front-end failure.
    Lang(LangError),
    /// The program uses `score`/`observe` — outside the method's scope.
    HasScores,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Lang(e) => write!(f, "{e}"),
            BaselineError::HasScores => write!(f, "baseline supports only score-free programs"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Bounds `P(result ∈ U)` for a score-free program.
///
/// # Errors
///
/// Fails on front-end errors or when the program contains `score`.
pub fn baseline56_bounds(
    source: &str,
    u: Interval,
    opts: BaselineOptions,
) -> Result<(f64, f64), BaselineError> {
    let program = parse(source).map_err(BaselineError::Lang)?;
    let simple = infer(&program).map_err(BaselineError::Lang)?;
    let typing = infer_interval_types(&program, &simple);
    let paths = symbolic_paths(
        &program,
        &typing,
        SymExecOptions {
            max_fix_unfoldings: opts.unfold,
            ..Default::default()
        },
    );
    // Score-free check over *exact* paths (truncated paths may carry the
    // approxFix weight marker, which counts as unexplored mass below).
    if paths.iter().any(|p| !p.truncated && !p.scores.is_empty()) {
        return Err(BaselineError::HasScores);
    }

    let popts = PathBoundOptions {
        splits: opts.splits,
        certified_volumes: true,
        volume_budget: opts.volume_budget,
        ..Default::default()
    };

    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    let mut unexplored = 0.0f64;
    for p in &paths {
        if p.truncated {
            unexplored += path_mass_upper(p, popts);
        } else {
            let mut sink = QueryAccum::new(u);
            bound_path(p, popts, &mut sink);
            lo += sink.lo;
            hi += sink.hi;
        }
    }
    Ok((lo, (hi + unexplored).min(1.0)))
}

/// Upper bound on a truncated path's probability mass (score-free ⇒ the
/// mass is the volume of its constraint region).
fn path_mass_upper(p: &SymPath, opts: PathBoundOptions) -> f64 {
    let mut sink = QueryAccum::new(Interval::REAL);
    // Drop score markers for the mass computation: the path's probability
    // is the measure of traces reaching it.
    let clean = SymPath {
        scores: Vec::new(),
        ..p.clone()
    };
    bound_path(&clean, opts, &mut sink);
    sink.hi.min(1.0)
}

struct QueryAccum {
    u: Interval,
    lo: f64,
    hi: f64,
}

impl QueryAccum {
    fn new(u: Interval) -> QueryAccum {
        QueryAccum {
            u,
            lo: 0.0,
            hi: 0.0,
        }
    }
}

impl BoundSink for QueryAccum {
    fn add(&mut self, value_range: Interval, lo_mass: f64, hi_mass: f64) {
        if value_range.subset_of(&self.u) {
            self.lo += lo_mass;
        }
        if value_range.intersects(&self.u) {
            self.hi += hi_mass;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_brackets_simple_probabilities() {
        let (lo, hi) = baseline56_bounds(
            "if sample + sample <= 0.75 then 1 else 0",
            Interval::new(0.5, 1.5),
            BaselineOptions::default(),
        )
        .unwrap();
        assert!(lo <= 0.28125 && 0.28125 <= hi, "[{lo}, {hi}]");
    }

    #[test]
    fn baseline_rejects_observed_programs() {
        let err = baseline56_bounds(
            "observe sample from normal(0.5, 0.1); 1",
            Interval::REAL,
            BaselineOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BaselineError::HasScores));
    }

    #[test]
    fn unexplored_recursion_widens_the_upper_bound() {
        // Geometric loop explored to depth 3: upper bound inflated by the
        // residual mass 2^-3.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let opts = BaselineOptions {
            unfold: 3,
            ..Default::default()
        };
        let (lo, hi) = baseline56_bounds(src, Interval::new(-0.5, 0.5), opts).unwrap();
        // P(result = 0) = 1/2.
        assert!(lo <= 0.5 && 0.5 <= hi);
        assert!(hi >= 0.5 + 0.1, "defect mass must widen the bound: hi={hi}");
    }
}
