//! Benchmark harness for the GuBPI reproduction.
//!
//! One module per concern:
//!
//! * [`models`] — every program of the paper's evaluation (§7) in our
//!   SPCF surface syntax, with per-benchmark parameters;
//! * [`baseline56`] — the probability-estimation baseline of
//!   Sankaranarayanan et al. (the "[56]" column of Table 1);
//! * [`groundtruth`] — exact rational posteriors for the discrete
//!   Table 2 models (the PSI stand-in);
//! * [`harness`] — shared runners that produce the rows/series printed by
//!   the `repro` binary and measured by the Criterion benches.

pub mod baseline56;
pub mod groundtruth;
pub mod harness;
pub mod models;

pub use baseline56::{baseline56_bounds, BaselineOptions};
pub use groundtruth::Ratio;
pub use harness::{
    aggregated_exec_report, analyze_prob_benchmark, analyzer_for_figure, deadline_report,
    deadline_token, lint_warnings_seen, mc_probability, note_query_outcome, shared_analysis_cache,
    shared_analyzer, timed_denotation_bounds, timed_posterior_probability,
};
