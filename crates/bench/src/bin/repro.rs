//! `repro` — regenerates every table and figure of the GuBPI paper.
//!
//! ```text
//! repro table1        Table 1/4: probability estimation, GuBPI vs [56]
//! repro table2        Table 2: discrete models vs exact posteriors
//! repro table3        Table 3: GuBPI vs SBC running times
//! repro pedestrian    Fig. 1/7: pedestrian bounds vs IS vs (wrong) HMC
//! repro fig5          Fig. 5a–5d: non-recursive histogram bounds
//! repro fig6          Fig. 6a–6f: recursive histogram bounds
//! repro ablation      linear (§6.4) vs grid (§6.3) semantics; depth sweep
//! repro query M L H   one-shot query with typed exit codes (see --help)
//! repro serve-report  daemon robustness exercise; writes BENCH_serve.json
//! repro all           everything above
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use bench::models;
use bench::{
    analyze_prob_benchmark, analyzer_for_figure, baseline56_bounds, deadline_report,
    deadline_token, mc_probability, note_query_outcome, shared_analysis_cache, shared_analyzer,
    timed_denotation_bounds, timed_posterior_probability,
};
use gubpi_core::{
    bound_path_grid_only_threaded, lint_program, render_histogram, run_adaptive_refinement,
    tail_substituted, AnalysisOptions, Analyzer, GridRefiner, Method, PathBoundOptions,
    ProgramFacts, QueryError, QueryFold, QueryOutcome, RefineOptions, Severity, SingleQuery,
    Threads, WorkerPool,
};
use gubpi_inference::hmc::{hmc_sample, HmcOptions};
use gubpi_inference::importance::{importance_sample, ImportanceOptions};
use gubpi_inference::sbc::{run_sbc, SbcConfig};
use gubpi_interval::Interval;
use gubpi_pool::{set_fault_plan, FaultKind, FaultPlan};
use gubpi_serve::{start_with_cache, Client, QueryKind, QueryRequest, ServeConfig};
use gubpi_symbolic::SymExecOptions;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // The last line of the panic-containment audit: no input may leave
    // this binary via an unwind. Anything that does slip through every
    // inner boundary is caught here and mapped to the documented exit
    // code 70 with a one-line message (the default hook has already
    // printed the panic location to stderr by the time we land here).
    if catch_unwind(run).is_err() {
        eprintln!("repro: internal panic reached main; this is a bug (exit 70)");
        std::process::exit(70);
    }
}

fn run() {
    let t_start = Instant::now();
    // Deterministic chaos, same knob as the daemon: an armed
    // `GUBPI_FAULT=panic@N|delay@N|cancel@N` fires at the N-th task
    // boundary of the run (the exit-code smoke tests drive `panic@0`
    // through `repro query` and must get the typed exit 68, not an
    // unwind).
    if let Some(plan) = gubpi_pool::arm_fault_from_env() {
        eprintln!("repro: fault injection armed: {plan:?}");
    }
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N|auto|off` pins the parallel engine's worker count for
    // every analysis below — equivalent to setting GUBPI_THREADS, which
    // the default `AnalysisOptions` (Threads::Auto) honour. Bounds are
    // bit-identical across all settings; only wall time changes.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).map(String::as_str) {
            Some(value) if gubpi_core::Threads::parse(value).is_some() => {
                std::env::set_var("GUBPI_THREADS", value);
            }
            other => {
                let got = other.unwrap_or("<missing>");
                eprintln!(
                    "--threads expects a positive worker count, `auto` or `off`; got `{got}` \
                     (use `off` for sequential execution, not `0`)"
                );
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    // `--cache-cap N` bounds the shared per-path query cache at N
    // entries (coarse-LRU eviction) — equivalent to setting
    // GUBPI_CACHE_CAP, which the harness cache honours. Results are
    // bit-identical (bounding is pure); only recompute time changes.
    if let Some(i) = args.iter().position(|a| a == "--cache-cap") {
        match args
            .get(i + 1)
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&cap| cap > 0)
        {
            Some(_) => {
                std::env::set_var("GUBPI_CACHE_CAP", args[i + 1].clone());
            }
            None => {
                let got = args.get(i + 1).map(String::as_str).unwrap_or("<missing>");
                eprintln!(
                    "--cache-cap expects a positive entry count; got `{got}` \
                     (omit the flag for an unbounded cache)"
                );
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    // `--no-kernel` forces the tree-walking interpreter instead of the
    // compiled interval-tape kernel — equivalent to GUBPI_NO_KERNEL=1.
    // Bounds are bit-identical either way; the flag exists so kernel
    // regressions are diagnosable in the field with one switch.
    if let Some(i) = args.iter().position(|a| a == "--no-kernel") {
        std::env::set_var("GUBPI_NO_KERNEL", "1");
        args.remove(i);
    }
    // `--no-prune` disables static dead-branch pruning in the symbolic
    // executor — equivalent to GUBPI_NO_PRUNE=1. Bounds are bit-identical
    // either way (pruned paths carry an exactly-zero score factor); the
    // escape hatch exists so pruning regressions are diagnosable in the
    // field with one switch, mirroring --no-kernel.
    if let Some(i) = args.iter().position(|a| a == "--no-prune") {
        std::env::set_var("GUBPI_NO_PRUNE", "1");
        args.remove(i);
    }
    // `--no-tail` disables the geometric tail enclosures on budget-⊤
    // paths — equivalent to GUBPI_NO_TAIL=1. Upper bounds revert to the
    // bare `[0, ∞]` score placeholder (+∞ whenever a ⊤ path exists);
    // lower bounds are bit-identical either way.
    if let Some(i) = args.iter().position(|a| a == "--no-tail") {
        std::env::set_var("GUBPI_NO_TAIL", "1");
        args.remove(i);
    }
    // `--no-refine` disables gap-driven adaptive region refinement —
    // equivalent to GUBPI_NO_REFINE=1. Every grid query falls back to
    // the one-shot uniform sweep, bit-identical to the pre-refinement
    // engine; the escape hatch mirrors --no-kernel / --no-tail.
    if let Some(i) = args.iter().position(|a| a == "--no-refine") {
        std::env::set_var("GUBPI_NO_REFINE", "1");
        args.remove(i);
    }
    // `--gap-target X` stops adaptive refinement early once the summed
    // upper−lower gap of a query drops to X — equivalent to
    // GUBPI_GAP_TARGET. 0 (the default) refines to the full cell budget.
    if let Some(i) = args.iter().position(|a| a == "--gap-target") {
        match args
            .get(i + 1)
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|g| g.is_finite() && *g >= 0.0)
        {
            Some(_) => {
                std::env::set_var("GUBPI_GAP_TARGET", args[i + 1].clone());
            }
            None => {
                let got = args.get(i + 1).map(String::as_str).unwrap_or("<missing>");
                eprintln!(
                    "--gap-target expects a finite gap >= 0; got `{got}` \
                     (use 0 to refine to the full cell budget)"
                );
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    // `--timeout-ms N` puts the whole run under one cooperative
    // deadline — equivalent to GUBPI_TIMEOUT_MS. Queries that outlive
    // it return *anytime sound* degraded enclosures (unswept work
    // contributes its coarse whole-box bound) instead of blocking;
    // `--stats` reports how many degraded and the worst completeness.
    if let Some(i) = args.iter().position(|a| a == "--timeout-ms") {
        match args.get(i + 1).and_then(|v| v.trim().parse::<u64>().ok()) {
            Some(_) => {
                std::env::set_var("GUBPI_TIMEOUT_MS", args[i + 1].clone());
            }
            None => {
                let got = args.get(i + 1).map(String::as_str).unwrap_or("<missing>");
                eprintln!(
                    "--timeout-ms expects a millisecond count; got `{got}` \
                     (omit the flag for an unlimited run)"
                );
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    // `--lint` prints the static-analysis findings for every model a
    // command analyzes, as the analyzers are built (GUBPI_LINT=1).
    let lint_mode = if let Some(i) = args.iter().position(|a| a == "--lint") {
        std::env::set_var("GUBPI_LINT", "1");
        args.remove(i);
        true
    } else {
        false
    };
    // `--deny-warnings` makes warning-severity lints fatal (exit 1) —
    // with `analyze`, or with `--lint` on any other command.
    let deny_warnings = if let Some(i) = args.iter().position(|a| a == "--deny-warnings") {
        args.remove(i);
        true
    } else {
        false
    };
    // `--stats` prints cache, pool and kernel counters after the run.
    let print_stats = if let Some(i) = args.iter().position(|a| a == "--stats") {
        args.remove(i);
        true
    } else {
        false
    };
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "--help" | "-h" | "help" => {
            println!(
                "repro — regenerates the tables and figures of the GuBPI paper\n\n\
                 USAGE: repro [--threads N|auto|off] [--cache-cap N] [--no-kernel] [--no-prune]\n       \
                 [--no-tail] [--no-refine] [--gap-target X] [--lint] [--deny-warnings]\n       \
                 [--stats] [COMMAND]\n\n\
                 COMMANDS:\n  \
                 table1        Table 1/4: probability estimation, GuBPI vs [56]\n  \
                 table2        Table 2: discrete models vs exact posteriors\n  \
                 table3        Table 3: GuBPI vs SBC running times\n  \
                 pedestrian    Fig. 1/7: pedestrian bounds vs IS vs (wrong) HMC\n  \
                 fig5          Fig. 5a-5d: non-recursive histogram bounds\n  \
                 fig6          Fig. 6a-6f: recursive histogram bounds\n  \
                 ablation      linear (§6.4) vs grid (§6.3) semantics; depth sweep\n  \
                 analyze [F]   static analysis only: facts + lints for every built-in\n                \
                 model (or those whose label contains F); no execution\n  \
                 prune-report  path counts with pruning on vs off for every Table 2\n                \
                 model; writes the BENCH_prune.json snapshot\n  \
                 tail-report   upper−lower gap on Z for truncated recursions, tail\n                \
                 enclosures on vs off; writes the BENCH_tail.json snapshot\n  \
                 gap-report    bound gap at equal cell budget, uniform sweep vs\n                \
                 gap-driven adaptive refinement; writes BENCH_gap.json\n  \
                 smoke         one tiny model end to end (seconds; for diagnosing\n                \
                 an installation together with --stats / --no-kernel)\n  \
                 query M L H   one query on catalog model M (or inline source) over\n                \
                 [L, H]; add --posterior for the normalized probability.\n                \
                 Typed failures exit 64-69 (invalid-interval, invalid-\n                \
                 domain, no-bins, deadline-exceeded, worker-panicked,\n                \
                 overloaded); a panic reaching main exits 70\n  \
                 serve-report  exercise the gubpi-serve daemon in process (deadline\n                \
                 degradation, admission control, injected panic) and\n                \
                 write the BENCH_serve.json latency/robustness snapshot\n  \
                 all           everything above (the default)\n\n\
                 OPTIONS:\n  \
                 --threads N|auto|off   worker threads for the bounding engine (N > 0;\n                         \
                 same as GUBPI_THREADS; results are bit-identical)\n  \
                 --cache-cap N          bound the shared per-path query cache at N entries\n                         \
                 (coarse-LRU eviction; same as GUBPI_CACHE_CAP)\n  \
                 --no-kernel            force the tree-walking interpreter instead of the\n                         \
                 compiled interval-tape kernel (same as GUBPI_NO_KERNEL=1;\n                         \
                 bounds are bit-identical, only speed changes)\n  \
                 --no-prune             disable static dead-branch pruning in the symbolic\n                         \
                 executor (same as GUBPI_NO_PRUNE=1; bounds are\n                         \
                 bit-identical, only the explored path count changes)\n  \
                 --no-tail              disable geometric tail enclosures on budget-⊤ paths\n                         \
                 (same as GUBPI_NO_TAIL=1; upper bounds revert to +∞\n                         \
                 where a ⊤ path exists, lower bounds are bit-identical)\n  \
                 --no-refine            disable gap-driven adaptive region refinement (same\n                         \
                 as GUBPI_NO_REFINE=1; grid queries fall back to the\n                         \
                 one-shot uniform sweep, bit-identically)\n  \
                 --gap-target X         stop refining a query once its summed bound gap\n                         \
                 reaches X (same as GUBPI_GAP_TARGET; 0 = refine to the\n                         \
                 full cell budget)\n  \
                 --timeout-ms N         run under one cooperative deadline of N ms (same as\n                         \
                 GUBPI_TIMEOUT_MS); queries that outlive it return\n                         \
                 anytime sound degraded enclosures instead of blocking\n  \
                 --lint                 print static-analysis findings for every model a\n                         \
                 command analyzes (same as GUBPI_LINT=1)\n  \
                 --deny-warnings        exit 1 on warning-severity lints (with `analyze`,\n                         \
                 or with --lint on any other command)\n  \
                 --stats                print cache, worker-pool, prune and kernel counters\n                         \
                 after the run (tape length, CSE savings, cells/sec)"
            );
        }
        "table1" | "table4" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "smoke" => smoke(),
        "query" => {
            let code = query_cmd(&args[1..]);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "serve-report" => serve_report(),
        "analyze" => analyze(args.get(1).map(String::as_str), deny_warnings),
        "prune-report" => prune_report(),
        "tail-report" => tail_report(),
        "gap-report" => gap_report(),
        "pedestrian" | "fig1" | "fig7" => pedestrian(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "ablation" | "ablation-linear" | "ablation-depth" => ablation(),
        "all" => {
            table1();
            table2();
            fig5();
            fig6();
            ablation();
            pedestrian();
            table3();
        }
        other => {
            eprintln!("unknown command `{other}`; run `repro --help` for usage");
            std::process::exit(2);
        }
    }
    if print_stats {
        stats(t_start.elapsed().as_secs_f64());
    }
    if lint_mode && deny_warnings {
        let warnings = bench::lint_warnings_seen();
        if warnings > 0 {
            eprintln!("--deny-warnings: {warnings} warning-severity lints");
            std::process::exit(1);
        }
    }
}

/// `analyze [FILTER]`: static analysis only — no symbolic execution, no
/// bounding. Runs the pre-execution abstract interpreter over every
/// built-in model (or those whose label contains FILTER) and prints the
/// facts summary plus each lint at its `line:col` source location. With
/// `--deny-warnings`, any warning-severity finding fails the run — the
/// repository's models must stay warning-clean (notes are expected:
/// recursion without weight contraction is deliberate here).
fn analyze(filter: Option<&str>, deny_warnings: bool) {
    println!("== Static analysis: interval/weight facts and lints ==================");
    let mut matched = 0usize;
    let mut findings = 0usize;
    let mut warnings = 0usize;
    for (label, src) in models::catalog() {
        if let Some(f) = filter {
            if !label.contains(f) {
                continue;
            }
        }
        matched += 1;
        let program = gubpi_lang::parse(src).expect("built-in model parses");
        let simple = gubpi_lang::infer(&program).expect("built-in model type-checks");
        let typing = gubpi_types::infer_interval_types(&program, &simple);
        let facts = ProgramFacts::compute(&program, &typing);
        let lints = lint_program(&program, &typing, &facts);
        println!(
            "-- {label}: {} dead branches, {} zero-weight scores, {} pooled constants, \
             {} findings",
            facts.dead_branch_count(),
            facts.zero_score_count(),
            facts.constant_pool().len(),
            lints.len()
        );
        for l in &lints {
            if l.severity == Severity::Warning {
                warnings += 1;
            }
            println!("   {}", l.render(src));
        }
        findings += lints.len();
    }
    if matched == 0 {
        eprintln!(
            "no built-in model matches `{}`; run `repro analyze` to list all",
            filter.unwrap_or("")
        );
        std::process::exit(2);
    }
    println!("\n{matched} models analyzed: {findings} findings, {warnings} warnings");
    if deny_warnings && warnings > 0 {
        eprintln!("--deny-warnings: {warnings} warning-severity lints");
        std::process::exit(1);
    }
    println!();
}

/// `prune-report`: symbolic path counts for every Table 2 model with
/// dead-branch pruning on vs off, plus the executor's prune counters.
/// Bounds are bit-identical either way (the differential tests assert
/// it); the report shows how much exploration pruning saves, and writes
/// the `BENCH_prune.json` snapshot next to `BENCH_kernel.json`.
fn prune_report() {
    println!("== Prune report: symbolic path counts, pruning on vs off =============");
    println!(
        "{:<16} {:>9} {:>9} {:>15} {:>11}",
        "model", "unpruned", "pruned", "branches cut", "zero-drops"
    );
    let mut rows = Vec::new();
    for b in models::table2() {
        let opts = |prune: bool| AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 8,
                ..Default::default()
            },
            prune,
            ..Default::default()
        };
        let off = Analyzer::from_source(b.source, opts(false)).expect("table2 model compiles");
        let on = Analyzer::from_source(b.source, opts(true)).expect("table2 model compiles");
        let r = on.exec_report();
        println!(
            "{:<16} {:>9} {:>9} {:>15} {:>11}",
            b.name,
            off.paths().len(),
            on.paths().len(),
            r.pruned_branches,
            r.zero_score_drops
        );
        rows.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"paths_unpruned\": {},\n      \
             \"paths_pruned\": {},\n      \"pruned_branches\": {},\n      \
             \"zero_score_drops\": {}\n    }}",
            b.name,
            off.paths().len(),
            on.paths().len(),
            r.pruned_branches,
            r.zero_score_drops
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"prune\",\n  \"models\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prune.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

/// A finite f64 as a JSON number, anything else as `null` (JSON has no
/// infinities; a bare-⊤ upper bound is `+∞`).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Quotes a string as a JSON literal (the verdict texts only need the
/// standard escapes; they are plain prose with math symbols).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `tail-report`: bounds on the normalising constant `Z` for models
/// with truncated recursions, with the geometric tail enclosures on vs
/// off (`--no-tail`), and the gap between them. Writes the
/// `BENCH_tail.json` snapshot next to `BENCH_prune.json`.
///
/// Lower bounds are asserted bit-identical across the two modes — the
/// enclosure only tightens the ⊤ placeholder's upper end. Each row also
/// records the ranking pass's verdict for the model's recursion:
/// `plain-geometric` loops were already tail-bounded by the per-step
/// contraction alone, `synthesized` ones needed an eventually-geometric
/// certificate (pedestrian's data-guarded walk sits here — its upper
/// bound is finite only because of the escape-mass argument, and this
/// function asserts that it is), `none` rows keep the bare ⊤.
fn tail_report() {
    println!("== Tail report: Z bounds with tail enclosures vs --no-tail ===========");
    let fig6a = models::figure6()
        .into_iter()
        .find(|b| b.id == "6a")
        .expect("fig6a is in the zoo");
    // (name, source, max_fix_unfoldings, max_paths): budgets tight
    // enough that every model leaves ⊤ paths behind.
    let entries: Vec<(&str, &str, u32, usize)> = vec![
        ("geometric", models::GEOMETRIC, 16, 6),
        ("scored-geometric", models::SCORED_GEOMETRIC, 16, 6),
        ("fig6a", fig6a.source, 16, 6),
        ("pedestrian", models::PEDESTRIAN, 4, 48),
    ];
    println!(
        "{:<18} {:>7} {:>6} {:>11} {:>12} {:>12}  ranking",
        "model", "top", "tails", "lo", "hi (tails)", "hi (bare)"
    );
    let mut rows = Vec::new();
    for (name, source, unfold, max_paths) in entries {
        let opts = |use_tail: bool| {
            let mut o = AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: unfold,
                    max_paths,
                    ..Default::default()
                },
                ..Default::default()
            };
            o.bounds.splits = 8;
            o.bounds.use_tail = use_tail;
            o
        };
        let on = Analyzer::from_source(source, opts(true)).expect("zoo model compiles");
        let off = Analyzer::from_source(source, opts(false)).expect("zoo model compiles");
        let r = on.exec_report();
        let (lo_on, hi_on) = on.denotation_bounds(Interval::REAL);
        let (lo_off, hi_off) = off.denotation_bounds(Interval::REAL);
        assert_eq!(
            lo_on.to_bits(),
            lo_off.to_bits(),
            "{name}: tails must not move lower bounds"
        );
        // The ranking pass's verdict for the model's recursion (every
        // zoo model here has exactly one `μ` node).
        let mut verdict: Option<&gubpi_core::RankVerdict> = None;
        on.program().root.walk(&mut |e| {
            if matches!(e.kind, gubpi_lang::ExprKind::Fix(..)) && verdict.is_none() {
                verdict = on.facts().ranking_verdict(e.id);
            }
        });
        let (ranking, ranking_reason) = match verdict {
            Some(v) => (v.label(), v.describe()),
            None => ("none", "no recursion facts for this model".to_owned()),
        };
        if name == "pedestrian" {
            // The CI smoke assertion of the ranking pass: the
            // pedestrian walk has no per-step contraction (c = 1), so a
            // finite upper bound here means the synthesized
            // eventually-geometric certificate actually fired.
            assert_eq!(ranking, "synthesized", "pedestrian: {ranking_reason}");
            assert!(
                hi_on.is_finite(),
                "pedestrian: ranked tail must give a finite upper bound, got {hi_on}"
            );
        }
        println!(
            "{:<18} {:>7} {:>6} {:>11.6} {:>12.6} {:>12.6}  {}",
            name, r.budget_truncated_paths, r.tail_enclosed_paths, lo_on, hi_on, hi_off, ranking
        );
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"top_paths\": {},\n      \
             \"tail_enclosed_paths\": {},\n      \"ranked_tail_paths\": {},\n      \
             \"lo\": {},\n      \"hi_tail\": {},\n      \
             \"hi_no_tail\": {},\n      \"gap_tail\": {},\n      \"gap_no_tail\": {},\n      \
             \"ranking\": \"{ranking}\",\n      \"ranking_reason\": {}\n    }}",
            r.budget_truncated_paths,
            r.tail_enclosed_paths,
            r.ranked_tail_paths,
            json_num(lo_on),
            json_num(hi_on),
            json_num(hi_off),
            json_num(hi_on - lo_on),
            json_num(hi_off - lo_off),
            json_str(&ranking_reason),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"tail\",\n  \"models\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tail.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

/// `gap-report`: the upper−lower bound gap at an equal cell budget,
/// one-shot uniform sweep vs gap-driven adaptive refinement. Writes the
/// `BENCH_gap.json` snapshot next to `BENCH_prune.json` /
/// `BENCH_tail.json`.
///
/// Two whole-model comparisons run the full analyzer twice with
/// identical options (same splits, same region budget, `Method::Grid`)
/// and only the `refine` switch flipped; the pedestrian row isolates the
/// model's dominant path (most sample dimensions) and drives one
/// `GridRefiner` directly against `bound_path_query_threaded`. The
/// headline metric is gap-per-second — how fast each engine buys bound
/// tightness — not cells-per-second. The ≥2× gap-shrink assertions on
/// the grass grid and the pedestrian dominant path are the CI smoke
/// gate for the refinement engine.
fn gap_report() {
    println!("== Gap report: uniform sweep vs adaptive refinement (equal cells) ====");
    let grass = models::table2()
        .into_iter()
        .find(|b| b.name == "grass")
        .expect("grass is in table2");
    let fig6a = models::figure6()
        .into_iter()
        .find(|b| b.id == "6a")
        .expect("fig6a is in the zoo");
    println!(
        "{:<26} {:>12} {:>12} {:>7} {:>10} {:>9} {:>9}",
        "workload", "gap uniform", "gap adaptive", "ratio", "gap/s", "t_uni(s)", "t_ada(s)"
    );
    let mut rows = Vec::new();
    let mut push_row = |name: &str,
                        (ulo, uhi, ut): (f64, f64, f64),
                        (alo, ahi, at): (f64, f64, f64),
                        min_ratio: f64| {
        let gap_u = uhi - ulo;
        let gap_a = ahi - alo;
        let ratio = gap_u / gap_a.max(f64::MIN_POSITIVE);
        // Gap closed per second of refinement: the report's headline.
        let gps = (gap_u - gap_a) / at.max(1e-12);
        println!(
            "{:<26} {:>12.6} {:>12.6} {:>6.1}x {:>10.3} {:>9.3} {:>9.3}",
            name, gap_u, gap_a, ratio, gps, ut, at
        );
        if min_ratio > 0.0 {
            assert!(
                ratio >= min_ratio,
                "{name}: adaptive refinement must shrink the gap ≥{min_ratio}x at equal \
                 cell budget (uniform {gap_u}, adaptive {gap_a})"
            );
        }
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"lo_uniform\": {},\n      \
             \"hi_uniform\": {},\n      \"lo_adaptive\": {},\n      \"hi_adaptive\": {},\n      \
             \"gap_uniform\": {},\n      \"gap_adaptive\": {},\n      \"gap_ratio\": {},\n      \
             \"uniform_secs\": {:.4},\n      \"adaptive_secs\": {:.4},\n      \
             \"gap_closed_per_sec\": {}\n    }}",
            json_num(ulo),
            json_num(uhi),
            json_num(alo),
            json_num(ahi),
            json_num(gap_u),
            json_num(gap_a),
            json_num(ratio),
            ut,
            at,
            json_num(gps),
        ));
    };
    // Whole-model rows: Method::Grid pins the grid semantics (the one
    // refinement accelerates) even where the linear semantics would
    // apply, so uniform-vs-adaptive is an apples-to-apples sweep. The
    // bound gap lives on the cells straddling branch thresholds — a
    // measure-zero surface — so adaptive's edge over the uniform grid
    // grows with the cell budget; the splits below give refinement room
    // to out-resolve the uniform grid within the same budget.
    let entries: Vec<(&str, &str, u32, Interval, f64)> = vec![
        (
            "table2-grass-grid",
            grass.source,
            8,
            Interval::new(0.5, 1.5),
            2.0,
        ),
        ("fig6a-grid", fig6a.source, 8, Interval::REAL, 0.0),
    ];
    for (name, source, unfold, u, min_ratio) in entries {
        let run = |refine: bool| {
            let mut o = AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: unfold,
                    ..Default::default()
                },
                method: Method::Grid,
                ..Default::default()
            };
            o.bounds.splits = 24;
            o.bounds.region_budget = 400_000;
            o.refine = refine;
            o.gap_target = 0.0;
            o.max_refine_depth = 40;
            let a = Analyzer::from_source(source, o).expect("zoo model compiles");
            let t0 = Instant::now();
            let (lo, hi) = a.denotation_bounds(u);
            (lo, hi, t0.elapsed().as_secs_f64())
        };
        push_row(name, run(false), run(true), min_ratio);
    }
    // Dominant-path rows: the single terminated symbolic path with the
    // most sample dimensions, bounded through the grid semantics in
    // both modes (uniform `bound_path_grid_only_threaded` vs one
    // `GridRefiner`), so the row measures the refinement engine itself
    // — not path enumeration and not the linear semantics.
    //
    // The pedestrian row carries no ratio floor: its walk is closed off
    // by `approxFix`, so the dominant path's score ranges over an
    // interval containing ⊤ contributions that no amount of cell
    // refinement can shrink — the row records the honest gap-per-second
    // on the paper's headline model. The noisyOr row is the enforced
    // dominant-path witness: its gap lives entirely on branch-threshold
    // faces, which the worklist resolves far past the uniform grid.
    let noisy_or = models::table2()
        .into_iter()
        .find(|b| b.name == "noisyOr")
        .expect("noisyOr is in table2");
    let path_rows: Vec<(&str, &str, u32, usize, Interval, f64)> = vec![
        (
            "noisyor-dominant-path",
            noisy_or.source,
            8,
            20,
            Interval::new(0.5, 1.5),
            2.0,
        ),
        (
            "pedestrian-dominant-path",
            models::PEDESTRIAN,
            2,
            12,
            Interval::new(1.0, 1.25),
            0.0,
        ),
    ];
    let width = Threads::Auto.worker_count(usize::MAX);
    for (name, source, unfold, splits, u, min_ratio) in path_rows {
        let a = Analyzer::from_source(
            source,
            AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: unfold,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("zoo model compiles");
        let dominant = a
            .paths()
            .iter()
            .filter(|p| !p.budget_truncated)
            .max_by_key(|p| p.n_samples)
            .expect("model has terminated paths")
            .clone();
        let bopts = PathBoundOptions {
            splits,
            region_budget: 400_000,
            ..Default::default()
        };
        let t0 = Instant::now();
        let mut sink = SingleQuery::new(u);
        bound_path_grid_only_threaded(&dominant, bopts, Threads::Auto, &mut sink);
        let ut = t0.elapsed().as_secs_f64();
        let tailed = tail_substituted(&dominant, &bopts);
        let path = tailed.as_ref().unwrap_or(&dominant);
        let refine = RefineOptions {
            refine: true,
            gap_target: 0.0,
            max_refine_depth: 40,
        };
        let t0 = Instant::now();
        let mut refiners = vec![
            GridRefiner::new(path, QueryFold::Filter(u), bopts, &refine, None)
                .expect("the dominant path is grid-refinable"),
        ];
        let b = run_adaptive_refinement(WorkerPool::global(), width, &mut refiners, 0.0);
        let at = t0.elapsed().as_secs_f64();
        push_row(
            name,
            (sink.lo, sink.hi, ut),
            (b[0].0, b[0].1, at),
            min_ratio,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"gap\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gap.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

/// `--stats`: per-path cache, persistent-pool and compiled-kernel
/// counters for the run.
fn stats(elapsed_s: f64) {
    let cache = shared_analysis_cache();
    let s = cache.stats();
    println!("== Run statistics ====================================================");
    let cap = match cache.capacity() {
        Some(cap) => format!("{cap}"),
        None => "unbounded".to_owned(),
    };
    println!(
        "cache: {} hits, {} misses, {} evictions, {} entries resident (cap {cap})",
        s.hits,
        s.misses,
        s.evictions,
        cache.entry_count()
    );
    if let Some((timed, degraded, minc)) = deadline_report() {
        let verdict = if degraded == 0 {
            "complete"
        } else {
            "degraded"
        };
        println!(
            "deadline: {timed} timed queries, {degraded} degraded ({verdict}), \
             min completeness {minc:.3}"
        );
    }
    let p = WorkerPool::global().stats();
    println!(
        "pool:  {} workers spawned, {} dispatches, {} inline runs, last chunk width {}",
        p.spawned_workers, p.dispatches, p.inline_runs, p.last_chunk_width
    );
    if p.refine_rounds == 0 {
        println!("refine: no adaptive rounds (uniform sweeps only; see --no-refine)");
    } else {
        println!(
            "refine: {} adaptive rounds, {} cell splits, last query gap {:.6}",
            p.refine_rounds,
            p.refine_splits,
            p.last_refine_gap()
        );
    }
    println!(
        "tasks: {} path, {} region chunks; steals: {} path, {} region; forks: {} pooled, {} inline",
        p.path_tasks,
        p.region_tasks,
        p.path_steals,
        p.region_steals,
        p.forks_parallel,
        p.forks_inline
    );
    let r = bench::aggregated_exec_report();
    println!(
        "prune: {} dead branches skipped, {} zero-score continuations dropped",
        r.pruned_branches, r.zero_score_drops
    );
    // Three-way ⊤ census: ranked ⊆ tail-enclosed ⊆ budget-truncated,
    // so the plain-tail and bare-⊤ counts are the set differences.
    println!(
        "trunc: {} budget-truncated (top) paths ({} with eventually-geometric tails, \
         {} with plain geometric tails, {} bare ⊤), {} approxFix-depth-truncated paths",
        r.budget_truncated_paths,
        r.ranked_tail_paths,
        r.tail_enclosed_paths.saturating_sub(r.ranked_tail_paths),
        r.budget_truncated_paths
            .saturating_sub(r.tail_enclosed_paths),
        r.depth_truncated_paths
    );
    let k = gubpi_symbolic::kernel_stats();
    if k.tapes == 0 {
        println!("kernel: disabled (tree-walking interpreter; GUBPI_NO_KERNEL)");
    } else {
        let saved = k.tree_nodes.saturating_sub(k.tape_instrs);
        let pct = if k.tree_nodes > 0 {
            100.0 * saved as f64 / k.tree_nodes as f64
        } else {
            0.0
        };
        println!(
            "kernel: {} tapes, {} instrs (CSE + folding saved {} of {} tree ops, {:.1}%), \
             {} cells at {:.0} cells/s over the whole run",
            k.tapes,
            k.tape_instrs,
            saved,
            k.tree_nodes,
            pct,
            k.cells,
            k.cells as f64 / elapsed_s.max(1e-9),
        );
        println!(
            "seed:  {} of {} tapes compiled from a static constant pool, \
             {} constant slots preloaded",
            k.seeded_tapes, k.tapes, k.seed_const_hits
        );
    }
}

/// `smoke`: one tiny model end to end — seconds even in debug builds,
/// so `repro [--no-kernel] --stats smoke` is the cheapest way to check
/// an installation (and whether the compiled kernel is active).
fn smoke() {
    println!("== Smoke: one tiny model end to end ==================================");
    let src = "let x = sample in let y = sample in score(x + y); if x * y <= 0.25 then x else y";
    let a = shared_analyzer(src, AnalysisOptions::default());
    let (lo, hi) = timed_denotation_bounds(&a, Interval::new(0.0, 0.5));
    println!(
        "{} paths; unnormalised mass of [0, 0.5] in [{lo:.5}, {hi:.5}]",
        a.paths().len()
    );
    assert!(lo <= hi && hi > 0.0, "smoke bounds must be non-trivial");
    println!();
}

/// Maps every typed query failure onto its own documented exit code, in
/// a sysexits-style range clear of the generic codes (0 ok, 1 denied
/// warnings, 2 usage): 64 invalid-interval, 65 invalid-domain, 66
/// no-bins, 67 deadline-exceeded, 68 worker-panicked, 69 overloaded. A
/// panic that reaches `main` exits 70 (see `main`).
fn query_error_exit(e: QueryError) -> i32 {
    match e {
        QueryError::InvalidInterval { .. } => 64,
        QueryError::InvalidDomain { .. } => 65,
        QueryError::NoBins => 66,
        QueryError::DeadlineExceeded => 67,
        QueryError::WorkerPanicked => 68,
        QueryError::Overloaded => 69,
    }
}

/// `query MODEL|SOURCE LO HI [--posterior]` — one query against a
/// catalog model (by label) or inline SPCF source, with every failure
/// mapped to a typed exit code (`query_error_exit`). The endpoints are
/// parsed leniently — a malformed number becomes `NaN` so the
/// analyzer's own validation rejects it as `InvalidInterval`: the audit
/// wants every bad input to flow through `QueryError`, not ad-hoc CLI
/// checks. Honours `--timeout-ms` / `GUBPI_TIMEOUT_MS` (degraded
/// results print their completeness; a deadline that expired before any
/// work starts is the one case reported as an error, exit 67).
fn query_cmd(rest: &[String]) -> i32 {
    let mut rest: Vec<&str> = rest.iter().map(String::as_str).collect();
    let posterior = if let Some(i) = rest.iter().position(|a| *a == "--posterior") {
        rest.remove(i);
        true
    } else {
        false
    };
    let [target, lo_s, hi_s] = rest[..] else {
        eprintln!("usage: repro [--timeout-ms N] query MODEL|SOURCE LO HI [--posterior]");
        return 2;
    };
    let catalog = models::catalog();
    let source = catalog
        .iter()
        .find(|(label, _)| label.as_str() == target)
        .map(|(_, src)| *src)
        .unwrap_or(target);
    let lo = lo_s.trim().parse::<f64>().unwrap_or(f64::NAN);
    let hi = hi_s.trim().parse::<f64>().unwrap_or(f64::NAN);
    let program = match gubpi_lang::parse(source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("repro query: `{target}` is not a catalog label and does not parse: {e}");
            return 2;
        }
    };
    let token = deadline_token();
    if token.is_some_and(|t| t.is_cancelled()) {
        eprintln!("repro query: {}", QueryError::DeadlineExceeded);
        return query_error_exit(QueryError::DeadlineExceeded);
    }
    // Panic containment at the query boundary, mirroring the serving
    // daemon: a worker panic becomes the typed `WorkerPanicked` exit,
    // not an unwind into `main`.
    let computed = catch_unwind(AssertUnwindSafe(
        || -> Result<Result<QueryOutcome, QueryError>, String> {
            let a = Analyzer::from_program_cancellable(
                program,
                AnalysisOptions::default(),
                shared_analysis_cache(),
                WorkerPool::global(),
                token,
            )
            .map_err(|e| e.to_string())?;
            Ok(if posterior {
                a.try_posterior_outcome(lo, hi, token)
            } else {
                a.try_denotation_outcome(lo, hi, token)
            })
        },
    ));
    match computed {
        Err(_) => {
            eprintln!("repro query: {}", QueryError::WorkerPanicked);
            query_error_exit(QueryError::WorkerPanicked)
        }
        Ok(Err(msg)) => {
            eprintln!("repro query: {msg}");
            2
        }
        Ok(Ok(Err(e))) => {
            eprintln!("repro query: {e}");
            query_error_exit(e)
        }
        Ok(Ok(Ok(o))) => {
            if token.is_some() {
                note_query_outcome(&o);
            }
            println!(
                "{} of [{lo}, {hi}]: [{:.6}, {:.6}] ({}, completeness {:.3})",
                if posterior {
                    "posterior probability"
                } else {
                    "unnormalised mass"
                },
                o.lo,
                o.hi,
                if o.degraded { "degraded" } else { "complete" },
                o.completeness
            );
            0
        }
    }
}

/// `serve-report`: an in-process robustness exercise of the serving
/// daemon under a mixed workload — sequential small queries (latency
/// census), one over-budget query under a tiny deadline (must come back
/// *degraded but sound*, never torn), an admission-control probe
/// against `max_inflight`, and one injected worker panic (the daemon
/// must answer `worker_panicked` and stay serviceable). Writes the
/// `BENCH_serve.json` snapshot next to the other BENCH files; any
/// unsound or torn response aborts the run.
fn serve_report() {
    println!("== Serve report: daemon robustness under mixed workload ==============");
    let handle = start_with_cache(
        ServeConfig {
            max_inflight: 2,
            ..ServeConfig::default()
        },
        shared_analysis_cache().clone(),
    )
    .expect("serve-report: bind 127.0.0.1:0");
    let addr = handle.local_addr();
    let check = |o: &QueryOutcome| {
        assert!(o.lo <= o.hi, "torn bound [{}, {}]", o.lo, o.hi);
        assert!(
            (0.0..=1.0).contains(&o.completeness),
            "completeness {} outside [0, 1]",
            o.completeness
        );
    };
    let small_src =
        "let x = sample in let y = sample in score(x + y); if x * y <= 0.25 then x else y";
    let small = |kind: QueryKind| QueryRequest {
        kind,
        source: small_src.to_string(),
        lo: 0.0,
        hi: 0.5,
        timeout_ms: None,
        region_budget: None,
    };

    // Latency census: sequential small queries, alternating kinds.
    let mut client = Client::connect(addr).expect("serve-report: connect");
    let mut lat_ms: Vec<f64> = Vec::new();
    for i in 0..24u32 {
        let kind = if i % 2 == 0 {
            QueryKind::Denotation
        } else {
            QueryKind::Posterior
        };
        let t0 = Instant::now();
        let o = client
            .query(small(kind))
            .expect("serve-report: transport")
            .expect("serve-report: small query must succeed");
        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        check(&o);
        assert!(!o.degraded, "undeadlined small query must not degrade");
    }
    lat_ms.sort_by(f64::total_cmp);
    let pct = |p: f64| lat_ms[((lat_ms.len() - 1) as f64 * p).round() as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));

    // Over-budget query: the pedestrian at the server's default options
    // runs far past a 5 ms deadline, so the reply must be the anytime
    // degraded enclosure — still a guaranteed superset of the true
    // posterior probability, which the Monte-Carlo estimate probes.
    let heavy = |timeout_ms: Option<u64>| QueryRequest {
        kind: QueryKind::Posterior,
        source: models::PEDESTRIAN.to_string(),
        lo: 1.0,
        hi: 1.25,
        timeout_ms,
        region_budget: None,
    };
    let o = client
        .query(heavy(Some(5)))
        .expect("serve-report: transport")
        .expect("serve-report: deadline must degrade, not fail");
    check(&o);
    assert!(o.degraded, "5 ms pedestrian query must be degraded");
    let mc = mc_probability(models::PEDESTRIAN, Interval::new(1.0, 1.25), 20_000, 77);
    assert!(
        o.lo - 0.01 <= mc && mc <= o.hi + 0.01,
        "degraded bounds [{}, {}] exclude the MC estimate {mc}",
        o.lo,
        o.hi
    );
    let min_completeness = o.completeness;
    println!(
        "deadline: degraded pedestrian reply [{:.4}, {:.4}], completeness {:.3}, \
         contains MC {mc:.4}",
        o.lo, o.hi, min_completeness
    );

    // Admission control: occupy both inflight slots with deadlined
    // heavy queries, then probe from a third connection while they run.
    // A 400 ms deadline keeps each slot busy long enough that at least
    // one probe inside the window must be rejected.
    let occupiers: Vec<_> = (0..2)
        .map(|_| {
            let req = heavy(Some(400));
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("serve-report: connect");
                c.query(req).expect("serve-report: transport")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    let mut overloaded_seen = 0u64;
    for _ in 0..10 {
        match client.query(small(QueryKind::Denotation)) {
            Ok(Ok(o)) => check(&o),
            Ok(Err(e)) => {
                assert_eq!(e.code, "overloaded", "unexpected rejection: {e:?}");
                overloaded_seen += 1;
            }
            Err(e) => panic!("serve-report: transport: {e}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for t in occupiers {
        let o = t
            .join()
            .expect("occupier thread")
            .expect("deadlined heavy query must degrade, not fail");
        check(&o);
    }
    assert!(
        overloaded_seen > 0,
        "admission control never rejected while both slots were held"
    );
    println!("admission: {overloaded_seen} of 10 probes rejected while both slots were busy");

    // Injected panic: the very next task boundary is this request's
    // entry hook, so the fault fires inside the daemon's catch_unwind.
    // The reply must be the typed error and the daemon must keep
    // serving afterwards.
    set_fault_plan(Some(FaultPlan {
        kind: FaultKind::Panic,
        at: 0,
    }));
    let panicked = client
        .query(small(QueryKind::Denotation))
        .expect("serve-report: transport");
    set_fault_plan(None);
    let err = panicked.expect_err("injected panic must yield a typed error");
    assert_eq!(err.code, "worker_panicked", "got {err:?}");
    let o = client
        .query(small(QueryKind::Denotation))
        .expect("serve-report: transport")
        .expect("daemon must stay serviceable after a contained panic");
    check(&o);
    println!(
        "panic: injected panic contained ({}), daemon still serving",
        err.code
    );

    let s = handle.stats();
    handle.shutdown();
    println!(
        "served {} (degraded {}), overloaded {}, deadline-exceeded {}, panics {}, \
         p50 {p50:.2} ms, p99 {p99:.2} ms",
        s.served, s.degraded, s.overloaded, s.deadline_exceeded, s.panics
    );
    assert_eq!(s.panics, 1, "exactly the injected panic");
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"small_queries\": {},\n  \"p50_ms\": {},\n  \
         \"p99_ms\": {},\n  \"served\": {},\n  \"degraded_queries\": {},\n  \
         \"overloaded\": {},\n  \"deadline_exceeded\": {},\n  \"panics\": {},\n  \
         \"errors\": {},\n  \"min_completeness\": {}\n}}\n",
        lat_ms.len(),
        json_num(p50),
        json_num(p99),
        s.served,
        s.degraded,
        s.overloaded,
        s.deadline_exceeded,
        s.panics,
        s.errors,
        json_num(min_completeness),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

/// Table 1 / Table 4: per-query bounds and times, baseline vs GuBPI,
/// with a Monte-Carlo cross-check column.
fn table1() {
    println!("== Table 1 / Table 4: probability estimation =========================");
    println!(
        "{:<14} {:<22} {:>8} {:>19} {:>8} {:>19} {:>8}",
        "program", "query", "t[56]", "result [56]", "tGuBPI", "result GuBPI", "MC"
    );
    for b in models::table1() {
        let t0 = Instant::now();
        let base = baseline56_bounds(b.source, b.u, Default::default());
        let t_base = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (lo, hi) = analyze_prob_benchmark(&b);
        let t_gubpi = t1.elapsed().as_secs_f64();
        let mc = mc_probability(b.source, b.u, 30_000, 12345);
        let base_str = match base {
            Ok((bl, bh)) => format!("[{bl:.4}, {bh:.4}]"),
            Err(_) => "(rejected)".to_owned(),
        };
        println!(
            "{:<14} {:<22} {:>7.2}s {:>19} {:>7.2}s [{:.4}, {:.4}] {:>8.4}",
            b.name, b.query_label, t_base, base_str, t_gubpi, lo, hi, mc
        );
    }
    println!();
}

/// Table 2: discrete models — GuBPI bounds vs exact rational posteriors.
fn table2() {
    println!("== Table 2: discrete models vs exact posterior =======================");
    println!(
        "{:<16} {:>16} {:>25} {:>9} {:>6}",
        "instance", "exact", "GuBPI bounds", "t", "tight"
    );
    for b in models::table2() {
        let exact = b.exact.0 as f64 / b.exact.1 as f64;
        let t0 = Instant::now();
        let opts = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = shared_analyzer(b.source, opts);
        let (lo, hi) = timed_posterior_probability(&a, Interval::new(0.5, 1.5));
        let t = t0.elapsed().as_secs_f64();
        let tight = if hi - lo < 1e-3 { "yes" } else { "~" };
        println!(
            "{:<16} {:>7}={:.4} [{:.6}, {:.6}] {:>8.2}s {:>6}",
            b.name,
            format!("{}/{}", b.exact.0, b.exact.1),
            exact,
            lo,
            hi,
            t,
            tight
        );
        assert!(
            lo <= exact + 1e-9 && exact <= hi + 1e-9,
            "{}: exact {exact} outside [{lo}, {hi}]",
            b.name
        );
    }
    println!();
}

/// Table 3: running time of GuBPI bounds vs SBC on the same model.
fn table3() {
    println!("== Table 3: GuBPI vs simulation-based calibration ====================");
    // Binary GMM (1-dimensional).
    let fig5_models = models::figure5();
    let gmm = &fig5_models[2];
    let t0 = Instant::now();
    let a = analyzer_for_figure(gmm);
    let h = a.histogram(gmm.domain, gmm.bins);
    let (zlo, zhi) = h.z_bounds();
    let t_gubpi = t0.elapsed().as_secs_f64();
    println!("Binary GMM: GuBPI {t_gubpi:.2}s (Z in [{zlo:.4}, {zhi:.4}])");

    // SBC for an importance sampler on a conjugate-style model.
    let t1 = Instant::now();
    let mut rng = StdRng::seed_from_u64(99);
    let cfg = SbcConfig {
        simulations: 200,
        posterior_samples: 31,
        bins: 8,
    };
    let r = run_sbc(
        |rng| rng.random::<f64>(),
        |theta, rng| theta + (rng.random::<f64>() - 0.5) * 0.2,
        |y, l, rng| {
            // Posterior sampling by importance resampling on the program.
            let lo = (y - 0.1).max(0.0);
            let hi = (y + 0.1).min(1.0);
            if hi <= lo {
                return Vec::new();
            }
            let src = format!("let t = sample in observe t from uniform({lo}, {hi}); t");
            let p = gubpi_lang::parse(&src).expect("model parses");
            let ws = importance_sample(&p, 4 * l, ImportanceOptions::default(), rng);
            systematic_resample(&ws, l)
        },
        cfg,
        &mut rng,
    );
    let t_sbc = t1.elapsed().as_secs_f64();
    println!(
        "SBC (importance sampler): {t_sbc:.2}s, chi2 = {:.2}, p = {:.3} ({})",
        r.chi2,
        r.p_value,
        if r.is_miscalibrated() {
            "MISCALIBRATED"
        } else {
            "calibrated"
        }
    );
    println!();
}

/// Systematic resampling of a weighted sample set.
fn systematic_resample(ws: &gubpi_inference::WeightedSamples, l: usize) -> Vec<f64> {
    let max_lw = ws
        .log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if !max_lw.is_finite() {
        return Vec::new();
    }
    let weights: Vec<f64> = ws
        .log_weights
        .iter()
        .map(|lw| (lw - max_lw).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(l);
    for k in 0..l {
        let target = (k as f64 + 0.5) / l as f64 * total;
        let mut acc = 0.0;
        for (v, w) in ws.values.iter().zip(&weights) {
            acc += w;
            if acc >= target {
                out.push(*v);
                break;
            }
        }
    }
    out
}

/// Fig. 1 / Fig. 7: pedestrian — GuBPI bounds, IS histogram, wrong HMC.
fn pedestrian() {
    println!("== Fig. 1 / Fig. 7: the pedestrian example ===========================");
    let src = models::PEDESTRIAN;
    let domain = Interval::new(0.0, 3.0);
    let bins = 12;

    let t0 = Instant::now();
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    opts.bounds.splits = 16;
    let a = shared_analyzer(src, opts);
    let h = a.histogram(domain, bins);
    println!(
        "GuBPI bounds ({} paths, {:.1}s):",
        a.paths().len(),
        t0.elapsed().as_secs_f64()
    );
    print!("{}", render_histogram(&h, 40));

    // Importance sampling (the *correct* stochastic answer).
    let program = gubpi_lang::parse(src).expect("pedestrian parses");
    let mut rng = StdRng::seed_from_u64(4);
    let is = importance_sample(&program, 30_000, ImportanceOptions::default(), &mut rng);
    let is_hist = is.histogram(domain.lo(), domain.hi(), bins);

    // Fixed-truncation HMC (the *wrong* answer of Fig. 1).
    let mut rng = StdRng::seed_from_u64(5);
    let hmc = hmc_sample(
        &program,
        1_500,
        HmcOptions {
            dim: 9,
            step_size: 0.12,
            leapfrog_steps: 8,
            burn_in: 150,
            ..Default::default()
        },
        &mut rng,
    );
    let mut hmc_hist = vec![0.0f64; bins];
    for v in &hmc.values {
        if *v >= domain.lo() && *v < domain.hi() {
            let b = (((v - domain.lo()) / domain.width()) * bins as f64) as usize;
            hmc_hist[b.min(bins - 1)] += 1.0;
        }
    }
    let total: f64 = hmc_hist.iter().sum::<f64>().max(1.0);
    for x in &mut hmc_hist {
        *x /= total;
    }

    println!(
        "\n{:<16} {:>21} {:>8} {:>8} {:>9}",
        "bin", "GuBPI", "IS", "HMC", "HMC ok?"
    );
    let norm = h.normalized();
    let mut is_viol = 0;
    let mut hmc_viol = 0;
    for (i, nb) in norm.iter().enumerate() {
        // 0.002 of slack absorbs Monte-Carlo noise in the samplers'
        // histograms without masking genuine violations.
        let ok_is = is_hist[i] >= nb.lo - 0.002 && is_hist[i] <= nb.hi + 0.002;
        let ok_hmc = hmc_hist[i] >= nb.lo - 0.002 && hmc_hist[i] <= nb.hi + 0.002;
        if !ok_is {
            is_viol += 1;
        }
        if !ok_hmc {
            hmc_viol += 1;
        }
        println!(
            "[{:5.2}, {:5.2})  [{:.4}, {:.4}] {:>8.4} {:>8.4} {:>9}",
            nb.bin.lo(),
            nb.bin.hi(),
            nb.lo,
            nb.hi,
            is_hist[i],
            hmc_hist[i],
            if ok_hmc { "ok" } else { "VIOLATES" }
        );
    }
    println!(
        "\nIS violates {is_viol} bins; fixed-truncation HMC violates {hmc_viol} bins \
         (the Fig. 1 separation)."
    );
    println!();
}

/// Fig. 5: non-recursive models.
fn fig5() {
    println!("== Fig. 5: guaranteed bounds for non-recursive models ================");
    for b in models::figure5() {
        run_figure(&b);
    }
}

/// Fig. 6: recursive models.
fn fig6() {
    println!("== Fig. 6: guaranteed bounds for recursive models ====================");
    for b in models::figure6() {
        run_figure(&b);
    }
}

fn run_figure(b: &models::FigureBenchmark) {
    let t0 = Instant::now();
    let a = analyzer_for_figure(b);
    let h = a.histogram(b.domain, b.bins);
    let t = t0.elapsed().as_secs_f64();
    println!(
        "-- Fig. {} ({}) — {} paths, {:.1}s",
        b.id,
        b.description,
        a.paths().len(),
        t
    );
    print!("{}", render_histogram(&h, 40));
    println!();
}

/// Ablations: linear vs grid semantics; depth sweep on the pedestrian.
fn ablation() {
    println!("== Ablation: linear (§6.4) vs grid (§6.3) semantics ==================");
    let src = "let x = sample in let y = sample in score(x + y); x";
    for (label, method) in [("linear", Method::Auto), ("grid", Method::Grid)] {
        let t0 = Instant::now();
        let a = shared_analyzer(
            src,
            AnalysisOptions {
                method,
                ..Default::default()
            },
        );
        let (lo, hi) = timed_denotation_bounds(&a, Interval::new(0.0, 0.5));
        println!(
            "{label:>7}: [{lo:.5}, {hi:.5}] width {:.5} in {:.2}s",
            hi - lo,
            t0.elapsed().as_secs_f64()
        );
    }

    println!("\n== Ablation: unfolding depth vs tightness (pedestrian Z bounds) =====");
    for depth in [2u32, 3, 4, 5] {
        let t0 = Instant::now();
        let mut opts = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: depth,
                ..Default::default()
            },
            ..Default::default()
        };
        opts.bounds.splits = 16;
        let a = shared_analyzer(models::PEDESTRIAN, opts);
        let (zlo, zhi) = a.normalizing_constant();
        println!(
            "depth {depth}: Z in [{zlo:.4}, {zhi:.4}] ({} paths, {:.1}s)",
            a.paths().len(),
            t0.elapsed().as_secs_f64()
        );
    }
    println!();
}
