//! Exact rational ground truth for the discrete benchmarks (Table 2).
//!
//! The paper checks GuBPI's (tight) bounds against PSI's exact symbolic
//! posteriors. PSI is closed infrastructure we replace with exact
//! rational arithmetic: each model's posterior is computed from first
//! principles with [`Ratio`] (128-bit integer fractions), so there is no
//! floating-point error on the reference side.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// An exact rational number on `i128`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let g = gcd(num.abs(), den.abs()).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The rational `0`.
    pub fn zero() -> Ratio {
        Ratio::new(0, 1)
    }

    /// The rational `1`.
    pub fn one() -> Ratio {
        Ratio::new(1, 1)
    }

    /// Numerator (lowest terms).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (lowest terms, positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Nearest `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The complement `1 − self`.
    pub fn complement(&self) -> Ratio {
        Ratio::one() - *self
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

fn r(n: i128, d: i128) -> Ratio {
    Ratio::new(n, d)
}

/// `P(burglary | alarm)` with burglary 1/8, earthquake 1/4, alarm iff
/// burglary ∨ earthquake:
/// `P(b ∧ alarm) / P(alarm) = (1/8) / (1 − (7/8)(3/4))`.
pub fn burglar_alarm() -> (i128, i128) {
    let pb = r(1, 8);
    let pe = r(1, 4);
    let p_alarm = Ratio::one() - pb.complement() * pe.complement();
    let post = pb / p_alarm;
    (post.num(), post.den())
}

/// `P(rain | wet)` for the grass model: rain 1/2, sprinkler 3/10, wet
/// channels 9/10 (rain) and 8/10 (sprinkler), combined by noisy-or.
pub fn grass() -> (i128, i128) {
    let p_rain = r(1, 2);
    let p_spr = r(3, 10);
    // P(wet | rain) = 1 − (1/10)·(1 − 0.3·0.8)
    let wet_given = |rain: bool| -> Ratio {
        let via_rain = if rain { r(9, 10) } else { Ratio::zero() };
        let via_spr = p_spr * r(8, 10);
        Ratio::one() - via_rain.complement() * via_spr.complement()
    };
    let joint_rain = p_rain * wet_given(true);
    let p_wet = joint_rain + p_rain.complement() * wet_given(false);
    let post = joint_rain / p_wet;
    (post.num(), post.den())
}

/// `P(cause1 | symptom)` for the noisy-or model: causes 2/5 and 3/10,
/// channels 7/10 and 3/5.
pub fn noisy_or() -> (i128, i128) {
    let p1 = r(2, 5);
    let p2 = r(3, 10);
    let sym_given = |c1: bool| -> Ratio {
        let via1 = if c1 { r(7, 10) } else { Ratio::zero() };
        let via2 = p2 * r(3, 5);
        Ratio::one() - via1.complement() * via2.complement()
    };
    let joint = p1 * sym_given(true);
    let p_sym = joint + p1.complement() * sym_given(false);
    let post = joint / p_sym;
    (post.num(), post.den())
}

/// `P(alice | gun)` with alice 3/10, gun channels 3/100 vs 8/10.
pub fn murder_mystery() -> (i128, i128) {
    let pa = r(3, 10);
    let joint = pa * r(3, 100);
    let p_gun = joint + pa.complement() * r(8, 10);
    let post = joint / p_gun;
    (post.num(), post.den())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_arithmetic_is_exact() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(r(2, 4), r(1, 2), "reduction to lowest terms");
        assert_eq!(r(1, -2), r(-1, 2), "sign normalisation");
        assert_eq!(r(3, 4).complement(), r(1, 4));
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn burglar_alarm_posterior() {
        // P(alarm) = 1 − (7/8)(3/4) = 11/32; posterior = (1/8)/(11/32) = 4/11.
        assert_eq!(burglar_alarm(), (4, 11));
    }

    #[test]
    fn murder_mystery_posterior() {
        // joint = 9/1000; P(gun) = 9/1000 + (7/10)(8/10) = 569/1000.
        assert_eq!(murder_mystery(), (9, 569));
    }

    #[test]
    fn grass_and_noisy_or_are_valid_probabilities() {
        for (n, d) in [grass(), noisy_or()] {
            assert!(n > 0 && n < d, "{n}/{d}");
        }
        // Spot value: grass = 0.462/0.582 ≈ 0.7938.
        let (n, d) = grass();
        let p = n as f64 / d as f64;
        assert!((p - 0.7938).abs() < 0.01, "p={p}");
    }
}
