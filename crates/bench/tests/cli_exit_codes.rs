//! Exit-code audit for the `repro` binary: every failure class maps to
//! a distinct, documented code, and no input reaches `main` as an
//! unwind (a panic that does slip through every inner boundary is
//! caught there and mapped to 70 — so a raw abort/101 is always a bug).
//!
//! Codes: 0 ok, 1 denied warnings, 2 usage/parse, 64 invalid-interval,
//! 65 invalid-domain, 66 no-bins, 67 deadline-exceeded, 68
//! worker-panicked, 69 overloaded, 70 panic-reached-main.

use std::process::{Command, Output};

fn repro(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("repro spawns")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("repro must exit, not be signalled")
}

const INLINE: &str = "let x = sample in score(x); x";

#[test]
fn unknown_command_and_bad_flags_exit_2() {
    assert_eq!(code(&repro(&["no-such-command"], &[])), 2);
    assert_eq!(code(&repro(&["--threads", "0", "smoke"], &[])), 2);
    assert_eq!(code(&repro(&["--timeout-ms", "soon", "smoke"], &[])), 2);
    assert_eq!(code(&repro(&["query", "only-two", "0.0"], &[])), 2);
    assert_eq!(
        code(&repro(&["query", "not a ( model", "0.0", "1.0"], &[])),
        2
    );
}

#[test]
fn successful_query_exits_0_and_reports_completeness() {
    let out = repro(&["query", INLINE, "0.2", "0.8"], &[]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("complete"), "stdout: {stdout}");
}

#[test]
fn invalid_interval_exits_64() {
    // Inverted endpoints and unparseable endpoints (lenient parse to
    // NaN) must both flow through the typed `InvalidInterval` error.
    assert_eq!(code(&repro(&["query", INLINE, "0.8", "0.2"], &[])), 64);
    assert_eq!(code(&repro(&["query", INLINE, "wat", "0.2"], &[])), 64);
}

#[test]
fn pre_expired_deadline_exits_67() {
    let out = repro(&["--timeout-ms", "0", "query", INLINE, "0.2", "0.8"], &[]);
    assert_eq!(code(&out), 67);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "stderr: {stderr}");
}

#[test]
fn injected_panic_is_contained_as_exit_68() {
    let out = repro(
        &["query", INLINE, "0.2", "0.8"],
        &[("GUBPI_FAULT", "panic@0")],
    );
    assert_eq!(
        code(&out),
        68,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker task panicked"), "stderr: {stderr}");
    // The panic was contained at the query boundary, not in `main`.
    assert!(!stderr.contains("panic reached main"), "stderr: {stderr}");
}

#[test]
fn expired_deadline_mid_run_still_exits_0_with_degraded_bounds() {
    // A 1 ms deadline on a heavy query: the run must complete with a
    // sound degraded enclosure, not hang and not fail.
    let out = repro(
        &[
            "--timeout-ms",
            "1",
            "query",
            "pedestrian",
            "1.0",
            "1.25",
            "--posterior",
        ],
        &[],
    );
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("degraded"), "stdout: {stdout}");
}
