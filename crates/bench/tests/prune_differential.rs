//! Differential tests for static dead-branch pruning: on every repo
//! model, the bounds computed with pruning enabled must be bit-identical
//! to a `--no-prune` run — pruning may only remove symbolic paths whose
//! contribution to both the lower and the upper bound is exactly 0.0.
//!
//! These tests honour `GUBPI_THREADS` (the default `AnalysisOptions`
//! resolve `Threads::Auto` from the env), so the CI worker matrix
//! exercises pruning under real concurrency for free.

use bench::models;
use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;

fn analyzer(source: &str, unfold: u32, prune: bool) -> Analyzer {
    let opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: unfold,
            ..Default::default()
        },
        prune,
        ..Default::default()
    };
    Analyzer::from_source(source, opts).expect("repo model compiles")
}

fn assert_bits_equal(name: &str, what: &str, a: (f64, f64), b: (f64, f64)) {
    assert_eq!(
        a.0.to_bits(),
        b.0.to_bits(),
        "{name}: pruned {what} lower bound {} != unpruned {}",
        a.0,
        b.0
    );
    assert_eq!(
        a.1.to_bits(),
        b.1.to_bits(),
        "{name}: pruned {what} upper bound {} != unpruned {}",
        a.1,
        b.1
    );
}

/// Every Table 2 model: bit-identical bounds, and the path set must
/// strictly shrink on at least two of them (the issue's acceptance bar;
/// in practice every `fail`-conditioned model shrinks).
#[test]
fn table2_bounds_are_bit_identical_and_paths_shrink() {
    let mut reduced = 0usize;
    for b in models::table2() {
        let on = analyzer(b.source, 8, true);
        let off = analyzer(b.source, 8, false);
        assert!(
            on.paths().len() <= off.paths().len(),
            "{}: pruning must never add paths ({} vs {})",
            b.name,
            on.paths().len(),
            off.paths().len()
        );
        if on.paths().len() < off.paths().len() {
            reduced += 1;
        }
        for u in [
            Interval::new(0.5, 1.5),
            Interval::new(-0.5, 0.5),
            Interval::new(0.0, 1.0),
        ] {
            assert_bits_equal(
                b.name,
                "denotation",
                on.denotation_bounds(u),
                off.denotation_bounds(u),
            );
            assert_bits_equal(
                b.name,
                "posterior",
                on.posterior_probability(u),
                off.posterior_probability(u),
            );
        }
        assert_bits_equal(
            b.name,
            "normalizing constant",
            on.normalizing_constant(),
            off.normalizing_constant(),
        );
    }
    assert!(
        reduced >= 2,
        "pruning must shrink the path set on at least two repo models, got {reduced}"
    );
}

/// A recursive model whose `fail` arm sits behind an undecided sample
/// guard, so the prune fires at the fork (branch cut, not just a
/// zero-score drop) on every unfolding. Bounds must still match to the
/// bit against the unpruned run.
#[test]
fn fork_level_branch_cuts_are_bit_identical_on_a_recursive_model() {
    let src = "let rec walk x = \
                 if x <= 0 then 0 else \
                 if sample <= 0.5 then walk (x - sample) else fail \
               in walk 1";
    let on = analyzer(src, 5, true);
    let off = analyzer(src, 5, false);
    assert!(
        on.exec_report().pruned_branches > 0,
        "the fail arm must be cut at the fork: {:?}",
        on.exec_report()
    );
    assert!(
        on.paths().len() < off.paths().len(),
        "cut forks must shrink the path set ({} vs {})",
        on.paths().len(),
        off.paths().len()
    );
    for u in [Interval::new(0.0, 0.5), Interval::new(-1.0, 2.0)] {
        assert_bits_equal(
            "walk",
            "denotation",
            on.denotation_bounds(u),
            off.denotation_bounds(u),
        );
    }
    assert_bits_equal(
        "walk",
        "normalizing constant",
        on.normalizing_constant(),
        off.normalizing_constant(),
    );
}
