//! Smoke tests for the workspace wiring: the `repro` binary must start,
//! answer `--help`, and a tiny model must run end to end through the
//! same harness entry point the benches use. This is the canary that
//! keeps the binary, the bench harness and the analyzer linked together.

use std::process::Command;

use bench::analyze_prob_benchmark;
use bench::models::ProbBenchmark;
use gubpi_interval::Interval;

/// Path to the compiled `repro` binary (provided by Cargo for
/// integration tests of the package that owns the binary).
const REPRO: &str = env!("CARGO_BIN_EXE_repro");

#[test]
fn repro_help_exits_zero_and_prints_usage() {
    let out = Command::new(REPRO)
        .arg("--help")
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "--help must exit 0: {:?}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["USAGE", "table1", "pedestrian", "ablation", "all"] {
        assert!(
            text.contains(needle),
            "usage text missing {needle:?}:\n{text}"
        );
    }
}

#[test]
fn repro_rejects_unknown_commands() {
    let out = Command::new(REPRO)
        .arg("no-such-table")
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "stderr: {err}");
}

#[test]
fn repro_rejects_zero_threads() {
    // Regression: `--threads 0` used to be accepted as Fixed(0) and
    // silently clamped to one sequential worker. It must now be a hard
    // usage error pointing at `off`.
    let out = Command::new(REPRO)
        .args(["--threads", "0", "table2"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "zero workers must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("positive worker count") && err.contains("`off`"),
        "stderr must explain the fix: {err}"
    );
}

#[test]
fn tiny_model_end_to_end() {
    // The smallest interesting model: a uniform prior scored to the
    // upper half. The unnormalised mass of [0.5, 1] is exactly 1/2, and
    // the analyzer's guaranteed bounds must bracket it.
    let b = ProbBenchmark {
        name: "smoke",
        query_label: "x in [0.5, 1]",
        source: "let x = sample in score(if x <= 0.5 then 0 else 1); x",
        u: Interval::new(0.5, 1.0),
        unfold: 2,
    };
    let (lo, hi) = analyze_prob_benchmark(&b);
    assert!(
        lo <= 0.5 && 0.5 <= hi,
        "bounds [{lo}, {hi}] must contain 0.5"
    );
    assert!(lo >= 0.0 && hi <= 1.0, "weights are a sub-probability here");
    assert!(hi - lo < 0.45, "bounds [{lo}, {hi}] should be informative");
}

#[test]
fn repro_rejects_invalid_cache_caps() {
    // `--cache-cap 0` would be a cache that evicts every insert
    // immediately; like `--threads 0` it must be a hard usage error, as
    // must non-numeric caps. Both exit before any analysis starts.
    for bad in ["0", "lots"] {
        let out = Command::new(REPRO)
            .args(["--cache-cap", bad, "table2"])
            .output()
            .expect("repro binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--cache-cap {bad} must be rejected"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("positive entry count"),
            "stderr must explain the fix: {err}"
        );
    }
    // A missing value is also a usage error, not a silent default.
    let out = Command::new(REPRO)
        .arg("--cache-cap")
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repro_help_documents_the_new_flags() {
    let out = Command::new(REPRO)
        .arg("--help")
        .output()
        .expect("repro binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--cache-cap",
        "--stats",
        "GUBPI_CACHE_CAP",
        "--no-kernel",
        "GUBPI_NO_KERNEL",
        "--no-prune",
        "GUBPI_NO_PRUNE",
        "--lint",
        "--deny-warnings",
        "analyze",
        "prune-report",
    ] {
        assert!(text.contains(needle), "usage text missing {needle:?}");
    }
}

#[test]
fn repro_analyze_is_warning_clean_over_all_builtin_models() {
    // The CI lint gate: every built-in model must stay free of
    // warning-severity findings (notes are expected — the recursive
    // models deliberately lack weight contraction).
    let out = Command::new(REPRO)
        .args(["analyze", "--deny-warnings"])
        .output()
        .expect("repro binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "analyze --deny-warnings must exit 0:\n{text}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("models analyzed") && text.contains("0 warnings"),
        "analyze must print a warning-free summary:\n{text}"
    );
    // The static facts must actually see through the models: the
    // fail-conditioned discrete models have statically-dead score zeros.
    assert!(
        text.contains("table2/twoCoins: 1 dead branches, 1 zero-weight scores"),
        "facts summary missing:\n{text}"
    );
}

#[test]
fn repro_analyze_filters_and_rejects_unknown_models() {
    let out = Command::new(REPRO)
        .args(["analyze", "pedestrian"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("1 models analyzed"),
        "filter must match exactly the pedestrian:\n{text}"
    );
    assert!(
        text.contains("truncation-risk-recursion"),
        "the pedestrian's recursion note must render:\n{text}"
    );
    let out = Command::new(REPRO)
        .args(["analyze", "no-such-model"])
        .output()
        .expect("repro binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown model filter is a usage error"
    );
}

#[test]
fn repro_no_prune_and_stats_report_prune_counters() {
    // `--no-prune --stats smoke` must run and report zero prune activity;
    // the counters line must be present either way.
    let out = Command::new(REPRO)
        .args(["--no-prune", "--stats", "smoke"])
        .env_remove("GUBPI_NO_PRUNE")
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "status: {:?}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("prune: 0 dead branches skipped"),
        "--no-prune must zero the prune counters:\n{text}"
    );
    assert!(
        text.contains("seed:") && text.contains("constant slots preloaded"),
        "stats must report kernel seeding:\n{text}"
    );
}

#[test]
fn repro_accepts_no_kernel_and_reports_kernel_stats() {
    // `--no-kernel` must be accepted anywhere in the argument list (it
    // is stripped before command dispatch) ...
    let out = Command::new(REPRO)
        .args(["--no-kernel", "--help"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "--no-kernel --help must exit 0");
    // ... and force the tree-walking interpreter: the kernel line of
    // `--stats` reports it disabled after a real (tiny) analysis run.
    let out = Command::new(REPRO)
        .args(["--no-kernel", "--stats", "smoke"])
        .env_remove("GUBPI_NO_KERNEL")
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "status: {:?}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("kernel: disabled"),
        "stats must report the interpreter fallback:\n{text}"
    );
    // With the kernel on, the same command reports tape statistics.
    let out = Command::new(REPRO)
        .args(["--stats", "smoke"])
        .env_remove("GUBPI_NO_KERNEL")
        .output()
        .expect("repro binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("kernel:") && text.contains("tapes") && text.contains("cells/s"),
        "stats must report tape length / CSE / cells-per-second:\n{text}"
    );
}
