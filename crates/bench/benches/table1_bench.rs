//! Criterion bench for Table 1: GuBPI vs the [56] baseline on the
//! probability-estimation suite (timings column of the table).

use std::hint::black_box;

use bench::models;
use bench::{analyze_prob_benchmark, baseline56_bounds, BaselineOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // A representative, cheap subset; `repro table1` runs the full suite.
    for b in models::table1() {
        if !matches!(b.name, "example4" | "example5" | "ex-book-s" | "tug-of-war") {
            continue;
        }
        let id = format!("gubpi/{}/{}", b.name, b.query_label);
        group.bench_function(&id, |bencher| {
            bencher.iter(|| black_box(analyze_prob_benchmark(&b)));
        });
        let id = format!("baseline56/{}/{}", b.name, b.query_label);
        group.bench_function(&id, |bencher| {
            bencher.iter(|| {
                black_box(baseline56_bounds(b.source, b.u, BaselineOptions::default()).ok())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
