//! Scheduler overhead: per-call scoped spawns vs the persistent pool.
//!
//! PRs 2–3 spawned scoped `std::thread` workers on *every* parallel
//! call; PR 4's persistent executor parks warm workers between calls.
//! This bench isolates exactly that difference: both sides execute the
//! same trivial chunk-claiming loop over a small index space, so the
//! measured gap is dispatch machinery (thread spawn + join vs condvar
//! wake + latch), not bounding work. CI runs this as a smoke invocation
//! so scheduler regressions surface in the logs.
//!
//! Results are scheduling-only: the deterministic reduce makes bound
//! *values* identical no matter which engine ran (see
//! `tests/parallel_determinism.rs`).

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::pool::{run_jobs_with, PathJob, WorkerPool};

/// Work shape: `paths` jobs of `regions` trivial regions each.
const SHAPES: &[(&str, usize, usize)] = &[("64x16", 64, 16), ("4x1024", 4, 1024)];
const WORKERS: usize = 4;

/// The PR-2/PR-3 baseline, reconstructed locally: spawn `WORKERS`
/// scoped threads per call, claim chunks of the flat job space from an
/// atomic cursor, join. (The real engine did this once per query.)
fn scoped_spawn_baseline(paths: usize, regions: usize) -> u64 {
    let total = paths * regions;
    let cursor = AtomicUsize::new(0);
    let acc = AtomicU64::new(0);
    let chunk = (total / (WORKERS * 4)).max(1);
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                let end = (start + chunk).min(total);
                let mut local = 0u64;
                for i in start..end {
                    local += black_box(i as u64);
                }
                acc.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    acc.load(Ordering::Relaxed)
}

/// The same work as pool jobs: one sweep per path, trivial regions.
fn pool_run(pool: &WorkerPool, paths: usize, regions: usize) -> u64 {
    let jobs: Vec<PathJob<'_, u64>> = (0..paths)
        .map(|p| PathJob::Sweep {
            total: regions,
            cost: 1,
            process: Box::new(move |range, buf: &mut Vec<u64>| {
                for ci in range {
                    buf.push(black_box((p * regions + ci) as u64));
                }
            }),
        })
        .collect();
    let mut acc = 0u64;
    run_jobs_with(pool, WORKERS, jobs, |_, v| acc += v);
    acc
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group.sample_size(50);

    let pool = WorkerPool::new();
    // Warm the pool once so the (one-off) lazy spawns are not billed to
    // the first sample — the whole point is steady-state dispatch cost.
    let _ = pool_run(&pool, 4, 64);

    for &(shape, paths, regions) in SHAPES {
        let expected: u64 = (0..(paths * regions) as u64).sum();
        group.bench_function(format!("scoped-spawn/{shape}"), |b| {
            b.iter(|| {
                let got = scoped_spawn_baseline(black_box(paths), black_box(regions));
                assert_eq!(got, expected);
                got
            })
        });
        group.bench_function(format!("persistent-pool/{shape}"), |b| {
            b.iter(|| {
                let got = pool_run(&pool, black_box(paths), black_box(regions));
                assert_eq!(got, expected);
                got
            })
        });
    }
    group.finish();

    // One-line overhead summary for CI logs: mean dispatch cost of each
    // engine on the small shape, and the ratio.
    let reps = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(scoped_spawn_baseline(64, 16));
    }
    let scoped = t0.elapsed().as_secs_f64() / reps as f64;
    let t1 = Instant::now();
    for _ in 0..reps {
        black_box(pool_run(&pool, 64, 16));
    }
    let pooled = t1.elapsed().as_secs_f64() / reps as f64;
    println!(
        "pool-summary: scoped-spawn {:.1}µs/dispatch, persistent-pool {:.1}µs/dispatch \
         ({:.2}x) over {reps} dispatches of 64x16 trivial regions [{} workers spawned]",
        scoped * 1e6,
        pooled * 1e6,
        scoped / pooled.max(1e-12),
        pool.spawned_workers(),
    );
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
