//! Region-level vs path-level parallelism.
//!
//! Path-level parallelism (PR 2) cannot beat the cost of the single
//! most expensive path: a model dominated by one deep path — the
//! pedestrian's deepest grid path is the canonical case — serialises on
//! whichever worker drew it. Region-level parallelism splits the work
//! *inside* that path (§6.3 grid cells, §6.4 chunk combinations)
//! across the pool, so it engages exactly where path-level parallelism
//! cannot. Bounds are bit-identical across every configuration (see
//! `tests/parallel_determinism.rs`); only wall time may differ.

use std::hint::black_box;
use std::time::Instant;

use bench::models;
use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::{
    bound_path_query_threaded, AnalysisOptions, Analyzer, Method, PathBoundOptions, Threads,
};
use gubpi_interval::Interval;
use gubpi_symbolic::{SymExecOptions, SymPath};

const SETTINGS: &[(&str, Threads)] = &[
    ("seq", Threads::Off),
    ("t2", Threads::Fixed(2)),
    ("t4", Threads::Fixed(4)),
];

fn pedestrian_analyzer(threads: Threads) -> Analyzer {
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: 4,
            ..Default::default()
        },
        threads,
        ..Default::default()
    };
    opts.bounds.splits = 8;
    Analyzer::from_source(models::PEDESTRIAN, opts).expect("pedestrian compiles")
}

/// The single most expensive pedestrian path: the deepest grid path (most
/// sample dimensions ⇒ `splits^n` cells).
fn dominant_path(a: &Analyzer) -> SymPath {
    a.paths()
        .iter()
        .max_by_key(|p| p.n_samples)
        .expect("pedestrian has paths")
        .clone()
}

fn bench_region(c: &mut Criterion) {
    let mut group = c.benchmark_group("region");
    group.sample_size(10);

    // (1) One dominant path in isolation: path-level parallelism has a
    // single job and degrades to sequential by construction; only the
    // region grain can split the `splits^n` grid cells.
    let a = pedestrian_analyzer(Threads::Off);
    let dominant = dominant_path(&a);
    let opts = PathBoundOptions {
        splits: 8,
        ..Default::default()
    };
    let u = Interval::new(0.0, 1.5);
    for &(label, threads) in SETTINGS {
        group.bench_function(format!("pedestrian-dominant-path/{label}"), |bencher| {
            bencher.iter(|| {
                black_box(bound_path_query_threaded(
                    black_box(&dominant),
                    u,
                    opts,
                    threads,
                ))
            });
        });
    }

    // (2) Whole-model comparison on table2-grass under the grid
    // semantics: the analyzer picks the grain automatically from the
    // worker/path ratio.
    let grass = models::table2()
        .into_iter()
        .find(|b| b.name == "grass")
        .expect("table2 has grass")
        .source;
    for &(label, threads) in SETTINGS {
        let mut opts = AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 8,
                ..Default::default()
            },
            threads,
            method: Method::Grid,
            ..Default::default()
        };
        opts.bounds.splits = 8;
        let a = Analyzer::from_source(grass, opts).expect("grass compiles");
        group.bench_function(format!("table2-grass-grid/{label}"), |bencher| {
            bencher.iter(|| {
                a.clear_cache(); // time cold queries, not cache hits
                black_box(a.posterior_probability(Interval::new(0.5, 1.5)))
            });
        });
    }

    group.finish();
    summary();
}

/// Headline numbers: per-grain wall time on the pedestrian's dominant
/// path (mean of 5 runs after warm-up). On a single hardware thread the
/// determinism guarantee still holds but wall time cannot improve;
/// region-level speedups need ≥ 2 cores.
fn summary() {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let a = pedestrian_analyzer(Threads::Off);
    let dominant = dominant_path(&a);
    let opts = PathBoundOptions {
        splits: 8,
        ..Default::default()
    };
    let u = Interval::new(0.0, 1.5);
    let time = |threads: Threads| {
        let _ = bound_path_query_threaded(&dominant, u, opts, threads);
        let t0 = Instant::now();
        for _ in 0..5 {
            black_box(bound_path_query_threaded(&dominant, u, opts, threads));
        }
        t0.elapsed().as_secs_f64() / 5.0
    };
    let seq = time(Threads::Off);
    let region4 = time(Threads::Fixed(4));
    println!(
        "pedestrian dominant path ({} samples): sequential {:.1} ms; \
         region-parallel x4 {:.1} ms -> {:.2}x speedup. Path-level \
         parallelism is structurally 1.00x here (one path = one job). \
         ({hw} hardware thread(s) available)",
        dominant.n_samples,
        seq * 1e3,
        region4 * 1e3,
        seq / region4
    );
}

criterion_group!(benches, bench_region);
criterion_main!(benches);
