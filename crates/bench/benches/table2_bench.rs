//! Criterion bench for Table 2: analysis time on the discrete models
//! (the `t GuBPI` column).

use std::hint::black_box;

use bench::models;
use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::{AnalysisOptions, Analyzer};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for b in models::table2() {
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| {
                let opts = AnalysisOptions {
                    sym: SymExecOptions {
                        max_fix_unfoldings: 8,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let a = Analyzer::from_source(b.source, opts).expect("model compiles");
                black_box(a.posterior_probability(Interval::new(0.5, 1.5)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
