//! Criterion bench for the figure models (Fig. 5 and Fig. 6 histogram
//! computations, plus the pedestrian of Fig. 1/7 at a small depth).

use std::hint::black_box;

use bench::{analyzer_for_figure, models};
use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::AnalysisOptions;
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for b in models::figure5().into_iter().chain(models::figure6()) {
        // Keep the bench loop affordable: drop the split resolution.
        let mut cheap = b.clone();
        cheap.splits = cheap.splits.min(12);
        cheap.bins = cheap.bins.min(8);
        group.bench_function(format!("fig{}", b.id), move |bencher| {
            bencher.iter(|| {
                let a = analyzer_for_figure(&cheap);
                black_box(a.histogram(cheap.domain, cheap.bins))
            });
        });
    }
    group.bench_function("pedestrian_depth3", |bencher| {
        bencher.iter(|| {
            let mut opts = AnalysisOptions {
                sym: SymExecOptions {
                    max_fix_unfoldings: 3,
                    ..Default::default()
                },
                ..Default::default()
            };
            opts.bounds.splits = 12;
            let a = gubpi_core::Analyzer::from_source(models::PEDESTRIAN, opts)
                .expect("pedestrian compiles");
            black_box(a.histogram(Interval::new(0.0, 3.0), 8))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
