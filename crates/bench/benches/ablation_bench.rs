//! Criterion bench for the §6.3-vs-§6.4 ablation: the same queries
//! answered by the linear semantics and by the grid semantics.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::{AnalysisOptions, Analyzer, Method};
use gubpi_interval::Interval;

const MODELS: &[(&str, &str)] = &[
    (
        "score_sum",
        "let x = sample in let y = sample in score(x + y); x",
    ),
    (
        "observed_walk",
        "let s = sample + sample + sample in observe s from normal(1.5, 0.3); s",
    ),
    (
        "branchy",
        "if sample + sample <= 0.8 then sample else 1 - sample",
    ),
];

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_linear_vs_grid");
    group.sample_size(10);
    for (name, src) in MODELS {
        for (label, method) in [("linear", Method::Auto), ("grid", Method::Grid)] {
            group.bench_function(format!("{name}/{label}"), |bencher| {
                bencher.iter(|| {
                    let a = Analyzer::from_source(
                        src,
                        AnalysisOptions {
                            method,
                            ..Default::default()
                        },
                    )
                    .expect("model compiles");
                    black_box(a.denotation_bounds(Interval::new(0.0, 1.0)))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
