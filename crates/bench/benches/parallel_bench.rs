//! Criterion bench for the parallel per-path bounding engine:
//! sequential (`Threads::Off`) vs fixed worker counts on multi-path
//! Table 1 / Table 2 models and the pedestrian, plus an explicit
//! speedup summary. Results are bit-identical across all settings (see
//! `tests/parallel_determinism.rs`); only wall time may differ.

use std::hint::black_box;
use std::time::Instant;

use bench::models;
use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::{AnalysisOptions, Analyzer, Method, Threads};
use gubpi_interval::Interval;
use gubpi_symbolic::SymExecOptions;

const SETTINGS: &[(&str, Threads)] = &[
    ("seq", Threads::Off),
    ("t2", Threads::Fixed(2)),
    ("t4", Threads::Fixed(4)),
];

fn build(source: &str, unfold: u32, splits: usize, threads: Threads) -> Analyzer {
    build_with(source, unfold, splits, threads, Method::Auto)
}

fn build_with(
    source: &str,
    unfold: u32,
    splits: usize,
    threads: Threads,
    method: Method,
) -> Analyzer {
    let mut opts = AnalysisOptions {
        sym: SymExecOptions {
            max_fix_unfoldings: unfold,
            ..Default::default()
        },
        threads,
        method,
        ..Default::default()
    };
    opts.bounds.splits = splits;
    Analyzer::from_source(source, opts).expect("model compiles")
}

/// Table 2 `grass`: 32 branch paths over 5 samples. Under the grid
/// semantics (the §6.3 engine mode) every path costs `splits⁵` regions,
/// so per-path bounding dominates — the parallel engine's target shape.
fn grass_source() -> &'static str {
    models::table2()
        .into_iter()
        .find(|b| b.name == "grass")
        .expect("table2 has grass")
        .source
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    let grass = grass_source();
    for &(label, threads) in SETTINGS {
        let a = build_with(grass, 8, 8, threads, Method::Grid);
        group.bench_function(format!("table2-grass-grid-posterior/{label}"), |bencher| {
            bencher.iter(|| {
                a.clear_cache(); // time cold queries, not cache hits
                black_box(a.posterior_probability(Interval::new(0.5, 1.5)))
            });
        });
    }

    let t1 = models::table1();
    let beauquier = t1
        .iter()
        .find(|b| b.name == "beauquier-3")
        .expect("table1 has beauquier-3");
    for &(label, threads) in SETTINGS {
        let a = build(beauquier.source, beauquier.unfold, 32, threads);
        group.bench_function(format!("table1-beauquier-query/{label}"), |bencher| {
            bencher.iter(|| {
                a.clear_cache();
                black_box(a.denotation_bounds(beauquier.u))
            });
        });
    }

    for &(label, threads) in SETTINGS {
        let a = build(models::PEDESTRIAN, 4, 16, threads);
        group.bench_function(format!("pedestrian-histogram/{label}"), |bencher| {
            bencher.iter(|| black_box(a.histogram(Interval::new(0.0, 3.0), 12)));
        });
    }

    group.finish();
    speedup_summary();
}

/// Prints the headline number: sequential vs 4-thread wall time on the
/// multi-path Table 2 model under the grid semantics (mean of 5 cold
/// queries after warm-up). Path-level parallelism needs ≥ 4 hardware
/// threads to show its ≥ 1.5× speedup; on fewer cores the engine's
/// determinism guarantee still holds but wall time cannot improve.
fn speedup_summary() {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let grass = grass_source();
    let time = |threads: Threads| {
        let a = build_with(grass, 8, 8, threads, Method::Grid);
        a.clear_cache();
        let _ = a.posterior_probability(Interval::new(0.5, 1.5));
        let t0 = Instant::now();
        for _ in 0..5 {
            a.clear_cache();
            black_box(a.posterior_probability(Interval::new(0.5, 1.5)));
        }
        t0.elapsed().as_secs_f64() / 5.0
    };
    let seq = time(Threads::Off);
    let par = time(Threads::Fixed(4));
    println!(
        "table2-grass grid posterior: sequential {:.1} ms, 4 threads {:.1} ms \
         -> {:.2}x speedup ({hw} hardware thread(s) available)",
        seq * 1e3,
        par * 1e3,
        seq / par
    );
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
