//! Criterion bench for the volume substrate (the Vinci substitution):
//! Lasserre's exact recursion vs certified box-subdivision bounds across
//! dimensions — the ablation behind choosing `exact_dim_cap`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_polytope::HPolytope;

fn cut_cube(dim: usize) -> HPolytope {
    let mut p = HPolytope::unit_cube(dim);
    p.add_constraint(vec![1.0; dim], dim as f64 * 0.5);
    let mut alt = vec![0.0; dim];
    for (i, a) in alt.iter_mut().enumerate() {
        *a = if i % 2 == 0 { 1.0 } else { -0.5 };
    }
    p.add_constraint(alt, 0.4);
    p
}

fn bench_volumes(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume");
    for dim in [2usize, 3, 4, 5, 6] {
        let p = cut_cube(dim);
        group.bench_function(format!("lasserre/dim{dim}"), |bencher| {
            bencher.iter(|| black_box(p.volume_lasserre()));
        });
        group.bench_function(format!("boxes4096/dim{dim}"), |bencher| {
            bencher.iter(|| black_box(p.volume_bounds(4096)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_volumes);
criterion_main!(benches);
