//! Compiled interval-tape kernel vs the tree-walking interpreter.
//!
//! Three evaluation modes over identical region sweeps:
//!
//! * **interpreter** — the four recursive tree walks per cell
//!   (`use_kernel: false`), allocating a `Vec<Interval>` per `Prim`
//!   node;
//! * **tape** — the compiled tape evaluated cell by cell
//!   (`Tape::eval_cell`): hash-consed CSE, constant pre-folding,
//!   constraint short-circuiting, zero per-cell allocations;
//! * **batched** — the production path (`use_kernel: true`): the same
//!   tape evaluated in structure-of-arrays lane blocks with incremental
//!   odometer cell decoding;
//! * **simd** — the batched loop driven through the explicit `F64x4`
//!   lane backend (`Tape::eval_block_via(.., true)`, the dispatch the
//!   `simd` cargo feature makes the default).
//!
//! Bounds are bit-identical across all four (asserted below and
//! enforced by `tests/kernel_differential.rs` plus the scalar-vs-SIMD
//! differential test in `gubpi_symbolic::kernel`); only cells/sec may
//! differ. The summary writes a `BENCH_kernel.json` snapshot at the
//! workspace root so the perf trajectory is tracked across PRs.

use std::hint::black_box;
use std::time::Instant;

use bench::models;
use criterion::{criterion_group, criterion_main, Criterion};
use gubpi_core::{
    bound_path_grid_only, grid_splits, AnalysisOptions, Analyzer, PathBoundOptions, Region,
};
use gubpi_interval::Interval;
use gubpi_symbolic::{SymExecOptions, SymPath, Tape, LANES};

/// One named workload: a set of paths swept under the grid semantics.
struct Workload {
    name: &'static str,
    paths: Vec<SymPath>,
    opts: PathBoundOptions,
}

fn grass_grid() -> Workload {
    let grass = models::table2()
        .into_iter()
        .find(|b| b.name == "grass")
        .expect("table2 has grass")
        .source;
    let a = Analyzer::from_source(
        grass,
        AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("grass compiles");
    let opts = PathBoundOptions {
        splits: 8,
        ..Default::default()
    };
    Workload {
        name: "table2-grass-grid",
        paths: a.paths().to_vec(),
        opts,
    }
}

fn pedestrian_dominant() -> Workload {
    let a = Analyzer::from_source(
        models::PEDESTRIAN,
        AnalysisOptions {
            sym: SymExecOptions {
                max_fix_unfoldings: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("pedestrian compiles");
    let dominant = a
        .paths()
        .iter()
        .max_by_key(|p| p.n_samples)
        .expect("pedestrian has paths")
        .clone();
    let opts = PathBoundOptions {
        splits: 8,
        ..Default::default()
    };
    Workload {
        name: "pedestrian-dominant-path",
        paths: vec![dominant],
        opts,
    }
}

/// Total grid cells the workload sweeps (the denominator of cells/sec).
fn total_cells(w: &Workload) -> u64 {
    w.paths
        .iter()
        .map(|p| {
            let k = grid_splits(w.opts.splits, p.n_samples, w.opts.region_budget);
            (k as u64).pow(p.n_samples as u32)
        })
        .sum()
}

/// Sweeps every path through the plan machinery (interpreter or batched
/// kernel, per `use_kernel`).
fn sweep_plans(w: &Workload, use_kernel: bool) -> Vec<Region> {
    let opts = PathBoundOptions {
        use_kernel,
        ..w.opts
    };
    let mut out: Vec<Region> = Vec::new();
    for p in &w.paths {
        bound_path_grid_only(p, opts, &mut out);
    }
    out
}

/// Sweeps every path through the scalar tape evaluator (`eval_cell`
/// per cell, odometer-free reference loop).
fn sweep_scalar_tape(w: &Workload) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::new();
    for p in &w.paths {
        let tape = Tape::for_path(p);
        let mut scratch = tape.scratch();
        let n = p.n_samples;
        let k = grid_splits(w.opts.splits, n, w.opts.region_budget);
        let edges: Vec<Interval> = Interval::UNIT.split(k);
        let widths: Vec<f64> = edges.iter().map(Interval::width).collect();
        let total = k.pow(n as u32);
        let mut dims = vec![Interval::ZERO; n];
        for mut ci in 0..total {
            let mut vol = 1.0;
            for d in dims.iter_mut() {
                let e = ci % k;
                ci /= k;
                *d = edges[e];
                vol *= widths[e];
            }
            if let Some(cell) = tape.eval_cell(&dims, &mut scratch) {
                let lo = if cell.definite {
                    vol * cell.weight.lo()
                } else {
                    0.0
                };
                out.push((cell.value, lo, vol * cell.weight.hi()));
            }
        }
    }
    out
}

/// Sweeps every path through the lane-blocked tape evaluator with the
/// lane backend chosen explicitly (`simd = true` → the `F64x4` shim).
/// Mirrors the production batched loop (odometer decode, lane fill,
/// volume products) so the scalar/simd comparison isolates the lane
/// arithmetic itself.
fn sweep_block_tape(w: &Workload, simd: bool) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::new();
    for p in &w.paths {
        let tape = Tape::for_path(p);
        let mut scratch = tape.scratch();
        let n = p.n_samples;
        let k = grid_splits(w.opts.splits, n, w.opts.region_budget);
        let edges: Vec<Interval> = Interval::UNIT.split(k);
        let widths: Vec<f64> = edges.iter().map(Interval::width).collect();
        let total = k.pow(n as u32);
        let mut vols = [0.0f64; LANES];
        let mut idx = 0usize;
        while idx < total {
            let lanes = LANES.min(total - idx);
            for (lane, vol_slot) in vols.iter_mut().enumerate().take(lanes) {
                let mut ci = idx + lane;
                let mut vol = 1.0;
                for d in 0..n {
                    let e = ci % k;
                    ci /= k;
                    scratch.set_input(d, lane, edges[e]);
                    vol *= widths[e];
                }
                *vol_slot = vol;
            }
            if tape.eval_block_via(&mut scratch, lanes, simd) {
                for (lane, &vol) in vols.iter().enumerate().take(lanes) {
                    if let Some(cell) = scratch.lane(lane) {
                        let lo = if cell.definite {
                            vol * cell.weight.lo()
                        } else {
                            0.0
                        };
                        out.push((cell.value, lo, vol * cell.weight.hi()));
                    }
                }
            }
            idx += lanes;
        }
    }
    out
}

fn assert_streams_equal(a: &[Region], b: &[Region], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: stream lengths");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.0, y.0, "{ctx}: value range");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{ctx}: lower mass bits");
        assert_eq!(x.2.to_bits(), y.2.to_bits(), "{ctx}: upper mass bits");
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_kernel");
    group.sample_size(10);

    let grass = grass_grid();
    group.bench_function("table2-grass-grid/interpreter", |b| {
        b.iter(|| black_box(sweep_plans(&grass, false)))
    });
    group.bench_function("table2-grass-grid/tape", |b| {
        b.iter(|| black_box(sweep_scalar_tape(&grass)))
    });
    group.bench_function("table2-grass-grid/batched", |b| {
        b.iter(|| black_box(sweep_plans(&grass, true)))
    });
    group.bench_function("table2-grass-grid/simd", |b| {
        b.iter(|| black_box(sweep_block_tape(&grass, true)))
    });
    group.finish();

    summary();
}

/// Headline numbers + the `BENCH_kernel.json` snapshot.
fn summary() {
    let mut rows = Vec::new();
    for w in [grass_grid(), pedestrian_dominant()] {
        // Sanity first: all four modes must emit identical streams.
        let interp_stream = sweep_plans(&w, false);
        assert_streams_equal(&interp_stream, &sweep_scalar_tape(&w), w.name);
        assert_streams_equal(&interp_stream, &sweep_plans(&w, true), w.name);
        assert_streams_equal(&interp_stream, &sweep_block_tape(&w, true), w.name);
        drop(interp_stream);

        let cells = total_cells(&w);
        let time = |f: &dyn Fn() -> Vec<Region>| {
            let _ = f(); // warm-up
            let reps = 5;
            let t0 = Instant::now();
            for _ in 0..reps {
                black_box(f());
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let t_interp = time(&|| sweep_plans(&w, false));
        let t_tape = time(&|| sweep_scalar_tape(&w));
        let t_batched = time(&|| sweep_plans(&w, true));
        let t_simd = time(&|| sweep_block_tape(&w, true));
        let rate = |t: f64| cells as f64 / t.max(1e-12);
        println!(
            "{}: {} cells | interpreter {:.0} cells/s | tape {:.0} cells/s ({:.2}x) | \
             batched (LANES={LANES}) {:.0} cells/s ({:.2}x) | simd {:.0} cells/s ({:.2}x)",
            w.name,
            cells,
            rate(t_interp),
            rate(t_tape),
            t_interp / t_tape.max(1e-12),
            rate(t_batched),
            t_interp / t_batched.max(1e-12),
            rate(t_simd),
            t_interp / t_simd.max(1e-12),
        );
        rows.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"cells\": {},\n      \
             \"interpreter_cells_per_sec\": {:.1},\n      \"tape_cells_per_sec\": {:.1},\n      \
             \"batched_cells_per_sec\": {:.1},\n      \"simd_cells_per_sec\": {:.1},\n      \
             \"speedup_tape\": {:.3},\n      \
             \"speedup_batched\": {:.3},\n      \"speedup_simd\": {:.3}\n    }}",
            w.name,
            cells,
            rate(t_interp),
            rate(t_tape),
            rate(t_batched),
            rate(t_simd),
            t_interp / t_tape.max(1e-12),
            t_interp / t_batched.max(1e-12),
            t_interp / t_simd.max(1e-12),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"region_kernel\",\n  \"lanes\": {LANES},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
