//! Property tests for the SPCF front end.

use gubpi_lang::{infer, parse, pretty};
use proptest::prelude::*;

/// Generates random arithmetic source text with known structure.
fn arith_source() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u32..100).prop_map(|n| n.to_string()),
        Just("sample".to_owned()),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
            inner.clone().prop_map(|a| format!("exp({a})")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| format!("(if {c} <= 50 then {t} else {e})")),
        ]
    })
}

proptest! {
    /// Parsing never panics and always yields a well-scoped ground term.
    #[test]
    fn random_arithmetic_parses_and_types(src in arith_source()) {
        let p = parse(&src).unwrap_or_else(|e| panic!("{}: {src}", e.render(&src)));
        prop_assert!(p.root.free_vars().is_empty());
        let tm = infer(&p).unwrap();
        prop_assert!(tm.ty(p.root.id).is_real());
    }

    /// pretty ∘ parse is a projection: printing, re-parsing and printing
    /// again reproduces the first print exactly.
    #[test]
    fn pretty_is_a_projection(src in arith_source()) {
        let once = pretty(&parse(&src).unwrap().root);
        let twice = pretty(&parse(&once).unwrap().root);
        prop_assert_eq!(once, twice);
    }

    /// Garbage input never panics the lexer/parser (errors are values).
    #[test]
    fn no_panics_on_garbage(src in "[ -~]{0,80}") {
        let _ = parse(&src);
    }

    /// Node ids are unique across the whole tree.
    #[test]
    fn node_ids_are_unique(src in arith_source()) {
        let p = parse(&src).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut dup = false;
        p.root.walk(&mut |e| {
            if !seen.insert(e.id) {
                dup = true;
            }
        });
        prop_assert!(!dup);
        prop_assert!(seen.len() <= p.node_count as usize);
    }
}
