//! Round-trip property: `parse(pretty(p))` reproduces `p` on random ASTs.
//!
//! Lint messages quote pretty-printed subterms, so the printer must emit
//! text the parser maps back to a structurally identical tree (node ids
//! and spans excepted). The generator below builds core ASTs directly —
//! including the shapes the surface syntax never produces on its own,
//! like `neg` of a literal or a binder in guard position.

use std::sync::Arc;

use gubpi_lang::{parse, pretty, AstBuilder, Expr, ExprKind, Name, PrimOp, Span};
use proptest::prelude::*;
use proptest::TestRng;

/// Constants whose `Display` text re-lexes to the same bit pattern.
const CONSTS: [f64; 10] = [0.0, -0.0, 1.0, -1.0, 0.5, 2.0, -0.25, 10.0, 0.1, 3.5];

/// Function-syntax primitives across all arities (operators are covered
/// by the dedicated generator arms).
const NAMED: [PrimOp; 12] = [
    PrimOp::Abs,
    PrimOp::Min,
    PrimOp::Max,
    PrimOp::Exp,
    PrimOp::Ln,
    PrimOp::Sqrt,
    PrimOp::Sigmoid,
    PrimOp::Floor,
    PrimOp::NormalPdf,
    PrimOp::ExponentialPdf,
    PrimOp::NormalQuantile,
    PrimOp::BetaQuantile,
];

/// Structural equality modulo node ids and spans; float literals compare
/// bitwise so `0.0` and `-0.0` stay distinct.
fn same(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::Var(x), ExprKind::Var(y)) => x == y,
        (ExprKind::Const(x), ExprKind::Const(y)) => x.to_bits() == y.to_bits(),
        (ExprKind::Sample, ExprKind::Sample) => true,
        (ExprKind::Lam(x, bx), ExprKind::Lam(y, by)) => x == y && same(bx, by),
        (ExprKind::Fix(f1, x1, b1), ExprKind::Fix(f2, x2, b2)) => {
            f1 == f2 && x1 == x2 && same(b1, b2)
        }
        (ExprKind::App(f1, a1), ExprKind::App(f2, a2)) => same(f1, f2) && same(a1, a2),
        (ExprKind::If(c1, t1, e1), ExprKind::If(c2, t2, e2)) => {
            same(c1, c2) && same(t1, t2) && same(e1, e2)
        }
        (ExprKind::Score(m1), ExprKind::Score(m2)) => same(m1, m2),
        (ExprKind::Prim(o1, a1), ExprKind::Prim(o2, a2)) => {
            o1 == o2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| same(x, y))
        }
        _ => false,
    }
}

/// Depth-bounded random AST generator over a scope of bound variables.
struct Gen {
    b: AstBuilder,
    rng: TestRng,
    fresh: u32,
}

impl Gen {
    fn name(&mut self, prefix: &str) -> Name {
        let n = format!("{prefix}{}", self.fresh);
        self.fresh += 1;
        Arc::from(n.as_str())
    }

    fn expr(&mut self, scope: &mut Vec<Name>, depth: u32) -> Expr {
        let sp = Span::default();
        if depth == 0 || self.rng.below(4) == 0 {
            return match self.rng.below(3) {
                0 if !scope.is_empty() => {
                    let n = scope[self.rng.below(scope.len())].clone();
                    self.b.mk(ExprKind::Var(n), sp)
                }
                1 => self.b.mk(ExprKind::Sample, sp),
                _ => {
                    let c = CONSTS[self.rng.below(CONSTS.len())];
                    self.b.mk_const(c, sp)
                }
            };
        }
        match self.rng.below(8) {
            0 => {
                let op = [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::Div][self.rng.below(4)];
                let l = self.expr(scope, depth - 1);
                let r = self.expr(scope, depth - 1);
                self.b.mk_prim(op, vec![l, r], sp)
            }
            1 => {
                let x = self.expr(scope, depth - 1);
                self.b.mk_prim(PrimOp::Neg, vec![x], sp)
            }
            2 => {
                let op = NAMED[self.rng.below(NAMED.len())];
                let args = (0..op.arity())
                    .map(|_| self.expr(scope, depth - 1))
                    .collect();
                self.b.mk_prim(op, args, sp)
            }
            3 => {
                let f = self.expr(scope, depth - 1);
                let a = self.expr(scope, depth - 1);
                self.b.mk(ExprKind::App(Box::new(f), Box::new(a)), sp)
            }
            4 => {
                let x = self.name("v");
                scope.push(x.clone());
                let body = self.expr(scope, depth - 1);
                scope.pop();
                self.b.mk(ExprKind::Lam(x, Box::new(body)), sp)
            }
            5 => {
                let f = self.name("r");
                let x = self.name("v");
                scope.push(f.clone());
                scope.push(x.clone());
                let body = self.expr(scope, depth - 1);
                scope.pop();
                scope.pop();
                self.b.mk(ExprKind::Fix(f, x, Box::new(body)), sp)
            }
            6 => {
                let c = self.expr(scope, depth - 1);
                let t = self.expr(scope, depth - 1);
                let e = self.expr(scope, depth - 1);
                self.b
                    .mk(ExprKind::If(Box::new(c), Box::new(t), Box::new(e)), sp)
            }
            _ => {
                let m = self.expr(scope, depth - 1);
                self.b.mk(ExprKind::Score(Box::new(m)), sp)
            }
        }
    }
}

fn reparse(printed: &str) -> Expr {
    parse(printed)
        .unwrap_or_else(|err| panic!("`{printed}` failed to re-parse: {}", err.render(printed)))
        .root
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    /// The tentpole property: print → parse → structurally equal tree,
    /// and a second print reproduces the first (printing is a fixpoint).
    #[test]
    fn parse_pretty_roundtrips_random_asts(seed in 0u64..1_000_000) {
        let mut g = Gen {
            b: AstBuilder::new(),
            rng: TestRng::from_name(&format!("ast-{seed}")),
            fresh: 0,
        };
        let mut scope = Vec::new();
        let e = g.expr(&mut scope, 4);
        let printed = pretty(&e);
        let back = reparse(&printed);
        prop_assert!(same(&e, &back), "AST changed across `{printed}`");
        prop_assert_eq!(&printed, &pretty(&back));
    }
}

#[test]
fn neg_of_a_literal_survives_the_roundtrip() {
    // `-2` re-parses as a folded constant; the printer must pick the
    // named form for `neg` applied to a literal.
    let mut b = AstBuilder::new();
    let sp = Span::default();
    let two = b.mk_const(2.0, sp);
    let e = b.mk_prim(PrimOp::Neg, vec![two], sp);
    assert_eq!(pretty(&e), "neg(2)");
    assert!(same(&e, &reparse("neg(2)")));
}

#[test]
fn negative_zero_parenthesizes_in_argument_position() {
    // `f -0` would parse as a subtraction; the printed argument needs
    // its parentheses, and the sign bit must survive.
    let mut b = AstBuilder::new();
    let sp = Span::default();
    let lam = {
        let body = b.mk(ExprKind::Var(Arc::from("x")), sp);
        b.mk(ExprKind::Lam(Arc::from("x"), Box::new(body)), sp)
    };
    let arg = b.mk_const(-0.0, sp);
    let e = b.mk(ExprKind::App(Box::new(lam), Box::new(arg)), sp);
    let printed = pretty(&e);
    assert_eq!(printed, "(fn x -> x) (-0)");
    assert!(same(&e, &reparse(&printed)));
}

#[test]
fn branch_forms_in_guard_position_parenthesize() {
    // A guard that is itself an `if` must print parenthesized: the
    // parser reads guards with `arith`, which cannot start an `if`.
    let mut b = AstBuilder::new();
    let sp = Span::default();
    let mk_c = |b: &mut AstBuilder, v: f64| b.mk_const(v, sp);
    let inner = {
        let (g, t, e) = (mk_c(&mut b, 1.0), mk_c(&mut b, 2.0), mk_c(&mut b, 3.0));
        b.mk(ExprKind::If(Box::new(g), Box::new(t), Box::new(e)), sp)
    };
    let (t, e) = (mk_c(&mut b, 4.0), mk_c(&mut b, 5.0));
    let outer = b.mk(ExprKind::If(Box::new(inner), Box::new(t), Box::new(e)), sp);
    let printed = pretty(&outer);
    assert_eq!(printed, "if (if 1 <= 0 then 2 else 3) <= 0 then 4 else 5");
    assert!(same(&outer, &reparse(&printed)));
}

#[test]
fn printed_fixpoints_reparse() {
    // `let rec` desugars to a μ-binder, which prints as `mu f x -> …`;
    // the parser accepts that spelling back.
    let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
    let original = parse(src).unwrap().root;
    let printed = pretty(&original);
    assert!(printed.contains("mu geo x ->"), "{printed}");
    assert!(same(&original, &reparse(&printed)));
}

#[test]
fn mu_stays_available_as_a_plain_identifier() {
    // Only the full `mu f x ->` header is claimed by the fixpoint form.
    let p = parse("let mu = 1 in mu + mu").unwrap();
    assert!(p.root.free_vars().is_empty());
    let app = parse("let mu = fn a b -> a in mu 1 2").unwrap();
    assert!(app.root.free_vars().is_empty());
}
