//! Statistical PCF (SPCF): the probabilistic language of the GuBPI paper.
//!
//! This crate is the front end of the reproduction: a lexer and parser for
//! an ML-flavoured surface syntax, desugaring into the paper's core
//! calculus (§2.2), simple-type inference with unification, a primitive
//! operation table with exact interval liftings, and a pretty printer.
//!
//! ```text
//! V ::= x | r | λx.M | μφ x. M
//! M ::= V | M N | if(M, N, P) | f(M₁, …, M_|f|) | sample | score(M)
//! ```
//!
//! # Example
//!
//! ```
//! use gubpi_lang::{infer, parse};
//!
//! let program = parse(
//!     "let bias = sample in \
//!      observe 1 from normal(bias, 0.5); \
//!      bias",
//! ).unwrap();
//! let types = infer(&program).unwrap();
//! assert!(types.ty(program.root.id).is_real());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod prim;
pub mod token;
pub mod types;

pub use ast::{AstBuilder, Expr, ExprKind, Name, NodeId, Program, Span};
pub use error::{line_col, LangError, Phase};
pub use parser::parse;
pub use pretty::pretty;
pub use prim::PrimOp;
pub use types::{infer, SimpleTy, TypeMap};
