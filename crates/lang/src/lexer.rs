//! Hand-written lexer for the SPCF surface syntax.

use crate::ast::Span;
use crate::error::{LangError, Phase};
use crate::token::{Token, TokenKind};

/// Tokenises `source` into a vector ending in an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters or malformed numbers.
///
/// # Example
///
/// ```
/// use gubpi_lang::lexer::lex;
/// let toks = lex("let x = 1.5 in x + 2").unwrap();
/// assert_eq!(toks.len(), 9); // incl. EOF
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '#' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '+' => {
                i += 1;
                push(&mut toks, TokenKind::Plus, start, i);
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 2;
                    push(&mut toks, TokenKind::Arrow, start, i);
                } else {
                    i += 1;
                    push(&mut toks, TokenKind::Minus, start, i);
                }
            }
            '*' => {
                i += 1;
                push(&mut toks, TokenKind::Star, start, i);
            }
            '/' => {
                i += 1;
                push(&mut toks, TokenKind::Slash, start, i);
            }
            '(' => {
                i += 1;
                push(&mut toks, TokenKind::LParen, start, i);
            }
            ')' => {
                i += 1;
                push(&mut toks, TokenKind::RParen, start, i);
            }
            ',' => {
                i += 1;
                push(&mut toks, TokenKind::Comma, start, i);
            }
            ';' => {
                i += 1;
                push(&mut toks, TokenKind::Semi, start, i);
            }
            '=' => {
                i += 1;
                push(&mut toks, TokenKind::Eq, start, i);
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    push(&mut toks, TokenKind::Le, start, i);
                } else {
                    i += 1;
                    push(&mut toks, TokenKind::Lt, start, i);
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    push(&mut toks, TokenKind::Ge, start, i);
                } else {
                    i += 1;
                    push(&mut toks, TokenKind::Gt, start, i);
                }
            }
            '0'..='9' | '.' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &source[start..i];
                let value: f64 = text.parse().map_err(|_| {
                    LangError::new(
                        Phase::Lex,
                        format!("malformed number `{text}`"),
                        Span::new(start as u32, i as u32),
                    )
                })?;
                push(&mut toks, TokenKind::Number(value), start, i);
            }
            // `$` begins compiler-generated names (emitted by the pretty
            // printer for desugared binders); accepting it keeps printed
            // programs re-parseable.
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$'
                        || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = match word {
                    "let" => TokenKind::Let,
                    "rec" => TokenKind::Rec,
                    "in" => TokenKind::In,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "fn" => TokenKind::Fn,
                    "sample" => TokenKind::Sample,
                    "score" => TokenKind::Score,
                    "observe" => TokenKind::Observe,
                    "from" => TokenKind::From,
                    "fail" => TokenKind::Fail,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                push(&mut toks, kind, start, i);
            }
            other => {
                return Err(LangError::new(
                    Phase::Lex,
                    format!("unexpected character `{other}`"),
                    Span::new(start as u32, start as u32 + 1),
                ));
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len() as u32, bytes.len() as u32),
    });
    Ok(toks)
}

fn push(toks: &mut Vec<Token>, kind: TokenKind, start: usize, end: usize) {
    toks.push(Token {
        kind,
        span: Span::new(start as u32, end as u32),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("let rec walk in x"),
            vec![Let, Rec, Ident("walk".into()), In, Ident("x".into()), Eof]
        );
    }

    #[test]
    fn operators_and_comparisons() {
        use TokenKind::*;
        assert_eq!(
            kinds("a <= b < c >= d > e -> f"),
            vec![
                Ident("a".into()),
                Le,
                Ident("b".into()),
                Lt,
                Ident("c".into()),
                Ge,
                Ident("d".into()),
                Gt,
                Ident("e".into()),
                Arrow,
                Ident("f".into()),
                Eof
            ]
        );
    }

    #[test]
    fn numbers_including_scientific() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 2.5 0.1 1e-3 2.5E+2"),
            vec![
                Number(1.0),
                Number(2.5),
                Number(0.1),
                Number(1e-3),
                Number(250.0),
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 # a comment\n2 // another\n3"),
            vec![Number(1.0), Number(2.0), Number(3.0), Eof]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        use TokenKind::*;
        assert_eq!(
            kinds("a - b"),
            vec![Ident("a".into()), Minus, Ident("b".into()), Eof]
        );
        assert_eq!(
            kinds("a -> b"),
            vec![Ident("a".into()), Arrow, Ident("b".into()), Eof]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.message.contains('?'));
        assert_eq!(
            err.render("a ? b"),
            "1:3: lex error: unexpected character `?`"
        );
    }

    #[test]
    fn spans_track_byte_offsets() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
