//! Abstract syntax of SPCF (§2.2 of the paper).
//!
//! The core language is exactly the paper's statistical PCF:
//!
//! ```text
//! V ::= x | r | λx.M | μφ x. M
//! M ::= V | M N | if(M, N, P) | f(M₁, …, M_|f|) | sample | score(M)
//! ```
//!
//! Surface conveniences (`let`, `let rec`, comparisons, `observe … from`,
//! `sample D(…)`, `flip`, sequencing with `;`) are desugared by the parser
//! into this core syntax, so every downstream analysis only ever sees the
//! eight constructors of [`ExprKind`].

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::prim::PrimOp;

/// An interned variable name.
pub type Name = Arc<str>;

/// A unique identifier for every AST node, assigned by the [`AstBuilder`].
///
/// Node ids key the side tables produced by later passes (simple types,
/// interval types), keeping the AST itself immutable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A byte range into the source text, used for error reporting.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: u32,
    /// Exclusive end byte offset.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// An SPCF expression: a [`NodeId`], a source [`Span`] and the syntactic
/// [`ExprKind`].
#[derive(Clone, Debug)]
pub struct Expr {
    /// Unique node id (see [`NodeId`]).
    pub id: NodeId,
    /// Source location.
    pub span: Span,
    /// The syntactic constructor.
    pub kind: ExprKind,
}

/// The eight core constructors of SPCF.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// A variable `x`.
    Var(Name),
    /// A real constant `r`.
    Const(f64),
    /// A lambda abstraction `λx. M`.
    Lam(Name, Box<Expr>),
    /// A recursive function `μφ x. M` (the paper writes `μ^φ_x. M`).
    Fix(Name, Name, Box<Expr>),
    /// Application `M N` (call-by-value).
    App(Box<Expr>, Box<Expr>),
    /// `if(M, N, P)`: evaluates `N` when `M ≤ 0` and `P` otherwise.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A primitive operation `f(M₁, …, M_|f|)`.
    Prim(PrimOp, Vec<Expr>),
    /// `sample`: draws uniformly from `[0, 1]`.
    Sample,
    /// `score(M)`: multiplies the current execution weight by `M`.
    Score(Box<Expr>),
}

impl Expr {
    /// The set of free variables.
    pub fn free_vars(&self) -> HashSet<Name> {
        let mut acc = HashSet::new();
        self.collect_free(&mut Vec::new(), &mut acc);
        acc
    }

    fn collect_free(&self, bound: &mut Vec<Name>, acc: &mut HashSet<Name>) {
        match &self.kind {
            ExprKind::Var(x) => {
                if !bound.iter().any(|b| b == x) {
                    acc.insert(x.clone());
                }
            }
            ExprKind::Const(_) | ExprKind::Sample => {}
            ExprKind::Lam(x, body) => {
                bound.push(x.clone());
                body.collect_free(bound, acc);
                bound.pop();
            }
            ExprKind::Fix(f, x, body) => {
                bound.push(f.clone());
                bound.push(x.clone());
                body.collect_free(bound, acc);
                bound.pop();
                bound.pop();
            }
            ExprKind::App(a, b) => {
                a.collect_free(bound, acc);
                b.collect_free(bound, acc);
            }
            ExprKind::If(c, t, e) => {
                c.collect_free(bound, acc);
                t.collect_free(bound, acc);
                e.collect_free(bound, acc);
            }
            ExprKind::Prim(_, args) => {
                for a in args {
                    a.collect_free(bound, acc);
                }
            }
            ExprKind::Score(m) => m.collect_free(bound, acc),
        }
    }

    /// Is this expression a syntactic value (variable, constant, lambda or
    /// fixpoint)?
    pub fn is_value(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Lam(..) | ExprKind::Fix(..)
        )
    }

    /// Number of AST nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + match &self.kind {
            ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => 0,
            ExprKind::Lam(_, b) | ExprKind::Score(b) => b.size(),
            ExprKind::Fix(_, _, b) => b.size(),
            ExprKind::App(a, b) => a.size() + b.size(),
            ExprKind::If(c, t, e) => c.size() + t.size() + e.size(),
            ExprKind::Prim(_, args) => args.iter().map(Expr::size).sum(),
        }
    }

    /// Walks the subtree, applying `f` to every node (preorder).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => {}
            ExprKind::Lam(_, b) | ExprKind::Score(b) => b.walk(f),
            ExprKind::Fix(_, _, b) => b.walk(f),
            ExprKind::App(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            ExprKind::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            ExprKind::Prim(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::pretty(self))
    }
}

/// A closed, parsed and desugared SPCF program of ground type.
#[derive(Clone, Debug)]
pub struct Program {
    /// The root expression.
    pub root: Expr,
    /// Total number of [`NodeId`]s allocated (ids are `0..node_count`).
    pub node_count: u32,
}

/// Allocates fresh [`NodeId`]s and fresh internal variable names.
#[derive(Debug, Default)]
pub struct AstBuilder {
    next_id: u32,
    next_fresh: u32,
}

impl AstBuilder {
    /// A new builder starting at node id 0.
    pub fn new() -> AstBuilder {
        AstBuilder::default()
    }

    /// Wraps `kind` with a fresh node id.
    pub fn mk(&mut self, kind: ExprKind, span: Span) -> Expr {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        Expr { id, span, kind }
    }

    /// A fresh internal variable name (cannot clash with source names,
    /// which never contain `$`).
    pub fn fresh_name(&mut self, hint: &str) -> Name {
        let n = self.next_fresh;
        self.next_fresh += 1;
        Arc::from(format!("${hint}{n}").as_str())
    }

    /// Number of node ids allocated so far.
    pub fn node_count(&self) -> u32 {
        self.next_id
    }

    /// Convenience: `let x = bound in body`, i.e. `(λx. body) bound`.
    pub fn mk_let(&mut self, x: Name, bound: Expr, body: Expr, span: Span) -> Expr {
        let lam = self.mk(ExprKind::Lam(x, Box::new(body)), span);
        self.mk(ExprKind::App(Box::new(lam), Box::new(bound)), span)
    }

    /// Convenience: a constant.
    pub fn mk_const(&mut self, r: f64, span: Span) -> Expr {
        self.mk(ExprKind::Const(r), span)
    }

    /// Convenience: a primitive application.
    pub fn mk_prim(&mut self, op: PrimOp, args: Vec<Expr>, span: Span) -> Expr {
        debug_assert_eq!(args.len(), op.arity(), "arity mismatch for {op:?}");
        self.mk(ExprKind::Prim(op, args), span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> AstBuilder {
        AstBuilder::new()
    }

    #[test]
    fn node_ids_are_unique() {
        let mut bld = b();
        let e1 = bld.mk(ExprKind::Sample, Span::default());
        let e2 = bld.mk(ExprKind::Const(1.0), Span::default());
        assert_ne!(e1.id, e2.id);
        assert_eq!(bld.node_count(), 2);
    }

    #[test]
    fn free_vars_respect_binders() {
        let mut bld = b();
        let x: Name = Arc::from("x");
        let y: Name = Arc::from("y");
        // λx. x + y
        let body = {
            let vx = bld.mk(ExprKind::Var(x.clone()), Span::default());
            let vy = bld.mk(ExprKind::Var(y.clone()), Span::default());
            bld.mk_prim(PrimOp::Add, vec![vx, vy], Span::default())
        };
        let lam = bld.mk(ExprKind::Lam(x.clone(), Box::new(body)), Span::default());
        let fv = lam.free_vars();
        assert!(fv.contains(&y));
        assert!(!fv.contains(&x));
    }

    #[test]
    fn fix_binds_both_names() {
        let mut bld = b();
        let f: Name = Arc::from("f");
        let x: Name = Arc::from("x");
        let body = {
            let vf = bld.mk(ExprKind::Var(f.clone()), Span::default());
            let vx = bld.mk(ExprKind::Var(x.clone()), Span::default());
            bld.mk(ExprKind::App(Box::new(vf), Box::new(vx)), Span::default())
        };
        let fix = bld.mk(ExprKind::Fix(f, x, Box::new(body)), Span::default());
        assert!(fix.free_vars().is_empty());
        assert!(fix.is_value());
        assert_eq!(fix.size(), 4);
    }

    #[test]
    fn fresh_names_are_distinct_and_internal() {
        let mut bld = b();
        let a = bld.fresh_name("u");
        let c = bld.fresh_name("u");
        assert_ne!(a, c);
        assert!(a.starts_with('$'));
    }

    #[test]
    fn mk_let_desugars_to_application() {
        let mut bld = b();
        let x: Name = Arc::from("x");
        let one = bld.mk_const(1.0, Span::default());
        let body = bld.mk(ExprKind::Var(x.clone()), Span::default());
        let e = bld.mk_let(x, one, body, Span::default());
        match &e.kind {
            ExprKind::App(f, _) => assert!(matches!(f.kind, ExprKind::Lam(..))),
            _ => panic!("expected application"),
        }
    }
}
