//! Recursive-descent parser and desugarer for the SPCF surface syntax.
//!
//! The surface language is an ML-flavoured notation for the paper's SPCF:
//!
//! ```text
//! let start = 3 * sample uniform(0, 1) in
//! let rec walk x =
//!   if x <= 0 then 0 else
//!     let step = sample uniform(0, 1) in
//!     if sample <= 0.5 then step + walk (x + step)
//!     else step + walk (x - step)
//! in
//! let distance = walk start in
//! observe distance from normal(1.1, 0.1);
//! start
//! ```
//!
//! Everything desugars into the eight core constructors of
//! [`crate::ast::ExprKind`]:
//!
//! | surface                      | core                                      |
//! |------------------------------|-------------------------------------------|
//! | `let x = e in b`             | `(λx. b) e`                               |
//! | `let f x y = e in b`         | `(λf. b) (λx. λy. e)`                     |
//! | `let rec f x = e in b`       | `(λf. b) (μf x. e)`                       |
//! | `e1; e2`                     | `(λ_. e2) e1`                             |
//! | `if a <= b then n else p`    | `if(a − b, n, p)`                         |
//! | `if a < b then n else p`     | `if(b − a, p, n)`                         |
//! | `observe e from D(θ)`        | `score(pdf_D(θ, e))`                      |
//! | `sample uniform(a, b)`       | `a + (b − a) · sample`                    |
//! | `sample normal(m, s)`        | `m + s · qnormal(sample)`                 |
//! | `sample exponential(r)`      | `qexponential(sample) / r`                |
//! | `sample beta(a, b)`          | `qbeta(a, b, sample)`                     |
//! | `sample cauchy(x0, g)`       | `x0 + g · qcauchy(sample)`                |
//! | `flip(p)` / `bern(p)`        | `if(sample − p, 1, 0)`                    |
//! | `fail`                       | `score(0)`                                |

use std::sync::Arc;

use crate::ast::{AstBuilder, Expr, ExprKind, Name, Program, Span};
use crate::error::{LangError, Phase};
use crate::lexer::lex;
use crate::prim::PrimOp;
use crate::token::{Token, TokenKind};

/// Parses and desugars a program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Example
///
/// ```
/// let p = gubpi_lang::parse("let x = sample in x + 1").unwrap();
/// assert!(p.root.free_vars().is_empty());
/// ```
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        builder: AstBuilder::new(),
    };
    let root = parser.expr()?;
    parser.expect(&TokenKind::Eof)?;
    Ok(Program {
        node_count: parser.builder.node_count(),
        root,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    builder: AstBuilder,
}

/// The comparison operator of an `if` condition.
#[derive(Copy, Clone, Debug)]
enum CmpOp {
    Le,
    Lt,
    Ge,
    Gt,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        self.peek_at(1)
    }

    fn peek_at(&self, k: usize) -> &TokenKind {
        let i = (self.pos + k).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, LangError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(LangError::new(
                Phase::Parse,
                format!("expected {kind}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(Name, Span), LangError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((Arc::from(s.as_str()), sp))
            }
            other => Err(LangError::new(
                Phase::Parse,
                format!("expected an identifier, found {other}"),
                self.span(),
            )),
        }
    }

    /// `expr := ctrl (';' expr)?` — sequencing binds loosest.
    fn expr(&mut self) -> Result<Expr, LangError> {
        let first = self.ctrl()?;
        if *self.peek() == TokenKind::Semi {
            self.bump();
            let rest = self.expr()?;
            let span = first.span.merge(rest.span);
            let hole = self.builder.fresh_name("seq");
            Ok(self.builder.mk_let(hole, first, rest, span))
        } else {
            Ok(first)
        }
    }

    /// Control-flow and binding forms, falling back to arithmetic.
    fn ctrl(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            TokenKind::Let => self.let_expr(),
            TokenKind::If => self.if_expr(),
            TokenKind::Fn => self.fn_expr(),
            // `score(…)` is an atom, so it reaches `arith` like `sample`
            // does — a shortcut here would orphan trailing operators in
            // `score(x) * y`.
            TokenKind::Observe => self.observe_expr(),
            TokenKind::Fail => {
                let sp = self.span();
                self.bump();
                let zero = self.builder.mk_const(0.0, sp);
                Ok(self.builder.mk(ExprKind::Score(Box::new(zero)), sp))
            }
            TokenKind::Ident(s) if s == "mu" && self.mu_header_ahead() => self.mu_expr(),
            _ => self.arith(),
        }
    }

    /// Is the cursor at `mu f x ->`? Anything else starting with the
    /// identifier `mu` (a plain variable, an application) parses as
    /// before — only the full fixpoint header is claimed.
    fn mu_header_ahead(&self) -> bool {
        matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(self.peek_at(2), TokenKind::Ident(_))
            && *self.peek_at(3) == TokenKind::Arrow
    }

    /// `mu f x -> body` — the explicit fixpoint the pretty printer emits
    /// for `let rec` desugarings; accepting it closes the round trip.
    fn mu_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        self.bump(); // `mu`
        let (f, _) = self.expect_ident()?;
        let (x, _) = self.expect_ident()?;
        self.expect(&TokenKind::Arrow)?;
        let body = self.expr()?;
        let span = start.merge(body.span);
        Ok(self.builder.mk(ExprKind::Fix(f, x, Box::new(body)), span))
    }

    fn let_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        self.expect(&TokenKind::Let)?;
        let recursive = if *self.peek() == TokenKind::Rec {
            self.bump();
            true
        } else {
            false
        };
        let (name, _) = self.expect_ident()?;
        let mut params = Vec::new();
        while let TokenKind::Ident(_) = self.peek() {
            params.push(self.expect_ident()?.0);
        }
        self.expect(&TokenKind::Eq)?;
        let mut bound = self.expr()?;
        self.expect(&TokenKind::In)?;
        let body = self.expr()?;
        let span = start.merge(body.span);

        if recursive {
            if params.is_empty() {
                return Err(LangError::new(
                    Phase::Parse,
                    "`let rec` requires at least one parameter",
                    span,
                ));
            }
            // let rec f x y… = e  ⇒  f = μf x. λy…. e
            for p in params.iter().skip(1).rev() {
                let b_span = bound.span;
                bound = self
                    .builder
                    .mk(ExprKind::Lam(p.clone(), Box::new(bound)), b_span);
            }
            let fix = self.builder.mk(
                ExprKind::Fix(name.clone(), params[0].clone(), Box::new(bound)),
                span,
            );
            Ok(self.builder.mk_let(name, fix, body, span))
        } else {
            for p in params.iter().rev() {
                let b_span = bound.span;
                bound = self
                    .builder
                    .mk(ExprKind::Lam(p.clone(), Box::new(bound)), b_span);
            }
            Ok(self.builder.mk_let(name, bound, body, span))
        }
    }

    fn if_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        self.expect(&TokenKind::If)?;
        let lhs = self.arith()?;
        let op = match self.peek() {
            TokenKind::Le => CmpOp::Le,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Gt => CmpOp::Gt,
            other => {
                return Err(LangError::new(
                    Phase::Parse,
                    format!("expected a comparison operator in `if` condition, found {other}"),
                    self.span(),
                ))
            }
        };
        self.bump();
        let rhs = self.arith()?;
        self.expect(&TokenKind::Then)?;
        let then_e = self.expr()?;
        self.expect(&TokenKind::Else)?;
        let else_e = self.expr()?;
        let span = start.merge(else_e.span);
        // if(M, N, P) takes N when M ≤ 0.
        let (guard, t, e) = match op {
            CmpOp::Le => {
                let g = self.sub(lhs, rhs);
                (g, then_e, else_e)
            }
            CmpOp::Ge => {
                let g = self.sub(rhs, lhs);
                (g, then_e, else_e)
            }
            // a < b  ⇔  ¬(b ≤ a): swap branches
            CmpOp::Lt => {
                let g = self.sub(rhs, lhs);
                (g, else_e, then_e)
            }
            CmpOp::Gt => {
                let g = self.sub(lhs, rhs);
                (g, else_e, then_e)
            }
        };
        Ok(self.builder.mk(
            ExprKind::If(Box::new(guard), Box::new(t), Box::new(e)),
            span,
        ))
    }

    /// Builds `a − b`, folding constants for tidier guards.
    fn sub(&mut self, a: Expr, b: Expr) -> Expr {
        let span = a.span.merge(b.span);
        if let (ExprKind::Const(x), ExprKind::Const(y)) = (&a.kind, &b.kind) {
            return self.builder.mk_const(x - y, span);
        }
        if let ExprKind::Const(0.0) = b.kind {
            return a;
        }
        self.builder.mk_prim(PrimOp::Sub, vec![a, b], span)
    }

    fn fn_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        self.expect(&TokenKind::Fn)?;
        let mut params = vec![self.expect_ident()?.0];
        while let TokenKind::Ident(_) = self.peek() {
            params.push(self.expect_ident()?.0);
        }
        self.expect(&TokenKind::Arrow)?;
        let mut body = self.expr()?;
        let span = start.merge(body.span);
        for p in params.iter().rev() {
            body = self
                .builder
                .mk(ExprKind::Lam(p.clone(), Box::new(body)), span);
        }
        Ok(body)
    }

    fn score_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        self.expect(&TokenKind::Score)?;
        self.expect(&TokenKind::LParen)?;
        let inner = self.expr()?;
        let end = self.span();
        self.expect(&TokenKind::RParen)?;
        Ok(self
            .builder
            .mk(ExprKind::Score(Box::new(inner)), start.merge(end)))
    }

    fn observe_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.span();
        self.expect(&TokenKind::Observe)?;
        let value = self.arith()?;
        self.expect(&TokenKind::From)?;
        let (dist, sp) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            args.push(self.expr()?);
            while *self.peek() == TokenKind::Comma {
                self.bump();
                args.push(self.expr()?);
            }
        }
        let end = self.span();
        self.expect(&TokenKind::RParen)?;
        let span = start.merge(end);
        let (op, expected) = match &*dist {
            "normal" | "gaussian" => (PrimOp::NormalPdf, 2),
            "uniform" => (PrimOp::UniformPdf, 2),
            "beta" => (PrimOp::BetaPdf, 2),
            "exponential" => (PrimOp::ExponentialPdf, 1),
            "cauchy" => (PrimOp::CauchyPdf, 2),
            other => {
                return Err(LangError::new(
                    Phase::Parse,
                    format!("unknown distribution `{other}` in observe"),
                    sp,
                ))
            }
        };
        if args.len() != expected {
            return Err(LangError::new(
                Phase::Parse,
                format!(
                    "distribution `{dist}` expects {expected} parameter(s), got {}",
                    args.len()
                ),
                span,
            ));
        }
        args.push(value);
        let pdf = self.builder.mk_prim(op, args, span);
        Ok(self.builder.mk(ExprKind::Score(Box::new(pdf)), span))
    }

    fn arith(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => PrimOp::Add,
                TokenKind::Minus => PrimOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.builder.mk_prim(op, vec![lhs, rhs], span);
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => PrimOp::Mul,
                TokenKind::Slash => PrimOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.builder.mk_prim(op, vec![lhs, rhs], span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if *self.peek() == TokenKind::Minus {
            let start = self.span();
            self.bump();
            let inner = self.unary()?;
            let span = start.merge(inner.span);
            if let ExprKind::Const(c) = inner.kind {
                return Ok(self.builder.mk_const(-c, span));
            }
            return Ok(self.builder.mk_prim(PrimOp::Neg, vec![inner], span));
        }
        self.app()
    }

    fn app(&mut self) -> Result<Expr, LangError> {
        let mut head = self.atom()?;
        while self.atom_starts_here() {
            let arg = self.atom()?;
            let span = head.span.merge(arg.span);
            head = self
                .builder
                .mk(ExprKind::App(Box::new(head), Box::new(arg)), span);
        }
        Ok(head)
    }

    fn atom_starts_here(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_)
                | TokenKind::Number(_)
                | TokenKind::LParen
                | TokenKind::Sample
                | TokenKind::Score
        )
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(self.builder.mk_const(n, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Score => self.score_expr(),
            TokenKind::Sample => {
                self.bump();
                // `sample D(args)` when followed by a distribution call.
                if let TokenKind::Ident(name) = self.peek().clone() {
                    if is_dist_name(&name) && *self.peek2() == TokenKind::LParen {
                        return self.sample_dist(span);
                    }
                }
                Ok(self.builder.mk(ExprKind::Sample, span))
            }
            TokenKind::Ident(name) => {
                // builtin call?
                if *self.peek2() == TokenKind::LParen {
                    if name == "flip" || name == "bern" {
                        return self.flip_call(span);
                    }
                    if let Some(op) = PrimOp::by_name(&name) {
                        return self.prim_call(op, span);
                    }
                }
                let (n, _) = self.expect_ident()?;
                Ok(self.builder.mk(ExprKind::Var(n), span))
            }
            other => Err(LangError::new(
                Phase::Parse,
                format!("expected an expression, found {other}"),
                span,
            )),
        }
    }

    fn paren_args(&mut self) -> Result<(Vec<Expr>, Span), LangError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            args.push(self.expr()?);
            while *self.peek() == TokenKind::Comma {
                self.bump();
                args.push(self.expr()?);
            }
        }
        let end = self.span();
        self.expect(&TokenKind::RParen)?;
        Ok((args, end))
    }

    fn prim_call(&mut self, op: PrimOp, start: Span) -> Result<Expr, LangError> {
        self.bump(); // the builtin name
        let (args, end) = self.paren_args()?;
        let span = start.merge(end);
        if args.len() != op.arity() {
            return Err(LangError::new(
                Phase::Parse,
                format!(
                    "`{}` expects {} argument(s), got {}",
                    op.name(),
                    op.arity(),
                    args.len()
                ),
                span,
            ));
        }
        Ok(self.builder.mk_prim(op, args, span))
    }

    /// `flip(p)` ⇒ `if(sample − p, 1, 0)`: 1 with probability `p`.
    fn flip_call(&mut self, start: Span) -> Result<Expr, LangError> {
        self.bump();
        let (mut args, end) = self.paren_args()?;
        let span = start.merge(end);
        if args.len() != 1 {
            return Err(LangError::new(
                Phase::Parse,
                format!("`flip` expects 1 argument, got {}", args.len()),
                span,
            ));
        }
        let p = args.pop().expect("length checked");
        let sample = self.builder.mk(ExprKind::Sample, span);
        let guard = self.builder.mk_prim(PrimOp::Sub, vec![sample, p], span);
        let one = self.builder.mk_const(1.0, span);
        let zero = self.builder.mk_const(0.0, span);
        Ok(self.builder.mk(
            ExprKind::If(Box::new(guard), Box::new(one), Box::new(zero)),
            span,
        ))
    }

    /// Desugars `sample D(args)` via the quantile transform.
    fn sample_dist(&mut self, start: Span) -> Result<Expr, LangError> {
        let (dist, dsp) = self.expect_ident()?;
        let (args, end) = self.paren_args()?;
        let span = start.merge(end);
        let check = |n: usize| -> Result<(), LangError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(LangError::new(
                    Phase::Parse,
                    format!(
                        "distribution `{dist}` expects {n} parameter(s), got {}",
                        args.len()
                    ),
                    span,
                ))
            }
        };
        match &*dist {
            "uniform" => {
                check(2)?;
                let mut it = args.into_iter();
                let (a, b) = (it.next().expect("2 args"), it.next().expect("2 args"));
                // a + (b − a)·sample, with complex params let-bound so the
                // desugaring duplicates no effects.
                self.bind_params(vec![a, b], span, |bld, vars| {
                    let (a, b) = (vars[0].clone(), vars[1].clone());
                    let u = bld.mk(ExprKind::Sample, span);
                    let width = bld.mk_prim(PrimOp::Sub, vec![b, a.clone()], span);
                    let scaled = bld.mk_prim(PrimOp::Mul, vec![width, u], span);
                    bld.mk_prim(PrimOp::Add, vec![a, scaled], span)
                })
            }
            "normal" | "gaussian" => {
                check(2)?;
                let mut it = args.into_iter();
                let (m, s) = (it.next().expect("2 args"), it.next().expect("2 args"));
                self.bind_params(vec![m, s], span, |bld, vars| {
                    let (m, s) = (vars[0].clone(), vars[1].clone());
                    let u = bld.mk(ExprKind::Sample, span);
                    let q = bld.mk_prim(PrimOp::NormalQuantile, vec![u], span);
                    let scaled = bld.mk_prim(PrimOp::Mul, vec![s, q], span);
                    bld.mk_prim(PrimOp::Add, vec![m, scaled], span)
                })
            }
            "exponential" => {
                check(1)?;
                let mut it = args.into_iter();
                let r = it.next().expect("1 arg");
                self.bind_params(vec![r], span, |bld, vars| {
                    let r = vars[0].clone();
                    let u = bld.mk(ExprKind::Sample, span);
                    let q = bld.mk_prim(PrimOp::ExponentialQuantile, vec![u], span);
                    bld.mk_prim(PrimOp::Div, vec![q, r], span)
                })
            }
            "beta" => {
                check(2)?;
                let mut it = args.into_iter();
                let (a, b) = (it.next().expect("2 args"), it.next().expect("2 args"));
                self.bind_params(vec![a, b], span, |bld, vars| {
                    let (a, b) = (vars[0].clone(), vars[1].clone());
                    let u = bld.mk(ExprKind::Sample, span);
                    bld.mk_prim(PrimOp::BetaQuantile, vec![a, b, u], span)
                })
            }
            "cauchy" => {
                check(2)?;
                let mut it = args.into_iter();
                let (x0, g) = (it.next().expect("2 args"), it.next().expect("2 args"));
                self.bind_params(vec![x0, g], span, |bld, vars| {
                    let (x0, g) = (vars[0].clone(), vars[1].clone());
                    let u = bld.mk(ExprKind::Sample, span);
                    let q = bld.mk_prim(PrimOp::CauchyQuantile, vec![u], span);
                    let scaled = bld.mk_prim(PrimOp::Mul, vec![g, q], span);
                    bld.mk_prim(PrimOp::Add, vec![x0, scaled], span)
                })
            }
            other => Err(LangError::new(
                Phase::Parse,
                format!("unknown distribution `{other}` in sample"),
                dsp,
            )),
        }
    }

    /// Let-binds non-trivial parameters so a desugaring can mention them
    /// several times without duplicating effects; trivial parameters
    /// (constants and variables) are substituted directly.
    fn bind_params(
        &mut self,
        params: Vec<Expr>,
        span: Span,
        build: impl FnOnce(&mut AstBuilder, &[Expr]) -> Expr,
    ) -> Result<Expr, LangError> {
        let mut vars = Vec::with_capacity(params.len());
        let mut bindings: Vec<(Name, Expr)> = Vec::new();
        for p in params {
            if matches!(p.kind, ExprKind::Const(_) | ExprKind::Var(_)) {
                vars.push(p);
            } else {
                let name = self.builder.fresh_name("p");
                vars.push(self.builder.mk(ExprKind::Var(name.clone()), span));
                bindings.push((name, p));
            }
        }
        let mut body = build(&mut self.builder, &vars);
        for (name, bound) in bindings.into_iter().rev() {
            body = self.builder.mk_let(name, bound, body, span);
        }
        Ok(body)
    }
}

fn is_dist_name(s: &str) -> bool {
    matches!(
        s,
        "uniform" | "normal" | "gaussian" | "beta" | "exponential" | "cauchy"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    #[test]
    fn parses_pedestrian_example() {
        let src = r#"
            let start = 3 * sample uniform(0, 1) in
            let rec walk x =
              if x <= 0 then 0 else
                let step = sample uniform(0, 1) in
                if sample <= 0.5 then step + walk (x + step)
                else step + walk (x - step)
            in
            let distance = walk start in
            observe distance from normal(1.1, 0.1);
            start
        "#;
        let p = ok(src);
        assert!(p.root.free_vars().is_empty());
        // Must contain a Fix node and a Score node somewhere.
        let mut has_fix = false;
        let mut has_score = false;
        p.root.walk(&mut |e| match e.kind {
            ExprKind::Fix(..) => has_fix = true,
            ExprKind::Score(..) => has_score = true,
            _ => {}
        });
        assert!(has_fix && has_score);
    }

    #[test]
    fn let_desugars_to_application() {
        let p = ok("let x = 1 in x");
        match &p.root.kind {
            ExprKind::App(f, a) => {
                assert!(matches!(f.kind, ExprKind::Lam(..)));
                assert!(matches!(a.kind, ExprKind::Const(c) if c == 1.0));
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn comparison_directions() {
        // a > b must swap branches: `if 1 > 2 then 10 else 20` = 20.
        let p = ok("if 1 > 2 then 10 else 20");
        match &p.root.kind {
            ExprKind::If(g, t, e) => {
                assert!(matches!(g.kind, ExprKind::Const(c) if c == -1.0));
                // branches swapped: then-slot holds 20
                assert!(matches!(t.kind, ExprKind::Const(c) if c == 20.0));
                assert!(matches!(e.kind, ExprKind::Const(c) if c == 10.0));
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn uniform_sample_desugars_linearly() {
        let p = ok("sample uniform(0, 2)");
        // 0 + (2 − 0)·sample
        let mut saw_sample = false;
        p.root.walk(&mut |e| {
            if matches!(e.kind, ExprKind::Sample) {
                saw_sample = true;
            }
        });
        assert!(saw_sample);
    }

    #[test]
    fn effectful_dist_params_are_let_bound() {
        // The parameter contains `sample`; it must be bound once, not
        // duplicated into both use sites of the uniform desugaring.
        let p = ok("sample uniform(sample, 1)");
        let mut samples = 0;
        p.root.walk(&mut |e| {
            if matches!(e.kind, ExprKind::Sample) {
                samples += 1;
            }
        });
        assert_eq!(samples, 2, "inner + outer sample, no duplication");
    }

    #[test]
    fn observe_becomes_score_of_pdf() {
        let p = ok("observe 1.1 from normal(0, 1)");
        match &p.root.kind {
            ExprKind::Score(inner) => match &inner.kind {
                ExprKind::Prim(PrimOp::NormalPdf, args) => assert_eq!(args.len(), 3),
                k => panic!("unexpected {k:?}"),
            },
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn multi_parameter_functions_curry() {
        let p = ok("let f x y = x + y in f 1 2");
        assert!(p.root.free_vars().is_empty());
    }

    #[test]
    fn sequencing_discards() {
        let p = ok("score(2); 5");
        match &p.root.kind {
            ExprKind::App(lam, arg) => {
                assert!(matches!(lam.kind, ExprKind::Lam(..)));
                assert!(matches!(arg.kind, ExprKind::Score(_)));
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn flip_desugars_to_branch() {
        let p = ok("flip(0.25)");
        assert!(matches!(p.root.kind, ExprKind::If(..)));
    }

    #[test]
    fn error_messages_point_at_spans() {
        let err = parse("let x = in x").unwrap_err();
        assert_eq!(err.phase, Phase::Parse);
        assert!(err.render("let x = in x").starts_with("1:9"));
    }

    #[test]
    fn rejects_unknown_distributions() {
        assert!(parse("sample wat(1, 2)").is_err());
        assert!(parse("observe 1 from wat(1)").is_err());
    }

    #[test]
    fn rejects_bad_arity() {
        assert!(parse("min(1)").is_err());
        assert!(parse("sample normal(1)").is_err());
        assert!(parse("let rec f = 1 in f").is_err());
    }

    #[test]
    fn fail_is_score_zero() {
        let p = ok("fail; 1");
        let mut saw = false;
        p.root.walk(&mut |e| {
            if let ExprKind::Score(inner) = &e.kind {
                if matches!(inner.kind, ExprKind::Const(c) if c == 0.0) {
                    saw = true;
                }
            }
        });
        assert!(saw);
    }
}
