//! Pretty printer for core SPCF expressions.
//!
//! Prints desugared terms back in a compact surface-ish notation, mainly
//! for diagnostics and tests. Operator precedences mirror the parser so
//! that simple first-order arithmetic round-trips.

use std::fmt::Write as _;

use crate::ast::{Expr, ExprKind};
use crate::prim::PrimOp;

/// Renders an expression to a string.
///
/// # Example
///
/// ```
/// let p = gubpi_lang::parse("1 + 2 * 3").unwrap();
/// assert_eq!(gubpi_lang::pretty(&p.root), "1 + 2 * 3");
/// ```
pub fn pretty(e: &Expr) -> String {
    let mut s = String::new();
    go(e, Prec::Lowest, &mut s);
    s
}

/// Precedence levels, loosest first.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Lowest,
    Add,
    Mul,
    App,
    Atom,
}

fn go(e: &Expr, ctx: Prec, out: &mut String) {
    match &e.kind {
        ExprKind::Var(x) => {
            let _ = write!(out, "{x}");
        }
        ExprKind::Const(r) => {
            // Sign-negative covers `-0.0`: printed bare in an `Atom`
            // context it would re-parse as a subtraction of `0`.
            if r.is_sign_negative() {
                paren(ctx > Prec::Add, out, |out| {
                    let _ = write!(out, "{r}");
                });
            } else {
                let _ = write!(out, "{r}");
            }
        }
        ExprKind::Sample => out.push_str("sample"),
        ExprKind::Lam(x, body) => paren(ctx > Prec::Lowest, out, |out| {
            let _ = write!(out, "fn {x} -> ");
            go(body, Prec::Lowest, out);
        }),
        ExprKind::Fix(f, x, body) => paren(ctx > Prec::Lowest, out, |out| {
            let _ = write!(out, "mu {f} {x} -> ");
            go(body, Prec::Lowest, out);
        }),
        ExprKind::App(f, a) => paren(ctx > Prec::App, out, |out| {
            go(f, Prec::App, out);
            out.push(' ');
            go(a, Prec::Atom, out);
        }),
        ExprKind::If(c, t, els) => paren(ctx > Prec::Lowest, out, |out| {
            out.push_str("if ");
            // The parser reads the guard with `arith`, which stops short
            // of binder/branch forms — those need explicit parentheses.
            go(c, Prec::Add, out);
            out.push_str(" <= 0 then ");
            go(t, Prec::Lowest, out);
            out.push_str(" else ");
            go(els, Prec::Lowest, out);
        }),
        ExprKind::Score(m) => {
            out.push_str("score(");
            go(m, Prec::Lowest, out);
            out.push(')');
        }
        ExprKind::Prim(op, args) => match op {
            PrimOp::Add | PrimOp::Sub => paren(ctx > Prec::Add, out, |out| {
                go(&args[0], Prec::Add, out);
                out.push_str(if *op == PrimOp::Add { " + " } else { " - " });
                go(&args[1], Prec::Mul, out);
            }),
            PrimOp::Mul | PrimOp::Div => paren(ctx > Prec::Mul, out, |out| {
                go(&args[0], Prec::Mul, out);
                out.push_str(if *op == PrimOp::Mul { " * " } else { " / " });
                go(&args[1], Prec::App, out);
            }),
            PrimOp::Neg => {
                if matches!(args[0].kind, ExprKind::Const(_)) {
                    // `-2` re-parses as a folded constant, not as `neg`
                    // applied to `2`; the named form survives the trip.
                    out.push_str("neg(");
                    go(&args[0], Prec::Lowest, out);
                    out.push(')');
                } else {
                    paren(ctx > Prec::Mul, out, |out| {
                        out.push('-');
                        go(&args[0], Prec::Atom, out);
                    });
                }
            }
            _ => {
                let _ = write!(out, "{}(", op.name());
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    go(a, Prec::Lowest, out);
                }
                out.push(')');
            }
        },
    }
}

fn paren(needed: bool, out: &mut String, inner: impl FnOnce(&mut String)) {
    if needed {
        out.push('(');
        inner(out);
        out.push(')');
    } else {
        inner(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) -> String {
        pretty(&parse(src).unwrap().root)
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(roundtrip("1 + 2 * 3"), "1 + 2 * 3");
        assert_eq!(roundtrip("(1 + 2) * 3"), "(1 + 2) * 3");
        assert_eq!(roundtrip("1 - 2 - 3"), "1 - 2 - 3");
        assert_eq!(roundtrip("1 / 2 / 3"), "1 / 2 / 3");
    }

    #[test]
    fn application_binds_tightest() {
        assert_eq!(
            roundtrip("let f x = x in f 1 + 2"),
            "(fn f -> f 1 + 2) (fn x -> x)"
        );
    }

    #[test]
    fn prims_print_with_names() {
        assert_eq!(roundtrip("exp(min(1, 2))"), "exp(min(1, 2))");
        assert_eq!(roundtrip("score(2)"), "score(2)");
    }

    #[test]
    fn printed_programs_reparse_to_same_print() {
        for src in [
            "1 + 2 * 3",
            "exp(1) + sample",
            "score(sample); 4",
            "if sample <= 0.5 then 1 else 0",
            "let f x = x + 1 in f 3",
        ] {
            let once = roundtrip(src);
            let twice = roundtrip(&once);
            assert_eq!(once, twice, "printing is a fixpoint for `{src}`");
        }
    }
}
