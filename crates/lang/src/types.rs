//! Simple types for SPCF and unification-based inference.
//!
//! The paper's type system (§2.2) has `α, β ::= R | α → β`. The surface
//! language omits annotations, so we infer types with standard
//! Hindley–Milner-style unification restricted to monotypes (SPCF is
//! simply typed; no polymorphism is needed). Every AST node receives a
//! type, recorded in a [`TypeMap`] keyed by [`NodeId`] — the weight-aware
//! interval type system (crate `gubpi-types`) consumes this map to build
//! its symbolic skeletons (`fresh(α)`, Appendix D).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::{Expr, ExprKind, Name, NodeId, Program, Span};
use crate::error::{LangError, Phase};

/// A simple type `R | α → β`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimpleTy {
    /// The ground type of reals.
    Real,
    /// A function type.
    Fun(Arc<SimpleTy>, Arc<SimpleTy>),
}

impl SimpleTy {
    /// The order of the type (0 for `R`, 1 for `R → R`, …).
    pub fn order(&self) -> usize {
        match self {
            SimpleTy::Real => 0,
            SimpleTy::Fun(a, b) => (a.order() + 1).max(b.order()),
        }
    }

    /// Is this the ground type `R`?
    pub fn is_real(&self) -> bool {
        matches!(self, SimpleTy::Real)
    }
}

impl fmt::Display for SimpleTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleTy::Real => write!(f, "R"),
            SimpleTy::Fun(a, b) => {
                if matches!(**a, SimpleTy::Fun(..)) {
                    write!(f, "({a}) -> {b}")
                } else {
                    write!(f, "{a} -> {b}")
                }
            }
        }
    }
}

/// The result of type inference: a type for every AST node.
#[derive(Clone, Debug, Default)]
pub struct TypeMap {
    map: HashMap<NodeId, SimpleTy>,
}

impl TypeMap {
    /// The type of the node, if inference reached it.
    pub fn get(&self, id: NodeId) -> Option<&SimpleTy> {
        self.map.get(&id)
    }

    /// The type of the node.
    ///
    /// # Panics
    ///
    /// Panics when the node was not typed; all nodes of a program accepted
    /// by [`infer`] are typed.
    pub fn ty(&self, id: NodeId) -> &SimpleTy {
        self.map.get(&id).expect("node was typed by inference")
    }

    /// Number of typed nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no nodes have been typed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Internal unification term: a type variable or constructor.
#[derive(Clone, Debug)]
enum TyTerm {
    /// An unresolved variable (index into the union-find table).
    Var,
    /// Ground type.
    Real,
    /// Function type over two table entries.
    Fun(u32, u32),
}

struct Infer {
    /// Union-find parents; `parent[i] == i` for roots.
    parent: Vec<u32>,
    /// Structure at each root.
    term: Vec<TyTerm>,
}

impl Infer {
    fn new() -> Infer {
        Infer {
            parent: Vec::new(),
            term: Vec::new(),
        }
    }

    fn fresh(&mut self) -> u32 {
        let i = self.parent.len() as u32;
        self.parent.push(i);
        self.term.push(TyTerm::Var);
        i
    }

    fn real(&mut self) -> u32 {
        let i = self.fresh();
        self.term[i as usize] = TyTerm::Real;
        i
    }

    fn fun(&mut self, a: u32, b: u32) -> u32 {
        let i = self.fresh();
        self.term[i as usize] = TyTerm::Fun(a, b);
        i
    }

    fn find(&mut self, i: u32) -> u32 {
        let p = self.parent[i as usize];
        if p == i {
            return i;
        }
        let root = self.find(p);
        self.parent[i as usize] = root;
        root
    }

    /// Does variable root `v` occur inside the structure rooted at `t`?
    /// Prevents the construction of infinite types like `a = a → b`.
    fn occurs(&mut self, v: u32, t: u32) -> bool {
        let rt = self.find(t);
        if rt == v {
            return true;
        }
        match self.term[rt as usize].clone() {
            TyTerm::Var | TyTerm::Real => false,
            TyTerm::Fun(a, b) => self.occurs(v, a) || self.occurs(v, b),
        }
    }

    fn unify(&mut self, a: u32, b: u32, span: Span) -> Result<(), LangError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        let ta = self.term[ra as usize].clone();
        let tb = self.term[rb as usize].clone();
        match (ta, tb) {
            (TyTerm::Var, _) => {
                if self.occurs(ra, rb) {
                    return Err(LangError::new(
                        Phase::Type,
                        "cannot construct an infinite type",
                        span,
                    ));
                }
                self.parent[ra as usize] = rb;
                Ok(())
            }
            (_, TyTerm::Var) => {
                if self.occurs(rb, ra) {
                    return Err(LangError::new(
                        Phase::Type,
                        "cannot construct an infinite type",
                        span,
                    ));
                }
                self.parent[rb as usize] = ra;
                Ok(())
            }
            (TyTerm::Real, TyTerm::Real) => {
                self.parent[ra as usize] = rb;
                Ok(())
            }
            (TyTerm::Fun(a1, r1), TyTerm::Fun(a2, r2)) => {
                self.parent[ra as usize] = rb;
                self.unify(a1, a2, span)?;
                self.unify(r1, r2, span)
            }
            (x, y) => Err(LangError::new(
                Phase::Type,
                format!("type mismatch: {} vs {}", describe(&x), describe(&y)),
                span,
            )),
        }
    }

    /// Resolves a table entry into a [`SimpleTy`], defaulting unresolved
    /// variables to `R` (any ground default is sound for SPCF programs
    /// whose result type is `R`).
    fn resolve(&mut self, i: u32) -> SimpleTy {
        let r = self.find(i);
        match self.term[r as usize].clone() {
            TyTerm::Var | TyTerm::Real => SimpleTy::Real,
            TyTerm::Fun(a, b) => {
                SimpleTy::Fun(Arc::new(self.resolve(a)), Arc::new(self.resolve(b)))
            }
        }
    }
}

fn describe(t: &TyTerm) -> &'static str {
    match t {
        TyTerm::Var => "_",
        TyTerm::Real => "R",
        TyTerm::Fun(..) => "a function type",
    }
}

/// Infers simple types for every node of the program and checks that the
/// whole program has ground type `R`.
///
/// # Errors
///
/// Returns a [`LangError`] when unification fails (e.g. a number is
/// applied as a function) or an unbound variable occurs.
///
/// # Example
///
/// ```
/// let p = gubpi_lang::parse("let f x = x + 1 in f 2").unwrap();
/// let types = gubpi_lang::infer(&p).unwrap();
/// assert!(types.ty(p.root.id).is_real());
/// ```
pub fn infer(program: &Program) -> Result<TypeMap, LangError> {
    let mut inf = Infer::new();
    let mut node_ty: HashMap<NodeId, u32> = HashMap::new();
    let mut env: Vec<(Name, u32)> = Vec::new();
    let root_ty = walk(&program.root, &mut inf, &mut env, &mut node_ty)?;
    let real = inf.real();
    inf.unify(root_ty, real, program.root.span).map_err(|_| {
        LangError::new(
            Phase::Type,
            "program must have ground type R",
            program.root.span,
        )
    })?;
    let mut map = HashMap::with_capacity(node_ty.len());
    for (id, t) in node_ty {
        map.insert(id, inf.resolve(t));
    }
    Ok(TypeMap { map })
}

fn walk(
    e: &Expr,
    inf: &mut Infer,
    env: &mut Vec<(Name, u32)>,
    out: &mut HashMap<NodeId, u32>,
) -> Result<u32, LangError> {
    let ty = match &e.kind {
        ExprKind::Var(x) => match env.iter().rev().find(|(n, _)| n == x) {
            Some((_, t)) => *t,
            None => {
                return Err(LangError::new(
                    Phase::Type,
                    format!("unbound variable `{x}`"),
                    e.span,
                ))
            }
        },
        ExprKind::Const(_) | ExprKind::Sample => inf.real(),
        ExprKind::Lam(x, body) => {
            let a = inf.fresh();
            env.push((x.clone(), a));
            let b = walk(body, inf, env, out)?;
            env.pop();
            inf.fun(a, b)
        }
        ExprKind::Fix(f, x, body) => {
            let a = inf.fresh();
            let b = inf.fresh();
            let fun = inf.fun(a, b);
            env.push((f.clone(), fun));
            env.push((x.clone(), a));
            let body_t = walk(body, inf, env, out)?;
            env.pop();
            env.pop();
            inf.unify(body_t, b, e.span)?;
            fun
        }
        ExprKind::App(g, arg) => {
            let gt = walk(g, inf, env, out)?;
            let at = walk(arg, inf, env, out)?;
            let r = inf.fresh();
            let want = inf.fun(at, r);
            inf.unify(gt, want, e.span)?;
            r
        }
        ExprKind::If(c, t, el) => {
            let ct = walk(c, inf, env, out)?;
            let real = inf.real();
            inf.unify(ct, real, c.span)?;
            let tt = walk(t, inf, env, out)?;
            let et = walk(el, inf, env, out)?;
            inf.unify(tt, et, e.span)?;
            tt
        }
        ExprKind::Prim(_, args) => {
            for a in args {
                let at = walk(a, inf, env, out)?;
                let real = inf.real();
                inf.unify(at, real, a.span)?;
            }
            inf.real()
        }
        ExprKind::Score(m) => {
            let mt = walk(m, inf, env, out)?;
            let real = inf.real();
            inf.unify(mt, real, m.span)?;
            real
        }
    };
    out.insert(e.id, ty);
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn infers_function_types() {
        let p = parse("let f x = x + 1 in f (f 2)").unwrap();
        let tm = infer(&p).unwrap();
        assert!(tm.ty(p.root.id).is_real());
        // Some node must have type R -> R (the function f).
        let fun = SimpleTy::Fun(Arc::new(SimpleTy::Real), Arc::new(SimpleTy::Real));
        let mut found = false;
        p.root.walk(&mut |e| {
            if tm.get(e.id) == Some(&fun) {
                found = true;
            }
        });
        assert!(found);
        assert_eq!(fun.to_string(), "R -> R");
        assert_eq!(fun.order(), 1);
    }

    #[test]
    fn recursive_functions_type_check() {
        let p = parse("let rec fact n = if n <= 0 then 1 else n * fact (n - 1) in fact 5").unwrap();
        let tm = infer(&p).unwrap();
        assert!(tm.ty(p.root.id).is_real());
    }

    #[test]
    fn higher_order_types() {
        let p = parse("let twice f x = f (f x) in twice (fn y -> y + 1) 0").unwrap();
        let tm = infer(&p).unwrap();
        // twice : (R→R) → R → R must appear in the program.
        let rr = Arc::new(SimpleTy::Fun(
            Arc::new(SimpleTy::Real),
            Arc::new(SimpleTy::Real),
        ));
        let twice_ty = SimpleTy::Fun(
            rr.clone(),
            Arc::new(SimpleTy::Fun(
                Arc::new(SimpleTy::Real),
                Arc::new(SimpleTy::Real),
            )),
        );
        let mut found = false;
        p.root.walk(&mut |e| {
            if tm.get(e.id) == Some(&twice_ty) {
                found = true;
            }
        });
        assert!(found);
        assert_eq!(twice_ty.order(), 2);
    }

    #[test]
    fn rejects_applying_a_number() {
        let p = parse("let x = 1 in x 2").unwrap();
        let err = infer(&p).unwrap_err();
        assert_eq!(err.phase, Phase::Type);
    }

    #[test]
    fn rejects_non_ground_programs() {
        let p = parse("fn x -> x").unwrap();
        assert!(infer(&p).is_err());
    }

    #[test]
    fn rejects_unbound_variables() {
        let p = parse("x + 1").unwrap();
        let err = infer(&p).unwrap_err();
        assert!(err.message.contains("unbound"));
    }

    #[test]
    fn every_node_is_typed() {
        let p = parse("let g y = y * 2 in if g 1 <= 2 then sample else 0").unwrap();
        let tm = infer(&p).unwrap();
        let mut missing = 0;
        p.root.walk(&mut |e| {
            if tm.get(e.id).is_none() {
                missing += 1;
            }
        });
        assert_eq!(missing, 0);
        assert!(!tm.is_empty() && !tm.is_empty());
    }

    #[test]
    fn occurs_check_rejects_self_application() {
        // ω-style self application requires the infinite type a = a → b.
        let p = parse("(fn x -> x x) (fn x -> x x)").unwrap();
        let err = infer(&p).unwrap_err();
        assert!(err.message.contains("infinite type"));
    }
}
