//! Tokens of the SPCF surface syntax.

use std::fmt;

use crate::ast::Span;

/// A lexical token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// An identifier (variable, distribution or builtin name).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `in`
    In,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `fn`
    Fn,
    /// `sample`
    Sample,
    /// `score`
    Score,
    /// `observe`
    Observe,
    /// `from`
    From,
    /// `fail` — hard rejection, sugar for `score(0)`
    Fail,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Number(n) => write!(f, "number `{n}`"),
            Let => write!(f, "`let`"),
            Rec => write!(f, "`rec`"),
            In => write!(f, "`in`"),
            If => write!(f, "`if`"),
            Then => write!(f, "`then`"),
            Else => write!(f, "`else`"),
            Fn => write!(f, "`fn`"),
            Sample => write!(f, "`sample`"),
            Score => write!(f, "`score`"),
            Observe => write!(f, "`observe`"),
            From => write!(f, "`from`"),
            Fail => write!(f, "`fail`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Slash => write!(f, "`/`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            Comma => write!(f, "`,`"),
            Semi => write!(f, "`;`"),
            Eq => write!(f, "`=`"),
            Arrow => write!(f, "`->`"),
            Le => write!(f, "`<=`"),
            Lt => write!(f, "`<`"),
            Ge => write!(f, "`>=`"),
            Gt => write!(f, "`>`"),
            Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}
