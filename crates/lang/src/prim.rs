//! Primitive operations of SPCF.
//!
//! The paper requires primitive functions `f : R^{|f|} → R` that are
//! *boxwise continuous* and *interval separable* and that come with an
//! overapproximating interval lifting `f^I : I^{|f|} → I` (§3.1, §4.2).
//! This module provides both the concrete (`f64`) evaluation and an
//! interval lifting that is **exact** on every operation (the lifted range
//! equals the true image over the box, up to floating-point rounding),
//! which is what the completeness argument needs.
//!
//! Distribution pdfs and quantiles appear as primitives so that
//! `observe … from D` and `sample D(…)` desugar into core SPCF.

use gubpi_dist::{Beta, Cauchy, ContinuousDist, Exponential, Normal, Uniform};
use gubpi_interval::Interval;

/// A primitive operation together with its arity and interval lifting.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum PrimOp {
    /// Binary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// Binary multiplication.
    Mul,
    /// Binary division.
    Div,
    /// Unary negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Exponential `e^x`.
    Exp,
    /// Natural logarithm (`−∞` at and below 0).
    Ln,
    /// Square root (0 below 0).
    Sqrt,
    /// Logistic sigmoid `1/(1+e^{−x})`.
    Sigmoid,
    /// Floor function (boxwise continuous with unit boxes).
    Floor,
    /// `normal_pdf(μ, σ, x)`.
    NormalPdf,
    /// `uniform_pdf(a, b, x)`.
    UniformPdf,
    /// `beta_pdf(α, β, x)`.
    BetaPdf,
    /// `exponential_pdf(λ, x)`.
    ExponentialPdf,
    /// `cauchy_pdf(x₀, γ, x)`.
    CauchyPdf,
    /// Standard normal quantile `Φ⁻¹(u)`.
    NormalQuantile,
    /// Rate-1 exponential quantile `−ln(1−u)`.
    ExponentialQuantile,
    /// Standard Cauchy quantile `tan(π(u−1/2))`.
    CauchyQuantile,
    /// `beta_quantile(α, β, u)`.
    BetaQuantile,
}

impl PrimOp {
    /// Number of arguments `|f|`.
    pub fn arity(self) -> usize {
        use PrimOp::*;
        match self {
            Neg | Abs | Exp | Ln | Sqrt | Sigmoid | Floor | NormalQuantile
            | ExponentialQuantile | CauchyQuantile => 1,
            Add | Sub | Mul | Div | Min | Max | ExponentialPdf => 2,
            NormalPdf | UniformPdf | BetaPdf | CauchyPdf | BetaQuantile => 3,
        }
    }

    /// The surface-syntax name (as accepted by the parser).
    pub fn name(self) -> &'static str {
        use PrimOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Neg => "neg",
            Abs => "abs",
            Min => "min",
            Max => "max",
            Exp => "exp",
            Ln => "log",
            Sqrt => "sqrt",
            Sigmoid => "sigmoid",
            Floor => "floor",
            NormalPdf => "pdf_normal",
            UniformPdf => "pdf_uniform",
            BetaPdf => "pdf_beta",
            ExponentialPdf => "pdf_exponential",
            CauchyPdf => "pdf_cauchy",
            NormalQuantile => "qnormal",
            ExponentialQuantile => "qexponential",
            CauchyQuantile => "qcauchy",
            BetaQuantile => "qbeta",
        }
    }

    /// Looks a primitive up by its surface name.
    pub fn by_name(name: &str) -> Option<PrimOp> {
        use PrimOp::*;
        Some(match name {
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "div" => Div,
            "neg" => Neg,
            "abs" => Abs,
            "min" => Min,
            "max" => Max,
            "exp" => Exp,
            "log" => Ln,
            "sqrt" => Sqrt,
            "sigmoid" => Sigmoid,
            "floor" => Floor,
            "pdf_normal" => NormalPdf,
            "pdf_uniform" => UniformPdf,
            "pdf_beta" => BetaPdf,
            "pdf_exponential" => ExponentialPdf,
            "pdf_cauchy" => CauchyPdf,
            "qnormal" => NormalQuantile,
            "qexponential" => ExponentialQuantile,
            "qcauchy" => CauchyQuantile,
            "qbeta" => BetaQuantile,
            _ => return None,
        })
    }

    /// Concrete evaluation `f(args)`.
    ///
    /// Every primitive is **total** (§3.1 requires `f : R^{|f|} → R`).
    /// In particular, out-of-domain *runtime* distribution parameters —
    /// program-controlled values like the negative σ that
    /// `normal(0, sample - 0.5)` draws with positive probability — yield
    /// **zero density** rather than a panic: a `score` of such a pdf
    /// produces a zero-weight run, which is exactly how samplers and the
    /// guaranteed bounds treat that trace. (The interval liftings agree:
    /// possibly-invalid parameter ranges produce enclosures containing
    /// 0.) `qbeta` with invalid shapes degrades to the uniform quantile
    /// `u`, which its `[0, 1]` enclosure also covers.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()` (an arity error is a bug
    /// in the caller, never program-controlled).
    pub fn eval(self, args: &[f64]) -> f64 {
        assert_eq!(args.len(), self.arity(), "arity mismatch for {self:?}");
        use PrimOp::*;
        match self {
            Add => args[0] + args[1],
            Sub => args[0] - args[1],
            Mul => args[0] * args[1],
            Div => args[0] / args[1],
            Neg => -args[0],
            Abs => args[0].abs(),
            Min => args[0].min(args[1]),
            Max => args[0].max(args[1]),
            Exp => args[0].exp(),
            Ln => {
                if args[0] <= 0.0 {
                    f64::NEG_INFINITY
                } else {
                    args[0].ln()
                }
            }
            Sqrt => {
                if args[0] <= 0.0 {
                    0.0
                } else {
                    args[0].sqrt()
                }
            }
            Sigmoid => 1.0 / (1.0 + (-args[0]).exp()),
            Floor => args[0].floor(),
            NormalPdf => {
                if valid_scale_param(args[1]) && args[0].is_finite() {
                    Normal::new(args[0], args[1]).pdf(args[2])
                } else {
                    0.0
                }
            }
            UniformPdf => {
                if args[0].is_finite() && args[1].is_finite() && args[0] < args[1] {
                    Uniform::new(args[0], args[1]).pdf(args[2])
                } else {
                    0.0
                }
            }
            BetaPdf => {
                if valid_beta_shapes(args[0], args[1]) {
                    Beta::new(args[0], args[1]).pdf(args[2])
                } else {
                    0.0
                }
            }
            ExponentialPdf => {
                if valid_scale_param(args[0]) {
                    Exponential::new(args[0]).pdf(args[1])
                } else {
                    0.0
                }
            }
            CauchyPdf => {
                if valid_scale_param(args[1]) && args[0].is_finite() {
                    Cauchy::new(args[0], args[1]).pdf(args[2])
                } else {
                    0.0
                }
            }
            NormalQuantile => gubpi_dist::math::std_normal_quantile(args[0].clamp(0.0, 1.0)),
            ExponentialQuantile => Exponential::new(1.0).quantile(args[0].clamp(0.0, 1.0)),
            CauchyQuantile => Cauchy::new(0.0, 1.0).quantile(args[0].clamp(0.0, 1.0)),
            BetaQuantile => {
                let u = args[2].clamp(0.0, 1.0);
                if valid_beta_shapes(args[0], args[1]) {
                    Beta::new(args[0], args[1]).quantile(u)
                } else {
                    u // uniform fallback, inside the [0, 1] enclosure
                }
            }
        }
    }

    /// Interval lifting `f^I(args)` (§3.1): a superset of
    /// `{ f(x₁, …, x_n) | xᵢ ∈ argsᵢ }`, exact for point parameters.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`.
    pub fn eval_interval(self, args: &[Interval]) -> Interval {
        assert_eq!(args.len(), self.arity(), "arity mismatch for {self:?}");
        use PrimOp::*;
        match self {
            Add => args[0] + args[1],
            Sub => args[0] - args[1],
            Mul => args[0] * args[1],
            Div => args[0].div(args[1]),
            Neg => -args[0],
            Abs => args[0].abs(),
            Min => args[0].min_i(args[1]),
            Max => args[0].max_i(args[1]),
            Exp => args[0].exp(),
            Ln => args[0].ln(),
            Sqrt => args[0].sqrt(),
            Sigmoid => args[0].sigmoid(),
            Floor => args[0].map_increasing(f64::floor),
            NormalPdf => normal_pdf_interval(args[0], args[1], args[2]),
            UniformPdf => uniform_pdf_interval(args[0], args[1], args[2]),
            BetaPdf => beta_pdf_interval(args[0], args[1], args[2]),
            ExponentialPdf => exponential_pdf_interval(args[0], args[1]),
            CauchyPdf => cauchy_pdf_interval(args[0], args[1], args[2]),
            NormalQuantile => {
                let u = args[0].meet(Interval::UNIT).unwrap_or(Interval::ZERO);
                u.map_increasing(gubpi_dist::math::std_normal_quantile)
            }
            ExponentialQuantile => {
                let u = args[0].meet(Interval::UNIT).unwrap_or(Interval::ZERO);
                u.map_increasing(|p| Exponential::new(1.0).quantile(p))
            }
            CauchyQuantile => {
                let u = args[0].meet(Interval::UNIT).unwrap_or(Interval::ZERO);
                u.map_increasing(|p| Cauchy::new(0.0, 1.0).quantile(p))
            }
            BetaQuantile => {
                if args[0].is_point()
                    && args[1].is_point()
                    && valid_beta_shapes(args[0].lo(), args[1].lo())
                {
                    let d = Beta::new(args[0].lo(), args[1].lo());
                    let u = args[2].meet(Interval::UNIT).unwrap_or(Interval::ZERO);
                    u.map_increasing(|p| d.quantile(p))
                } else {
                    Interval::UNIT // sound: beta quantiles always lie in [0, 1]
                }
            }
        }
    }

    /// Is `f` a *linear* function of its arguments when the marked
    /// arguments are variables and the rest are constants? Used by the
    /// linear semantics (§6.4) to extract linear forms: `Add`, `Sub` and
    /// `Neg` are linear; `Mul`/`Div` are linear when one side is constant.
    pub fn preserves_linearity(self) -> bool {
        matches!(self, PrimOp::Add | PrimOp::Sub | PrimOp::Neg)
    }
}

/// Hull with the zero density contributed by out-of-domain scale
/// parameters: when the scale interval sticks out of `(0, ∞)`, some
/// refinements are invalid and concretely evaluate to 0, so the
/// enclosure's lower endpoint must drop to 0 (and an *entirely* invalid
/// range is exactly `[0, 0]`). Without this, the clamped enclosures
/// below would report a strictly positive guaranteed lower bound for
/// mass that the concrete semantics assigns zero weight — unsound.
fn hull_invalid_scale(scale: Interval, valid_range: Interval) -> Interval {
    if scale.hi() <= 0.0 {
        Interval::ZERO
    } else if scale.lo() <= 0.0 {
        Interval::new(0.0, valid_range.hi())
    } else {
        valid_range
    }
}

/// Exact range of `pdf_{Normal(μ, σ)}(x)` over interval-valued `μ, σ, x`
/// (zero density for out-of-domain σ, matching [`PrimOp::eval`]).
///
/// For fixed distance `d = |x − μ|`, the density `e^{−d²/2σ²}/(σ√2π)` is
/// unimodal in `σ` with mode `σ = d`; over `d` it is decreasing. The
/// extrema are therefore attained at the minimal/maximal distances between
/// the `x` and `μ` intervals and at a clamped critical `σ`.
fn normal_pdf_interval(mu: Interval, sigma: Interval, x: Interval) -> Interval {
    let s_lo = sigma.lo().max(f64::MIN_POSITIVE);
    let s_hi = sigma.hi().max(s_lo);
    // Minimal and maximal |x − μ| over the two boxes.
    let d_min = if x.intersects(&mu) {
        0.0
    } else if x.lo() > mu.hi() {
        x.lo() - mu.hi()
    } else {
        mu.lo() - x.hi()
    };
    let d_max = {
        let a = (x.hi() - mu.lo()).abs();
        let b = (mu.hi() - x.lo()).abs();
        a.max(b) // may be ∞ for unbounded inputs
    };
    // σ may be +∞ (unbounded scale interval): the density tends to 0.
    let pdf = |d: f64, s: f64| {
        if s.is_finite() {
            Normal::new(0.0, s).pdf(d)
        } else {
            0.0
        }
    };
    // Maximum: smallest distance, σ maximising at that distance.
    let s_star = d_min.clamp(s_lo, s_hi);
    let hi = if d_min == 0.0 {
        pdf(0.0, s_lo)
    } else {
        pdf(d_min, s_star)
    };
    // Minimum: largest distance; in σ the density at fixed d is unimodal,
    // so the minimum over σ is at an endpoint.
    let lo = if d_max.is_infinite() {
        0.0
    } else {
        pdf(d_max, s_lo).min(pdf(d_max, s_hi))
    };
    hull_invalid_scale(sigma, Interval::new(lo.min(hi), hi.max(lo)))
}

/// Range of `pdf_{Uniform(a, b)}(x)`; exact for point `a, b`.
fn uniform_pdf_interval(a: Interval, b: Interval, x: Interval) -> Interval {
    if a.is_point() && b.is_point() && a.is_finite() && b.is_finite() && a.lo() < b.lo() {
        Uniform::new(a.lo(), b.lo()).pdf_interval(x)
    } else {
        // Conservative: height ranges over 1/(b−a).
        let h = (b - a).recip().clamp_non_neg();
        Interval::new(0.0, h.hi())
    }
}

/// Is a scale-like parameter (σ, λ, γ) inside its distribution's domain?
/// Out-of-domain values mean zero density both concretely and in the
/// interval liftings.
fn valid_scale_param(scale: f64) -> bool {
    scale.is_finite() && scale > 0.0
}

/// Are `(α, β)` inside `Beta::new`'s domain? Out-of-domain shapes mean
/// zero density ([`PrimOp::eval`] stays total) and the sound `[0, ∞]` /
/// `[0, 1]` enclosures in the liftings.
fn valid_beta_shapes(alpha: f64, beta: f64) -> bool {
    alpha.is_finite() && beta.is_finite() && alpha > 0.0 && beta > 0.0
}

/// Range of `pdf_{Beta(α, β)}(x)`; exact for valid point parameters,
/// else `[0, ∞]`.
fn beta_pdf_interval(alpha: Interval, beta: Interval, x: Interval) -> Interval {
    if alpha.is_point() && beta.is_point() && valid_beta_shapes(alpha.lo(), beta.lo()) {
        Beta::new(alpha.lo(), beta.lo()).pdf_interval(x)
    } else {
        Interval::NON_NEG
    }
}

/// Exact range of `pdf_{Exp(λ)}(x) = λe^{−λx}` over interval `λ, x`.
fn exponential_pdf_interval(rate: Interval, x: Interval) -> Interval {
    let l_lo = rate.lo().max(f64::MIN_POSITIVE);
    let l_hi = rate.hi().max(l_lo);
    if x.hi() < 0.0 {
        return Interval::ZERO;
    }
    let x_lo = x.lo().max(0.0);
    // λ may be +∞ (unbounded rate interval): for t > 0 the density tends to 0.
    let g = |l: f64, t: f64| {
        if l.is_finite() {
            Exponential::new(l).pdf(t)
        } else {
            0.0
        }
    };
    // Max at smallest x; over λ the map λ ↦ λe^{−λx} peaks at λ = 1/x.
    let hi = if x_lo == 0.0 {
        l_hi // pdf(0) = λ
    } else {
        let l_star = (1.0 / x_lo).clamp(l_lo, l_hi);
        g(l_star, x_lo)
    };
    // Min at largest x, λ at an endpoint; 0 if x extends below 0 or to ∞.
    let lo = if x.lo() < 0.0 || x.hi().is_infinite() {
        0.0
    } else {
        g(l_lo, x.hi()).min(g(l_hi, x.hi()))
    };
    hull_invalid_scale(rate, Interval::new(lo.min(hi), hi.max(lo)))
}

/// Exact range of `pdf_{Cauchy(x₀, γ)}(x)` over interval parameters.
/// Same distance/scale analysis as the normal: density
/// `1/(πγ(1+(d/γ)²))` peaks at `d = 0` and, for fixed `d`, over `γ` at
/// `γ = d`.
fn cauchy_pdf_interval(x0: Interval, gamma: Interval, x: Interval) -> Interval {
    let g_lo = gamma.lo().max(f64::MIN_POSITIVE);
    let g_hi = gamma.hi().max(g_lo);
    let d_min = if x.intersects(&x0) {
        0.0
    } else if x.lo() > x0.hi() {
        x.lo() - x0.hi()
    } else {
        x0.lo() - x.hi()
    };
    let d_max = (x.hi() - x0.lo()).abs().max((x0.hi() - x.lo()).abs());
    // γ may be +∞ (unbounded scale interval): the density tends to 0.
    let pdf = |d: f64, g: f64| {
        if g.is_finite() {
            Cauchy::new(0.0, g).pdf(d)
        } else {
            0.0
        }
    };
    let hi = if d_min == 0.0 {
        pdf(0.0, g_lo)
    } else {
        pdf(d_min, d_min.clamp(g_lo, g_hi))
    };
    let lo = if d_max.is_infinite() {
        0.0
    } else {
        pdf(d_max, g_lo).min(pdf(d_max, g_hi))
    };
    hull_invalid_scale(gamma, Interval::new(lo.min(hi), hi.max(lo)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(r: f64) -> Interval {
        Interval::point(r)
    }

    #[test]
    fn arities_and_names_roundtrip() {
        use PrimOp::*;
        for op in [
            Add,
            Sub,
            Mul,
            Div,
            Neg,
            Abs,
            Min,
            Max,
            Exp,
            Ln,
            Sqrt,
            Sigmoid,
            Floor,
            NormalPdf,
            UniformPdf,
            BetaPdf,
            ExponentialPdf,
            CauchyPdf,
            NormalQuantile,
            ExponentialQuantile,
            CauchyQuantile,
            BetaQuantile,
        ] {
            assert_eq!(PrimOp::by_name(op.name()), Some(op));
            assert!(op.arity() >= 1 && op.arity() <= 3);
        }
        assert_eq!(PrimOp::by_name("nope"), None);
    }

    #[test]
    fn concrete_eval_basics() {
        assert_eq!(PrimOp::Add.eval(&[2.0, 3.0]), 5.0);
        assert_eq!(PrimOp::Sub.eval(&[2.0, 3.0]), -1.0);
        assert_eq!(PrimOp::Mul.eval(&[2.0, 3.0]), 6.0);
        assert_eq!(PrimOp::Min.eval(&[2.0, 3.0]), 2.0);
        assert_eq!(PrimOp::Max.eval(&[2.0, 3.0]), 3.0);
        assert_eq!(PrimOp::Neg.eval(&[2.0]), -2.0);
        assert_eq!(PrimOp::Abs.eval(&[-2.0]), 2.0);
        assert_eq!(PrimOp::Floor.eval(&[2.7]), 2.0);
        assert_eq!(PrimOp::Ln.eval(&[0.0]), f64::NEG_INFINITY);
        assert_eq!(PrimOp::Sqrt.eval(&[-1.0]), 0.0);
    }

    #[test]
    fn point_intervals_agree_with_concrete() {
        use PrimOp::*;
        for op in [Add, Sub, Mul, Min, Max] {
            let c = op.eval(&[0.3, 0.7]);
            let i = op.eval_interval(&[pt(0.3), pt(0.7)]);
            assert!(i.contains(c), "{op:?}");
            assert!(i.width() < 1e-12);
        }
        for op in [Neg, Abs, Exp, Sigmoid, Floor] {
            let c = op.eval(&[0.4]);
            let i = op.eval_interval(&[pt(0.4)]);
            assert!(i.contains(c), "{op:?}");
        }
    }

    #[test]
    fn normal_pdf_interval_point_params_matches_dist() {
        let n = Normal::new(1.1, 0.1);
        let x = Interval::new(0.0, 3.0);
        let got = PrimOp::NormalPdf.eval_interval(&[pt(1.1), pt(0.1), x]);
        let want = n.pdf_interval(x);
        assert!((got.lo() - want.lo()).abs() < 1e-12);
        assert!((got.hi() - want.hi()).abs() < 1e-12);
    }

    #[test]
    fn normal_pdf_interval_with_interval_mean() {
        // μ ∈ [0, 1], σ = 1, x = 5: distance ∈ [4, 5].
        let got = PrimOp::NormalPdf.eval_interval(&[Interval::new(0.0, 1.0), pt(1.0), pt(5.0)]);
        let n = Normal::standard();
        assert!((got.hi() - n.pdf(4.0)).abs() < 1e-14);
        assert!((got.lo() - n.pdf(5.0)).abs() < 1e-14);
    }

    #[test]
    fn normal_pdf_interval_sigma_interval_critical_point() {
        // d = 2 fixed, σ ∈ [1, 4]: the max over σ is at σ = d = 2.
        let got = PrimOp::NormalPdf.eval_interval(&[pt(0.0), Interval::new(1.0, 4.0), pt(2.0)]);
        let best = Normal::new(0.0, 2.0).pdf(2.0);
        assert!((got.hi() - best).abs() < 1e-14);
        let worst = Normal::new(0.0, 1.0)
            .pdf(2.0)
            .min(Normal::new(0.0, 4.0).pdf(2.0));
        assert!((got.lo() - worst).abs() < 1e-14);
    }

    #[test]
    fn exponential_pdf_interval_cases() {
        // λ ∈ [0.5, 2], x ∈ [1, 3].
        let got = PrimOp::ExponentialPdf
            .eval_interval(&[Interval::new(0.5, 2.0), Interval::new(1.0, 3.0)]);
        // max at x=1, λ* = 1 ∈ [0.5, 2] → e^{−1}
        assert!((got.hi() - (-1.0f64).exp()).abs() < 1e-14);
        // min at x=3: min(0.5e^{−1.5}, 2e^{−6})
        let want = (0.5 * (-1.5f64).exp()).min(2.0 * (-6.0f64).exp());
        assert!((got.lo() - want).abs() < 1e-14);
    }

    #[test]
    fn quantile_interval_lifting_is_monotone() {
        let q = PrimOp::NormalQuantile.eval_interval(&[Interval::new(0.25, 0.75)]);
        assert!(q.lo() < 0.0 && q.hi() > 0.0);
        assert!((q.lo() + q.hi()).abs() < 1e-12);
        // Full unit interval gives the whole line.
        let full = PrimOp::NormalQuantile.eval_interval(&[Interval::UNIT]);
        assert_eq!(full, Interval::REAL);
    }

    #[test]
    fn invalid_dist_params_fall_back_to_sound_enclosures() {
        // The interval liftings must stay total: out-of-domain parameters
        // (reachable from program-controlled values during analysis) give
        // the conservative enclosure instead of panicking.
        let bad_beta = PrimOp::BetaPdf.eval_interval(&[pt(-1.0), pt(1.0), Interval::UNIT]);
        assert_eq!(bad_beta, Interval::NON_NEG);
        let bad_beta_q = PrimOp::BetaQuantile.eval_interval(&[pt(0.0), pt(2.0), Interval::UNIT]);
        assert_eq!(bad_beta_q, Interval::UNIT);
        let bad_uniform = PrimOp::UniformPdf.eval_interval(&[pt(2.0), pt(1.0), Interval::UNIT]);
        assert!(bad_uniform.lo() >= 0.0);
        // Unbounded scale intervals must not reach the (finite-only)
        // constructors either.
        let unbounded_sigma =
            PrimOp::NormalPdf.eval_interval(&[pt(0.0), Interval::new(1.0, f64::INFINITY), pt(2.0)]);
        assert!(unbounded_sigma.lo() >= 0.0 && unbounded_sigma.hi().is_finite());
        let unbounded_rate = PrimOp::ExponentialPdf
            .eval_interval(&[Interval::new(1.0, f64::INFINITY), Interval::new(1.0, 2.0)]);
        assert!(unbounded_rate.lo() >= 0.0);
        let unbounded_gamma =
            PrimOp::CauchyPdf.eval_interval(&[pt(0.0), Interval::new(1.0, f64::INFINITY), pt(2.0)]);
        assert!(unbounded_gamma.lo() >= 0.0 && unbounded_gamma.hi().is_finite());
    }

    #[test]
    fn div_by_interval_containing_zero_is_whole_line() {
        let d = PrimOp::Div.eval_interval(&[pt(1.0), Interval::new(-1.0, 1.0)]);
        assert_eq!(d, Interval::REAL);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let _ = PrimOp::Add.eval(&[1.0]);
    }

    #[test]
    fn out_of_domain_dist_params_give_zero_density_not_a_panic() {
        // Negative σ (the `normal(0, sample - 0.5)` modeling error).
        assert_eq!(PrimOp::NormalPdf.eval(&[0.0, -0.5, 0.3]), 0.0);
        assert_eq!(PrimOp::NormalPdf.eval(&[0.0, 0.0, 0.3]), 0.0);
        assert_eq!(PrimOp::NormalPdf.eval(&[f64::INFINITY, 1.0, 0.3]), 0.0);
        // Invalid beta shapes: zero density; quantile degrades to u.
        assert_eq!(PrimOp::BetaPdf.eval(&[-1.0, 1.0, 0.5]), 0.0);
        assert_eq!(PrimOp::BetaPdf.eval(&[0.0, 2.0, 0.5]), 0.0);
        assert_eq!(PrimOp::BetaQuantile.eval(&[0.0, 2.0, 0.7]), 0.7);
        // Degenerate uniform, non-positive rate/scale.
        assert_eq!(PrimOp::UniformPdf.eval(&[2.0, 1.0, 1.5]), 0.0);
        assert_eq!(PrimOp::ExponentialPdf.eval(&[0.0, 1.0]), 0.0);
        assert_eq!(PrimOp::CauchyPdf.eval(&[0.0, -1.0, 0.0]), 0.0);
        // In-domain parameters are unaffected.
        assert!(PrimOp::NormalPdf.eval(&[0.0, 0.5, 0.3]) > 0.0);
    }

    #[test]
    fn invalid_scale_enclosures_contain_the_zero_density() {
        // Entirely invalid σ: concretely always 0, and the lifting is
        // exactly [0, 0] — a positive lower bound here would claim
        // guaranteed mass for traces the semantics assigns zero weight.
        let all_bad = PrimOp::NormalPdf.eval_interval(&[pt(0.0), pt(-0.5), pt(0.0)]);
        assert_eq!(all_bad, Interval::ZERO);
        assert_eq!(
            PrimOp::ExponentialPdf.eval_interval(&[pt(-1.0), pt(0.5)]),
            Interval::ZERO
        );
        assert_eq!(
            PrimOp::CauchyPdf.eval_interval(&[pt(0.0), pt(-2.0), pt(0.1)]),
            Interval::ZERO
        );
        // Partially invalid σ ∈ [−0.5, 0.5]: the enclosure keeps the
        // valid upper end but its lower endpoint drops to 0.
        let part = PrimOp::NormalPdf.eval_interval(&[pt(0.0), Interval::new(-0.5, 0.5), pt(0.0)]);
        assert_eq!(part.lo(), 0.0);
        assert!(part.hi() > 0.0);
        // Valid scales are untouched.
        let ok = PrimOp::NormalPdf.eval_interval(&[pt(0.0), pt(1.0), pt(0.0)]);
        assert!(ok.lo() > 0.0);
    }
}
