//! Error types for the SPCF front end.

use std::error::Error;
use std::fmt;

use crate::ast::Span;

/// An error produced while lexing, parsing or type-checking a program.
#[derive(Clone, Debug)]
pub struct LangError {
    /// Which phase rejected the program.
    pub phase: Phase,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
    /// Source location of the offending text.
    pub span: Span,
}

/// The front-end phase an error originated from.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Simple-type inference.
    Type,
}

impl LangError {
    /// Creates an error.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> LangError {
        LangError {
            phase,
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a line/column computed from `source`, in the
    /// style `3:14: parse error: expected ...`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start as usize);
        format!("{line}:{col}: {self}")
    }
}

/// Computes a 1-based (line, column) pair for a byte offset (also used
/// by lint renderers pointing into program source).
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= clamped {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex error",
            Phase::Parse => "parse error",
            Phase::Type => "type error",
        };
        write!(f, "{phase}: {}", self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line_and_column() {
        let src = "let x = 1 in\nbadness here";
        let err = LangError::new(Phase::Parse, "unexpected thing", Span::new(13, 20));
        assert_eq!(err.render(src), "2:1: parse error: unexpected thing");
    }

    #[test]
    fn display_is_lowercase_without_period() {
        let err = LangError::new(Phase::Type, "expected a function", Span::default());
        assert_eq!(err.to_string(), "type error: expected a function");
    }
}
