//! Cross-validation: big-step vs small-step vs interval semantics.
//!
//! * The environment-based big-step evaluator and the substitution-based
//!   small-step machine (Fig. 2) must agree on value and weight for any
//!   trace.
//! * The interval machine on the degenerate trace `⟨[r₁,r₁], …⟩` must
//!   produce exactly the concrete result (Lemma 3.1 at points).
//! * The interval machine on a widened trace must *contain* the concrete
//!   result (Lemma 3.1).

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::parse;
use gubpi_semantics::bigstep::run_on_trace;
use gubpi_semantics::interval::{eval_on_interval_trace, IntervalOptions};
use gubpi_semantics::smallstep::run_small_step;
use proptest::prelude::*;

/// Models with a fixed number of samples, used by several properties.
const MODELS: &[(&str, usize)] = &[
    ("sample + sample * 2", 2),
    ("if sample <= 0.5 then sample else 1 - sample", 2),
    ("let x = sample in score(x + 0.5); x * 3", 1),
    ("let f u = u * u in f (sample) + f (sample)", 2),
    ("observe sample from normal(0.5, 0.2); 1", 1),
    ("min(sample, sample) + abs(sample - 1)", 3),
    ("exp(sample) / (1 + exp(sample))", 2),
    (
        "let s = sample in if s <= 0.25 then s else if s <= 0.75 then 2 * s else 3 * s",
        1,
    ),
];

proptest! {
    #[test]
    fn bigstep_equals_smallstep(model_idx in 0usize..MODELS.len(),
                                raw in proptest::collection::vec(0.0f64..1.0, 8)) {
        let (src, n) = MODELS[model_idx];
        let trace = &raw[..n];
        let p = parse(src).unwrap();
        let big = run_on_trace(&p, trace).unwrap();
        let small = run_small_step(&p, trace, 100_000).unwrap();
        prop_assert!((big.value - small.value).abs() < 1e-12);
        let bw = big.weight();
        let sw = small.weight();
        prop_assert!((bw - sw).abs() <= 1e-12 * (1.0 + bw.abs()));
    }

    #[test]
    fn interval_on_point_trace_matches_concrete(model_idx in 0usize..MODELS.len(),
                                                raw in proptest::collection::vec(0.0f64..1.0, 8)) {
        let (src, n) = MODELS[model_idx];
        let trace = &raw[..n];
        let p = parse(src).unwrap();
        let concrete = run_on_trace(&p, trace).unwrap();
        let t = BoxN::new(trace.iter().map(|&r| Interval::point(r)).collect());
        let leaves = eval_on_interval_trace(&p, &t, IntervalOptions::default());
        // Some leaf must contain the concrete value & weight. The concrete
        // evaluator round-trips weights through log space, so compare with
        // a relative tolerance of a few ulps.
        let w = concrete.weight();
        let tol = |x: f64| 1e-13 * (1.0 + x.abs());
        prop_assert!(
            leaves.iter().any(|l| l.value.contains(concrete.value)
                && l.weight.lo() - tol(w) <= w
                && w <= l.weight.hi() + tol(w)),
            "no leaf contains value={} weight={w}; leaves={leaves:?}",
            concrete.value
        );
    }

    #[test]
    fn lemma_3_1_widened_traces_contain_concrete(model_idx in 0usize..MODELS.len(),
                                                 raw in proptest::collection::vec(0.01f64..0.99, 8),
                                                 eps in 0.001f64..0.2) {
        let (src, n) = MODELS[model_idx];
        let trace = &raw[..n];
        let p = parse(src).unwrap();
        let concrete = run_on_trace(&p, trace).unwrap();
        let t = BoxN::new(
            trace
                .iter()
                .map(|&r| Interval::new((r - eps).max(0.0), (r + eps).min(1.0)))
                .collect(),
        );
        let leaves = eval_on_interval_trace(&p, &t, IntervalOptions::default());
        let w = concrete.weight();
        // Lemma 3.1: wt(s) ∈ wtI(t) and val(s) ∈ valI(t) for s ⊳ t, where
        // the leaf union plays the role of the (nondeterministic) valI.
        prop_assert!(
            leaves.iter().any(|l| l.value.outward().contains(concrete.value)
                && l.weight.outward().contains(w)),
            "no leaf contains value={} weight={w}; leaves={leaves:?}",
            concrete.value
        );
    }
}
