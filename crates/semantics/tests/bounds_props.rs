//! Property tests for the interval-trace bound machinery (§3.3):
//! ordering, refinement monotonicity and grid coverage.

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::parse;
use gubpi_semantics::bounds::{covered_volume, lower_bound, pairwise_compatible, upper_bound};
use gubpi_semantics::interval::IntervalOptions;
use proptest::prelude::*;

const MODELS: &[(&str, usize)] = &[
    ("sample", 1),
    ("if sample <= 0.5 then sample else 1 - sample", 2),
    ("let x = sample in score(x + 0.25); x", 1),
    ("min(sample, sample)", 2),
];

fn grid(n_samples: usize, k: usize) -> Vec<BoxN> {
    BoxN::unit_cube(n_samples).grid(&vec![k; n_samples])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// lowerBd ≤ upperBd for any query on a compatible exhaustive grid.
    #[test]
    fn lower_never_exceeds_upper(model_idx in 0usize..MODELS.len(),
                                 a in -0.5f64..1.5, w in 0.05f64..1.0,
                                 k in 2usize..6) {
        let (src, n) = MODELS[model_idx];
        let p = parse(src).unwrap();
        let traces = grid(n, k);
        prop_assert!(pairwise_compatible(&traces));
        prop_assert!((covered_volume(&traces) - 1.0).abs() < 1e-9);
        let u = Interval::new(a, a + w);
        let o = IntervalOptions::default();
        let lo = lower_bound(&p, &traces, u, o);
        let hi = upper_bound(&p, &traces, u, o);
        prop_assert!(lo <= hi + 1e-12, "{src}: [{lo}, {hi}]");
        prop_assert!(lo >= 0.0);
    }

    /// Refining the grid never loosens either bound (the premise of the
    /// completeness theorem's limit).
    #[test]
    fn grid_refinement_is_monotone(model_idx in 0usize..MODELS.len(),
                                   a in 0.0f64..0.8, w in 0.1f64..0.6) {
        let (src, n) = MODELS[model_idx];
        let p = parse(src).unwrap();
        let u = Interval::new(a, a + w);
        let o = IntervalOptions::default();
        let coarse = grid(n, 2);
        let fine = grid(n, 4); // every coarse cell splits exactly in half
        let (cl, ch) = (lower_bound(&p, &coarse, u, o), upper_bound(&p, &coarse, u, o));
        let (fl, fh) = (lower_bound(&p, &fine, u, o), upper_bound(&p, &fine, u, o));
        prop_assert!(fl >= cl - 1e-12, "{src}: lower regressed {cl} -> {fl}");
        prop_assert!(fh <= ch + 1e-12, "{src}: upper regressed {ch} -> {fh}");
    }

    /// Dropping traces from a compatible set can only lower the lower
    /// bound (superadditivity of lowerBd).
    #[test]
    fn lower_bound_is_monotone_in_the_trace_set(model_idx in 0usize..MODELS.len(),
                                                keep in 1usize..4) {
        let (src, n) = MODELS[model_idx];
        let p = parse(src).unwrap();
        let all = grid(n, 4);
        let some: Vec<BoxN> = all.iter().take(keep * all.len() / 4).cloned().collect();
        let u = Interval::new(0.0, 1.0);
        let o = IntervalOptions::default();
        prop_assert!(lower_bound(&p, &some, u, o) <= lower_bound(&p, &all, u, o) + 1e-12);
    }
}
