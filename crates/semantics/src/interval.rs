//! Interval SPCF evaluation `→I` (Fig. 3 + Appendix A.4).
//!
//! Programs are evaluated on *interval traces* `t ∈ ⋃_n I_{[0,1]}^n`
//! (represented as [`BoxN`]): `sample` pops the next interval, primitives
//! evaluate in interval arithmetic, and conditionals whose guard interval
//! straddles 0 take **both** branches with the weight multiplied by
//! `[0, 1]` (the implementation strategy of Appendix A.4). The evaluator
//! therefore returns a *set* of leaves.
//!
//! Leaves that get stuck, run out of fuel, or fail to consume the trace
//! exactly report the paper's "otherwise" values `wtI = [0, ∞]`,
//! `valI = [−∞, ∞]`.

use std::rc::Rc;

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::{Expr, ExprKind, Name, Program};

/// An interval runtime value.
#[derive(Clone)]
pub enum IValue {
    /// A real interval (interval literals `[a, b]`).
    Interval(Interval),
    /// A lambda closure.
    Closure {
        /// Parameter name.
        param: Name,
        /// Body (shared).
        body: Rc<Expr>,
        /// Captured environment.
        env: IEnv,
    },
    /// A recursive closure.
    FixClosure {
        /// Recursion variable.
        fname: Name,
        /// Parameter name.
        param: Name,
        /// Body (shared).
        body: Rc<Expr>,
        /// Captured environment.
        env: IEnv,
    },
}

impl std::fmt::Debug for IValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IValue::Interval(i) => write!(f, "{i:?}"),
            IValue::Closure { param, .. } => write!(f, "<closure λ{param}>"),
            IValue::FixClosure { fname, param, .. } => write!(f, "<fix μ{fname} {param}>"),
        }
    }
}

/// Persistent environment of interval values.
#[derive(Clone, Default)]
pub struct IEnv(Option<Rc<INode>>);

struct INode {
    name: Name,
    value: IValue,
    rest: IEnv,
}

impl IEnv {
    /// The empty environment.
    pub fn empty() -> IEnv {
        IEnv(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Name, value: IValue) -> IEnv {
        IEnv(Some(Rc::new(INode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    /// Innermost-first lookup.
    pub fn lookup(&self, name: &str) -> Option<&IValue> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &*node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// One leaf of the (nondeterministic) interval reduction.
#[derive(Clone, Debug)]
pub struct Leaf {
    /// `valI` — interval bound on the returned value.
    pub value: Interval,
    /// `wtI` — interval bound on the weight.
    pub weight: Interval,
    /// Did the leaf terminate cleanly (value reached, trace consumed)?
    pub terminated: bool,
}

impl Leaf {
    fn diverged() -> Leaf {
        Leaf {
            value: Interval::REAL,
            weight: Interval::NON_NEG,
            terminated: false,
        }
    }
}

/// Options for interval evaluation.
#[derive(Copy, Clone, Debug)]
pub struct IntervalOptions {
    /// Evaluation fuel per branch.
    pub fuel: u64,
    /// Cap on the number of leaves (guards blow-up on ambiguous guards).
    pub max_leaves: usize,
    /// Maximum evaluator recursion depth (protects the Rust call stack).
    pub max_depth: u32,
}

impl Default for IntervalOptions {
    fn default() -> IntervalOptions {
        IntervalOptions {
            fuel: 1_000_000,
            max_leaves: 4096,
            max_depth: 2_000,
        }
    }
}

/// Evaluates `program` on the interval trace `t`, returning all reachable
/// leaves (Fig. 3 with the both-branch rule of Appendix A.4).
pub fn eval_on_interval_trace(program: &Program, t: &BoxN, opts: IntervalOptions) -> Vec<Leaf> {
    let mut machine = Machine {
        trace: t,
        opts,
        depth: 0,
        leaves: Vec::new(),
    };
    let state = IState {
        pos: 0,
        weight: Interval::ONE,
        fuel: opts.fuel,
    };
    let results = machine.eval(&program.root, &IEnv::empty(), state);
    for (v, st) in results {
        if machine.leaves.len() >= opts.max_leaves {
            machine.leaves.push(Leaf::diverged());
            break;
        }
        match v {
            Some(IValue::Interval(value)) if st.pos == t.dim() => machine.leaves.push(Leaf {
                value,
                weight: st.weight,
                terminated: true,
            }),
            // Trace not consumed / closure result / divergence marker.
            _ => machine.leaves.push(Leaf::diverged()),
        }
    }
    machine.leaves
}

#[derive(Clone, Copy)]
struct IState {
    pos: usize,
    weight: Interval,
    fuel: u64,
}

struct Machine<'a> {
    trace: &'a BoxN,
    opts: IntervalOptions,
    depth: u32,
    leaves: Vec<Leaf>,
}

/// Evaluation result per branch: `None` marks divergence/stuckness.
type Branches = Vec<(Option<IValue>, IState)>;

impl Machine<'_> {
    fn eval(&mut self, e: &Expr, env: &IEnv, st: IState) -> Branches {
        self.depth += 1;
        let r = if self.depth > self.opts.max_depth {
            vec![(None, st)]
        } else {
            self.eval_inner(e, env, st)
        };
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, e: &Expr, env: &IEnv, mut st: IState) -> Branches {
        if st.fuel == 0 {
            return vec![(None, st)];
        }
        st.fuel -= 1;
        match &e.kind {
            ExprKind::Var(x) => match env.lookup(x) {
                Some(v) => vec![(Some(v.clone()), st)],
                None => vec![(None, st)],
            },
            ExprKind::Const(r) => vec![(Some(IValue::Interval(Interval::point(*r))), st)],
            ExprKind::Lam(param, body) => vec![(
                Some(IValue::Closure {
                    param: param.clone(),
                    body: Rc::new((**body).clone()),
                    env: env.clone(),
                }),
                st,
            )],
            ExprKind::Fix(fname, param, body) => vec![(
                Some(IValue::FixClosure {
                    fname: fname.clone(),
                    param: param.clone(),
                    body: Rc::new((**body).clone()),
                    env: env.clone(),
                }),
                st,
            )],
            ExprKind::Sample => {
                if st.pos < self.trace.dim() {
                    let iv = self.trace[st.pos];
                    st.pos += 1;
                    vec![(Some(IValue::Interval(iv)), st)]
                } else {
                    vec![(None, st)] // trace exhausted
                }
            }
            ExprKind::App(f, a) => {
                let fs = self.eval(f, env, st);
                self.flat_map(fs, |m, fv, st1| {
                    let args = m.eval(a, env, st1);
                    m.flat_map(args, |m, av, st2| match fv.clone() {
                        IValue::Closure { param, body, env } => {
                            let env2 = env.bind(param, av);
                            m.eval(&body, &env2, st2)
                        }
                        IValue::FixClosure {
                            fname,
                            param,
                            body,
                            env,
                        } => {
                            let rec = IValue::FixClosure {
                                fname: fname.clone(),
                                param: param.clone(),
                                body: body.clone(),
                                env: env.clone(),
                            };
                            let env2 = env.bind(fname, rec).bind(param, av);
                            m.eval(&body, &env2, st2)
                        }
                        IValue::Interval(_) => vec![(None, st2)],
                    })
                })
            }
            ExprKind::If(c, t, els) => {
                let cs = self.eval(c, env, st);
                self.flat_map(cs, |m, cv, st1| {
                    let guard = match cv {
                        IValue::Interval(i) => i,
                        _ => return vec![(None, st1)],
                    };
                    if guard.hi() <= 0.0 {
                        m.eval(t, env, st1)
                    } else if guard.lo() > 0.0 {
                        m.eval(els, env, st1)
                    } else {
                        // Appendix A.4: take both branches, weight ×I [0,1].
                        let mut damp = st1;
                        damp.weight = damp.weight * Interval::UNIT;
                        let mut out = m.eval(t, env, damp);
                        out.extend(m.eval(els, env, damp));
                        out
                    }
                })
            }
            ExprKind::Prim(op, args) => {
                let mut acc: Branches = vec![(Some(IValue::Interval(Interval::ZERO)), st)];
                let mut vals: Vec<Branches> = Vec::new();
                // Evaluate arguments left-to-right, threading state.
                // Start from a single-branch accumulator carrying arg values.
                let mut partial: Vec<(Vec<Interval>, IState)> = vec![(Vec::new(), st)];
                for a in args {
                    let mut next: Vec<(Vec<Interval>, IState)> = Vec::new();
                    for (prefix, stp) in partial {
                        for (v, stn) in self.eval(a, env, stp) {
                            match v {
                                Some(IValue::Interval(iv)) => {
                                    let mut p2 = prefix.clone();
                                    p2.push(iv);
                                    next.push((p2, stn));
                                }
                                _ => {
                                    // Divergent argument: record a leaf now.
                                    self.leaves.push(Leaf::diverged());
                                }
                            }
                        }
                    }
                    partial = next;
                }
                acc.clear();
                vals.clear();
                for (argv, stn) in partial {
                    // Endpoint arithmetic rounds to nearest, matching the
                    // original GuBPI implementation (and our concrete f64
                    // reference semantics). Callers wanting certification
                    // against exact real arithmetic can outward-round the
                    // final bounds.
                    let out = op.eval_interval(&argv);
                    acc.push((Some(IValue::Interval(out)), stn));
                }
                acc
            }
            ExprKind::Score(mexp) => {
                let ms = self.eval(mexp, env, st);
                self.flat_map(ms, |_m, mv, mut st1| {
                    let iv = match mv {
                        IValue::Interval(i) => i,
                        _ => return vec![(None, st1)],
                    };
                    if iv.hi() < 0.0 {
                        // Every refinement is stuck: concrete weight 0.
                        st1.weight = Interval::ZERO;
                        return vec![(Some(IValue::Interval(iv)), st1)];
                    }
                    // Straddling 0: refinements with negative scores are
                    // stuck (contribute weight 0), so widen the factor down
                    // to 0 — sound for both bounds.
                    let factor = iv.clamp_non_neg();
                    let factor = if iv.lo() < 0.0 {
                        factor.join(Interval::ZERO)
                    } else {
                        factor
                    };
                    st1.weight = st1.weight * factor;
                    vec![(Some(IValue::Interval(factor)), st1)]
                })
            }
        }
    }

    /// Monadic bind over branch sets, recording divergent branches as
    /// leaves immediately.
    fn flat_map(
        &mut self,
        branches: Branches,
        mut f: impl FnMut(&mut Self, IValue, IState) -> Branches,
    ) -> Branches {
        let mut out = Branches::new();
        for (v, st) in branches {
            if self.leaves.len() + out.len() > self.opts.max_leaves {
                out.push((None, st));
                continue;
            }
            match v {
                Some(v) => out.extend(f(self, v, st)),
                None => out.push((None, st)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::parse;

    fn eval(src: &str, dims: &[(f64, f64)]) -> Vec<Leaf> {
        let t = BoxN::new(dims.iter().map(|&(a, b)| Interval::new(a, b)).collect());
        eval_on_interval_trace(&parse(src).unwrap(), &t, IntervalOptions::default())
    }

    #[test]
    fn deterministic_program_single_leaf() {
        let leaves = eval("score(2); 1 + 2", &[]);
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].terminated);
        assert!(leaves[0].value.contains(3.0));
        assert!(leaves[0].weight.contains(2.0));
    }

    #[test]
    fn sample_pops_interval() {
        let leaves = eval("3 * sample", &[(0.0, 0.5)]);
        assert_eq!(leaves.len(), 1);
        let v = leaves[0].value;
        assert!(v.lo() <= 0.0 && v.hi() >= 1.5 && v.hi() < 1.5001);
    }

    #[test]
    fn decided_branch_takes_one_path() {
        // guard = sample − 0.5 over [0, 0.4]: hi ≤ 0 → then-branch only.
        let leaves = eval("if sample <= 0.5 then 1 else 2", &[(0.0, 0.4)]);
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].value.contains(1.0));
        assert!(!leaves[0].value.contains(2.0));
    }

    #[test]
    fn ambiguous_branch_takes_both_with_dampened_weight() {
        let leaves = eval("score(4); if sample <= 0.5 then 1 else 2", &[(0.0, 1.0)]);
        assert_eq!(leaves.len(), 2);
        for l in &leaves {
            assert!(l.terminated);
            // weight 4 × [0,1] = [0,4]
            assert_eq!(l.weight.lo(), 0.0);
            assert!((l.weight.hi() - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_mismatch_diverges() {
        // extra dimension: not consumed
        let leaves = eval("1", &[(0.0, 1.0)]);
        assert_eq!(leaves.len(), 1);
        assert!(!leaves[0].terminated);
        assert_eq!(leaves[0].weight, Interval::NON_NEG);
        // missing dimension: exhausted
        let leaves = eval("sample", &[]);
        assert!(!leaves[0].terminated);
    }

    #[test]
    fn recursion_with_decided_guards_terminates() {
        let src = "let rec walk x = if x <= 0 then 0 else walk (x - 1) in walk 2";
        let leaves = eval(src, &[]);
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].terminated);
        assert!(leaves[0].value.contains(0.0));
    }

    #[test]
    fn unbounded_recursion_on_wide_interval_hits_leaf_cap() {
        // walk on [0,1] keeps branching; the cap must keep this finite and
        // produce at least one divergent leaf.
        let src = "let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1";
        let t = BoxN::new(vec![Interval::new(0.0, 1.0); 3]);
        let opts = IntervalOptions {
            fuel: 100_000,
            max_leaves: 64,
            ..IntervalOptions::default()
        };
        let leaves = eval_on_interval_trace(&parse(src).unwrap(), &t, opts);
        assert!(!leaves.is_empty());
        assert!(leaves.iter().any(|l| !l.terminated));
    }

    #[test]
    fn score_on_negative_interval_zeroes_weight() {
        let leaves = eval("score(0 - 1); 5", &[]);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].weight, Interval::ZERO);
    }

    #[test]
    fn example_5_2_fixpoint_weight_is_one() {
        // The pedestrian's walk carries no score: any terminating leaf has
        // weight within [1, 1] (possibly dampened to [0, 1] by ambiguity).
        let src = "
            let rec walk x =
              if x <= 0 then 0 else
                let step = sample uniform(0, 1) in
                if sample <= 0.5 then step + walk (x + step)
                else step + walk (x - step)
            in walk 0";
        let leaves = eval(src, &[]);
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].terminated);
        assert!(leaves[0].weight.contains(1.0));
    }
}
