//! Lower/upper bounds on `⟦P⟧(U)` from finite sets of interval traces
//! (§3.3 and Appendix A.4 of the paper).
//!
//! Given a finite, compatible set `T` of interval traces,
//!
//! ```text
//! lowerBd_P^T(U) = Σ_{t∈T} Σ_{leaves} vol(t) · min wtI · [valI ⊆ U]
//! upperBd_P^T(U) = Σ_{t∈T} Σ_{leaves} vol(t) · sup wtI · [valI ∩ U ≠ ∅]
//! ```
//!
//! where the inner sums range over the leaves of the nondeterministic
//! interval reduction (Appendix A.4). Lower bounds are sound for
//! compatible `T`; upper bounds additionally require `T` to be exhaustive.
//! For *finite* `T` exhaustivity can be checked exactly — see
//! [`covered_volume`].

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::Program;

use crate::interval::{eval_on_interval_trace, IntervalOptions, Leaf};

/// Accumulates per-trace contributions to both bounds at once.
#[derive(Clone, Debug, Default)]
pub struct BoundAccumulator {
    /// Running lower bound.
    pub lower: f64,
    /// Running upper bound.
    pub upper: f64,
}

impl BoundAccumulator {
    /// Adds the contribution of one interval trace's leaves.
    pub fn add(&mut self, volume: f64, leaves: &[Leaf], u: Interval) {
        for leaf in leaves {
            if leaf.value.subset_of(&u) && leaf.terminated {
                self.lower += volume * leaf.weight.lo();
            }
            if leaf.value.intersects(&u) {
                self.upper += volume * leaf.weight.hi();
            }
        }
    }
}

/// `lowerBd_P^T(U)` for a finite compatible set of interval traces.
///
/// # Panics
///
/// Panics (in debug builds) if `traces` is not pairwise compatible —
/// incompatible sets double-count and the bound would be unsound.
pub fn lower_bound(program: &Program, traces: &[BoxN], u: Interval, opts: IntervalOptions) -> f64 {
    debug_assert!(pairwise_compatible(traces), "trace set must be compatible");
    let mut acc = 0.0;
    for t in traces {
        for leaf in eval_on_interval_trace(program, t, opts) {
            if leaf.terminated && leaf.value.subset_of(&u) {
                acc += t.volume() * leaf.weight.lo();
            }
        }
    }
    acc
}

/// `upperBd_P^T(U)`; sound when `traces` is exhaustive (check with
/// [`covered_volume`] ≈ 1 for the explored prefix length).
pub fn upper_bound(program: &Program, traces: &[BoxN], u: Interval, opts: IntervalOptions) -> f64 {
    let mut acc = 0.0;
    for t in traces {
        for leaf in eval_on_interval_trace(program, t, opts) {
            if leaf.value.intersects(&u) {
                acc += t.volume() * leaf.weight.hi();
            }
        }
    }
    acc
}

/// Are the traces pairwise compatible (§3.3)?
pub fn pairwise_compatible(traces: &[BoxN]) -> bool {
    for (i, a) in traces.iter().enumerate() {
        for b in &traces[i + 1..] {
            if !a.compatible(b) {
                return false;
            }
        }
    }
    true
}

/// The Lebesgue measure of `⋃_t cover(t)` restricted to `[0,1]^N`, where
/// `N` is the longest trace length: the volume of the union of the
/// cylinders `L(t) × [0,1]^{N−n}`.
///
/// A finite trace set is *exhaustive up to depth `N`* iff this equals 1.
/// Computed exactly by sweeping the grid induced by all interval
/// endpoints; exponential in `N`, intended for tests and small analyses.
pub fn covered_volume(traces: &[BoxN]) -> f64 {
    let n = traces.iter().map(BoxN::dim).max().unwrap_or(0);
    if n == 0 {
        return if traces.is_empty() { 0.0 } else { 1.0 };
    }
    // Collect cut points per dimension.
    let mut cuts: Vec<Vec<f64>> = vec![vec![0.0, 1.0]; n];
    for t in traces {
        for (d, iv) in t.intervals().iter().enumerate() {
            cuts[d].push(iv.lo().clamp(0.0, 1.0));
            cuts[d].push(iv.hi().clamp(0.0, 1.0));
        }
    }
    for c in &mut cuts {
        c.sort_by(f64::total_cmp);
        c.dedup();
    }
    // Enumerate grid cells by index vector.
    let sizes: Vec<usize> = cuts.iter().map(|c| c.len() - 1).collect();
    let mut idx = vec![0usize; n];
    let mut covered = 0.0;
    'outer: loop {
        // Cell midpoint & volume.
        let mut vol = 1.0;
        let mut mid = Vec::with_capacity(n);
        for d in 0..n {
            let lo = cuts[d][idx[d]];
            let hi = cuts[d][idx[d] + 1];
            vol *= hi - lo;
            mid.push(0.5 * (lo + hi));
        }
        if vol > 0.0 {
            let is_covered = traces.iter().any(|t| {
                t.intervals()
                    .iter()
                    .zip(&mid)
                    .all(|(iv, &m)| iv.contains(m))
            });
            if is_covered {
                covered += vol;
            }
        }
        // Advance the index vector.
        for d in 0..n {
            idx[d] += 1;
            if idx[d] < sizes[d] {
                continue 'outer;
            }
            idx[d] = 0;
        }
        break;
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::parse;

    fn tr(dims: &[(f64, f64)]) -> BoxN {
        BoxN::new(dims.iter().map(|&(a, b)| Interval::new(a, b)).collect())
    }

    fn grid1(n: usize) -> Vec<BoxN> {
        Interval::UNIT
            .split(n)
            .into_iter()
            .map(|i| BoxN::new(vec![i]))
            .collect()
    }

    #[test]
    fn example_3_1_coverage() {
        // (i) {⟨[0,1],[0,0.6]⟩} is not exhaustive.
        let t1 = vec![tr(&[(0.0, 1.0), (0.0, 0.6)])];
        assert!(covered_volume(&t1) < 1.0);
        // (ii) {⟨[0,0.6]⟩, ⟨[0.3,1]⟩} is exhaustive but not compatible.
        let t2 = vec![tr(&[(0.0, 0.6)]), tr(&[(0.3, 1.0)])];
        assert!((covered_volume(&t2) - 1.0).abs() < 1e-12);
        assert!(!pairwise_compatible(&t2));
        // A proper partition is both.
        let t3 = grid1(4);
        assert!((covered_volume(&t3) - 1.0).abs() < 1e-12);
        assert!(pairwise_compatible(&t3));
    }

    #[test]
    fn bounds_sandwich_uniform_probability() {
        // P = sample; ⟦P⟧([0, 0.5]) = 0.5.
        let p = parse("sample").unwrap();
        let traces = grid1(8);
        let u = Interval::new(0.0, 0.5);
        let lo = lower_bound(&p, &traces, u, IntervalOptions::default());
        let hi = upper_bound(&p, &traces, u, IntervalOptions::default());
        assert!(lo <= 0.5 + 1e-12 && 0.5 <= hi + 1e-12);
        assert!(
            (hi - lo) < 0.2,
            "8 splits give tight bounds, got [{lo}, {hi}]"
        );
    }

    #[test]
    fn refinement_tightens_bounds() {
        let p = parse("if sample <= 0.5 then sample else 1 - sample").unwrap();
        let u = Interval::new(0.0, 0.25);
        let coarse: Vec<BoxN> = BoxN::unit_cube(2).grid(&[2, 2]);
        let fine: Vec<BoxN> = BoxN::unit_cube(2).grid(&[8, 8]);
        let o = IntervalOptions::default();
        let (cl, cu) = (
            lower_bound(&p, &coarse, u, o),
            upper_bound(&p, &coarse, u, o),
        );
        let (fl, fu) = (lower_bound(&p, &fine, u, o), upper_bound(&p, &fine, u, o));
        assert!(fl >= cl - 1e-12);
        assert!(fu <= cu + 1e-12);
        // True probability is 0.25; check the sandwich.
        assert!(fl <= 0.25 + 1e-12 && 0.25 <= fu + 1e-12);
    }

    #[test]
    fn score_scales_bounds() {
        let p = parse("score(2); sample").unwrap();
        let traces = grid1(4);
        let u = Interval::UNIT;
        let o = IntervalOptions::default();
        let lo = lower_bound(&p, &traces, u, o);
        let hi = upper_bound(&p, &traces, u, o);
        assert!((lo - 2.0).abs() < 1e-9 && (hi - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weight_dependent_on_sample_needs_splitting() {
        // ⟦score(sample); sample⟧(R) = ∫ x dx = 0.5
        let p = parse("let x = sample in score(x); x").unwrap();
        let o = IntervalOptions::default();
        for n in [2usize, 4, 16] {
            let traces = grid1(n);
            let lo = lower_bound(&p, &traces, Interval::UNIT, o);
            let hi = upper_bound(&p, &traces, Interval::UNIT, o);
            assert!(lo <= 0.5 && 0.5 <= hi, "n={n}: [{lo}, {hi}]");
            // Riemann-style convergence: gap = 1/n.
            assert!((hi - lo - 1.0 / n as f64).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn accumulator_matches_functions() {
        let p = parse("sample").unwrap();
        let traces = grid1(4);
        let u = Interval::new(0.25, 0.75);
        let o = IntervalOptions::default();
        let mut acc = BoundAccumulator::default();
        for t in &traces {
            let leaves = eval_on_interval_trace(&p, t, o);
            acc.add(t.volume(), &leaves, u);
        }
        assert!((acc.lower - lower_bound(&p, &traces, u, o)).abs() < 1e-12);
        assert!((acc.upper - upper_bound(&p, &traces, u, o)).abs() < 1e-12);
    }
}
