//! Substitution-based small-step machine (Fig. 2 of the paper).
//!
//! Faithful to the paper's call-by-value reduction `(M, s, w) → (M', s',
//! w')`: redexes are found under evaluation contexts
//! `E ::= [] | E M | V E | if(E, N, P) | f(r…, E, M…) | score(E)` and each
//! [`step`] performs exactly one rule from Fig. 2. Substitution is naive —
//! sound here because in the reduction of a closed program every
//! substituted value is itself closed.
//!
//! This machine exists for fidelity and cross-validation (the big-step
//! evaluator in [`crate::bigstep`] is the fast path); tests assert both
//! agree on value and weight for the whole model zoo.

use gubpi_lang::{Expr, ExprKind, Name, Program};

use crate::bigstep::{EvalError, Outcome};

/// A small-step machine configuration `(M, s, w)`.
#[derive(Clone, Debug)]
pub struct Config {
    /// The current term.
    pub term: Expr,
    /// The remaining trace (paper: the trace is consumed from the front).
    pub trace: Vec<f64>,
    /// The accumulated weight `w`.
    pub weight: f64,
    /// Steps taken so far.
    pub steps: u64,
}

impl Config {
    /// Initial configuration `(P, s, 1)`.
    pub fn initial(program: &Program, trace: &[f64]) -> Config {
        Config {
            term: program.root.clone(),
            trace: trace.to_vec(),
            weight: 1.0,
            steps: 0,
        }
    }

    /// Has the machine reached a value?
    pub fn is_terminal(&self) -> bool {
        self.term.is_value()
    }
}

/// Performs one reduction step; returns `Ok(true)` if a step was taken and
/// `Ok(false)` at a value.
///
/// # Errors
///
/// Returns [`EvalError`] when the configuration is stuck (negative score,
/// exhausted trace, runtime type error).
pub fn step(cfg: &mut Config) -> Result<bool, EvalError> {
    if cfg.term.is_value() {
        return Ok(false);
    }
    let term = std::mem::replace(&mut cfg.term, dummy());
    let reduced = reduce(term, cfg)?;
    cfg.term = reduced;
    cfg.steps += 1;
    Ok(true)
}

/// Runs the machine to termination.
///
/// # Errors
///
/// Propagates stuck configurations; `max_steps` guards divergence.
pub fn run_small_step(
    program: &Program,
    trace: &[f64],
    max_steps: u64,
) -> Result<Outcome, EvalError> {
    let mut cfg = Config::initial(program, trace);
    while step(&mut cfg)? {
        if cfg.steps > max_steps {
            return Err(EvalError::OutOfFuel);
        }
    }
    if !cfg.trace.is_empty() {
        return Err(EvalError::TraceNotConsumed);
    }
    match cfg.term.kind {
        ExprKind::Const(value) => Ok(Outcome {
            value,
            log_weight: cfg.weight.ln(),
            trace: trace.to_vec(),
        }),
        other => Err(EvalError::Stuck(format!(
            "terminated at non-real value {other:?}"
        ))),
    }
}

fn dummy() -> Expr {
    Expr {
        id: gubpi_lang::NodeId(u32::MAX),
        span: gubpi_lang::Span::default(),
        kind: ExprKind::Const(f64::NAN),
    }
}

/// Reduces the leftmost-innermost redex of `e` (one step).
fn reduce(e: Expr, st: &mut Config) -> Result<Expr, EvalError> {
    let Expr { id, span, kind } = e;
    let rebuild = |kind| Expr { id, span, kind };
    match kind {
        // ---- redex or descend-into-function-position --------------------
        ExprKind::App(f, a) => {
            if !f.is_value() {
                let f2 = reduce(*f, st)?;
                return Ok(rebuild(ExprKind::App(Box::new(f2), a)));
            }
            if !a.is_value() {
                let a2 = reduce(*a, st)?;
                return Ok(rebuild(ExprKind::App(f, Box::new(a2))));
            }
            match f.kind {
                ExprKind::Lam(x, body) => Ok(subst(*body, &x, &a)),
                ExprKind::Fix(fname, x, body) => {
                    // (μφ x. M) V → M[V/x, (μφ x. M)/φ]
                    let fix_val = Expr {
                        id,
                        span,
                        kind: ExprKind::Fix(fname.clone(), x.clone(), body.clone()),
                    };
                    let body1 = subst(*body, &x, &a);
                    Ok(subst(body1, &fname, &fix_val))
                }
                other => Err(EvalError::Stuck(format!("applying non-function {other:?}"))),
            }
        }
        ExprKind::If(c, t, els) => {
            if !c.is_value() {
                let c2 = reduce(*c, st)?;
                return Ok(rebuild(ExprKind::If(Box::new(c2), t, els)));
            }
            match c.kind {
                ExprKind::Const(r) if r <= 0.0 => Ok(*t),
                ExprKind::Const(_) => Ok(*els),
                other => Err(EvalError::Stuck(format!("if-guard is {other:?}"))),
            }
        }
        ExprKind::Prim(op, mut args) => {
            for i in 0..args.len() {
                if !args[i].is_value() {
                    let old = std::mem::replace(&mut args[i], dummy());
                    args[i] = reduce(old, st)?;
                    return Ok(rebuild(ExprKind::Prim(op, args)));
                }
            }
            let mut xs = Vec::with_capacity(args.len());
            for a in &args {
                match a.kind {
                    ExprKind::Const(r) => xs.push(r),
                    ref other => {
                        return Err(EvalError::Stuck(format!("primitive argument is {other:?}")))
                    }
                }
            }
            Ok(rebuild(ExprKind::Const(op.eval(&xs))))
        }
        ExprKind::Sample => {
            if st.trace.is_empty() {
                return Err(EvalError::TraceExhausted);
            }
            let r = st.trace.remove(0);
            Ok(rebuild(ExprKind::Const(r)))
        }
        ExprKind::Score(m) => {
            if !m.is_value() {
                let m2 = reduce(*m, st)?;
                return Ok(rebuild(ExprKind::Score(Box::new(m2))));
            }
            match m.kind {
                ExprKind::Const(r) if r >= 0.0 => {
                    st.weight *= r;
                    Ok(rebuild(ExprKind::Const(r)))
                }
                ExprKind::Const(r) => Err(EvalError::NegativeScore(r)),
                other => Err(EvalError::Stuck(format!("score of {other:?}"))),
            }
        }
        // Values never reach here (checked by `step`).
        v @ (ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Lam(..) | ExprKind::Fix(..)) => {
            Err(EvalError::Stuck(format!("cannot reduce value {v:?}")))
        }
    }
}

/// Capture-naive substitution `e[v/x]`; sound for closed `v`.
fn subst(e: Expr, x: &Name, v: &Expr) -> Expr {
    let Expr { id, span, kind } = e;
    let rebuild = |kind| Expr { id, span, kind };
    match kind {
        ExprKind::Var(y) => {
            if &y == x {
                v.clone()
            } else {
                rebuild(ExprKind::Var(y))
            }
        }
        ExprKind::Const(_) | ExprKind::Sample => rebuild(kind),
        ExprKind::Lam(y, body) => {
            if &y == x {
                rebuild(ExprKind::Lam(y, body))
            } else {
                let b = subst(*body, x, v);
                rebuild(ExprKind::Lam(y, Box::new(b)))
            }
        }
        ExprKind::Fix(f, y, body) => {
            if &f == x || &y == x {
                rebuild(ExprKind::Fix(f, y, body))
            } else {
                let b = subst(*body, x, v);
                rebuild(ExprKind::Fix(f, y, Box::new(b)))
            }
        }
        ExprKind::App(a, b) => {
            let a = subst(*a, x, v);
            let b = subst(*b, x, v);
            rebuild(ExprKind::App(Box::new(a), Box::new(b)))
        }
        ExprKind::If(c, t, e2) => {
            let c = subst(*c, x, v);
            let t = subst(*t, x, v);
            let e2 = subst(*e2, x, v);
            rebuild(ExprKind::If(Box::new(c), Box::new(t), Box::new(e2)))
        }
        ExprKind::Prim(op, args) => {
            let args = args.into_iter().map(|a| subst(a, x, v)).collect();
            rebuild(ExprKind::Prim(op, args))
        }
        ExprKind::Score(m) => {
            let m = subst(*m, x, v);
            rebuild(ExprKind::Score(Box::new(m)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigstep::run_on_trace;
    use gubpi_lang::parse;

    fn small(src: &str, trace: &[f64]) -> Outcome {
        run_small_step(&parse(src).unwrap(), trace, 1_000_000).unwrap()
    }

    #[test]
    fn beta_reduction_counts_steps() {
        let p = parse("(fn x -> x + 1) 2").unwrap();
        let mut cfg = Config::initial(&p, &[]);
        let mut n = 0;
        while step(&mut cfg).unwrap() {
            n += 1;
        }
        assert!(cfg.is_terminal());
        assert!(n >= 2); // β-step + primitive step
        assert!(matches!(cfg.term.kind, ExprKind::Const(c) if c == 3.0));
    }

    #[test]
    fn agrees_with_bigstep_on_examples() {
        let cases: &[(&str, &[f64])] = &[
            ("1 + 2 * 3 - 4", &[]),
            ("let f x = x * x in f (f 2)", &[]),
            ("if sample <= 0.5 then 10 else 20", &[0.3]),
            ("if sample <= 0.5 then 10 else 20", &[0.7]),
            ("score(2); sample + 1", &[0.25]),
            (
                "let rec fact n = if n <= 0 then 1 else n * fact (n - 1) in fact 5",
                &[],
            ),
            ("sample uniform(1, 3) * 2", &[0.5]),
            ("observe 0.2 from normal(0, 1); 7", &[]),
        ];
        for (src, trace) in cases {
            let a = small(src, trace);
            let b = run_on_trace(&parse(src).unwrap(), trace).unwrap();
            assert!((a.value - b.value).abs() < 1e-12, "value mismatch on {src}");
            assert!(
                (a.log_weight - b.log_weight).abs() < 1e-9
                    || (a.log_weight.is_infinite() && b.log_weight.is_infinite()),
                "weight mismatch on {src}"
            );
        }
    }

    #[test]
    fn fixpoint_unfolds_by_substitution() {
        let out = small(
            "let rec down x = if x <= 0 then 42 else down (x - 1) in down 3",
            &[],
        );
        assert_eq!(out.value, 42.0);
    }

    #[test]
    fn stuck_configurations_error() {
        assert!(matches!(
            run_small_step(&parse("score(0 - 2)").unwrap(), &[], 100),
            Err(EvalError::NegativeScore(_))
        ));
        assert!(matches!(
            run_small_step(&parse("sample").unwrap(), &[], 100),
            Err(EvalError::TraceExhausted)
        ));
        assert!(matches!(
            run_small_step(&parse("1").unwrap(), &[0.5], 100),
            Err(EvalError::TraceNotConsumed)
        ));
    }

    #[test]
    fn divergence_is_cut_off() {
        let p = parse("let rec spin x = spin x in spin 0").unwrap();
        assert!(matches!(
            run_small_step(&p, &[], 1_000),
            Err(EvalError::OutOfFuel)
        ));
    }
}
