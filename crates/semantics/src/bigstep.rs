//! Environment-based big-step evaluation of SPCF (the fast path).
//!
//! Implements the standard trace semantics of §2.3: evaluating a program
//! `P` against a trace `s` yields the value `val_P(s)` and weight
//! `wt_P(s)`. Weights are tracked in log space so that long products of
//! densities neither under- nor overflow.

use std::rc::Rc;

use gubpi_lang::{Expr, ExprKind, Program};
use rand::{Rng, RngExt};

use crate::trace::{Trace, TraceSource};
use crate::value::{Env, Value};

/// Why evaluation failed to produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The replayed trace ran out of samples — `s` is not long enough.
    TraceExhausted,
    /// A terminating run left part of the trace unconsumed; per §2.3 such
    /// traces do not count as terminating.
    TraceNotConsumed,
    /// `score` was applied to a negative number (the reduction is stuck).
    NegativeScore(f64),
    /// The fuel budget was exceeded (used to cut off divergence).
    OutOfFuel,
    /// The evaluator's recursion-depth limit was exceeded (guards the
    /// Rust call stack against deeply recursive object programs).
    TooDeep,
    /// A runtime type error (applying a number, branching on a closure…).
    /// Unreachable for simply-typed programs.
    Stuck(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::TraceExhausted => write!(f, "trace exhausted"),
            EvalError::TraceNotConsumed => write!(f, "trace not fully consumed"),
            EvalError::NegativeScore(w) => write!(f, "score of negative value {w}"),
            EvalError::OutOfFuel => write!(f, "fuel budget exceeded"),
            EvalError::TooDeep => write!(f, "recursion depth limit exceeded"),
            EvalError::Stuck(m) => write!(f, "stuck: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of a terminating run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The returned real value `val_P(s)`.
    pub value: f64,
    /// The natural log of the weight `ln wt_P(s)` (`−∞` for weight 0).
    pub log_weight: f64,
    /// The trace that was consumed (replayed or freshly sampled).
    pub trace: Trace,
}

impl Outcome {
    /// The weight `wt_P(s)` in linear space.
    pub fn weight(&self) -> f64 {
        self.log_weight.exp()
    }
}

/// Evaluator configuration.
#[derive(Copy, Clone, Debug)]
pub struct EvalOptions {
    /// Maximum number of big-step calls before giving up; guards against
    /// non-terminating programs.
    pub fuel: u64,
    /// Maximum evaluator recursion depth (keeps deeply recursive object
    /// programs from overflowing the Rust call stack).
    pub max_depth: u32,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            fuel: 10_000_000,
            max_depth: 3_000,
        }
    }
}

/// Runs `program` on a fixed trace (the paper's `(P, s, 1) →* (r, ⟨⟩, w)`).
///
/// # Errors
///
/// See [`EvalError`]; in particular the trace must be exactly consumed.
pub fn run_on_trace(program: &Program, trace: &[f64]) -> Result<Outcome, EvalError> {
    run_on_trace_with(program, trace, EvalOptions::default())
}

/// [`run_on_trace`] with explicit options.
pub fn run_on_trace_with(
    program: &Program,
    trace: &[f64],
    opts: EvalOptions,
) -> Result<Outcome, EvalError> {
    let mut src = TraceSource::replay(trace);
    let mut ev = Evaluator {
        fuel: opts.fuel,
        depth: 0,
        max_depth: opts.max_depth,
        log_weight: 0.0,
        src: &mut src,
    };
    let v = ev.eval(&program.root, &Env::empty())?;
    let log_weight = ev.log_weight;
    if !src.fully_consumed() {
        return Err(EvalError::TraceNotConsumed);
    }
    match v {
        Value::Real(value) => Ok(Outcome {
            value,
            log_weight,
            trace: trace.to_vec(),
        }),
        other => Err(EvalError::Stuck(format!(
            "program returned a non-real value {other:?}"
        ))),
    }
}

/// Like [`run_on_trace_with`], but tolerates an unconsumed suffix: the
/// program reads a *prefix* of `trace` and the leftover entries are
/// ignored. Returns the outcome together with the number of entries
/// consumed. Used by fixed-dimension samplers (HMC) that embed a
/// variable-length model into `[0,1]^N`.
///
/// # Errors
///
/// Same as [`run_on_trace_with`] except `TraceNotConsumed`.
pub fn run_on_trace_prefix_with(
    program: &Program,
    trace: &[f64],
    opts: EvalOptions,
) -> Result<(Outcome, usize), EvalError> {
    let mut src = TraceSource::replay(trace);
    let mut ev = Evaluator {
        fuel: opts.fuel,
        depth: 0,
        max_depth: opts.max_depth,
        log_weight: 0.0,
        src: &mut src,
    };
    let v = ev.eval(&program.root, &Env::empty())?;
    let log_weight = ev.log_weight;
    let consumed = src.drawn();
    match v {
        Value::Real(value) => Ok((
            Outcome {
                value,
                log_weight,
                trace: trace[..consumed].to_vec(),
            },
            consumed,
        )),
        other => Err(EvalError::Stuck(format!(
            "program returned a non-real value {other:?}"
        ))),
    }
}

/// Runs `program` with fresh randomness (ancestral sampling), recording
/// the trace — one likelihood-weighted sample.
///
/// # Errors
///
/// Fails only on fuel exhaustion or runtime type errors.
pub fn sample_run<R: Rng>(program: &Program, rng: &mut R) -> Result<Outcome, EvalError> {
    sample_run_with(program, rng, EvalOptions::default())
}

/// [`sample_run`] with explicit options.
pub fn sample_run_with<R: Rng>(
    program: &Program,
    rng: &mut R,
    opts: EvalOptions,
) -> Result<Outcome, EvalError> {
    let gen = move |r: &mut R| r.random::<f64>();
    let mut closure = {
        let rng_ref = rng;
        move || gen(rng_ref)
    };
    let mut src = TraceSource::Random {
        rng: &mut closure,
        recorded: Vec::new(),
    };
    let mut ev = Evaluator {
        fuel: opts.fuel,
        depth: 0,
        max_depth: opts.max_depth,
        log_weight: 0.0,
        src: &mut src,
    };
    let v = ev.eval(&program.root, &Env::empty())?;
    let log_weight = ev.log_weight;
    let trace = match src {
        TraceSource::Random { recorded, .. } => recorded,
        _ => unreachable!(),
    };
    match v {
        Value::Real(value) => Ok(Outcome {
            value,
            log_weight,
            trace,
        }),
        other => Err(EvalError::Stuck(format!(
            "program returned a non-real value {other:?}"
        ))),
    }
}

struct Evaluator<'a, 'b> {
    fuel: u64,
    depth: u32,
    max_depth: u32,
    log_weight: f64,
    src: &'a mut TraceSource<'b>,
}

impl Evaluator<'_, '_> {
    fn eval(&mut self, e: &Expr, env: &Env) -> Result<Value, EvalError> {
        self.depth += 1;
        let r = self.eval_inner(e, env);
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, e: &Expr, env: &Env) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        if self.depth > self.max_depth {
            return Err(EvalError::TooDeep);
        }
        self.fuel -= 1;
        match &e.kind {
            ExprKind::Var(x) => env
                .lookup(x)
                .cloned()
                .ok_or_else(|| EvalError::Stuck(format!("unbound variable `{x}`"))),
            ExprKind::Const(r) => Ok(Value::Real(*r)),
            ExprKind::Lam(param, body) => Ok(Value::Closure {
                param: param.clone(),
                body: Rc::new((**body).clone()),
                env: env.clone(),
            }),
            ExprKind::Fix(fname, param, body) => Ok(Value::FixClosure {
                fname: fname.clone(),
                param: param.clone(),
                body: Rc::new((**body).clone()),
                env: env.clone(),
            }),
            ExprKind::App(f, a) => {
                let fv = self.eval(f, env)?;
                let av = self.eval(a, env)?;
                self.apply(fv, av)
            }
            ExprKind::If(c, t, els) => {
                let cv = self.eval(c, env)?;
                match cv {
                    Value::Real(r) if r <= 0.0 => self.eval(t, env),
                    Value::Real(_) => self.eval(els, env),
                    other => Err(EvalError::Stuck(format!("if-guard is {other:?}"))),
                }
            }
            ExprKind::Prim(op, args) => {
                let mut xs = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval(a, env)? {
                        Value::Real(r) => xs.push(r),
                        other => {
                            return Err(EvalError::Stuck(format!(
                                "primitive argument is {other:?}"
                            )))
                        }
                    }
                }
                Ok(Value::Real(op.eval(&xs)))
            }
            ExprKind::Sample => {
                let v = self.src.next_sample().ok_or(EvalError::TraceExhausted)?;
                Ok(Value::Real(v))
            }
            ExprKind::Score(m) => {
                let mv = self.eval(m, env)?;
                match mv {
                    Value::Real(r) if r >= 0.0 => {
                        self.log_weight += r.ln(); // ln(0) = −∞ kills the path
                        Ok(Value::Real(r))
                    }
                    Value::Real(r) => Err(EvalError::NegativeScore(r)),
                    other => Err(EvalError::Stuck(format!("score of {other:?}"))),
                }
            }
        }
    }

    fn apply(&mut self, f: Value, a: Value) -> Result<Value, EvalError> {
        match f {
            Value::Closure { param, body, env } => {
                let env2 = env.bind(param, a);
                self.eval(&body, &env2)
            }
            Value::FixClosure {
                fname,
                param,
                body,
                env,
            } => {
                let rec = Value::FixClosure {
                    fname: fname.clone(),
                    param: param.clone(),
                    body: body.clone(),
                    env: env.clone(),
                };
                let env2 = env.bind(fname, rec).bind(param, a);
                self.eval(&body, &env2)
            }
            other => Err(EvalError::Stuck(format!("applying non-function {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(src: &str, trace: &[f64]) -> Outcome {
        run_on_trace(&parse(src).unwrap(), trace).unwrap()
    }

    #[test]
    fn deterministic_arithmetic() {
        let out = run("1 + 2 * 3", &[]);
        assert_eq!(out.value, 7.0);
        assert_eq!(out.log_weight, 0.0);
    }

    #[test]
    fn sample_consumes_trace() {
        let out = run("sample + sample", &[0.25, 0.5]);
        assert_eq!(out.value, 0.75);
        assert!(matches!(
            run_on_trace(&parse("sample").unwrap(), &[]),
            Err(EvalError::TraceExhausted)
        ));
        assert!(matches!(
            run_on_trace(&parse("1").unwrap(), &[0.5]),
            Err(EvalError::TraceNotConsumed)
        ));
    }

    #[test]
    fn score_multiplies_weight() {
        let out = run("score(2); score(3); 1", &[]);
        assert!((out.weight() - 6.0).abs() < 1e-12);
        assert!(matches!(
            run_on_trace(&parse("score(0-1)").unwrap(), &[]),
            Err(EvalError::NegativeScore(_))
        ));
    }

    #[test]
    fn example_2_1_pedestrian_trace() {
        // Example 2.1: s = ⟨0.1, 0.2, 0.4, 0.7, 0.8⟩ gives val = 0.3 and
        // wt = pdf_{Normal(1.1,0.1)}(0.9).
        let src = "
            let start = 3 * sample uniform(0, 1) in
            let rec walk x =
              if x <= 0 then 0 else
                let step = sample uniform(0, 1) in
                if sample <= 0.5 then step + walk (x + step)
                else step + walk (x - step)
            in
            let distance = walk start in
            observe distance from normal(1.1, 0.1);
            start";
        let out = run(src, &[0.1, 0.2, 0.4, 0.7, 0.8]);
        assert!((out.value - 0.3).abs() < 1e-12);
        use gubpi_dist::ContinuousDist;
        let want = gubpi_dist::Normal::new(1.1, 0.1).pdf(0.9);
        assert!((out.weight() - want).abs() < 1e-12);
    }

    #[test]
    fn recursion_terminates_with_fuel() {
        let out = run(
            "let rec down x = if x <= 0 then 0 else down (x - 1) in down 5",
            &[],
        );
        assert_eq!(out.value, 0.0);
        // An infinite loop exhausts fuel instead of hanging.
        let p = parse("let rec spin x = spin x in spin 0").unwrap();
        // Small max_depth: test threads have small stacks, and `spin`
        // nests one evaluator frame per object-level call.
        let opts = EvalOptions {
            fuel: 10_000,
            max_depth: 400,
        };
        let err = run_on_trace_with(&p, &[], opts).unwrap_err();
        assert!(matches!(err, EvalError::OutOfFuel | EvalError::TooDeep));
    }

    #[test]
    fn higher_order_functions() {
        let out = run("let twice f x = f (f x) in twice (fn y -> y * 2) 3", &[]);
        assert_eq!(out.value, 12.0);
    }

    #[test]
    fn sampling_runs_record_traces() {
        let p = parse("sample + sample uniform(0, 2)").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let out = sample_run(&p, &mut rng).unwrap();
        assert_eq!(out.trace.len(), 2);
        assert!(out.value >= 0.0 && out.value <= 3.0);
        // Replaying the recorded trace reproduces the value exactly.
        let replay = run_on_trace(&p, &out.trace).unwrap();
        assert_eq!(replay.value, out.value);
    }

    #[test]
    fn invalid_runtime_dist_params_give_zero_weight_not_a_panic() {
        // sample = 0.2 draws σ = −0.3: the observed density is 0, so the
        // run terminates with weight 0 instead of panicking — exactly
        // the mass the guaranteed bounds assign such traces.
        let p = parse("observe 0.4 from normal(0, sample - 0.5); 1").unwrap();
        let out = run_on_trace(&p, &[0.2]).unwrap();
        assert_eq!(out.weight(), 0.0);
        assert_eq!(out.log_weight, f64::NEG_INFINITY);
        // A run that draws a valid σ is weighted as usual.
        let out = run_on_trace(&p, &[0.9]).unwrap();
        use gubpi_dist::ContinuousDist;
        let want = gubpi_dist::Normal::new(0.0, 0.4).pdf(0.4);
        assert!((out.weight() - want).abs() < 1e-12);
        // Invalid beta shapes drawn at runtime behave the same.
        let b = parse("observe 0.5 from beta(sample - 0.5, 1); 1").unwrap();
        let out = run_on_trace(&b, &[0.25]).unwrap();
        assert_eq!(out.weight(), 0.0);
    }

    #[test]
    fn observe_weights_correctly() {
        let p = parse("observe 0.5 from normal(0, 1); 1").unwrap();
        let out = run_on_trace(&p, &[]).unwrap();
        use gubpi_dist::ContinuousDist;
        let want = gubpi_dist::Normal::standard().pdf(0.5);
        assert!((out.weight() - want).abs() < 1e-12);
    }
}
