//! Runtime values and environments for the big-step evaluators.

use std::fmt;
use std::rc::Rc;

use gubpi_lang::{Expr, Name};

/// A runtime value: a real number, a closure, or a recursive closure.
#[derive(Clone)]
pub enum Value {
    /// A real constant.
    Real(f64),
    /// `λx. body` closed over `env`.
    Closure {
        /// The parameter name.
        param: Name,
        /// The body expression (shared).
        body: Rc<Expr>,
        /// The captured environment.
        env: Env,
    },
    /// `μφ x. body` closed over `env`; applying it re-binds `φ` to itself.
    FixClosure {
        /// The recursion variable `φ`.
        fname: Name,
        /// The parameter name.
        param: Name,
        /// The body expression (shared).
        body: Rc<Expr>,
        /// The captured environment.
        env: Env,
    },
}

impl Value {
    /// Extracts the real number, or `None` for closures.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Real(r) => write!(f, "{r}"),
            Value::Closure { param, .. } => write!(f, "<closure λ{param}>"),
            Value::FixClosure { fname, param, .. } => write!(f, "<fix μ{fname} {param}>"),
        }
    }
}

/// A persistent environment: a linked list of bindings with `O(1)` clone.
#[derive(Clone, Default)]
pub struct Env(Option<Rc<Node>>);

struct Node {
    name: Name,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends the environment with one binding (persistent).
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(Node {
            name,
            value,
            rest: self.clone(),
        })))
    }

    /// Looks a name up, innermost binding first.
    pub fn lookup(&self, name: &str) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &*node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }

    /// Number of bindings (for diagnostics).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.rest;
        }
        n
    }

    /// True when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Iterates over `(name, value)` pairs, innermost first.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Value)> {
        struct Iter<'a>(&'a Env);
        impl<'a> Iterator for Iter<'a> {
            type Item = (&'a Name, &'a Value);
            fn next(&mut self) -> Option<Self::Item> {
                let node = self.0 .0.as_deref()?;
                self.0 = &node.rest;
                Some((&node.name, &node.value))
            }
        }
        Iter(self)
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Env[")?;
        for (i, (n, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_innermost() {
        let x: Name = Name::from("x");
        let env = Env::empty()
            .bind(x.clone(), Value::Real(1.0))
            .bind(x.clone(), Value::Real(2.0));
        assert_eq!(env.lookup("x").and_then(Value::as_real), Some(2.0));
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert!(env.lookup("y").is_none());
    }

    #[test]
    fn bind_is_persistent() {
        let x: Name = Name::from("x");
        let base = Env::empty().bind(x.clone(), Value::Real(1.0));
        let extended = base.bind(Name::from("y"), Value::Real(2.0));
        assert_eq!(base.len(), 1);
        assert_eq!(extended.len(), 2);
        assert_eq!(base.lookup("x").and_then(Value::as_real), Some(1.0));
    }
}
