//! Traces and trace sources (§2.3).
//!
//! A *trace* `s = ⟨r₁, …, r_n⟩ ∈ ⋃_n [0,1]^n` predetermines every
//! probabilistic choice of an execution. The evaluator draws from a
//! [`TraceSource`], which either replays a fixed trace or samples fresh
//! values from an RNG while recording them.

use rand::{Rng, RngExt};

/// A finite trace of uniform samples.
pub type Trace = Vec<f64>;

/// Where `sample` gets its values from during evaluation.
pub enum TraceSource<'a> {
    /// Replays a fixed trace; evaluation fails if the trace is too short
    /// and, per the paper's convention, a terminating run must consume the
    /// trace entirely.
    Replay {
        /// The predetermined samples.
        trace: &'a [f64],
        /// Cursor into `trace`.
        pos: usize,
    },
    /// Draws fresh uniform samples, recording them.
    Random {
        /// The random source.
        rng: &'a mut dyn FnMut() -> f64,
        /// All samples drawn so far.
        recorded: Trace,
    },
}

impl<'a> TraceSource<'a> {
    /// A replay source at position 0.
    pub fn replay(trace: &'a [f64]) -> TraceSource<'a> {
        TraceSource::Replay { trace, pos: 0 }
    }

    /// The next sample, or `None` when a replayed trace is exhausted.
    pub fn next_sample(&mut self) -> Option<f64> {
        match self {
            TraceSource::Replay { trace, pos } => {
                let v = trace.get(*pos).copied()?;
                *pos += 1;
                Some(v)
            }
            TraceSource::Random { rng, recorded } => {
                let v = rng();
                recorded.push(v);
                Some(v)
            }
        }
    }

    /// For replay sources: has every trace entry been consumed?
    pub fn fully_consumed(&self) -> bool {
        match self {
            TraceSource::Replay { trace, pos } => *pos == trace.len(),
            TraceSource::Random { .. } => true,
        }
    }

    /// Number of samples drawn so far.
    pub fn drawn(&self) -> usize {
        match self {
            TraceSource::Replay { pos, .. } => *pos,
            TraceSource::Random { recorded, .. } => recorded.len(),
        }
    }
}

/// Builds a random trace source from a [`rand::Rng`].
///
/// Returns a closure suitable for [`TraceSource::Random`].
pub fn rng_sampler<R: Rng>(rng: &mut R) -> impl FnMut() -> f64 + '_ {
    move || rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_consumes_in_order() {
        let t = [0.1, 0.2, 0.3];
        let mut src = TraceSource::replay(&t);
        assert_eq!(src.next_sample(), Some(0.1));
        assert_eq!(src.next_sample(), Some(0.2));
        assert!(!src.fully_consumed());
        assert_eq!(src.next_sample(), Some(0.3));
        assert!(src.fully_consumed());
        assert_eq!(src.next_sample(), None);
        assert_eq!(src.drawn(), 3);
    }

    #[test]
    fn random_records() {
        let mut k = 0usize;
        let mut gen = move || {
            k += 1;
            k as f64 / 10.0
        };
        let mut src = TraceSource::Random {
            rng: &mut gen,
            recorded: Vec::new(),
        };
        assert_eq!(src.next_sample(), Some(0.1));
        assert_eq!(src.next_sample(), Some(0.2));
        match src {
            TraceSource::Random { recorded, .. } => assert_eq!(recorded, vec![0.1, 0.2]),
            _ => unreachable!(),
        }
    }
}
