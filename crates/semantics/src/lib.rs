//! Concrete and interval trace semantics for SPCF.
//!
//! This crate implements §2.3 and §3 of the GuBPI paper:
//!
//! * [`bigstep`] — an environment-based big-step evaluator, the fast path
//!   used by samplers and by the analyzer's cross-checks. It evaluates a
//!   program against a [`trace::TraceSource`]: either a fixed trace
//!   `s ∈ T` (deterministic replay, defining `val_P(s)` and `wt_P(s)`) or
//!   a random number generator (ancestral sampling, recording the trace).
//! * [`smallstep`] — a substitution-based machine mirroring Fig. 2
//!   rule-for-rule; slower, used in tests to validate the big-step
//!   evaluator against the paper's definition.
//! * [`interval`] — the interval reduction `→I` of Fig. 3 extended with
//!   the both-branches rule of Appendix A.4, evaluating a program on an
//!   *interval trace* and returning every reachable leaf.
//! * [`bounds`] — `lowerBd`/`upperBd` over finite sets of interval traces
//!   (§3.3), plus compatibility and coverage checkers.
//!
//! # Example
//!
//! ```
//! use gubpi_lang::parse;
//! use gubpi_semantics::bigstep::run_on_trace;
//!
//! // Example 2.1 of the paper: the pedestrian on a fixed trace.
//! let p = parse(
//!     "let start = 3 * sample uniform(0, 1) in \
//!      let rec walk x = \
//!        if x <= 0 then 0 else \
//!          let step = sample uniform(0, 1) in \
//!          if sample <= 0.5 then step + walk (x + step) \
//!          else step + walk (x - step) \
//!      in \
//!      let distance = walk start in \
//!      observe distance from normal(1.1, 0.1); \
//!      start",
//! ).unwrap();
//! let out = run_on_trace(&p, &[0.1, 0.2, 0.4, 0.7, 0.8]).unwrap();
//! assert!((out.value - 0.3).abs() < 1e-12);
//! ```

pub mod bigstep;
pub mod bounds;
pub mod interval;
pub mod smallstep;
pub mod trace;
pub mod value;

pub use bigstep::{run_on_trace, sample_run, EvalError, Outcome};
pub use bounds::{lower_bound, upper_bound, BoundAccumulator};
pub use trace::{Trace, TraceSource};
pub use value::{Env, Value};
