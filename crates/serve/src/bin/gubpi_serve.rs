//! The `gubpi-serve` daemon binary.
//!
//! ```text
//! gubpi-serve [--addr HOST:PORT] [--max-inflight N]
//!             [--timeout-ms N] [--max-region-budget N]
//! ```
//!
//! Honours `GUBPI_FAULT=panic@N|delay@N|cancel@N` for deterministic
//! fault injection (chaos testing) and `GUBPI_THREADS` via the shared
//! worker pool.

use std::process::ExitCode;

use gubpi_serve::{start, ServeConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: gubpi-serve [--addr HOST:PORT] [--max-inflight N] \
         [--timeout-ms N] [--max-region-budget N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |field: &mut String| match args.next() {
            Some(v) => {
                *field = v;
                true
            }
            None => false,
        };
        match arg.as_str() {
            "--addr" => {
                if !take(&mut config.addr) {
                    return usage();
                }
            }
            "--max-inflight" | "--timeout-ms" | "--max-region-budget" => {
                let mut raw = String::new();
                if !take(&mut raw) {
                    return usage();
                }
                let Ok(n) = raw.parse::<u64>() else {
                    return usage();
                };
                match arg.as_str() {
                    "--max-inflight" => config.max_inflight = (n as usize).max(1),
                    "--timeout-ms" => config.default_timeout_ms = Some(n),
                    _ => config.max_region_budget = (n as usize).max(1),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if let Some(plan) = gubpi_pool::arm_fault_from_env() {
        eprintln!("gubpi-serve: fault injection armed: {plan:?}");
    }
    match start(config) {
        Ok(handle) => {
            println!("gubpi-serve listening on {}", handle.local_addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gubpi-serve: bind failed: {e}");
            ExitCode::FAILURE
        }
    }
}
