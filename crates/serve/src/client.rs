//! A blocking client for the serving protocol.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use gubpi_core::QueryOutcome;

use crate::json::{self, Json};
use crate::proto::{parse_reply, read_frame, write_frame, QueryRequest, RemoteError, Request};

/// One connection to a `gubpi-serve` daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, &req.to_wire())?;
        read_frame(&mut self.stream)
    }

    /// Runs one query; the outer error is transport/protocol, the
    /// inner one a typed rejection from the server.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response frames.
    pub fn query(&mut self, req: QueryRequest) -> io::Result<Result<QueryOutcome, RemoteError>> {
        let payload = self.round_trip(&Request::Query(req))?;
        parse_reply(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetches the server's counters as raw JSON.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response frames.
    pub fn stats(&mut self) -> io::Result<Json> {
        let payload = self.round_trip(&Request::Stats)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Asks the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let _ = self.round_trip(&Request::Shutdown)?;
        Ok(())
    }
}
