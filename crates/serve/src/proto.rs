//! Wire protocol: 4-byte big-endian length-prefixed JSON frames.
//!
//! Each direction carries a stream of frames; a frame's payload is one
//! UTF-8 JSON document (see [`crate::json`]). Requests and responses
//! alternate strictly on one connection — the server answers every
//! frame it reads, in order, so a client can pipeline by counting.
//!
//! ## Requests
//!
//! ```json
//! {"kind":"denotation","source":"sample","lo":0.25,"hi":0.75,
//!  "timeout_ms":500,"region_budget":4096}
//! {"kind":"posterior", ...}
//! {"kind":"stats"}
//! {"kind":"shutdown"}
//! ```
//!
//! `timeout_ms` and `region_budget` are optional; the server clamps the
//! budget to its configured maximum and applies its default timeout
//! when none is given.
//!
//! ## Responses
//!
//! ```json
//! {"ok":true,"lo":0.49,"hi":0.51,"degraded":false,"completeness":1}
//! {"ok":false,"error":"overloaded","message":"..."}
//! ```
//!
//! A `degraded:true` reply is still a **sound** enclosure — it merely
//! reflects the coarse fallback for work the deadline cut off;
//! `completeness` is the fraction of planned bounding work that ran.

use std::io::{self, Read, Write};

use gubpi_core::{QueryError, QueryOutcome};

use crate::json::{self, obj, Json};

/// Hard cap on a frame payload (an oversized length prefix is a
/// protocol error, not an allocation).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// `UnexpectedEof` at a clean stream end, `InvalidData` for oversized
/// prefixes, otherwise the underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Which query a [`QueryRequest`] runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Unnormalised denotation bounds `⟦P⟧([lo, hi])`.
    Denotation,
    /// Normalised posterior probability bounds.
    Posterior,
}

/// One analysis request.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// Which query to run.
    pub kind: QueryKind,
    /// SPCF program source.
    pub source: String,
    /// Query interval lower endpoint.
    pub lo: f64,
    /// Query interval upper endpoint.
    pub hi: f64,
    /// Per-request deadline; `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// Per-request region budget; clamped to the server maximum.
    pub region_budget: Option<usize>,
}

/// Any message a client can send.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a query.
    Query(QueryRequest),
    /// Fetch the server's counters.
    Stats,
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

impl Request {
    /// Encodes the request as a JSON wire payload.
    pub fn to_wire(&self) -> Vec<u8> {
        let v = match self {
            Request::Stats => obj(vec![("kind", Json::Str("stats".into()))]),
            Request::Shutdown => obj(vec![("kind", Json::Str("shutdown".into()))]),
            Request::Query(q) => {
                let kind = match q.kind {
                    QueryKind::Denotation => "denotation",
                    QueryKind::Posterior => "posterior",
                };
                let mut pairs = vec![
                    ("kind", Json::Str(kind.into())),
                    ("source", Json::Str(q.source.clone())),
                    ("lo", Json::Num(q.lo)),
                    ("hi", Json::Num(q.hi)),
                ];
                if let Some(ms) = q.timeout_ms {
                    pairs.push(("timeout_ms", Json::Num(ms as f64)));
                }
                if let Some(b) = q.region_budget {
                    pairs.push(("region_budget", Json::Num(b as f64)));
                }
                obj(pairs)
            }
        };
        v.to_wire().into_bytes()
    }

    /// Decodes a request from a JSON wire payload.
    ///
    /// # Errors
    ///
    /// A description of the malformed field (returned to the client as
    /// a `bad_request` response).
    pub fn from_wire(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let v = json::parse(text)?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing string field 'kind'")?;
        match kind {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "denotation" | "posterior" => {
                let source = v
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or("missing string field 'source'")?
                    .to_string();
                let lo = v
                    .get("lo")
                    .and_then(Json::as_f64)
                    .ok_or("missing numeric field 'lo'")?;
                let hi = v
                    .get("hi")
                    .and_then(Json::as_f64)
                    .ok_or("missing numeric field 'hi'")?;
                let timeout_ms = v.get("timeout_ms").map(|t| {
                    t.as_u64()
                        .ok_or("field 'timeout_ms' must be a non-negative integer")
                });
                let timeout_ms = timeout_ms.transpose()?;
                let region_budget = v
                    .get("region_budget")
                    .map(|b| {
                        b.as_u64()
                            .ok_or("field 'region_budget' must be a non-negative integer")
                    })
                    .transpose()?
                    .map(|b| b as usize);
                Ok(Request::Query(QueryRequest {
                    kind: if kind == "denotation" {
                        QueryKind::Denotation
                    } else {
                        QueryKind::Posterior
                    },
                    source,
                    lo,
                    hi,
                    timeout_ms,
                    region_budget,
                }))
            }
            other => Err(format!("unknown request kind '{other}'")),
        }
    }
}

/// A query failure on the wire, as a stable error code plus message.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteError {
    /// Stable machine-readable code (`overloaded`, `worker_panicked`,
    /// `deadline_exceeded`, `invalid_interval`, `parse_error`,
    /// `bad_request`, ...).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl RemoteError {
    /// Maps the stable wire code back to a typed [`QueryError`] where
    /// one exists (`parse_error`/`bad_request` have no analogue).
    pub fn as_query_error(&self) -> Option<QueryError> {
        match self.code.as_str() {
            "deadline_exceeded" => Some(QueryError::DeadlineExceeded),
            "worker_panicked" => Some(QueryError::WorkerPanicked),
            "overloaded" => Some(QueryError::Overloaded),
            "no_bins" => Some(QueryError::NoBins),
            _ => None,
        }
    }
}

/// The stable wire code for a typed [`QueryError`].
pub fn error_code(e: QueryError) -> &'static str {
    match e {
        QueryError::InvalidInterval { .. } => "invalid_interval",
        QueryError::InvalidDomain { .. } => "invalid_domain",
        QueryError::NoBins => "no_bins",
        QueryError::DeadlineExceeded => "deadline_exceeded",
        QueryError::WorkerPanicked => "worker_panicked",
        QueryError::Overloaded => "overloaded",
    }
}

/// Encodes a successful query outcome.
pub fn ok_payload(outcome: &QueryOutcome) -> Vec<u8> {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("lo", Json::Num(outcome.lo)),
        ("hi", Json::Num(outcome.hi)),
        ("degraded", Json::Bool(outcome.degraded)),
        ("completeness", Json::Num(outcome.completeness)),
    ])
    .to_wire()
    .into_bytes()
}

/// Encodes an error response.
pub fn error_payload(code: &str, message: &str) -> Vec<u8> {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(code.into())),
        ("message", Json::Str(message.into())),
    ])
    .to_wire()
    .into_bytes()
}

/// Decodes a query response payload.
///
/// # Errors
///
/// The outer `Err` is a malformed frame; the inner `Err` is a
/// well-formed error response from the server.
pub fn parse_reply(payload: &[u8]) -> Result<Result<QueryOutcome, RemoteError>, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let v = json::parse(text)?;
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("missing boolean field 'ok'")?;
    if !ok {
        return Ok(Err(RemoteError {
            code: v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            message: v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        }));
    }
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field '{k}'"))
    };
    Ok(Ok(QueryOutcome {
        lo: field("lo")?,
        hi: field("hi")?,
        degraded: v
            .get("degraded")
            .and_then(Json::as_bool)
            .ok_or("missing boolean field 'degraded'")?,
        completeness: field("completeness")?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Stats,
            Request::Shutdown,
            Request::Query(QueryRequest {
                kind: QueryKind::Posterior,
                source: "let x = sample in x".into(),
                lo: f64::NEG_INFINITY,
                hi: 0.5,
                timeout_ms: Some(250),
                region_budget: Some(4096),
            }),
            Request::Query(QueryRequest {
                kind: QueryKind::Denotation,
                source: "sample".into(),
                lo: 0.0,
                hi: 1.0,
                timeout_ms: None,
                region_budget: None,
            }),
        ];
        for r in reqs {
            assert_eq!(Request::from_wire(&r.to_wire()).unwrap(), r);
        }
    }

    #[test]
    fn replies_round_trip() {
        let out = QueryOutcome {
            lo: 0.25,
            hi: f64::INFINITY,
            degraded: true,
            completeness: 0.375,
        };
        let back = parse_reply(&ok_payload(&out)).unwrap().unwrap();
        assert_eq!(back, out);
        let err = parse_reply(&error_payload("overloaded", "busy"))
            .unwrap()
            .unwrap_err();
        assert_eq!(err.as_query_error(), Some(QueryError::Overloaded));
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "EOF");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
