//! `gubpi-serve` — a deadline-aware serving front-end for the GuBPI
//! analyzer.
//!
//! The daemon speaks a std-only protocol: length-prefixed JSON frames
//! over a TCP socket ([`proto`]), no external dependencies. Its
//! robustness contract:
//!
//! - **Anytime sound bounds.** Every query runs under a cooperative
//!   [`CancelToken`](gubpi_core::CancelToken) threaded through the
//!   whole execution stack (symbolic frontier, region sweeps,
//!   refinement rounds). On deadline expiry the reply still carries a
//!   *guaranteed* enclosure — unswept work contributes its coarse
//!   whole-box bound — flagged `degraded` with a `completeness`
//!   fraction. Undegraded replies are bit-identical to untimed runs.
//! - **Panic containment.** Queries run inside `catch_unwind`; a panic
//!   (genuine or injected via `GUBPI_FAULT=panic@N`) yields a typed
//!   `worker_panicked` error and the daemon stays serviceable.
//! - **Admission control.** A bounded inflight counter rejects excess
//!   load with `overloaded` before any work is scheduled; per-request
//!   region budgets are clamped server-side.
//! - **Deterministic fault injection.** `GUBPI_FAULT=panic@N|delay@N|
//!   cancel@N` fires exactly at task boundary `N`
//!   (see `gubpi_pool::fault_point`), driving the chaos test suite.
//!
//! ```no_run
//! use gubpi_serve::{start, Client, QueryKind, QueryRequest, ServeConfig};
//!
//! let server = start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let outcome = client
//!     .query(QueryRequest {
//!         kind: QueryKind::Posterior,
//!         source: "let x = sample in score(x); x".to_string(),
//!         lo: 0.5,
//!         hi: 1.0,
//!         timeout_ms: Some(500),
//!         region_budget: None,
//!     })
//!     .unwrap()
//!     .unwrap();
//! assert!(outcome.lo <= outcome.hi);
//! server.shutdown();
//! ```

pub mod json;
pub mod proto;

mod client;
mod server;

pub use client::Client;
pub use proto::{
    error_code, parse_reply, read_frame, write_frame, QueryKind, QueryRequest, RemoteError,
    Request, MAX_FRAME,
};
pub use server::{start, start_with_cache, ServeConfig, ServerHandle, ServerStats};
