//! The serving daemon: admission control, deadlines, panic containment.
//!
//! One accept thread, one handler thread per connection. Every request
//! runs under a per-request [`CancelToken`]; on deadline expiry the
//! analyzer returns an **anytime sound** degraded enclosure rather
//! than an error (see `gubpi_core::QueryOutcome`). A bounded inflight
//! counter rejects excess load up front with `overloaded`, and every
//! query runs inside `catch_unwind` so an injected or genuine panic is
//! contained at the request boundary — the reply is a typed
//! `worker_panicked` error and the server (and the shared worker pool,
//! which re-raises task panics on the owning thread by design) remain
//! fully serviceable.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gubpi_core::{
    AnalysisOptions, Analyzer, CancelToken, PathBoundOptions, QueryError, QueryOutcome,
    SharedQueryCache, WorkerPool,
};
use gubpi_lang::parse;
use gubpi_pool::fault_point;

use crate::json::{obj, Json};
use crate::proto::{
    error_code, error_payload, ok_payload, read_frame, write_frame, QueryKind, QueryRequest,
    Request,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port `0` to let the OS pick (tests).
    pub addr: String,
    /// Admission bound: queries over this many concurrently in flight
    /// are rejected with `overloaded` before any work is scheduled.
    pub max_inflight: usize,
    /// Deadline applied when a request carries none; `None` means
    /// unlimited.
    pub default_timeout_ms: Option<u64>,
    /// Upper clamp on per-request region budgets.
    pub max_region_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 4,
            default_timeout_ms: None,
            max_region_budget: PathBoundOptions::default().region_budget,
        }
    }
}

/// Monotone service counters, reported by the `stats` request.
#[derive(Default)]
struct Counters {
    served: AtomicU64,
    degraded: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    errors: AtomicU64,
}

/// A snapshot of the server's counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries answered with sound bounds (degraded or not).
    pub served: u64,
    /// Of `served`, how many were deadline-degraded.
    pub degraded: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Requests whose deadline expired before any work started.
    pub deadline_exceeded: u64,
    /// Requests that panicked and were contained.
    pub panics: u64,
    /// Requests rejected for invalid input (parse or validation).
    pub errors: u64,
}

struct Shared {
    config: ServeConfig,
    stop: AtomicBool,
    inflight: AtomicUsize,
    cache: SharedQueryCache,
    counters: Counters,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.counters.served.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            overloaded: self.counters.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.counters.deadline_exceeded.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or send a `shutdown` request).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The query cache shared by every request on this server.
    pub fn cache(&self) -> SharedQueryCache {
        self.shared.cache.clone()
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight connections finish their current request and then see
    /// closed reads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Blocks until the accept loop exits (a `shutdown` request, or
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Starts the server on `config.addr`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    start_with_cache(config, SharedQueryCache::new())
}

/// [`start`] on an explicit shared cache (lets tests pre-warm or
/// inspect it).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start_with_cache(config: ServeConfig, cache: SharedQueryCache) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        config,
        stop: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        cache,
        counters: Counters::default(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("gubpi-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(&shared);
        let addr = listener.local_addr().ok();
        let spawned = std::thread::Builder::new()
            .name("gubpi-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                // A connection that carried a shutdown request must
                // also poke the accept loop awake.
                if conn_shared.stop.load(Ordering::SeqCst) {
                    if let Some(addr) = addr {
                        let _ = TcpStream::connect(addr);
                    }
                }
            });
        drop(spawned);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // client hung up (or sent garbage framing)
        };
        let reply = match Request::from_wire(&payload) {
            Err(msg) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                error_payload("bad_request", &msg)
            }
            Ok(Request::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                obj(vec![("ok", Json::Bool(true))]).to_wire().into_bytes()
            }
            Ok(Request::Stats) => stats_payload(shared),
            Ok(Request::Query(req)) => answer_query(shared, &req),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn stats_payload(shared: &Shared) -> Vec<u8> {
    let s = shared.stats();
    obj(vec![
        ("ok", Json::Bool(true)),
        (
            "stats",
            obj(vec![
                ("served", Json::Num(s.served as f64)),
                ("degraded", Json::Num(s.degraded as f64)),
                ("overloaded", Json::Num(s.overloaded as f64)),
                ("deadline_exceeded", Json::Num(s.deadline_exceeded as f64)),
                ("panics", Json::Num(s.panics as f64)),
                ("errors", Json::Num(s.errors as f64)),
                (
                    "faults_injected",
                    Json::Num(gubpi_pool::faults_injected() as f64),
                ),
            ]),
        ),
    ])
    .to_wire()
    .into_bytes()
}

/// Decrements the inflight counter even when the query panics.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn answer_query(shared: &Shared, req: &QueryRequest) -> Vec<u8> {
    // Admission control: claim an inflight slot or reject before any
    // analysis work is scheduled.
    let admitted = shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.config.max_inflight).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
        return error_payload(
            error_code(QueryError::Overloaded),
            &QueryError::Overloaded.to_string(),
        );
    }
    let _slot = InflightGuard(&shared.inflight);
    let token = match req.timeout_ms.or(shared.config.default_timeout_ms) {
        Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    if token.is_cancelled() {
        // The deadline expired before any work started (a zero budget):
        // there is no prefix to anchor even a degraded bound to, so
        // this is the one deadline case reported as an error.
        shared
            .counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        return error_payload(
            error_code(QueryError::DeadlineExceeded),
            &QueryError::DeadlineExceeded.to_string(),
        );
    }
    // Panic containment: a panicking query (injected via `GUBPI_FAULT`
    // or genuine) unwinds to here and no further — the worker pool
    // re-raises task panics on this owning thread, so the pool itself
    // stays healthy and the server answers with a typed error.
    let result = catch_unwind(AssertUnwindSafe(|| run_query(shared, req, &token)));
    match result {
        Ok(Ok(outcome)) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            if outcome.degraded {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            ok_payload(&outcome)
        }
        Ok(Err(Failure::Query(e))) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            error_payload(error_code(e), &e.to_string())
        }
        Ok(Err(Failure::Lang(msg))) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            error_payload("parse_error", &msg)
        }
        Err(_) => {
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            error_payload(
                error_code(QueryError::WorkerPanicked),
                &QueryError::WorkerPanicked.to_string(),
            )
        }
    }
}

enum Failure {
    Query(QueryError),
    Lang(String),
}

fn run_query(
    shared: &Shared,
    req: &QueryRequest,
    token: &CancelToken,
) -> Result<QueryOutcome, Failure> {
    // Deterministic chaos hook: the request boundary is fault-injection
    // boundary zero for this task chain.
    fault_point(Some(token));
    let mut opts = AnalysisOptions::default();
    opts.bounds.region_budget = req
        .region_budget
        .unwrap_or(opts.bounds.region_budget)
        .clamp(1, shared.config.max_region_budget);
    let program = parse(&req.source).map_err(|e| Failure::Lang(e.to_string()))?;
    let analyzer = Analyzer::from_program_cancellable(
        program,
        opts,
        &shared.cache,
        WorkerPool::global(),
        Some(token),
    )
    .map_err(|e| Failure::Lang(e.to_string()))?;
    let outcome = match req.kind {
        QueryKind::Denotation => analyzer.try_denotation_outcome(req.lo, req.hi, Some(token)),
        QueryKind::Posterior => analyzer.try_posterior_outcome(req.lo, req.hi, Some(token)),
    }
    .map_err(Failure::Query)?;
    Ok(outcome)
}
