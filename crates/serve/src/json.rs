//! A minimal JSON value, parser and serializer (std only).
//!
//! The serving protocol needs exactly one wire format and no external
//! dependencies, so this module implements the subset of JSON the
//! protocol uses: objects, arrays, strings, numbers, booleans and
//! `null`. One deliberate extension: the bare tokens `Infinity`,
//! `-Infinity` and `NaN` parse and print as the corresponding `f64`
//! values — query bounds are extended reals (`⟦P⟧(U) ≤ ∞` for bare ⊤
//! paths) and must round-trip losslessly between client and server.

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep their key order (insertion order
/// on the wire), so serialisation is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, including the nonstandard `Infinity` / `NaN` tokens.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialises the value to its wire string.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

/// Builds an object from key/value pairs (protocol encoding helper).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => {
            if x.is_nan() {
                out.push_str("NaN");
            } else if *x == f64::INFINITY {
                out.push_str("Infinity");
            } else if *x == f64::NEG_INFINITY {
                out.push_str("-Infinity");
            } else {
                // Rust's default float formatting is shortest
                // round-trip, so `parse(to_wire(x)) == x` bit-exactly.
                let _ = write!(out, "{x}");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `text` (must consume the whole input up
/// to trailing whitespace).
///
/// # Errors
///
/// A human-readable description with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at offset {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Json::Null),
            Some(b'N') if self.eat_word("NaN") => Ok(Json::Num(f64::NAN)),
            Some(b'I') if self.eat_word("Infinity") => Ok(Json::Num(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Json::Num(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine a surrogate pair when present;
                            // lone surrogates become U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_word("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{token}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let src = r#"{"kind":"posterior","lo":0.5,"hi":1,"nested":[true,false,null,"a\"b"]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("posterior"));
        assert_eq!(v.get("lo").unwrap().as_f64(), Some(0.5));
        let again = parse(&v.to_wire()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn round_trips_nonfinite_numbers() {
        for x in [f64::INFINITY, f64::NEG_INFINITY, 1e-308, -0.0, 1.0 / 3.0] {
            let wire = Json::Num(x).to_wire();
            let back = parse(&wire).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{wire}");
        }
        assert!(parse("NaN").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "01x", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn depth_is_capped() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
