//! The symbolic executor (Fig. 8 + Algorithm 1's path accumulation),
//! with a shardable branch frontier.
//!
//! # Frontier sharding and determinism
//!
//! Exploration is a tree walk whose only branch points are `if`
//! expressions with undecidable guards. Evaluation is *pure*: the
//! executor carries no mutable global state, every branch owns its
//! [`PState`], and the two sides of a fork are combined in fixed
//! (then-before-else) order. Independent branch continuations can
//! therefore be claimed by worker threads
//! ([`SymExecOptions::frontier_workers`]) without changing the produced
//! path set — the result is the concatenation of the subtree results in
//! program order no matter which thread computed what.
//!
//! The one global resource, the path cap [`SymExecOptions::max_paths`],
//! is made scheduling-independent by **deterministic budget splitting**:
//! each state carries a `path_budget` (max leaves its subtree may
//! produce) and every uncertain branch divides the budget between its
//! two sides *before* any evaluation happens. A branch whose expression
//! is syntactically linear (no `if`, no application anywhere in its
//! subtree) can produce few leaves on its own, so it is assigned a small
//! budget-proportional reserve and the bulk of the budget follows the
//! branchy side —
//! this keeps deep one-sided recursions (geometric, random walks) at
//! full depth while balanced recursion trees degrade exactly like a
//! global cap (a budget `B` supports `log₂ B` levels of halving). A
//! subtree whose budget reaches 1 at a fork is closed off by a single ⊤
//! path, which soundly covers both branches.
//!
//! Since PR 4, big forks are no longer shipped via per-call scoped
//! thread spawns: else-continuations are submitted as tasks to the
//! persistent [`WorkerPool`] ([`WorkerPool::fork_join`]), so repeated
//! symbolic executions reuse the same warm workers as the bounding
//! engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gubpi_analysis::ProgramFacts;
use gubpi_interval::Interval;
use gubpi_lang::{Expr, ExprKind, Name, NodeId, Program};
use gubpi_pool::{CancelToken, WorkerPool};
use gubpi_types::IntervalTyping;

use crate::path::{CmpDir, SymConstraint, SymPath, TailEnclosure, TailPrefix};
use crate::symval::SymVal;

/// Options controlling symbolic exploration.
#[derive(Copy, Clone, Debug)]
pub struct SymExecOptions {
    /// The depth limit `D` of Algorithm 1: fixpoint unfoldings allowed
    /// per path before `approxFix` replaces further applications.
    pub max_fix_unfoldings: u32,
    /// Path budget: an upper bound on the number of paths, enforced by
    /// deterministic budget splitting at every uncertain branch (see the
    /// module docs). Subtrees whose budget is exhausted are closed off
    /// by ⊤ paths (sound but infinitely wide upper bounds).
    pub max_paths: usize,
    /// Evaluation fuel shared along each path.
    pub fuel: u64,
    /// Rust-stack recursion guard.
    pub max_depth: u32,
    /// Worker threads allowed to claim independent branch continuations
    /// of the symbolic-execution frontier. `0` and `1` both mean
    /// sequential. The produced path set is **identical** for every
    /// value (pure evaluation + pre-split budgets); only wall time may
    /// change. [`Analyzer`](../gubpi_core/struct.Analyzer.html) wires
    /// this from its `threads` knob.
    pub frontier_workers: usize,
}

impl Default for SymExecOptions {
    fn default() -> SymExecOptions {
        SymExecOptions {
            max_fix_unfoldings: 16,
            max_paths: 20_000,
            fuel: 5_000_000,
            max_depth: 1_200,
            frontier_workers: 1,
        }
    }
}

/// Floor of the budget reserved for a syntactically linear branch (see
/// [`Executor::split_budget`]): enough for a little post-branch fan-out
/// in its continuation without starving the branchy side. Large budgets
/// reserve proportionally more (`b/32`), so a linear side whose
/// continuation is a whole second recursion is not starved.
const LINEAR_BRANCH_RESERVE: usize = 16;

/// Minimum per-side budget before a fork is worth shipping to another
/// worker thread (forking is free to skip: results do not depend on it).
const FORK_MIN_BUDGET: usize = 16;

/// What the executor did beyond producing paths: pruning activity driven
/// by static [`ProgramFacts`] and the ⊤-path truncation census.
///
/// Pruning never changes the posterior bounds — only which exactly-zero
/// terms are enumerated — so these counts are the observable difference
/// between a pruned and a `--no-prune` run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Uncertain `if` forks where one side was statically dead (every
    /// leaf would carry an exactly-zero score) and was skipped instead
    /// of explored. Counted per skipped side.
    pub pruned_branches: usize,
    /// Paths dropped at a `score` whose argument is statically the
    /// constant `0`: every continuation leaf would contribute exactly
    /// `0.0` to both posterior bounds.
    pub zero_score_drops: usize,
    /// Finished paths that are ⊤ paths
    /// ([`SymPath::budget_truncated`]): subtrees the executor could not
    /// afford (path budget, fuel, or stack depth), as opposed to
    /// `approxFix` truncations which keep the path's own structure.
    pub budget_truncated_paths: usize,
    /// Finished paths truncated *only* by the `approxFix` unfolding
    /// depth ([`SymPath::truncated`] without
    /// [`SymPath::budget_truncated`]): their own structure survives and
    /// their weights stay finite via the typed replacement.
    pub depth_truncated_paths: usize,
    /// ⊤ paths that carry a [`TailEnclosure`](crate::TailEnclosure) —
    /// the cut fell inside a recursion with a recorded tail fact, so
    /// tail-aware bounding can replace the `[0, ∞]` placeholder by a
    /// finite geometric remainder (when `per_step < 1`).
    pub tail_enclosed_paths: usize,
    /// The subset of [`tail_enclosed_paths`](ExecReport::tail_enclosed_paths)
    /// whose enclosure carries an eventually-geometric prefix component
    /// from the ranking pass — usable even at the `per_step = 1`
    /// boundary. The three-way ⊤ census is therefore: ranked tails,
    /// plain tails (`tail_enclosed_paths − ranked_tail_paths`), and
    /// bare ⊤ (`budget_truncated_paths − tail_enclosed_paths`).
    pub ranked_tail_paths: usize,
}

/// Runs symbolic execution from `(P, 0, ∅, ∅)`, returning all finished
/// symbolic (interval) paths.
///
/// `typing` supplies the weight-aware interval types consumed by
/// `approxFix`; fixpoints without usable bounds degrade to ⊤
/// (`[−∞, ∞]`-valued, `[0, ∞]`-weighted) replacements.
pub fn symbolic_paths(
    program: &Program,
    typing: &IntervalTyping,
    opts: SymExecOptions,
) -> Vec<SymPath> {
    symbolic_paths_in(program, typing, opts, WorkerPool::global())
}

/// [`symbolic_paths`] on an explicit persistent worker pool (the
/// process-global pool is used otherwise). Frontier forks become pool
/// tasks; the produced path set is identical for every pool and worker
/// count.
pub fn symbolic_paths_in(
    program: &Program,
    typing: &IntervalTyping,
    opts: SymExecOptions,
    pool: &WorkerPool,
) -> Vec<SymPath> {
    symbolic_paths_report(program, typing, None, None, opts, pool).0
}

/// [`symbolic_paths_in`] with optional static facts and a pruning /
/// truncation census.
///
/// When `facts` is supplied (and not
/// [aborted](ProgramFacts::is_aborted)), the executor
///
/// * drops a path at any `score` whose argument is statically the
///   constant `0` — the score is still *pushed* first, so the dropped
///   subtree's every leaf carries an exactly-zero weight factor and
///   contributes exactly `0.0` to both posterior bounds;
/// * skips a side of an uncertain `if` fork whose every leaf would carry
///   such a score ([`ProgramFacts::dead_branch_cost`]), but only when
///   the remaining fuel and stack depth prove the unpruned run could not
///   have ⊤-truncated *inside* that side before reaching the zero score
///   (a ⊤ path cut short of the score would carry real mass). The budget
///   split happens exactly as without facts and the dead side's share is
///   discarded, never reallocated.
///
/// Both rules remove only exactly-zero terms from the bound sums, so a
/// pruned run is bit-identical to a facts-free (`--no-prune`) run — just
/// with fewer enumerated paths.
///
/// `tail_facts` is deliberately a *separate* parameter from the pruning
/// `facts`: when supplied, ⊤ paths cut inside a recursion with a
/// recorded [`TailFact`](gubpi_analysis::TailFact) carry a
/// [`TailEnclosure`](crate::TailEnclosure) as plain data. Attaching the
/// enclosure never changes a path's own denotation, so tail facts may
/// flow in even under `--no-prune` without perturbing the pruning
/// bit-identity contract; whether the enclosure is *used* is decided by
/// the tail-aware bounding layer (`gubpi_core::pathbounds`).
pub fn symbolic_paths_report(
    program: &Program,
    typing: &IntervalTyping,
    facts: Option<&ProgramFacts>,
    tail_facts: Option<&ProgramFacts>,
    opts: SymExecOptions,
    pool: &WorkerPool,
) -> (Vec<SymPath>, ExecReport) {
    symbolic_paths_report_cancellable(program, typing, facts, tail_facts, opts, pool, None)
}

/// [`symbolic_paths_report`] polling a cooperative [`CancelToken`]
/// along the frontier.
///
/// Once the token fires, every still-running branch closes off as a ⊤
/// path at its next checkpoint — the same sound "anything can happen
/// beyond this point" closure a budget or fuel exhaustion produces, so
/// the truncated path set still encloses the program's denotation
/// (just more coarsely). The checkpoint sits next to the fuel check:
/// the latched flag is read on every node and the deadline clock every
/// 1024 nodes, so expiry is observed promptly without a per-node
/// syscall. `None` reproduces the uncancellable behaviour exactly.
pub fn symbolic_paths_report_cancellable(
    program: &Program,
    typing: &IntervalTyping,
    facts: Option<&ProgramFacts>,
    tail_facts: Option<&ProgramFacts>,
    opts: SymExecOptions,
    pool: &WorkerPool,
    cancel: Option<&CancelToken>,
) -> (Vec<SymPath>, ExecReport) {
    let workers = opts.frontier_workers.max(1);
    pool.reserve(workers);
    let mut linear = HashMap::new();
    mark_linear(&program.root, &mut linear);
    let ex = Executor {
        typing,
        opts,
        // Aborted fact tables dropped their semantic entries, so they
        // never claim a score is zero or a branch dead — but gate here
        // too so the contract does not depend on that.
        facts: facts.filter(|f| !f.is_aborted()),
        tail_facts,
        linear,
        pool,
        cancel,
        fork_budget: AtomicUsize::new(workers - 1),
        pruned_branches: AtomicUsize::new(0),
        zero_score_drops: AtomicUsize::new(0),
    };
    let st = PState {
        n: 0,
        constraints: Vec::new(),
        scores: Vec::new(),
        unfoldings: opts.max_fix_unfoldings,
        truncated: false,
        fuel: opts.fuel,
        path_budget: opts.max_paths.max(1),
        active_fix: None,
    };
    let leaves = ex.eval(&program.root, &SEnv::empty(), st, 0);
    let paths: Vec<SymPath> = leaves
        .into_iter()
        .map(|(v, st)| match v {
            Some(SValue::Sym(result)) => SymPath {
                result,
                n_samples: st.n,
                constraints: st.constraints,
                scores: st.scores,
                truncated: st.truncated,
                budget_truncated: false,
                tail: None,
            },
            _ => ex.top_path(st),
        })
        .collect();
    let report = ExecReport {
        pruned_branches: ex.pruned_branches.load(Ordering::Relaxed),
        zero_score_drops: ex.zero_score_drops.load(Ordering::Relaxed),
        budget_truncated_paths: paths.iter().filter(|p| p.budget_truncated).count(),
        depth_truncated_paths: paths
            .iter()
            .filter(|p| p.truncated && !p.budget_truncated)
            .count(),
        tail_enclosed_paths: paths.iter().filter(|p| p.tail.is_some()).count(),
        ranked_tail_paths: paths
            .iter()
            .filter(|p| p.tail.is_some_and(|t| t.prefix.is_some()))
            .count(),
    };
    (paths, report)
}

/// Marks every node whose subtree is *syntactically linear*: free of
/// `if` and of application, hence guaranteed to evaluate to a single
/// branch. Used by the budget splitter; node ids survive the executor's
/// body clones, so one pre-pass covers all evaluated expressions.
fn mark_linear(e: &Expr, map: &mut HashMap<NodeId, bool>) -> bool {
    let linear = match &e.kind {
        ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => true,
        // A λ/μ *value* is a single branch; its body only runs when
        // applied, and applications make the applying context branchy.
        ExprKind::Lam(_, body) | ExprKind::Fix(_, _, body) => {
            mark_linear(body, map);
            true
        }
        ExprKind::App(f, a) => {
            mark_linear(f, map);
            mark_linear(a, map);
            false
        }
        ExprKind::If(c, t, els) => {
            mark_linear(c, map);
            mark_linear(t, map);
            mark_linear(els, map);
            false
        }
        ExprKind::Prim(_, args) => {
            let mut all = true;
            for a in args {
                all &= mark_linear(a, map);
            }
            all
        }
        ExprKind::Score(m) => mark_linear(m, map),
    };
    map.insert(e.id, linear);
    linear
}

/// Symbolic runtime values.
#[derive(Clone)]
enum SValue {
    Sym(Arc<SymVal>),
    Closure {
        param: Name,
        body: Arc<Expr>,
        env: SEnv,
    },
    Fix {
        node: NodeId,
        fname: Name,
        param: Name,
        body: Arc<Expr>,
        env: SEnv,
    },
    /// A higher-order `approxFix` stub: behaves as
    /// `λ_…λ_. score([e,f]); [c,d]` with `remaining` parameters left.
    ApproxFun {
        remaining: u32,
        value: Interval,
        weight: Interval,
    },
}

/// Persistent environment (`Arc`-linked so branch continuations can be
/// claimed by other worker threads).
#[derive(Clone, Default)]
struct SEnv(Option<Arc<SNode>>);

struct SNode {
    name: Name,
    value: SValue,
    rest: SEnv,
}

impl SEnv {
    fn empty() -> SEnv {
        SEnv(None)
    }
    fn bind(&self, name: Name, value: SValue) -> SEnv {
        SEnv(Some(Arc::new(SNode {
            name,
            value,
            rest: self.clone(),
        })))
    }
    fn lookup(&self, name: &str) -> Option<&SValue> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &*node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// Per-path execution state.
#[derive(Clone)]
struct PState {
    n: usize,
    constraints: Vec<SymConstraint>,
    scores: Vec<Arc<SymVal>>,
    unfoldings: u32,
    truncated: bool,
    fuel: u64,
    /// Maximum number of leaves this state's subtree may produce.
    /// Divided deterministically at every uncertain branch; always ≥ 1.
    path_budget: usize,
    /// The most recently applied `μ` node and how many times this path
    /// has applied it — the truncation site a budget cut is attributed
    /// to when attaching a tail enclosure. Census-grade: it may point at
    /// an already-completed loop, which only mislabels the attribution
    /// (the enclosure itself bounds the whole remaining program).
    active_fix: Option<(NodeId, u32)>,
}

type Branches = Vec<(Option<SValue>, PState)>;

struct Executor<'a> {
    typing: &'a IntervalTyping,
    opts: SymExecOptions,
    /// Static pre-execution facts enabling dead-branch pruning; `None`
    /// reproduces the historical (`--no-prune`) behaviour exactly.
    facts: Option<&'a ProgramFacts>,
    /// Facts consulted only for tail enclosures on ⊤ paths — kept apart
    /// from the prune gate so `--no-prune` runs still attach tails.
    tail_facts: Option<&'a ProgramFacts>,
    /// `NodeId →` "subtree is syntactically linear" (see [`mark_linear`]).
    linear: HashMap<NodeId, bool>,
    /// The persistent executor that runs claimed else-continuations.
    pool: &'a WorkerPool,
    /// Cooperative cancellation: once fired, branches close off as ⊤
    /// paths at their next evaluation checkpoint (sound truncation).
    cancel: Option<&'a CancelToken>,
    /// Spare fork slots for frontier sharding (`frontier_workers − 1`):
    /// caps how many else-continuations this execution may have in
    /// flight on the pool, independent of the pool's own size.
    fork_budget: AtomicUsize,
    /// Skipped dead `if` sides (atomic: branch continuations may be
    /// claimed by pool workers).
    pruned_branches: AtomicUsize,
    /// Paths dropped at a statically-zero `score`.
    zero_score_drops: AtomicUsize,
}

impl Executor<'_> {
    /// A sound "anything can happen beyond this point" path. When the
    /// cut fell inside a recursion with a recorded tail fact, the
    /// geometric-remainder enclosure rides along as data — substituted
    /// for the `[0, ∞]` placeholder only by tail-aware bounding.
    fn top_path(&self, st: PState) -> SymPath {
        let tail = st.active_fix.and_then(|(node, k)| {
            self.tail_facts
                .and_then(|f| f.tail_fact(node))
                .map(|tf| TailEnclosure {
                    unfoldings_explored: k,
                    per_step_weight: tf.per_step,
                    continuation_weight: tf.continuation,
                    prefix: tf.ranked.map(|r| TailPrefix {
                        prefix_bound: r.prefix_bound,
                        rate: r.rate,
                        prefix_weight: r.prefix_weight,
                    }),
                })
        });
        let mut scores = st.scores;
        scores.push(Arc::new(SymVal::Interval(Interval::NON_NEG)));
        SymPath {
            result: Arc::new(SymVal::Interval(Interval::REAL)),
            n_samples: st.n,
            constraints: st.constraints,
            scores,
            truncated: true,
            budget_truncated: true,
            tail,
        }
    }

    fn eval(&self, e: &Expr, env: &SEnv, st: PState, depth: u32) -> Branches {
        if depth >= self.opts.max_depth {
            return vec![(None, st)];
        }
        self.eval_inner(e, env, st, depth + 1)
    }

    fn eval_inner(&self, e: &Expr, env: &SEnv, mut st: PState, depth: u32) -> Branches {
        if st.fuel == 0 {
            return vec![(None, st)];
        }
        // Cancellation checkpoint, co-located with the fuel check: the
        // latched flag is a relaxed load per node; the deadline clock is
        // consulted every 1024 nodes (keyed off the monotone fuel
        // counter, so the cadence is deterministic per path).
        if let Some(token) = self.cancel {
            let cancelled = if st.fuel & 0x3FF == 0 {
                token.is_cancelled()
            } else {
                token.is_cancelled_fast()
            };
            if cancelled {
                return vec![(None, st)];
            }
        }
        st.fuel -= 1;
        match &e.kind {
            ExprKind::Var(x) => match env.lookup(x) {
                Some(v) => vec![(Some(v.clone()), st)],
                None => vec![(None, st)],
            },
            ExprKind::Const(r) => vec![(Some(SValue::Sym(Arc::new(SymVal::Const(*r)))), st)],
            ExprKind::Sample => {
                let v = Arc::new(SymVal::Sample(st.n));
                st.n += 1;
                vec![(Some(SValue::Sym(v)), st)]
            }
            ExprKind::Lam(param, body) => vec![(
                Some(SValue::Closure {
                    param: param.clone(),
                    body: Arc::new((**body).clone()),
                    env: env.clone(),
                }),
                st,
            )],
            ExprKind::Fix(fname, param, body) => vec![(
                Some(SValue::Fix {
                    node: e.id,
                    fname: fname.clone(),
                    param: param.clone(),
                    body: Arc::new((**body).clone()),
                    env: env.clone(),
                }),
                st,
            )],
            ExprKind::App(f, a) => {
                let fs = self.eval(f, env, st, depth);
                self.bind(fs, |ex, fv, st1| {
                    let args = ex.eval(a, env, st1, depth);
                    ex.bind(args, |ex, av, st2| ex.apply(fv.clone(), av, st2, depth))
                })
            }
            ExprKind::If(c, t, els) => {
                let cs = self.eval(c, env, st, depth);
                self.bind(cs, |ex, cv, st1| {
                    let guard = match cv {
                        SValue::Sym(v) => v,
                        _ => return vec![(None, st1)],
                    };
                    let range = guard.crude_range(st1.n);
                    if range.hi() <= 0.0 {
                        ex.eval(t, env, st1, depth)
                    } else if range.lo() > 0.0 {
                        ex.eval(els, env, st1, depth)
                    } else {
                        if st1.path_budget <= 1 {
                            // No budget to represent both branches: one ⊤
                            // path soundly covers the whole subtree.
                            return vec![(None, st1)];
                        }
                        let (b_then, b_else) = ex.split_budget(st1.path_budget, t, els);
                        let mut st_then = st1.clone();
                        st_then.path_budget = b_then;
                        st_then.constraints.push(SymConstraint {
                            value: guard.clone(),
                            dir: CmpDir::LeZero,
                        });
                        let mut st_else = st1;
                        st_else.path_budget = b_else;
                        st_else.constraints.push(SymConstraint {
                            value: guard,
                            dir: CmpDir::GtZero,
                        });
                        // Dead-branch pruning: a side all of whose leaves
                        // would carry an exactly-zero score is skipped
                        // (its budget share is discarded, not
                        // reallocated, so the sibling explores exactly
                        // the same subtree as without pruning).
                        let skip_then = ex.prunable(t.id, &st_then, depth);
                        let skip_else = ex.prunable(els.id, &st_else, depth);
                        match (skip_then, skip_else) {
                            (false, false) => ex.eval_fork(t, els, env, st_then, st_else, depth),
                            (true, false) => {
                                ex.pruned_branches.fetch_add(1, Ordering::Relaxed);
                                ex.eval(els, env, st_else, depth)
                            }
                            (false, true) => {
                                ex.pruned_branches.fetch_add(1, Ordering::Relaxed);
                                ex.eval(t, env, st_then, depth)
                            }
                            (true, true) => {
                                ex.pruned_branches.fetch_add(2, Ordering::Relaxed);
                                vec![]
                            }
                        }
                    }
                })
            }
            ExprKind::Prim(op, args) => {
                let mut partial: Vec<(Vec<Arc<SymVal>>, PState)> = vec![(Vec::new(), st)];
                let mut dead: Vec<PState> = Vec::new();
                for a in args {
                    let mut next = Vec::new();
                    for (prefix, stp) in partial {
                        for (v, stn) in self.eval(a, env, stp, depth) {
                            match v {
                                Some(SValue::Sym(sv)) => {
                                    let mut p2 = prefix.clone();
                                    p2.push(sv);
                                    next.push((p2, stn));
                                }
                                _ => dead.push(stn),
                            }
                        }
                    }
                    partial = next;
                }
                let op = *op;
                let mut out: Branches = partial
                    .into_iter()
                    .map(|(argv, stn)| (Some(SValue::Sym(SymVal::prim(op, argv))), stn))
                    .collect();
                out.extend(dead.into_iter().map(|stn| (None, stn)));
                out
            }
            ExprKind::Score(m) => {
                let ms = self.eval(m, env, st, depth);
                self.bind(ms, |ex, mv, mut st1| {
                    let v = match mv {
                        SValue::Sym(v) => v,
                        _ => return vec![(None, st1)],
                    };
                    // Fig. 8 adds V ≥ 0 to Δ; we skip the constraint when
                    // the value is structurally non-negative (pdfs).
                    let range = v.crude_range(st1.n);
                    if range.lo() < 0.0 {
                        st1.constraints.push(SymConstraint {
                            value: SymVal::prim(gubpi_lang::PrimOp::Neg, vec![v.clone()]),
                            dir: CmpDir::LeZero,
                        });
                    }
                    st1.scores.push(v.clone());
                    // Zero-score drop: once a score that is statically
                    // the constant `0` has been *pushed*, every leaf of
                    // the continuation — including later ⊤ paths —
                    // carries the `[0, 0]` factor, so the whole subtree
                    // contributes exactly `0.0` to both bounds.
                    // Unconditionally sound; no fuel/depth guard needed.
                    if ex.facts.is_some_and(|f| f.score_is_zero(e.id)) {
                        ex.zero_score_drops.fetch_add(1, Ordering::Relaxed);
                        return vec![];
                    }
                    vec![(Some(SValue::Sym(v)), st1)]
                })
            }
        }
    }

    /// Splits a branch budget `b ≥ 2` between the two sides of a fork.
    ///
    /// A syntactically linear side ([`mark_linear`]) gets a small
    /// reserve and the branchy side inherits the rest, so one-sided
    /// recursions keep (nearly) full depth; otherwise the budget is
    /// halved. The reserve is budget-proportional (`b/32`, floored at
    /// [`LINEAR_BRANCH_RESERVE`]): a linear side's *continuation* may
    /// itself be a whole second recursion (`geo 0 + geo 0`), and a
    /// fixed 16-entry reserve starved it while thousands of budget
    /// units sat unused on the first recursion's spine. Both sides
    /// always receive ≥ 1 and the shares sum to `b`, which is what
    /// makes `max_paths` a hard cap on the leaf count.
    fn split_budget(&self, b: usize, t: &Expr, els: &Expr) -> (usize, usize) {
        let lin = |e: &Expr| self.linear.get(&e.id).copied().unwrap_or(false);
        let reserve = LINEAR_BRANCH_RESERVE.max(b / 32).min(b / 2).max(1);
        match (lin(t), lin(els)) {
            (true, false) => (reserve, b - reserve),
            (false, true) => (b - reserve, reserve),
            _ => (b - b / 2, b / 2),
        }
    }

    /// May the side of an uncertain fork rooted at `id` be skipped
    /// without changing the bounds?
    ///
    /// Requires a static dead-branch fact (every leaf of an *inert*
    /// subtree carries an exactly-zero score) **and** enough fuel and
    /// stack depth that the unpruned run could not have ⊤-truncated
    /// inside the side before pushing that score — a ⊤ path cut short of
    /// the zero score carries real mass, and pruning must stay
    /// bit-identical to `--no-prune` even under truncation. The fact's
    /// cost is the subtree's node count, which bounds both its fuel use
    /// (one unit per evaluated node) and its depth growth (nesting ≤
    /// size). Inert subtrees contain no `if`, so the path budget is
    /// never consulted inside them.
    fn prunable(&self, id: NodeId, st: &PState, depth: u32) -> bool {
        self.facts
            .and_then(|f| f.dead_branch_cost(id))
            .is_some_and(|cost| {
                st.fuel > cost && (depth as u64).saturating_add(cost) < self.opts.max_depth as u64
            })
    }

    /// Evaluates the two sides of an uncertain branch, submitting the
    /// else-continuation as a persistent-pool task when a fork slot is
    /// free and the fork is big enough to amortise the hand-off. Purity
    /// plus pre-split budgets make the result independent of the fork
    /// decision, so the claim heuristic cannot perturb the path set.
    fn eval_fork(
        &self,
        t: &Expr,
        els: &Expr,
        env: &SEnv,
        st_then: PState,
        st_else: PState,
        depth: u32,
    ) -> Branches {
        let parallel =
            st_then.path_budget.min(st_else.path_budget) >= FORK_MIN_BUDGET && self.claim_slot();
        if parallel {
            let (then_out, else_out) = self.pool.fork_join(
                || self.eval(t, env, st_then, depth),
                || self.eval(els, env, st_else, depth),
            );
            self.release_slot();
            let mut out = then_out;
            out.extend(else_out);
            out
        } else {
            let mut out = self.eval(t, env, st_then, depth);
            out.extend(self.eval(els, env, st_else, depth));
            out
        }
    }

    fn claim_slot(&self) -> bool {
        self.fork_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok()
    }

    fn release_slot(&self) {
        self.fork_budget.fetch_add(1, Ordering::Relaxed);
    }

    fn apply(&self, f: SValue, a: SValue, st: PState, depth: u32) -> Branches {
        match f {
            SValue::Closure { param, body, env } => {
                let env2 = env.bind(param, a);
                self.eval(&body, &env2, st, depth)
            }
            SValue::Fix {
                node,
                fname,
                param,
                body,
                env,
            } => {
                if st.unfoldings == 0 {
                    return self.approx_fix(node, st);
                }
                let mut st2 = st;
                st2.unfoldings -= 1;
                st2.active_fix = Some((
                    node,
                    match st2.active_fix {
                        Some((n, k)) if n == node => k + 1,
                        _ => 1,
                    },
                ));
                let rec = SValue::Fix {
                    node,
                    fname: fname.clone(),
                    param: param.clone(),
                    body: body.clone(),
                    env: env.clone(),
                };
                let env2 = env.bind(fname, rec).bind(param, a);
                self.eval(&body, &env2, st2, depth)
            }
            SValue::ApproxFun {
                remaining,
                value,
                weight,
            } => {
                let mut st2 = st;
                st2.truncated = true;
                if remaining == 0 {
                    Self::finish_approx(value, weight, st2)
                } else {
                    vec![(
                        Some(SValue::ApproxFun {
                            remaining: remaining - 1,
                            value,
                            weight,
                        }),
                        st2,
                    )]
                }
            }
            SValue::Sym(_) => vec![(None, st)],
        }
    }

    /// `approxFix` (§6.2): replace the application of an exhausted
    /// fixpoint by `λ_…λ_. score([e, f]); [c, d]` from its interval type
    /// (curried fixpoints keep absorbing arguments until ground).
    fn approx_fix(&self, node: NodeId, mut st: PState) -> Branches {
        let (extra, value, weight) =
            self.typing
                .fix_apply_chain(node)
                .unwrap_or((0, Interval::REAL, Interval::NON_NEG));
        st.truncated = true;
        if extra == 0 {
            Self::finish_approx(value, weight, st)
        } else {
            vec![(
                Some(SValue::ApproxFun {
                    remaining: extra - 1,
                    value,
                    weight,
                }),
                st,
            )]
        }
    }

    /// Emits the ground `score([e,f]); [c,d]` of an approxFix stub.
    fn finish_approx(value: Interval, weight: Interval, mut st: PState) -> Branches {
        if weight != Interval::ONE {
            st.scores
                .push(Arc::new(SymVal::Interval(weight.clamp_non_neg())));
        }
        vec![(Some(SValue::Sym(Arc::new(SymVal::Interval(value)))), st)]
    }

    fn bind(
        &self,
        branches: Branches,
        mut f: impl FnMut(&Self, SValue, PState) -> Branches,
    ) -> Branches {
        let mut out = Branches::new();
        for (v, st) in branches {
            match v {
                Some(v) => out.extend(f(self, v, st)),
                None => out.push((None, st)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_types::infer_interval_types;

    fn paths_for(src: &str, unfold: u32) -> Vec<SymPath> {
        paths_with(
            src,
            SymExecOptions {
                max_fix_unfoldings: unfold,
                ..Default::default()
            },
        )
    }

    fn paths_with(src: &str, opts: SymExecOptions) -> Vec<SymPath> {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        symbolic_paths(&p, &typing, opts)
    }

    #[test]
    fn straight_line_gives_one_path() {
        let ps = paths_for("3 * sample + 1", 4);
        assert_eq!(ps.len(), 1);
        let p = &ps[0];
        assert_eq!(p.n_samples, 1);
        assert!(p.constraints.is_empty());
        assert!(p.scores.is_empty());
        assert!(!p.truncated);
        assert_eq!(p.result.eval(&[0.5]), gubpi_interval::Interval::point(2.5));
    }

    #[test]
    fn branching_gives_two_paths_with_constraints() {
        let ps = paths_for("if sample <= 0.5 then 1 else 2", 4);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.constraints.len(), 1);
            assert!(!p.truncated);
        }
        let dirs: Vec<CmpDir> = ps.iter().map(|p| p.constraints[0].dir).collect();
        assert!(dirs.contains(&CmpDir::LeZero) && dirs.contains(&CmpDir::GtZero));
    }

    #[test]
    fn deterministic_guards_do_not_branch() {
        let ps = paths_for(
            "let rec fact n = if n <= 0 then 1 else n * fact (n - 1) in fact 5",
            32,
        );
        assert_eq!(ps.len(), 1);
        assert_eq!(*ps[0].result, SymVal::Const(120.0));
    }

    #[test]
    fn scores_are_recorded() {
        let ps = paths_for("observe sample from normal(0.5, 0.1); 1", 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].scores.len(), 1);
        // pdf is structurally non-negative: no extra constraint.
        assert!(ps[0].constraints.is_empty());
    }

    #[test]
    fn possibly_negative_scores_get_a_constraint() {
        let ps = paths_for("score(sample - 0.5); 1", 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].constraints.len(), 1);
    }

    #[test]
    fn example_6_1_pedestrian_paths() {
        let src = "
            let start = 3 * sample in
            let rec walk x =
              if x <= 0 then 0 else
                let step = sample in
                if sample <= 0.5 then step + walk (x + step)
                else step + walk (x - step)
            in
            let d = walk start in
            observe d from normal(1.1, 0.1);
            start";
        let ps = paths_for(src, 3);
        assert!(ps.len() > 2);
        // Terminating, non-truncated paths return 3·α₀ and carry exactly
        // one score (the observe).
        let exact: Vec<&SymPath> = ps.iter().filter(|p| !p.truncated).collect();
        assert!(!exact.is_empty());
        for p in exact {
            assert_eq!(p.scores.len(), 1);
            let r = p
                .result
                .eval([0.4, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0][..p.n_samples.max(1)].as_ref());
            assert!((r.lo() - 1.2).abs() < 1e-12, "result must be 3·α₀");
            assert!(p.satisfies_single_use(), "Example C.2: Assumption 1 holds");
        }
        // Truncated paths must carry interval literals.
        assert!(ps.iter().any(|p| p.truncated));
    }

    #[test]
    fn truncation_uses_type_bounds() {
        // A recursion with no score: the approxFix replacement should not
        // add any weight factor (weight type is [1,1]).
        let src = "
            let rec walk x =
              if x <= 0 then 0 else walk (x - sample)
            in walk 1";
        let ps = paths_for(src, 2);
        assert!(ps.iter().any(|p| p.truncated));
        for p in ps.iter().filter(|p| p.truncated) {
            assert!(p.scores.is_empty(), "weight [1,1] adds no score factor");
            assert!(p.result.has_intervals());
        }
    }

    #[test]
    fn higher_order_programs_execute() {
        let ps = paths_for("let app f x = f x in app (fn y -> y + sample) 1", 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].n_samples, 1);
    }

    #[test]
    fn deep_one_sided_recursion_keeps_full_depth() {
        // A geometric chain splits once per unfolding, always with a
        // syntactically linear terminating side: the budget splitter must
        // not halve it away. 64 unfoldings ⇒ 65 paths (64 exact + one
        // approxFix truncation), far deeper than log₂(max_paths).
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let ps = paths_for(src, 64);
        assert_eq!(ps.len(), 65);
        assert_eq!(ps.iter().filter(|p| p.truncated).count(), 1);
    }

    #[test]
    fn path_budget_caps_leaves_deterministically() {
        // A full binary tree of coin flips: depth 6 ⇒ 64 leaves
        // unconstrained. With max_paths = 8 the budget splitter must cap
        // the leaf count at 8 (⊤ paths closing off the cut subtrees) and
        // produce the same path set for every worker count.
        let src = "
            let rec flips n =
              if n <= 0 then 0
              else if sample <= 0.5 then flips (n - 1)
              else 1 + flips (n - 1)
            in flips 6";
        let full = paths_for(src, 8);
        assert_eq!(full.iter().filter(|p| !p.truncated).count(), 64);
        let capped = paths_with(
            src,
            SymExecOptions {
                max_fix_unfoldings: 8,
                max_paths: 8,
                ..Default::default()
            },
        );
        assert!(
            capped.len() <= 8,
            "budget must cap leaves: {}",
            capped.len()
        );
        assert!(capped.iter().any(|p| p.truncated));
    }

    #[test]
    fn budget_split_truncation_profile_on_sequential_composition() {
        // ROADMAP "Budget-split truncation profile", resolved: with the
        // fixed 16-entry reserve, a *sequential composition* of two
        // deep recursions (`geo 0 + geo 0`) truncated the second
        // recursion to 31 paths (some of them bare ⊤) while thousands
        // of budget units sat unused on the first one's spine. The
        // budget-proportional reserve (`b/32`) hands every linear-side
        // continuation enough budget for the whole second recursion:
        // 37 paths and no ⊤ paths. The 9 remaining truncations are
        // approxFix *depth* truncations from the shared per-path
        // unfolding counter (a first geo that exits after k unfoldings
        // leaves 8 − k for the second, so each of the 8 exact prefixes
        // plus the first geo's own approxFix ends in one depth
        // truncation: Σ_{k=1..8} (9 − k) + 1 = 37 paths). The profile
        // is budget-independent once the proportional reserve covers
        // the second recursion (same counts at 2 000 and 20 000).
        let compose = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0 + geo 0";
        let single = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let opts = |max_paths| SymExecOptions {
            max_fix_unfoldings: 8,
            max_paths,
            ..Default::default()
        };
        // One geo alone keeps full depth: 8 exact leaves + 1 approxFix.
        let alone = paths_with(single, opts(20_000));
        assert_eq!(alone.len(), 9);
        assert_eq!(alone.iter().filter(|p| p.truncated).count(), 1);
        for cap in [2_000usize, 20_000] {
            let ps = paths_with(compose, opts(cap));
            assert_eq!(ps.len(), 37, "cap={cap}");
            assert_eq!(
                ps.iter().filter(|p| p.truncated).count(),
                9,
                "cap={cap}: only approxFix depth truncations remain"
            );
            assert_eq!(
                ps.iter().filter(|p| p.budget_truncated).count(),
                0,
                "cap={cap}: no ⊤ paths"
            );
        }
    }

    fn paths_report(src: &str, opts: SymExecOptions, prune: bool) -> (Vec<SymPath>, ExecReport) {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        let f = if prune { Some(&facts) } else { None };
        // Tail facts flow in regardless of the prune gate, mirroring
        // the analyzer's wiring.
        symbolic_paths_report(&p, &typing, f, Some(&facts), opts, WorkerPool::global())
    }

    #[test]
    fn dead_branch_pruning_drops_fail_paths() {
        let src = "if sample <= 0.5 then sample else fail";
        let (unpruned, r0) = paths_report(src, SymExecOptions::default(), false);
        let (pruned, r1) = paths_report(src, SymExecOptions::default(), true);
        assert_eq!(r0, ExecReport::default());
        assert_eq!(r1.pruned_branches, 1);
        assert_eq!(r1.zero_score_drops, 0);
        assert_eq!(unpruned.len(), 2);
        assert_eq!(pruned.len(), 1);
        // The surviving path is exactly the unpruned run's live path
        // (same budget split, the dead side's share merely discarded).
        let live: Vec<&SymPath> = unpruned.iter().filter(|p| p.scores.is_empty()).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(*live[0], pruned[0]);
        // The dropped path carried an exactly-zero score.
        let dead: Vec<&SymPath> = unpruned.iter().filter(|p| !p.scores.is_empty()).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(*dead[0].scores[0], SymVal::Const(0.0));
    }

    #[test]
    fn statically_zero_scores_drop_their_continuation() {
        // A `score(0)` in straight-line position: the unpruned run keeps
        // one path whose weight factor is exactly 0; the pruned run
        // drops it at the score (after pushing it), leaving no paths.
        let src = "score(0); sample";
        let (unpruned, _) = paths_report(src, SymExecOptions::default(), false);
        let (pruned, r) = paths_report(src, SymExecOptions::default(), true);
        assert_eq!(unpruned.len(), 1);
        assert_eq!(*unpruned[0].scores[0], SymVal::Const(0.0));
        assert!(pruned.is_empty());
        assert_eq!(r.zero_score_drops, 1);
        assert_eq!(r.pruned_branches, 0);
    }

    #[test]
    fn pruning_is_worker_count_independent() {
        let src = "
            let rec walk x =
              if x <= 0 then 0 else
                if sample <= 0.9 then walk (x - sample) else fail
            in walk 1";
        let opts = |workers| SymExecOptions {
            max_fix_unfoldings: 4,
            frontier_workers: workers,
            ..Default::default()
        };
        let (base, rb) = paths_report(src, opts(1), true);
        assert!(rb.pruned_branches > 0);
        for workers in [2usize, 4, 8] {
            let (sharded, rs) = paths_report(src, opts(workers), true);
            assert_eq!(base, sharded, "pruned path set under {workers} workers");
            assert_eq!(rb, rs, "report under {workers} workers");
        }
    }

    #[test]
    fn budget_truncated_census_counts_top_paths() {
        let src = "
            let rec flips n =
              if n <= 0 then 0
              else if sample <= 0.5 then flips (n - 1)
              else 1 + flips (n - 1)
            in flips 6";
        let opts = SymExecOptions {
            max_fix_unfoldings: 8,
            max_paths: 8,
            ..Default::default()
        };
        let (paths, report) = paths_report(src, opts, false);
        let tops = paths.iter().filter(|p| p.budget_truncated).count();
        assert!(tops > 0, "tight budget must produce ⊤ paths");
        assert_eq!(report.budget_truncated_paths, tops);
        // The census splits truncations by cause: ⊤ (budget) vs
        // approxFix depth. Together they cover every truncated path.
        let depth = paths
            .iter()
            .filter(|p| p.truncated && !p.budget_truncated)
            .count();
        assert_eq!(report.depth_truncated_paths, depth);
        assert_eq!(
            report.budget_truncated_paths + report.depth_truncated_paths,
            paths.iter().filter(|p| p.truncated).count()
        );
        assert_eq!(
            report.tail_enclosed_paths,
            paths.iter().filter(|p| p.tail.is_some()).count()
        );
        // ⊤ paths are a subset of truncated paths; approxFix-only
        // truncations keep budget_truncated == false.
        assert!(paths.iter().all(|p| !p.budget_truncated || p.truncated));
        let (full, full_report) = paths_report(src, SymExecOptions::default(), false);
        assert_eq!(full_report.budget_truncated_paths, 0);
        assert!(full.iter().all(|p| !p.budget_truncated));
    }

    #[test]
    fn top_paths_carry_tail_enclosures_from_contraction_facts() {
        // A coin-guarded loop has a per-unfolding contraction fact
        // ([0, 0.5] for `geo`): every ⊤ path the budget produces must
        // carry it as a `TailEnclosure`, stamped with how many
        // unfoldings the path explored before truncation.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let opts = SymExecOptions {
            max_fix_unfoldings: 16,
            max_paths: 6,
            ..Default::default()
        };
        let (paths, report) = paths_report(src, opts, false);
        let tops: Vec<_> = paths.iter().filter(|p| p.budget_truncated).collect();
        assert!(!tops.is_empty(), "tight budget must produce ⊤ paths");
        for p in &tops {
            let tail = p.tail.expect("⊤ path inside geo must carry a tail fact");
            assert_eq!(tail.per_step_weight.lo(), 0.0);
            assert_eq!(tail.per_step_weight.hi(), 0.5);
            assert_eq!(tail.continuation_weight.hi(), 1.0);
            assert!(tail.unfoldings_explored >= 1);
        }
        assert_eq!(report.tail_enclosed_paths, tops.len());
        // Non-⊤ paths (exact leaves and approxFix truncations) never
        // carry an enclosure: their score lists already close the path.
        assert!(paths.iter().all(|p| p.budget_truncated || p.tail.is_none()));
        // approxFix-only truncation at full budget: no ⊤, no tails.
        let (full, full_report) = paths_report(
            src,
            SymExecOptions {
                max_fix_unfoldings: 4,
                ..Default::default()
            },
            false,
        );
        assert!(full.iter().any(|p| p.truncated));
        assert_eq!(full_report.tail_enclosed_paths, 0);
        assert!(full.iter().all(|p| p.tail.is_none()));
    }

    #[test]
    fn data_guarded_top_paths_carry_the_ranked_prefix() {
        // A data-guarded loop sits at per_step = 1: the plain geometric
        // series is unusable, but the ranking pass attaches an
        // eventually-geometric prefix that the census counts separately.
        let src = "let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1";
        let opts = SymExecOptions {
            max_fix_unfoldings: 16,
            max_paths: 6,
            ..Default::default()
        };
        let (paths, report) = paths_report(src, opts, false);
        let tops: Vec<_> = paths.iter().filter(|p| p.budget_truncated).collect();
        assert!(!tops.is_empty(), "tight budget must produce ⊤ paths");
        for p in &tops {
            let tail = p.tail.expect("⊤ path inside walk must carry the fact");
            assert_eq!(tail.per_step_weight.hi(), 1.0, "no plain decay");
            let prefix = tail.prefix.expect("ranking pass must attach a prefix");
            assert!(prefix.rate.hi() < 1.0);
            assert!(prefix.prefix_weight.hi() <= 1.0);
        }
        assert_eq!(report.ranked_tail_paths, tops.len());
        assert_eq!(report.tail_enclosed_paths, tops.len());
        // The plain-geometric loop's enclosures carry no prefix: its
        // ranked census stays 0 while the tail census counts them.
        let geo = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let (paths, report) = paths_report(geo, opts, false);
        assert!(report.tail_enclosed_paths > 0);
        assert_eq!(report.ranked_tail_paths, 0);
        assert!(paths
            .iter()
            .all(|p| p.tail.is_none_or(|t| t.prefix.is_none())));
    }

    #[test]
    fn tail_enclosures_require_facts_and_respect_analysis_bailouts() {
        let opts = SymExecOptions {
            max_fix_unfoldings: 16,
            max_paths: 6,
            ..Default::default()
        };
        // Without a facts table the executor degrades to bare ⊤ paths.
        let src = "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0";
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let (paths, report) =
            symbolic_paths_report(&p, &typing, None, None, opts, WorkerPool::global());
        assert!(paths.iter().any(|p| p.budget_truncated));
        assert_eq!(report.tail_enclosed_paths, 0);
        assert!(paths.iter().all(|p| p.tail.is_none()));
        // A loop whose body scores with weight above 1 (a sharp normal
        // pdf peaks at ≈ 3.99) gets no tail fact from the analysis, so
        // its ⊤ paths stay bare even with facts wired in.
        let scored = "let rec walk x =
               if x <= 0 then 0 else
                 (observe sample from normal(0.5, 0.1); walk (x - sample))
             in walk 1";
        let (paths, report) = paths_report(scored, opts, false);
        assert!(paths.iter().any(|p| p.budget_truncated));
        assert_eq!(report.tail_enclosed_paths, 0);
        assert!(paths.iter().all(|p| p.tail.is_none()));
    }

    #[test]
    fn frontier_sharding_preserves_the_path_set() {
        let models: &[(&str, u32)] = &[
            (
                "let start = 3 * sample in
                 let rec walk x =
                   if x <= 0 then 0 else
                     let step = sample in
                     if sample <= 0.5 then step + walk (x + step)
                     else step + walk (x - step)
                 in
                 let d = walk start in
                 observe d from normal(1.1, 0.1);
                 start",
                4,
            ),
            (
                "let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0",
                10,
            ),
            ("if sample + sample <= 0.75 then sample else 1 - sample", 2),
        ];
        for &(src, unfold) in models {
            let base = paths_with(
                src,
                SymExecOptions {
                    max_fix_unfoldings: unfold,
                    frontier_workers: 1,
                    ..Default::default()
                },
            );
            for workers in [2usize, 4, 8] {
                let sharded = paths_with(
                    src,
                    SymExecOptions {
                        max_fix_unfoldings: unfold,
                        frontier_workers: workers,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    base.len(),
                    sharded.len(),
                    "{src}: path count under {workers} workers"
                );
                for (i, (a, b)) in base.iter().zip(&sharded).enumerate() {
                    assert_eq!(a, b, "{src}: path {i} differs under {workers} workers");
                }
            }
        }
    }

    #[test]
    fn sharded_execution_with_tight_budget_is_deterministic() {
        // Budget splitting must interact with sharding without any
        // scheduling dependence, even when truncation actually triggers.
        let src = "
            let rec flips n =
              if n <= 0 then 0
              else if sample <= 0.5 then flips (n - 1)
              else 1 + flips (n - 1)
            in flips 8";
        let opts = |workers| SymExecOptions {
            max_fix_unfoldings: 10,
            max_paths: 40,
            frontier_workers: workers,
            ..Default::default()
        };
        let base = paths_with(src, opts(1));
        assert!(base.len() <= 40);
        for workers in [2usize, 4] {
            let sharded = paths_with(src, opts(workers));
            assert_eq!(base, sharded, "path set depends on {workers} workers");
        }
    }
}
