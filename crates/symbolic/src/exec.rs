//! The symbolic executor (Fig. 8 + Algorithm 1's path accumulation).

use std::rc::Rc;
use std::sync::Arc;

use gubpi_interval::Interval;
use gubpi_lang::{Expr, ExprKind, Name, NodeId, Program};
use gubpi_types::IntervalTyping;

use crate::path::{CmpDir, SymConstraint, SymPath};
use crate::symval::SymVal;

/// Options controlling symbolic exploration.
#[derive(Copy, Clone, Debug)]
pub struct SymExecOptions {
    /// The depth limit `D` of Algorithm 1: fixpoint unfoldings allowed
    /// per path before `approxFix` replaces further applications.
    pub max_fix_unfoldings: u32,
    /// Cap on the number of paths; exceeding it yields ⊤ paths (sound but
    /// infinitely wide upper bounds).
    pub max_paths: usize,
    /// Evaluation fuel shared along each path.
    pub fuel: u64,
    /// Rust-stack recursion guard.
    pub max_depth: u32,
}

impl Default for SymExecOptions {
    fn default() -> SymExecOptions {
        SymExecOptions {
            max_fix_unfoldings: 16,
            max_paths: 20_000,
            fuel: 5_000_000,
            max_depth: 1_200,
        }
    }
}

/// Runs symbolic execution from `(P, 0, ∅, ∅)`, returning all finished
/// symbolic (interval) paths.
///
/// `typing` supplies the weight-aware interval types consumed by
/// `approxFix`; fixpoints without usable bounds degrade to ⊤
/// (`[−∞, ∞]`-valued, `[0, ∞]`-weighted) replacements.
pub fn symbolic_paths(
    program: &Program,
    typing: &IntervalTyping,
    opts: SymExecOptions,
) -> Vec<SymPath> {
    let mut ex = Executor {
        typing,
        opts,
        paths: Vec::new(),
        depth: 0,
    };
    let st = PState {
        n: 0,
        constraints: Vec::new(),
        scores: Vec::new(),
        unfoldings: opts.max_fix_unfoldings,
        truncated: false,
        fuel: opts.fuel,
    };
    let leaves = ex.eval(&program.root, &SEnv::empty(), st);
    for (v, st) in leaves {
        match v {
            Some(SValue::Sym(result)) => ex.paths.push(SymPath {
                result,
                n_samples: st.n,
                constraints: st.constraints,
                scores: st.scores,
                truncated: st.truncated,
            }),
            _ => ex.paths.push(top_path(st)),
        }
    }
    ex.paths
}

/// A sound "anything can happen beyond this point" path.
fn top_path(st: PState) -> SymPath {
    let mut scores = st.scores;
    scores.push(Arc::new(SymVal::Interval(Interval::NON_NEG)));
    SymPath {
        result: Arc::new(SymVal::Interval(Interval::REAL)),
        n_samples: st.n,
        constraints: st.constraints,
        scores,
        truncated: true,
    }
}

/// Symbolic runtime values.
#[derive(Clone)]
enum SValue {
    Sym(Arc<SymVal>),
    Closure {
        param: Name,
        body: Rc<Expr>,
        env: SEnv,
    },
    Fix {
        node: NodeId,
        fname: Name,
        param: Name,
        body: Rc<Expr>,
        env: SEnv,
    },
    /// A higher-order `approxFix` stub: behaves as
    /// `λ_…λ_. score([e,f]); [c,d]` with `remaining` parameters left.
    ApproxFun {
        remaining: u32,
        value: Interval,
        weight: Interval,
    },
}

/// Persistent environment.
#[derive(Clone, Default)]
struct SEnv(Option<Rc<SNode>>);

struct SNode {
    name: Name,
    value: SValue,
    rest: SEnv,
}

impl SEnv {
    fn empty() -> SEnv {
        SEnv(None)
    }
    fn bind(&self, name: Name, value: SValue) -> SEnv {
        SEnv(Some(Rc::new(SNode {
            name,
            value,
            rest: self.clone(),
        })))
    }
    fn lookup(&self, name: &str) -> Option<&SValue> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &*node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// Per-path execution state.
#[derive(Clone)]
struct PState {
    n: usize,
    constraints: Vec<SymConstraint>,
    scores: Vec<Arc<SymVal>>,
    unfoldings: u32,
    truncated: bool,
    fuel: u64,
}

type Branches = Vec<(Option<SValue>, PState)>;

struct Executor<'a> {
    typing: &'a IntervalTyping,
    opts: SymExecOptions,
    paths: Vec<SymPath>,
    depth: u32,
}

impl Executor<'_> {
    fn eval(&mut self, e: &Expr, env: &SEnv, st: PState) -> Branches {
        self.depth += 1;
        let r = if self.depth > self.opts.max_depth {
            vec![(None, st)]
        } else {
            self.eval_inner(e, env, st)
        };
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, e: &Expr, env: &SEnv, mut st: PState) -> Branches {
        if st.fuel == 0 {
            return vec![(None, st)];
        }
        st.fuel -= 1;
        match &e.kind {
            ExprKind::Var(x) => match env.lookup(x) {
                Some(v) => vec![(Some(v.clone()), st)],
                None => vec![(None, st)],
            },
            ExprKind::Const(r) => vec![(Some(SValue::Sym(Arc::new(SymVal::Const(*r)))), st)],
            ExprKind::Sample => {
                let v = Arc::new(SymVal::Sample(st.n));
                st.n += 1;
                vec![(Some(SValue::Sym(v)), st)]
            }
            ExprKind::Lam(param, body) => vec![(
                Some(SValue::Closure {
                    param: param.clone(),
                    body: Rc::new((**body).clone()),
                    env: env.clone(),
                }),
                st,
            )],
            ExprKind::Fix(fname, param, body) => vec![(
                Some(SValue::Fix {
                    node: e.id,
                    fname: fname.clone(),
                    param: param.clone(),
                    body: Rc::new((**body).clone()),
                    env: env.clone(),
                }),
                st,
            )],
            ExprKind::App(f, a) => {
                let fs = self.eval(f, env, st);
                self.bind(fs, |ex, fv, st1| {
                    let args = ex.eval(a, env, st1);
                    ex.bind(args, |ex, av, st2| ex.apply(fv.clone(), av, st2))
                })
            }
            ExprKind::If(c, t, els) => {
                let cs = self.eval(c, env, st);
                self.bind(cs, |ex, cv, st1| {
                    let guard = match cv {
                        SValue::Sym(v) => v,
                        _ => return vec![(None, st1)],
                    };
                    let range = guard.crude_range(st1.n);
                    if range.hi() <= 0.0 {
                        ex.eval(t, env, st1)
                    } else if range.lo() > 0.0 {
                        ex.eval(els, env, st1)
                    } else {
                        let mut st_then = st1.clone();
                        st_then.constraints.push(SymConstraint {
                            value: guard.clone(),
                            dir: CmpDir::LeZero,
                        });
                        let mut st_else = st1;
                        st_else.constraints.push(SymConstraint {
                            value: guard,
                            dir: CmpDir::GtZero,
                        });
                        let mut out = ex.eval(t, env, st_then);
                        out.extend(ex.eval(els, env, st_else));
                        out
                    }
                })
            }
            ExprKind::Prim(op, args) => {
                let mut partial: Vec<(Vec<Arc<SymVal>>, PState)> = vec![(Vec::new(), st)];
                for a in args {
                    let mut next = Vec::new();
                    for (prefix, stp) in partial {
                        for (v, stn) in self.eval(a, env, stp) {
                            match v {
                                Some(SValue::Sym(sv)) => {
                                    let mut p2 = prefix.clone();
                                    p2.push(sv);
                                    next.push((p2, stn));
                                }
                                _ => self.emit_top(stn),
                            }
                        }
                    }
                    partial = next;
                }
                let op = *op;
                partial
                    .into_iter()
                    .map(|(argv, stn)| (Some(SValue::Sym(SymVal::prim(op, argv))), stn))
                    .collect()
            }
            ExprKind::Score(m) => {
                let ms = self.eval(m, env, st);
                self.bind(ms, |_ex, mv, mut st1| {
                    let v = match mv {
                        SValue::Sym(v) => v,
                        _ => return vec![(None, st1)],
                    };
                    // Fig. 8 adds V ≥ 0 to Δ; we skip the constraint when
                    // the value is structurally non-negative (pdfs).
                    let range = v.crude_range(st1.n);
                    if range.lo() < 0.0 {
                        st1.constraints.push(SymConstraint {
                            value: SymVal::prim(gubpi_lang::PrimOp::Neg, vec![v.clone()]),
                            dir: CmpDir::LeZero,
                        });
                    }
                    st1.scores.push(v.clone());
                    vec![(Some(SValue::Sym(v)), st1)]
                })
            }
        }
    }

    fn apply(&mut self, f: SValue, a: SValue, st: PState) -> Branches {
        match f {
            SValue::Closure { param, body, env } => {
                let env2 = env.bind(param, a);
                self.eval(&body, &env2, st)
            }
            SValue::Fix {
                node,
                fname,
                param,
                body,
                env,
            } => {
                if st.unfoldings == 0 {
                    return self.approx_fix(node, st);
                }
                let mut st2 = st;
                st2.unfoldings -= 1;
                let rec = SValue::Fix {
                    node,
                    fname: fname.clone(),
                    param: param.clone(),
                    body: body.clone(),
                    env: env.clone(),
                };
                let env2 = env.bind(fname, rec).bind(param, a);
                self.eval(&body, &env2, st2)
            }
            SValue::ApproxFun {
                remaining,
                value,
                weight,
            } => {
                let mut st2 = st;
                st2.truncated = true;
                if remaining == 0 {
                    Self::finish_approx(value, weight, st2)
                } else {
                    vec![(
                        Some(SValue::ApproxFun {
                            remaining: remaining - 1,
                            value,
                            weight,
                        }),
                        st2,
                    )]
                }
            }
            SValue::Sym(_) => vec![(None, st)],
        }
    }

    /// `approxFix` (§6.2): replace the application of an exhausted
    /// fixpoint by `λ_…λ_. score([e, f]); [c, d]` from its interval type
    /// (curried fixpoints keep absorbing arguments until ground).
    fn approx_fix(&mut self, node: NodeId, mut st: PState) -> Branches {
        let (extra, value, weight) =
            self.typing
                .fix_apply_chain(node)
                .unwrap_or((0, Interval::REAL, Interval::NON_NEG));
        st.truncated = true;
        if extra == 0 {
            Self::finish_approx(value, weight, st)
        } else {
            vec![(
                Some(SValue::ApproxFun {
                    remaining: extra - 1,
                    value,
                    weight,
                }),
                st,
            )]
        }
    }

    /// Emits the ground `score([e,f]); [c,d]` of an approxFix stub.
    fn finish_approx(value: Interval, weight: Interval, mut st: PState) -> Branches {
        if weight != Interval::ONE {
            st.scores
                .push(Arc::new(SymVal::Interval(weight.clamp_non_neg())));
        }
        vec![(Some(SValue::Sym(Arc::new(SymVal::Interval(value)))), st)]
    }

    fn emit_top(&mut self, st: PState) {
        self.paths.push(top_path(st));
    }

    fn bind(
        &mut self,
        branches: Branches,
        mut f: impl FnMut(&mut Self, SValue, PState) -> Branches,
    ) -> Branches {
        let mut out = Branches::new();
        for (v, st) in branches {
            if self.paths.len() + out.len() > self.opts.max_paths {
                out.push((None, st));
                continue;
            }
            match v {
                Some(v) => out.extend(f(self, v, st)),
                None => out.push((None, st)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_types::infer_interval_types;

    fn paths_for(src: &str, unfold: u32) -> Vec<SymPath> {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        symbolic_paths(
            &p,
            &typing,
            SymExecOptions {
                max_fix_unfoldings: unfold,
                ..Default::default()
            },
        )
    }

    #[test]
    fn straight_line_gives_one_path() {
        let ps = paths_for("3 * sample + 1", 4);
        assert_eq!(ps.len(), 1);
        let p = &ps[0];
        assert_eq!(p.n_samples, 1);
        assert!(p.constraints.is_empty());
        assert!(p.scores.is_empty());
        assert!(!p.truncated);
        assert_eq!(p.result.eval(&[0.5]), gubpi_interval::Interval::point(2.5));
    }

    #[test]
    fn branching_gives_two_paths_with_constraints() {
        let ps = paths_for("if sample <= 0.5 then 1 else 2", 4);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.constraints.len(), 1);
            assert!(!p.truncated);
        }
        let dirs: Vec<CmpDir> = ps.iter().map(|p| p.constraints[0].dir).collect();
        assert!(dirs.contains(&CmpDir::LeZero) && dirs.contains(&CmpDir::GtZero));
    }

    #[test]
    fn deterministic_guards_do_not_branch() {
        let ps = paths_for(
            "let rec fact n = if n <= 0 then 1 else n * fact (n - 1) in fact 5",
            32,
        );
        assert_eq!(ps.len(), 1);
        assert_eq!(*ps[0].result, SymVal::Const(120.0));
    }

    #[test]
    fn scores_are_recorded() {
        let ps = paths_for("observe sample from normal(0.5, 0.1); 1", 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].scores.len(), 1);
        // pdf is structurally non-negative: no extra constraint.
        assert!(ps[0].constraints.is_empty());
    }

    #[test]
    fn possibly_negative_scores_get_a_constraint() {
        let ps = paths_for("score(sample - 0.5); 1", 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].constraints.len(), 1);
    }

    #[test]
    fn example_6_1_pedestrian_paths() {
        let src = "
            let start = 3 * sample in
            let rec walk x =
              if x <= 0 then 0 else
                let step = sample in
                if sample <= 0.5 then step + walk (x + step)
                else step + walk (x - step)
            in
            let d = walk start in
            observe d from normal(1.1, 0.1);
            start";
        let ps = paths_for(src, 3);
        assert!(ps.len() > 2);
        // Terminating, non-truncated paths return 3·α₀ and carry exactly
        // one score (the observe).
        let exact: Vec<&SymPath> = ps.iter().filter(|p| !p.truncated).collect();
        assert!(!exact.is_empty());
        for p in exact {
            assert_eq!(p.scores.len(), 1);
            let r = p
                .result
                .eval([0.4, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0][..p.n_samples.max(1)].as_ref());
            assert!((r.lo() - 1.2).abs() < 1e-12, "result must be 3·α₀");
            assert!(p.satisfies_single_use(), "Example C.2: Assumption 1 holds");
        }
        // Truncated paths must carry interval literals.
        assert!(ps.iter().any(|p| p.truncated));
    }

    #[test]
    fn truncation_uses_type_bounds() {
        // A recursion with no score: the approxFix replacement should not
        // add any weight factor (weight type is [1,1]).
        let src = "
            let rec walk x =
              if x <= 0 then 0 else walk (x - sample)
            in walk 1";
        let ps = paths_for(src, 2);
        assert!(ps.iter().any(|p| p.truncated));
        for p in ps.iter().filter(|p| p.truncated) {
            assert!(p.scores.is_empty(), "weight [1,1] adds no score factor");
            assert!(p.result.has_intervals());
        }
    }

    #[test]
    fn higher_order_programs_execute() {
        let ps = paths_for("let app f x = f x in app (fn y -> y + sample) 1", 4);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].n_samples, 1);
    }
}
