//! Symbolic values over sample variables (Appendix B).

use std::fmt;
use std::sync::Arc;

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::PrimOp;
use gubpi_polytope::LinExpr;

/// A symbolic value: a term over sample variables `α_i`, constants,
/// interval literals (from `approxFix`) and delayed primitive
/// applications.
#[derive(Clone, Debug, PartialEq)]
pub enum SymVal {
    /// A real constant.
    Const(f64),
    /// An interval literal `[a, b]` (appears after `approxFix`).
    Interval(Interval),
    /// The sample variable `α_i` (0-based).
    Sample(usize),
    /// A delayed primitive application.
    Prim(PrimOp, Vec<Arc<SymVal>>),
}

impl SymVal {
    /// Smart constructor for primitive applications: folds constants so
    /// that deterministic guards stay decidable. Primitives are total —
    /// out-of-domain distribution parameters fold to the zero density
    /// the concrete semantics assigns them — so folding never panics.
    pub fn prim(op: PrimOp, args: Vec<Arc<SymVal>>) -> Arc<SymVal> {
        if args.iter().all(|a| matches!(**a, SymVal::Const(_))) {
            let xs: Vec<f64> = args
                .iter()
                .map(|a| match **a {
                    SymVal::Const(c) => c,
                    _ => unreachable!(),
                })
                .collect();
            return Arc::new(SymVal::Const(op.eval(&xs)));
        }
        Arc::new(SymVal::Prim(op, args))
    }

    /// The largest sample index used, if any.
    pub fn max_sample(&self) -> Option<usize> {
        match self {
            SymVal::Const(_) | SymVal::Interval(_) => None,
            SymVal::Sample(i) => Some(*i),
            SymVal::Prim(_, args) => args.iter().filter_map(|a| a.max_sample()).max(),
        }
    }

    /// Counts how often each sample variable occurs (Assumption 1 of §4.2
    /// requires each count ≤ 1 per constraint/score/result).
    pub fn count_sample_uses(&self, counts: &mut Vec<usize>) {
        match self {
            SymVal::Const(_) | SymVal::Interval(_) => {}
            SymVal::Sample(i) => {
                if counts.len() <= *i {
                    counts.resize(*i + 1, 0);
                }
                counts[*i] += 1;
            }
            SymVal::Prim(_, args) => {
                for a in args {
                    a.count_sample_uses(counts);
                }
            }
        }
    }

    /// Does the value mention any sample variable?
    pub fn has_samples(&self) -> bool {
        self.max_sample().is_some()
    }

    /// Number of primitive applications a recursive walk evaluates —
    /// shared `Arc`s count once per *occurrence*, because a tree walk
    /// re-descends into them every time it meets one. This is both the
    /// kernel's pre-CSE baseline and the per-cell cost of the
    /// tree-walking interpreter.
    pub fn prim_op_count(&self) -> u64 {
        match self {
            SymVal::Const(_) | SymVal::Interval(_) | SymVal::Sample(_) => 0,
            SymVal::Prim(_, args) => 1 + args.iter().map(|a| a.prim_op_count()).sum::<u64>(),
        }
    }

    /// Does the value contain interval literals (i.e. was `approxFix`
    /// involved)?
    pub fn has_intervals(&self) -> bool {
        match self {
            SymVal::Interval(_) => true,
            SymVal::Const(_) | SymVal::Sample(_) => false,
            SymVal::Prim(_, args) => args.iter().any(|a| a.has_intervals()),
        }
    }

    /// `⌜V[s/α]⌝` — evaluates with concrete samples, returning the set of
    /// possible results as an interval (a point iff the value is
    /// interval-free).
    ///
    /// # Panics
    ///
    /// Panics when `s` is shorter than the largest sample index used.
    pub fn eval(&self, s: &[f64]) -> Interval {
        match self {
            SymVal::Const(c) => Interval::point(*c),
            SymVal::Interval(i) => *i,
            SymVal::Sample(i) => Interval::point(s[*i]),
            SymVal::Prim(op, args) => {
                let xs: Vec<Interval> = args.iter().map(|a| a.eval(s)).collect();
                op.eval_interval(&xs)
            }
        }
    }

    /// Interval range over a box of sample values (sound, exact when each
    /// sample occurs at most once — Assumption 1).
    ///
    /// # Panics
    ///
    /// Panics when the box is lower-dimensional than the samples used.
    pub fn range_over_box(&self, b: &BoxN) -> Interval {
        match self {
            SymVal::Const(c) => Interval::point(*c),
            SymVal::Interval(i) => *i,
            SymVal::Sample(i) => b[*i],
            SymVal::Prim(op, args) => {
                let xs: Vec<Interval> = args.iter().map(|a| a.range_over_box(b)).collect();
                op.eval_interval(&xs)
            }
        }
    }

    /// Crude range assuming every sample ranges over `[0, 1]`.
    pub fn crude_range(&self, n_samples: usize) -> Interval {
        self.range_over_box(&BoxN::unit_cube(n_samples))
    }

    /// Extracts an *interval-linear form* `w·α + [a, b]` (§6.4), if the
    /// value is linear in the sample variables: addition, subtraction,
    /// negation, and multiplication/division by interval-free constants.
    pub fn linear_form(&self, dim: usize) -> Option<(LinExpr, Interval)> {
        match self {
            SymVal::Const(c) => Some((LinExpr::constant(dim, *c), Interval::ZERO)),
            SymVal::Interval(i) => Some((LinExpr::constant(dim, 0.0), *i)),
            SymVal::Sample(i) => {
                if *i < dim {
                    Some((LinExpr::var(dim, *i), Interval::ZERO))
                } else {
                    None
                }
            }
            SymVal::Prim(op, args) => match op {
                PrimOp::Add => {
                    let (l1, i1) = args[0].linear_form(dim)?;
                    let (l2, i2) = args[1].linear_form(dim)?;
                    Some((&l1 + &l2, i1 + i2))
                }
                PrimOp::Sub => {
                    let (l1, i1) = args[0].linear_form(dim)?;
                    let (l2, i2) = args[1].linear_form(dim)?;
                    Some((&l1 - &l2, i1 - i2))
                }
                PrimOp::Neg => {
                    let (l, i) = args[0].linear_form(dim)?;
                    Some((-&l, -i))
                }
                PrimOp::Mul => {
                    let (l1, i1) = args[0].linear_form(dim)?;
                    let (l2, i2) = args[1].linear_form(dim)?;
                    // One side must be a pure point constant.
                    if l1.is_constant() && i1.is_point() {
                        let k = l1.constant_term() + i1.lo();
                        Some((l2.scale(k), i2 * Interval::point(k)))
                    } else if l2.is_constant() && i2.is_point() {
                        let k = l2.constant_term() + i2.lo();
                        Some((l1.scale(k), i1 * Interval::point(k)))
                    } else {
                        None
                    }
                }
                PrimOp::Div => {
                    let (l1, i1) = args[0].linear_form(dim)?;
                    let (l2, i2) = args[1].linear_form(dim)?;
                    if l2.is_constant() && i2.is_point() {
                        let k = l2.constant_term() + i2.lo();
                        if k != 0.0 {
                            return Some((l1.scale(1.0 / k), i1 * Interval::point(1.0 / k)));
                        }
                    }
                    None
                }
                _ => None,
            },
        }
    }

    /// Decomposes a value into `f(Z₁, …, Z_m)` where each `Zᵢ` is a
    /// maximal interval-linear sub-expression (Appendix E.1): returns the
    /// skeleton with [`SymVal::Sample`] leaves replaced by placeholder
    /// indices into the returned linear parts.
    ///
    /// Implemented as: if `self` is linear, one part; otherwise recurse
    /// into primitive arguments.
    pub fn linear_decomposition(self: &Arc<SymVal>, dim: usize) -> Decomposition {
        let mut parts = Vec::new();
        let skeleton = decompose(self, dim, &mut parts);
        Decomposition { skeleton, parts }
    }
}

/// The result of [`SymVal::linear_decomposition`]: a skeleton value whose
/// `Sample(k)` leaves index into `parts` (interval-linear functions).
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Skeleton with placeholder `Sample(k)` leaves referring to `parts[k]`.
    pub skeleton: Arc<SymVal>,
    /// The extracted interval-linear sub-expressions.
    pub parts: Vec<(LinExpr, Interval)>,
}

impl Decomposition {
    /// Evaluates the skeleton once each part's range is known.
    pub fn eval_with_part_ranges(&self, ranges: &[Interval]) -> Interval {
        eval_skeleton(&self.skeleton, ranges)
    }
}

fn eval_skeleton(v: &SymVal, ranges: &[Interval]) -> Interval {
    match v {
        SymVal::Const(c) => Interval::point(*c),
        SymVal::Interval(i) => *i,
        SymVal::Sample(k) => ranges[*k],
        SymVal::Prim(op, args) => {
            let xs: Vec<Interval> = args.iter().map(|a| eval_skeleton(a, ranges)).collect();
            op.eval_interval(&xs)
        }
    }
}

fn decompose(v: &Arc<SymVal>, dim: usize, parts: &mut Vec<(LinExpr, Interval)>) -> Arc<SymVal> {
    if let Some(lf) = v.linear_form(dim) {
        // Constant linear forms are inlined as interval literals — the
        // original node may still *syntactically* contain samples (e.g.
        // `0 · α₀`), which must not survive into the skeleton where
        // `Sample` leaves denote part indices.
        if lf.0.is_constant() {
            return Arc::new(SymVal::Interval(
                Interval::point(lf.0.constant_term()) + lf.1,
            ));
        }
        let k = parts.len();
        parts.push(lf);
        return Arc::new(SymVal::Sample(k));
    }
    match &**v {
        SymVal::Prim(op, args) => {
            let new_args = args.iter().map(|a| decompose(a, dim, parts)).collect();
            Arc::new(SymVal::Prim(*op, new_args))
        }
        // Non-linear leaves cannot occur (leaves are always linear).
        _ => v.clone(),
    }
}

impl fmt::Display for SymVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymVal::Const(c) => write!(f, "{c}"),
            SymVal::Interval(i) => write!(f, "{i}"),
            SymVal::Sample(i) => write!(f, "a{i}"),
            SymVal::Prim(op, args) => {
                write!(f, "{}(", op.name())?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> Arc<SymVal> {
        Arc::new(SymVal::Sample(i))
    }
    fn c(x: f64) -> Arc<SymVal> {
        Arc::new(SymVal::Const(x))
    }

    #[test]
    fn constant_folding_in_smart_constructor() {
        let v = SymVal::prim(PrimOp::Add, vec![c(2.0), c(3.0)]);
        assert_eq!(*v, SymVal::Const(5.0));
        let w = SymVal::prim(PrimOp::Add, vec![c(2.0), s(0)]);
        assert!(matches!(*w, SymVal::Prim(..)));
    }

    #[test]
    fn evaluation_substitutes_samples() {
        // 3·α₀ + α₁
        let v = SymVal::prim(
            PrimOp::Add,
            vec![SymVal::prim(PrimOp::Mul, vec![c(3.0), s(0)]), s(1)],
        );
        assert_eq!(v.eval(&[0.5, 0.25]), Interval::point(1.75));
        assert_eq!(v.max_sample(), Some(1));
        assert!(v.has_samples() && !v.has_intervals());
    }

    #[test]
    fn range_over_box_bounds_value() {
        let v = SymVal::prim(PrimOp::Mul, vec![c(3.0), s(0)]);
        assert_eq!(v.crude_range(1), Interval::new(0.0, 3.0));
    }

    #[test]
    fn linear_form_extraction() {
        // 3·α₀ − α₁ + 1 + [0, ∞]
        let v = SymVal::prim(
            PrimOp::Add,
            vec![
                SymVal::prim(
                    PrimOp::Sub,
                    vec![
                        SymVal::prim(PrimOp::Mul, vec![c(3.0), s(0)]),
                        SymVal::prim(PrimOp::Sub, vec![s(1), c(1.0)]),
                    ],
                ),
                Arc::new(SymVal::Interval(Interval::NON_NEG)),
            ],
        );
        let (lin, iv) = v.linear_form(2).expect("linear");
        assert_eq!(lin.coeffs(), &[3.0, -1.0]);
        assert_eq!(lin.constant_term(), 1.0);
        assert_eq!(iv, Interval::NON_NEG);
    }

    #[test]
    fn nonlinear_values_have_no_linear_form() {
        let v = SymVal::prim(PrimOp::Mul, vec![s(0), s(1)]);
        assert!(v.linear_form(2).is_none());
        let w = SymVal::prim(PrimOp::Exp, vec![s(0)]);
        assert!(w.linear_form(1).is_none());
    }

    #[test]
    fn example_e1_decomposition_of_pdf_score() {
        // pdf_normal(1.1, 0.1, α₁ + α₂): one linear part α₁ + α₂.
        let arg = SymVal::prim(PrimOp::Add, vec![s(1), s(2)]);
        let v = SymVal::prim(PrimOp::NormalPdf, vec![c(1.1), c(0.1), arg]);
        let d = v.linear_decomposition(3);
        assert_eq!(d.parts.len(), 1);
        assert_eq!(d.parts[0].0.coeffs(), &[0.0, 1.0, 1.0]);
        // Evaluating the skeleton with the part pinned to [0.9, 0.9]
        // reproduces the pdf at 0.9.
        use gubpi_dist::ContinuousDist;
        let r = d.eval_with_part_ranges(&[Interval::point(0.9)]);
        let want = gubpi_dist::Normal::new(1.1, 0.1).pdf(0.9);
        assert!((r.lo() - want).abs() < 1e-12 && (r.hi() - want).abs() < 1e-12);
    }

    #[test]
    fn sample_use_counting_detects_assumption_1() {
        let ok = SymVal::prim(PrimOp::Add, vec![s(0), s(1)]);
        let mut counts = Vec::new();
        ok.count_sample_uses(&mut counts);
        assert_eq!(counts, vec![1, 1]);
        let bad = SymVal::prim(PrimOp::Sub, vec![s(0), s(0)]);
        let mut counts = Vec::new();
        bad.count_sample_uses(&mut counts);
        assert_eq!(counts, vec![2]);
    }

    #[test]
    fn display_is_compact() {
        let v = SymVal::prim(PrimOp::Add, vec![s(0), c(1.0)]);
        assert_eq!(v.to_string(), "add(a0, 1)");
    }
}
