//! Stochastic symbolic execution of SPCF (§6.1, Appendix B).
//!
//! Each `sample` evaluates to a fresh *sample variable* `α_i`; branching
//! explores both arms while recording symbolic constraints `V ⊲⊳ 0` in
//! `Δ`; `score(V)` records `V` in `Ξ`. A finished path
//! `Ψ = (V, n, Δ, Ξ)` denotes (Lemma B.1)
//!
//! ```text
//! ⟦Ψ⟧(U) = ∫_{Sat_n(Δ)} [V[s/α] ∈ U] · Π_{W∈Ξ} W[s/α] ds
//! ```
//!
//! and the program denotation is the sum over all paths (Theorem 6.1).
//!
//! Recursion is explored up to a per-path fixpoint-unfolding budget;
//! beyond it, `approxFix` (§6.2) replaces the applied fixpoint by
//! `λ_. score([e, f]); [c, d]` with `[c, d]`, `[e, f]` read off the
//! weight-aware interval type of the fixpoint — making the path set
//! finite at the price of interval literals inside the symbolic values.
//!
//! # Example (the pedestrian paths of Example 6.1)
//!
//! ```
//! use gubpi_lang::{infer, parse};
//! use gubpi_symbolic::{symbolic_paths, SymExecOptions};
//! use gubpi_types::infer_interval_types;
//!
//! let p = parse(
//!     "let start = 3 * sample in \
//!      let rec walk x = \
//!        if x <= 0 then 0 else \
//!          let step = sample in \
//!          if sample <= 0.5 then step + walk (x + step) \
//!          else step + walk (x - step) \
//!      in \
//!      let d = walk start in \
//!      observe d from normal(1.1, 0.1); start",
//! ).unwrap();
//! let simple = infer(&p).unwrap();
//! let typing = infer_interval_types(&p, &simple);
//! let paths = symbolic_paths(&p, &typing, SymExecOptions { max_fix_unfoldings: 3, ..Default::default() });
//! assert!(paths.len() > 1);
//! // Every path returns the symbolic value 3·α₁.
//! ```

mod exec;
pub mod kernel;
mod path;
mod symval;

pub use exec::{
    symbolic_paths, symbolic_paths_in, symbolic_paths_report, symbolic_paths_report_cancellable,
    ExecReport, SymExecOptions,
};
pub use gubpi_pool::{CancelToken, WorkerPool};
pub use kernel::{
    kernel_stats, note_kernel_cells, CellBounds, KernelSeed, KernelStats, Tape, TapeScratch, LANES,
};
pub use path::{CmpDir, SymConstraint, SymPath, TailEnclosure, TailPrefix};
pub use symval::SymVal;
