//! Compiled region kernel: symbolic paths lowered to flat interval
//! tapes.
//!
//! The interval trace semantics (§6.3) evaluates four independent
//! recursive walks over the `Arc<SymVal>` trees of a path for **every**
//! grid cell: the ∃- and ∀-passes over the constraints `Δ`, the score
//! product `Π Ξ`, and the result range `V`. Each walk allocates a
//! `Vec<Interval>` per `Prim` node and re-derives shared subterms from
//! scratch. This module lowers a [`SymPath`] **once per query** into a
//! flat SSA *interval tape* and then evaluates the tape per cell with
//! zero allocations, fusing the four walks into one pass:
//!
//! * **Hash-consed CSE** — structurally identical subterms across the
//!   result, every score factor and every constraint share one tape
//!   slot (evaluation is pure, so sharing cannot change a single bit);
//! * **Constant pre-folding** — sample-free subterms are folded at
//!   lowering time with the *same* `PrimOp::eval_interval` call the
//!   tree walker would make per cell, into preloaded constant slots;
//! * **Constraint short-circuiting** — constraints are statically
//!   ordered cheapest-first (fewest additional instructions needed) and
//!   the evaluator bails at the first ∃-test that proves the cell
//!   definitely outside; the ∀-pass reuses the registers computed for
//!   the ∃-pass instead of re-walking the trees;
//! * **Lane-blocked evaluation** — [`Tape::eval_block`] runs the tape
//!   structure-of-arrays over up to [`LANES`] cells at once (separate
//!   contiguous `lo`/`hi` slices per register), so the straight-line
//!   arithmetic instructions autovectorize.
//!
//! # Bit-identity with the tree interpreter
//!
//! Every reported bound is **bit-identical** to the tree-walking
//! interpreter's: each tape instruction computes exactly
//! `PrimOp::eval_interval` of its operand slots (the SoA fast paths
//! replicate the corresponding `Interval` operators literally, NaN
//! repair and `0 · ∞ = 0` convention included), CSE only shares values
//! a pure recomputation would reproduce, constant folding evaluates the
//! same calls at compile time that the walker makes per cell, and the
//! short-circuit order changes *which* work is skipped for excluded
//! cells, never a value that is reported. `tests/kernel_differential.rs`
//! enforces this on random trees and boxes, down to the bits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gubpi_analysis::ProgramFacts;
use gubpi_interval::simd::{abs_lanes, F64x4, SIMD_LANES};
use gubpi_interval::{BoxN, Interval};
use gubpi_lang::PrimOp;

use crate::path::{CmpDir, SymPath};
use crate::symval::SymVal;

/// Static compilation seed derived once per program from the
/// pre-execution [`ProgramFacts`], shared by every tape compiled for
/// that program's paths ([`Tape::for_path_seeded`]).
///
/// Seeding is **value-transparent** by construction: the pre-interned
/// constant pool only renumbers constant slots (every constant still
/// holds the identical bit pattern and is preloaded into its register
/// the same way), and the static constraint order only changes *which*
/// ∃-tests run first — short-circuiting excludes exactly the same cells
/// in any order, and the ∀-pass always tests every check. No reported
/// bound can differ from an unseeded compile, no matter how imprecise
/// the facts are.
#[derive(Clone, Debug, Default)]
pub struct KernelSeed {
    consts: Vec<Interval>,
    const_ids: HashMap<(u64, u64), u32>,
}

impl KernelSeed {
    /// Interns the program's static constant pool (every literal plus
    /// the fixpoint summary intervals) so per-path compiles start from a
    /// warm constant table instead of re-interning per query.
    pub fn from_facts(facts: &ProgramFacts) -> KernelSeed {
        let mut seed = KernelSeed::default();
        for &iv in facts.constant_pool() {
            let key = (iv.lo().to_bits(), iv.hi().to_bits());
            let next = seed.consts.len() as u32;
            if let std::collections::hash_map::Entry::Vacant(e) = seed.const_ids.entry(key) {
                e.insert(next);
                seed.consts.push(iv);
            }
        }
        seed
    }

    /// Number of pre-interned constant slots.
    pub fn len(&self) -> usize {
        self.consts.len()
    }

    /// Is the seed empty (no static constants)?
    pub fn is_empty(&self) -> bool {
        self.consts.is_empty()
    }
}

/// Number of cells evaluated per [`Tape::eval_block`] lane block.
pub const LANES: usize = 16;

// The scheduler floors region-chunk widths at whole lane blocks
// (`gubpi_pool::chunk_width`), and the explicit-SIMD backend walks each
// block in `F64x4` groups; both contracts are compile-time checked.
const _: () = assert!(LANES == gubpi_pool::LANE_GRAIN);
const _: () = assert!(LANES.is_multiple_of(SIMD_LANES));

/// A slot in the tape's register file during compilation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Slot {
    /// Per-cell input `d` (a sample dimension, or a skeleton part).
    Input(u32),
    /// Pre-folded constant `consts[j]`.
    Const(u32),
    /// Output of op node `k` (index into the builder's node list).
    Node(u32),
}

/// One hash-consed primitive-application node.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct Node {
    op: PrimOp,
    args: [Slot; 3],
    n_args: u8,
}

/// One executable tape instruction (SSA: `dst` is written exactly once).
#[derive(Copy, Clone, Debug)]
struct Instr {
    op: PrimOp,
    dst: u32,
    args: [u32; 3],
    n_args: u8,
}

/// One constraint test: evaluate registers up to `after` instructions,
/// then test the sign of register `reg`.
#[derive(Copy, Clone, Debug)]
struct Check {
    reg: u32,
    /// `true` for `V ≤ 0`, `false` for `V > 0` (see [`CmpDir`]).
    le_zero: bool,
    /// Instructions that must have executed before the ∃-test.
    after: u32,
}

/// A compiled interval tape for one [`SymPath`] (or one value).
///
/// Register layout: `[0, n_inputs)` are the per-cell inputs,
/// `[n_inputs, n_inputs + consts)` are pre-folded constants (loaded once
/// per scratch), and each instruction writes the next register.
pub struct Tape {
    n_inputs: usize,
    n_regs: usize,
    consts: Vec<Interval>,
    instrs: Vec<Instr>,
    checks: Vec<Check>,
    scores: Vec<u32>,
    result: u32,
    /// Primitive-application nodes in the source trees *before* CSE
    /// (duplicates counted) — the baseline for the CSE-savings stat.
    tree_nodes: usize,
}

/// The fused per-cell outputs of a tape evaluation.
#[derive(Copy, Clone, Debug)]
pub struct CellBounds {
    /// Range of the result value `V` over the cell.
    pub value: Interval,
    /// Score product `Π Ξ` over the cell (clamped non-negative).
    pub weight: Interval,
    /// Do all constraints hold *definitely* (the ∀ of `⟦Ψ⟧_lb`)?
    pub definite: bool,
}

/// Reusable evaluation scratch: the scalar register slab plus the
/// structure-of-arrays lane slabs. Allocate once per worker/chunk via
/// [`Tape::scratch`]; every per-cell evaluation is then allocation-free.
pub struct TapeScratch {
    regs: Vec<Interval>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    alive: [bool; LANES],
    definite: [bool; LANES],
    value: [Interval; LANES],
    weight: [Interval; LANES],
}

impl TapeScratch {
    /// Writes input dimension `d` of lane `lane` (batched evaluation).
    #[inline]
    pub fn set_input(&mut self, d: usize, lane: usize, iv: Interval) {
        self.lo[d * LANES + lane] = iv.lo();
        self.hi[d * LANES + lane] = iv.hi();
    }

    /// The fused outputs of lane `lane` after [`Tape::eval_block`], or
    /// `None` when the lane's cell is definitely outside the constraints.
    #[inline]
    pub fn lane(&self, lane: usize) -> Option<CellBounds> {
        if !self.alive[lane] {
            return None;
        }
        Some(CellBounds {
            value: self.value[lane],
            weight: self.weight[lane],
            definite: self.definite[lane],
        })
    }
}

// --------------------------------------------------------------------
// Compilation
// --------------------------------------------------------------------

struct Builder {
    n_inputs: usize,
    consts: Vec<Interval>,
    const_ids: HashMap<(u64, u64), u32>,
    /// Constant slots `[0, seed_len)` were pre-interned from a
    /// [`KernelSeed`]; hits against them are counted as seed hits.
    seed_len: usize,
    seed_hits: u64,
    nodes: Vec<Node>,
    node_ids: HashMap<Node, u32>,
    /// `Arc` pointer memo: shared subterms (the values are DAGs) intern
    /// in O(1) instead of re-walking the whole shared subtree.
    ptr_memo: HashMap<*const SymVal, Slot>,
    tree_nodes: usize,
}

impl Builder {
    fn new(n_inputs: usize) -> Builder {
        Builder {
            n_inputs,
            consts: Vec::new(),
            const_ids: HashMap::new(),
            seed_len: 0,
            seed_hits: 0,
            nodes: Vec::new(),
            node_ids: HashMap::new(),
            ptr_memo: HashMap::new(),
            tree_nodes: 0,
        }
    }

    fn seeded(n_inputs: usize, seed: &KernelSeed) -> Builder {
        let mut b = Builder::new(n_inputs);
        b.consts = seed.consts.clone();
        b.const_ids = seed.const_ids.clone();
        b.seed_len = seed.consts.len();
        b
    }

    fn const_slot(&mut self, iv: Interval) -> Slot {
        let key = (iv.lo().to_bits(), iv.hi().to_bits());
        if let Some(&j) = self.const_ids.get(&key) {
            if (j as usize) < self.seed_len {
                self.seed_hits += 1;
            }
            return Slot::Const(j);
        }
        let j = self.consts.len() as u32;
        self.consts.push(iv);
        self.const_ids.insert(key, j);
        Slot::Const(j)
    }

    fn intern(&mut self, v: &Arc<SymVal>) -> Slot {
        let ptr: *const SymVal = Arc::as_ptr(v);
        if let Some(&slot) = self.ptr_memo.get(&ptr) {
            return slot;
        }
        let slot = match &**v {
            SymVal::Const(c) => self.const_slot(Interval::point(*c)),
            SymVal::Interval(i) => self.const_slot(*i),
            SymVal::Sample(i) => {
                assert!(
                    *i < self.n_inputs,
                    "sample index {i} outside the {}-dimensional input space",
                    self.n_inputs
                );
                Slot::Input(*i as u32)
            }
            SymVal::Prim(op, args) => {
                let mut slots = [Slot::Const(0); 3];
                let mut const_args = [Interval::ZERO; 3];
                let mut all_const = true;
                for (j, a) in args.iter().enumerate() {
                    let s = self.intern(a);
                    slots[j] = s;
                    match s {
                        Slot::Const(k) => const_args[j] = self.consts[k as usize],
                        _ => all_const = false,
                    }
                }
                if all_const {
                    // Pre-fold with the exact call the tree walker makes
                    // per cell, so folded slots hold bit-identical values.
                    let folded = op.eval_interval(&const_args[..args.len()]);
                    self.const_slot(folded)
                } else {
                    let node = Node {
                        op: *op,
                        args: slots,
                        n_args: args.len() as u8,
                    };
                    if let Some(&k) = self.node_ids.get(&node) {
                        Slot::Node(k)
                    } else {
                        let k = self.nodes.len() as u32;
                        self.nodes.push(node);
                        self.node_ids.insert(node, k);
                        Slot::Node(k)
                    }
                }
            }
        };
        self.ptr_memo.insert(ptr, slot);
        slot
    }

    /// Marks every op node reachable from `slot` in `needed` and returns
    /// how many of them are not yet emitted.
    fn count_unscheduled(&self, slot: Slot, emitted: &[bool], seen: &mut [bool]) -> usize {
        let Slot::Node(k) = slot else { return 0 };
        let k = k as usize;
        if emitted[k] || seen[k] {
            return 0;
        }
        seen[k] = true;
        let node = self.nodes[k];
        let mut count = 1;
        for j in 0..node.n_args as usize {
            count += self.count_unscheduled(node.args[j], emitted, seen);
        }
        count
    }

    /// Emits (post-order, args left to right) every unemitted node
    /// reachable from `slot` into `order`.
    fn emit(&self, slot: Slot, emitted: &mut [bool], order: &mut Vec<u32>) {
        let Slot::Node(k) = slot else { return };
        if emitted[k as usize] {
            return;
        }
        let node = self.nodes[k as usize];
        for j in 0..node.n_args as usize {
            self.emit(node.args[j], emitted, order);
        }
        emitted[k as usize] = true;
        order.push(k);
    }
}

/// Compiles roots into a tape (shared by [`Tape::for_path`] and
/// [`Tape::for_value`]).
///
/// `static_order`, when present, fixes the ∃-test schedule up front
/// (seeded compiles order constraints by their static interval width
/// once per program) instead of running the per-tape greedy
/// cheapest-first scan. Either schedule excludes exactly the same cells
/// — bailing order changes which work is *skipped*, never a reported
/// value.
fn compile(
    mut b: Builder,
    constraints: &[(Arc<SymVal>, CmpDir)],
    scores: &[Arc<SymVal>],
    result: &Arc<SymVal>,
    static_order: Option<Vec<usize>>,
) -> Tape {
    // Pre-CSE baseline: the op applications a per-cell tree walk
    // performs (`SymVal::prim_op_count` counts shared `Arc`s once per
    // occurrence, exactly like the walker).
    b.tree_nodes = constraints
        .iter()
        .map(|(v, _)| v.prim_op_count())
        .chain(scores.iter().map(|v| v.prim_op_count()))
        .chain(std::iter::once(result.prim_op_count()))
        .sum::<u64>() as usize;
    let constraint_slots: Vec<(Slot, CmpDir)> = constraints
        .iter()
        .map(|(v, dir)| (b.intern(v), *dir))
        .collect();
    let score_slots: Vec<Slot> = scores.iter().map(|v| b.intern(v)).collect();
    let result_slot = b.intern(result);

    let n_nodes = b.nodes.len();
    let mut emitted = vec![false; n_nodes];
    let mut order: Vec<u32> = Vec::with_capacity(n_nodes);

    let mut picks: Vec<(usize, u32)> = Vec::with_capacity(constraint_slots.len());
    if let Some(sched) = static_order {
        // Pre-computed schedule (seeded compiles): emit in the given
        // order, no per-tape cost scan.
        debug_assert_eq!(sched.len(), constraint_slots.len());
        for i in sched {
            b.emit(constraint_slots[i].0, &mut emitted, &mut order);
            picks.push((i, order.len() as u32));
        }
    } else {
        // Cheapest-first static ordering of the ∃-tests: repeatedly pick
        // the constraint needing the fewest additional instructions
        // (ties broken by original index — fully deterministic).
        let mut scheduled = vec![false; constraint_slots.len()];
        let mut seen = vec![false; n_nodes];
        for _ in 0..constraint_slots.len() {
            let mut best: Option<(usize, usize)> = None;
            for (i, &(slot, _)) in constraint_slots.iter().enumerate() {
                if scheduled[i] {
                    continue;
                }
                seen.iter_mut().for_each(|s| *s = false);
                let cost = b.count_unscheduled(slot, &emitted, &mut seen);
                if best.is_none_or(|(_, c)| cost < c) {
                    best = Some((i, cost));
                }
            }
            let (i, _) = best.expect("one unscheduled constraint remains");
            scheduled[i] = true;
            b.emit(constraint_slots[i].0, &mut emitted, &mut order);
            picks.push((i, order.len() as u32));
        }
    }
    for &slot in &score_slots {
        b.emit(slot, &mut emitted, &mut order);
    }
    b.emit(result_slot, &mut emitted, &mut order);

    // Final register numbering: inputs, consts, then instruction
    // outputs in emission order.
    let n_inputs = b.n_inputs;
    let n_consts = b.consts.len();
    let mut node_reg = vec![u32::MAX; n_nodes];
    for (pos, &k) in order.iter().enumerate() {
        node_reg[k as usize] = (n_inputs + n_consts + pos) as u32;
    }
    let reg = |slot: Slot| -> u32 {
        match slot {
            Slot::Input(i) => i,
            Slot::Const(j) => n_inputs as u32 + j,
            Slot::Node(k) => node_reg[k as usize],
        }
    };
    let instrs: Vec<Instr> = order
        .iter()
        .map(|&k| {
            let node = b.nodes[k as usize];
            let mut args = [0u32; 3];
            for (a, &slot) in args.iter_mut().zip(&node.args[..node.n_args as usize]) {
                *a = reg(slot);
            }
            Instr {
                op: node.op,
                dst: node_reg[k as usize],
                args,
                n_args: node.n_args,
            }
        })
        .collect();
    let checks: Vec<Check> = picks
        .iter()
        .map(|&(i, after)| {
            let (slot, dir) = constraint_slots[i];
            Check {
                reg: reg(slot),
                le_zero: dir == CmpDir::LeZero,
                after,
            }
        })
        .collect();
    let (seed_len, seed_hits) = (b.seed_len, b.seed_hits);
    let tape = Tape {
        n_inputs,
        n_regs: n_inputs + n_consts + instrs.len(),
        consts: b.consts,
        instrs,
        checks,
        scores: score_slots.iter().map(|&s| reg(s)).collect(),
        result: reg(result_slot),
        tree_nodes: b.tree_nodes,
    };
    STATS.tapes.fetch_add(1, Ordering::Relaxed);
    STATS
        .instrs
        .fetch_add(tape.instrs.len() as u64, Ordering::Relaxed);
    STATS
        .tree_nodes
        .fetch_add(tape.tree_nodes as u64, Ordering::Relaxed);
    if seed_len > 0 {
        STATS.seeded_tapes.fetch_add(1, Ordering::Relaxed);
        STATS
            .seed_const_hits
            .fetch_add(seed_hits, Ordering::Relaxed);
    }
    tape
}

impl Tape {
    /// Lowers a whole path: constraints (with checkpoints), scores and
    /// result share one hash-consed register file.
    pub fn for_path(path: &SymPath) -> Tape {
        Tape::for_path_seeded(path, None)
    }

    /// [`Tape::for_path`] starting from a per-program [`KernelSeed`]:
    /// the constant table is pre-interned from the static facts and the
    /// ∃-test schedule is fixed by the constraints' static interval
    /// widths (narrow, cheap-to-decide guards first) instead of the
    /// per-tape greedy instruction-cost scan. Produces bit-identical
    /// cell bounds to an unseeded compile (see [`KernelSeed`]).
    pub fn for_path_seeded(path: &SymPath, seed: Option<&KernelSeed>) -> Tape {
        let constraints: Vec<(Arc<SymVal>, CmpDir)> = path
            .constraints
            .iter()
            .map(|c| (c.value.clone(), c.dir))
            .collect();
        let (builder, static_order) = match seed {
            Some(seed) => {
                // Width-ascending schedule; ∞ and NaN widths (unbounded
                // guards) sort last via total_cmp. Stable sort keeps the
                // original index as the deterministic tiebreak.
                let width = |v: &Arc<SymVal>| {
                    let r = v.crude_range(path.n_samples);
                    let w = r.hi() - r.lo();
                    if w.is_nan() {
                        f64::INFINITY
                    } else {
                        w
                    }
                };
                let mut sched: Vec<usize> = (0..constraints.len()).collect();
                sched.sort_by(|&i, &j| {
                    width(&constraints[i].0).total_cmp(&width(&constraints[j].0))
                });
                (Builder::seeded(path.n_samples, seed), Some(sched))
            }
            None => (Builder::new(path.n_samples), None),
        };
        compile(
            builder,
            &constraints,
            &path.scores,
            &path.result,
            static_order,
        )
    }

    /// Lowers a single value over an `n_inputs`-dimensional input space
    /// (used for the linear semantics' score-decomposition skeletons,
    /// whose `Sample(k)` leaves index the decomposition parts).
    pub fn for_value(n_inputs: usize, v: &Arc<SymVal>) -> Tape {
        compile(Builder::new(n_inputs), &[], &[], v, None)
    }

    /// Number of per-cell inputs (sample dimensions / skeleton parts).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of executable instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Is the tape free of executable instructions (fully pre-folded)?
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Primitive-application nodes in the source trees before CSE — the
    /// work a per-cell tree walk performs; `len()` is what remains after
    /// hash-consing and constant pre-folding.
    pub fn tree_nodes(&self) -> usize {
        self.tree_nodes
    }

    /// Deterministic per-region cost estimate (used to seed the
    /// scheduler's adaptive chunk width): instructions plus the fixed
    /// per-cell work (input loads, checks, score product, emission).
    pub fn cost(&self) -> u64 {
        (self.instrs.len() + self.checks.len() + self.scores.len() + self.n_inputs + 1) as u64
    }

    /// Allocates an evaluation scratch (constants preloaded, both the
    /// scalar slab and the lane slabs).
    pub fn scratch(&self) -> TapeScratch {
        let mut regs = vec![Interval::ZERO; self.n_regs];
        let mut lo = vec![0.0; self.n_regs * LANES];
        let mut hi = vec![0.0; self.n_regs * LANES];
        for (j, c) in self.consts.iter().enumerate() {
            let r = self.n_inputs + j;
            regs[r] = *c;
            for l in 0..LANES {
                lo[r * LANES + l] = c.lo();
                hi[r * LANES + l] = c.hi();
            }
        }
        TapeScratch {
            regs,
            lo,
            hi,
            alive: [false; LANES],
            definite: [false; LANES],
            value: [Interval::ZERO; LANES],
            weight: [Interval::ZERO; LANES],
        }
    }

    #[inline]
    fn exec(&self, ins: &Instr, regs: &mut [Interval]) {
        let mut args = [Interval::ZERO; 3];
        for j in 0..ins.n_args as usize {
            args[j] = regs[ins.args[j] as usize];
        }
        regs[ins.dst as usize] = ins.op.eval_interval(&args[..ins.n_args as usize]);
    }

    /// The ∃-test of one check (`definitely = false` in
    /// `SymConstraint::holds_on`).
    #[inline]
    fn possibly(check: &Check, range: Interval) -> bool {
        if check.le_zero {
            range.lo() <= 0.0
        } else {
            range.hi() > 0.0
        }
    }

    /// The ∀-test of one check (`definitely = true`).
    #[inline]
    fn definitely(check: &Check, range: Interval) -> bool {
        if check.le_zero {
            range.hi() <= 0.0
        } else {
            range.lo() > 0.0
        }
    }

    /// Fused single-cell evaluation: runs the tape over one cell
    /// (`dims.len() == n_inputs`), bailing at the first ∃-test that
    /// fails. Returns `None` when the cell is definitely outside the
    /// constraints, otherwise the result range, the score product and
    /// the ∀-verdict — everything `process_region` needs, in one pass.
    pub fn eval_cell(&self, dims: &[Interval], s: &mut TapeScratch) -> Option<CellBounds> {
        debug_assert_eq!(dims.len(), self.n_inputs);
        s.regs[..self.n_inputs].copy_from_slice(dims);
        let mut pc = 0usize;
        for check in &self.checks {
            while pc < check.after as usize {
                self.exec(&self.instrs[pc], &mut s.regs);
                pc += 1;
            }
            if !Tape::possibly(check, s.regs[check.reg as usize]) {
                return None;
            }
        }
        while pc < self.instrs.len() {
            self.exec(&self.instrs[pc], &mut s.regs);
            pc += 1;
        }
        let definite = self
            .checks
            .iter()
            .all(|c| Tape::definitely(c, s.regs[c.reg as usize]));
        let mut weight = Interval::ONE;
        for &sc in &self.scores {
            weight = weight * s.regs[sc as usize].clamp_non_neg();
        }
        Some(CellBounds {
            value: s.regs[self.result as usize],
            weight,
            definite,
        })
    }

    /// Evaluates a value-only tape (no checks, no scores): the range of
    /// the compiled value over the input box. Bit-identical to
    /// `SymVal::range_over_box`.
    pub fn eval_value(&self, dims: &[Interval], s: &mut TapeScratch) -> Interval {
        debug_assert!(self.checks.is_empty() && self.scores.is_empty());
        s.regs[..self.n_inputs].copy_from_slice(dims);
        for ins in &self.instrs {
            self.exec(ins, &mut s.regs);
        }
        s.regs[self.result as usize]
    }

    /// Lane-blocked evaluation of up to [`LANES`] cells at once,
    /// structure-of-arrays. Fill the inputs with
    /// [`TapeScratch::set_input`] first; read the per-lane outcomes with
    /// [`TapeScratch::lane`] afterwards. Returns `false` when every lane
    /// failed an ∃-test (nothing to read). Lanes that fail a check stay
    /// in the block (masked) but their downstream values are never
    /// reported, so batching cannot change a bit of any output.
    pub fn eval_block(&self, s: &mut TapeScratch, lanes: usize) -> bool {
        self.eval_block_via(s, lanes, cfg!(feature = "simd"))
    }

    /// [`Tape::eval_block`] with the lane backend chosen explicitly:
    /// `simd = false` runs the scalar lane loops, `simd = true` the
    /// explicit [`F64x4`] vector ops. Both backends are always compiled
    /// and produce bit-identical outputs (the differential test below
    /// and the `region_kernel` bench enforce it); `eval_block` merely
    /// picks the default from the `simd` cargo feature.
    pub fn eval_block_via(&self, s: &mut TapeScratch, lanes: usize, simd: bool) -> bool {
        debug_assert!(lanes <= LANES && lanes > 0);
        for l in 0..LANES {
            s.alive[l] = l < lanes;
        }
        let mut pc = 0usize;
        for check in &self.checks {
            while pc < check.after as usize {
                self.exec_lanes(&self.instrs[pc], s, lanes, simd);
                pc += 1;
            }
            let base = check.reg as usize * LANES;
            let mut any = false;
            for l in 0..lanes {
                if s.alive[l] {
                    let range = Interval::new(s.lo[base + l], s.hi[base + l]);
                    s.alive[l] = Tape::possibly(check, range);
                    any |= s.alive[l];
                }
            }
            if !any {
                return false;
            }
        }
        while pc < self.instrs.len() {
            self.exec_lanes(&self.instrs[pc], s, lanes, simd);
            pc += 1;
        }
        for l in 0..lanes {
            if !s.alive[l] {
                continue;
            }
            let at = |reg: u32| {
                Interval::new(
                    s.lo[reg as usize * LANES + l],
                    s.hi[reg as usize * LANES + l],
                )
            };
            s.definite[l] = self.checks.iter().all(|c| Tape::definitely(c, at(c.reg)));
            let mut weight = Interval::ONE;
            for &sc in &self.scores {
                weight = weight * at(sc).clamp_non_neg();
            }
            s.weight[l] = weight;
            s.value[l] = at(self.result);
        }
        true
    }

    /// Executes one instruction across all lanes. The cheap arithmetic
    /// ops replicate the corresponding `Interval` operators **exactly**
    /// (same candidate order, same NaN repair, same `0 · ∞ = 0`
    /// convention) as straight-line lane loops the compiler can
    /// vectorize; everything else gathers each lane into `Interval`s and
    /// calls the same `eval_interval` the scalar path uses.
    fn exec_lanes(&self, ins: &Instr, s: &mut TapeScratch, lanes: usize, simd: bool) {
        /// Extended-real product with `0 · ±∞ = 0` (mirrors
        /// `gubpi_interval`'s internal `mul_ext`).
        #[inline]
        fn mul_ext(a: f64, b: f64) -> f64 {
            if a == 0.0 || b == 0.0 {
                0.0
            } else {
                a * b
            }
        }
        if simd && Tape::exec_lanes_simd(ins, s) {
            return;
        }
        let d = ins.dst as usize * LANES;
        let a = ins.args[0] as usize * LANES;
        match ins.op {
            PrimOp::Add => {
                let b = ins.args[1] as usize * LANES;
                for l in 0..lanes {
                    let lo = s.lo[a + l] + s.lo[b + l];
                    let hi = s.hi[a + l] + s.hi[b + l];
                    s.lo[d + l] = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
                    s.hi[d + l] = if hi.is_nan() { f64::INFINITY } else { hi };
                }
            }
            PrimOp::Sub => {
                // `a − b = a + (−b)`, exactly as `Interval::sub`.
                let b = ins.args[1] as usize * LANES;
                for l in 0..lanes {
                    let lo = s.lo[a + l] + -s.hi[b + l];
                    let hi = s.hi[a + l] + -s.lo[b + l];
                    s.lo[d + l] = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
                    s.hi[d + l] = if hi.is_nan() { f64::INFINITY } else { hi };
                }
            }
            PrimOp::Neg => {
                for l in 0..lanes {
                    let (lo, hi) = (-s.hi[a + l], -s.lo[a + l]);
                    s.lo[d + l] = lo;
                    s.hi[d + l] = hi;
                }
            }
            PrimOp::Mul => {
                let b = ins.args[1] as usize * LANES;
                for l in 0..lanes {
                    let cands = [
                        mul_ext(s.lo[a + l], s.lo[b + l]),
                        mul_ext(s.lo[a + l], s.hi[b + l]),
                        mul_ext(s.hi[a + l], s.lo[b + l]),
                        mul_ext(s.hi[a + l], s.hi[b + l]),
                    ];
                    let mut lo = cands[0];
                    let mut hi = cands[0];
                    for &c in &cands[1..] {
                        if c < lo {
                            lo = c;
                        }
                        if c > hi {
                            hi = c;
                        }
                    }
                    s.lo[d + l] = lo;
                    s.hi[d + l] = hi;
                }
            }
            PrimOp::Min => {
                let b = ins.args[1] as usize * LANES;
                for l in 0..lanes {
                    s.lo[d + l] = s.lo[a + l].min(s.lo[b + l]);
                    s.hi[d + l] = s.hi[a + l].min(s.hi[b + l]);
                }
            }
            PrimOp::Max => {
                let b = ins.args[1] as usize * LANES;
                for l in 0..lanes {
                    s.lo[d + l] = s.lo[a + l].max(s.lo[b + l]);
                    s.hi[d + l] = s.hi[a + l].max(s.hi[b + l]);
                }
            }
            PrimOp::Abs => {
                for l in 0..lanes {
                    let (lo, hi) = (s.lo[a + l], s.hi[a + l]);
                    let (lo, hi) = if lo >= 0.0 {
                        (lo, hi)
                    } else if hi <= 0.0 {
                        (-hi, -lo)
                    } else {
                        (0.0, hi.max(-lo))
                    };
                    s.lo[d + l] = lo;
                    s.hi[d + l] = hi;
                }
            }
            _ => {
                let mut args = [Interval::ZERO; 3];
                for l in 0..lanes {
                    for (arg, &src) in args.iter_mut().zip(&ins.args[..ins.n_args as usize]) {
                        let o = src as usize * LANES;
                        *arg = Interval::new(s.lo[o + l], s.hi[o + l]);
                    }
                    let r = ins.op.eval_interval(&args[..ins.n_args as usize]);
                    s.lo[d + l] = r.lo();
                    s.hi[d + l] = r.hi();
                }
            }
        }
    }

    /// Explicit-SIMD lane backend: the cheap arithmetic ops as
    /// [`F64x4`] vector expressions over `LANES / 4` groups, each op
    /// lane-for-lane identical to the scalar loop in [`Tape::exec_lanes`]
    /// (same candidate order, same NaN repair, same `0 · ∞ = 0`).
    /// Processes **all** [`LANES`] lanes regardless of how many are
    /// live — lanes past the block's fill hold stale endpoint data, but
    /// the groups are elementwise independent and dead-lane outputs are
    /// never read, so that is harmless. Returns `false` for ops the
    /// vector shim does not cover (caller falls through to the scalar
    /// gather/scatter path).
    fn exec_lanes_simd(ins: &Instr, s: &mut TapeScratch) -> bool {
        let d = ins.dst as usize * LANES;
        let a = ins.args[0] as usize * LANES;
        match ins.op {
            PrimOp::Add => {
                let b = ins.args[1] as usize * LANES;
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let lo = (F64x4::load(&s.lo, a + g) + F64x4::load(&s.lo, b + g))
                        .repair_nan(f64::NEG_INFINITY);
                    let hi = (F64x4::load(&s.hi, a + g) + F64x4::load(&s.hi, b + g))
                        .repair_nan(f64::INFINITY);
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            PrimOp::Sub => {
                // `a − b = a + (−b)`, exactly as `Interval::sub`.
                let b = ins.args[1] as usize * LANES;
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let lo = (F64x4::load(&s.lo, a + g) + -F64x4::load(&s.hi, b + g))
                        .repair_nan(f64::NEG_INFINITY);
                    let hi = (F64x4::load(&s.hi, a + g) + -F64x4::load(&s.lo, b + g))
                        .repair_nan(f64::INFINITY);
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            PrimOp::Neg => {
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let lo = -F64x4::load(&s.hi, a + g);
                    let hi = -F64x4::load(&s.lo, a + g);
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            PrimOp::Mul => {
                let b = ins.args[1] as usize * LANES;
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let (alo, ahi) = (F64x4::load(&s.lo, a + g), F64x4::load(&s.hi, a + g));
                    let (blo, bhi) = (F64x4::load(&s.lo, b + g), F64x4::load(&s.hi, b + g));
                    let first = alo.mul_ext(blo);
                    let mut lo = first;
                    let mut hi = first;
                    for cand in [alo.mul_ext(bhi), ahi.mul_ext(blo), ahi.mul_ext(bhi)] {
                        lo = lo.scan_lo(cand);
                        hi = hi.scan_hi(cand);
                    }
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            PrimOp::Min => {
                let b = ins.args[1] as usize * LANES;
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let lo = F64x4::load(&s.lo, a + g).min(F64x4::load(&s.lo, b + g));
                    let hi = F64x4::load(&s.hi, a + g).min(F64x4::load(&s.hi, b + g));
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            PrimOp::Max => {
                let b = ins.args[1] as usize * LANES;
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let lo = F64x4::load(&s.lo, a + g).max(F64x4::load(&s.lo, b + g));
                    let hi = F64x4::load(&s.hi, a + g).max(F64x4::load(&s.hi, b + g));
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            PrimOp::Abs => {
                for g in (0..LANES).step_by(SIMD_LANES) {
                    let (lo, hi) = abs_lanes(F64x4::load(&s.lo, a + g), F64x4::load(&s.hi, a + g));
                    lo.store(&mut s.lo, d + g);
                    hi.store(&mut s.hi, d + g);
                }
            }
            _ => return false,
        }
        true
    }

    /// Evaluates an **irregular batch** of boxes — the adaptive
    /// refiner's child cells, which unlike a uniform sweep share no
    /// odometer structure — in [`LANES`]-sized blocks, calling
    /// `emit(index, bounds)` for every box not excluded by a check, in
    /// ascending index order. Re-entrant over a shared scratch: every
    /// input register and instruction output is rewritten per block and
    /// constants are preloaded into all lanes, so interleaving calls on
    /// one scratch (round after round) cannot leak state between
    /// batches.
    pub fn eval_boxes(
        &self,
        s: &mut TapeScratch,
        boxes: &[BoxN],
        mut emit: impl FnMut(usize, CellBounds),
    ) {
        let mut at = 0usize;
        while at < boxes.len() {
            let lanes = LANES.min(boxes.len() - at);
            for (l, cell) in boxes[at..at + lanes].iter().enumerate() {
                for (dim, &iv) in cell.intervals().iter().enumerate() {
                    s.set_input(dim, l, iv);
                }
            }
            if self.eval_block(s, lanes) {
                for l in 0..lanes {
                    if let Some(cell) = s.lane(l) {
                        emit(at + l, cell);
                    }
                }
            }
            at += lanes;
        }
    }
}

// --------------------------------------------------------------------
// Global observability
// --------------------------------------------------------------------

struct StatCells {
    tapes: AtomicU64,
    instrs: AtomicU64,
    tree_nodes: AtomicU64,
    cells: AtomicU64,
    seeded_tapes: AtomicU64,
    seed_const_hits: AtomicU64,
}

static STATS: StatCells = StatCells {
    tapes: AtomicU64::new(0),
    instrs: AtomicU64::new(0),
    tree_nodes: AtomicU64::new(0),
    cells: AtomicU64::new(0),
    seeded_tapes: AtomicU64::new(0),
    seed_const_hits: AtomicU64::new(0),
};

/// Monotone process-wide kernel counters (`repro --stats` reports them).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Tapes compiled over the process lifetime.
    pub tapes: u64,
    /// Executable instructions across all compiled tapes.
    pub tape_instrs: u64,
    /// Primitive-application nodes in the source trees before CSE and
    /// constant pre-folding (duplicates counted) — `tree_nodes −
    /// tape_instrs` is the per-cell work hash-consing removed.
    pub tree_nodes: u64,
    /// Region cells evaluated through compiled tapes.
    pub cells: u64,
    /// Tapes compiled from a per-program [`KernelSeed`].
    pub seeded_tapes: u64,
    /// Constant-slot interns served by a pre-seeded pool entry instead
    /// of a fresh per-query insertion.
    pub seed_const_hits: u64,
}

/// Snapshot of the process-wide kernel counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        tapes: STATS.tapes.load(Ordering::Relaxed),
        tape_instrs: STATS.instrs.load(Ordering::Relaxed),
        tree_nodes: STATS.tree_nodes.load(Ordering::Relaxed),
        cells: STATS.cells.load(Ordering::Relaxed),
        seeded_tapes: STATS.seeded_tapes.load(Ordering::Relaxed),
        seed_const_hits: STATS.seed_const_hits.load(Ordering::Relaxed),
    }
}

/// Records `n` cells evaluated through a compiled tape (called once per
/// claimed chunk by the plan builders, not per cell).
pub fn note_kernel_cells(n: u64) {
    STATS.cells.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::SymConstraint;
    use gubpi_interval::BoxN;

    fn s(i: usize) -> Arc<SymVal> {
        Arc::new(SymVal::Sample(i))
    }
    fn c(x: f64) -> Arc<SymVal> {
        Arc::new(SymVal::Const(x))
    }

    fn demo_path() -> SymPath {
        // result: 3·α₀ + α₁; constraint: α₀ − 0.5 ≤ 0, α₀·α₁ > 0;
        // scores: pdf_normal(1.1, 0.1, α₀ + α₁), α₀ + α₁ (shared CSE).
        let sum = SymVal::prim(PrimOp::Add, vec![s(0), s(1)]);
        SymPath {
            result: SymVal::prim(
                PrimOp::Add,
                vec![SymVal::prim(PrimOp::Mul, vec![c(3.0), s(0)]), s(1)],
            ),
            n_samples: 2,
            constraints: vec![
                SymConstraint {
                    value: SymVal::prim(PrimOp::Sub, vec![s(0), c(0.5)]),
                    dir: CmpDir::LeZero,
                },
                SymConstraint {
                    value: SymVal::prim(PrimOp::Mul, vec![s(0), s(1)]),
                    dir: CmpDir::GtZero,
                },
            ],
            scores: vec![
                SymVal::prim(PrimOp::NormalPdf, vec![c(1.1), c(0.1), sum.clone()]),
                sum,
            ],
            truncated: false,
            budget_truncated: false,
            tail: None,
        }
    }

    /// Reference semantics: the four independent tree walks.
    fn reference(path: &SymPath, cell: &BoxN) -> Option<CellBounds> {
        if !path.constraints_on_box(cell, false) {
            return None;
        }
        Some(CellBounds {
            value: path.result.range_over_box(cell),
            weight: path.weight_range_over_box(cell),
            definite: path.constraints_on_box(cell, true),
        })
    }

    fn assert_same(a: Option<CellBounds>, b: Option<CellBounds>, ctx: &str) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.value.lo().to_bits(), y.value.lo().to_bits(), "{ctx}");
                assert_eq!(x.value.hi().to_bits(), y.value.hi().to_bits(), "{ctx}");
                assert_eq!(x.weight.lo().to_bits(), y.weight.lo().to_bits(), "{ctx}");
                assert_eq!(x.weight.hi().to_bits(), y.weight.hi().to_bits(), "{ctx}");
                assert_eq!(x.definite, y.definite, "{ctx}");
            }
            (x, y) => panic!("{ctx}: tape {x:?} vs tree {y:?}"),
        }
    }

    #[test]
    fn fused_eval_matches_the_four_tree_walks() {
        let path = demo_path();
        let tape = Tape::for_path(&path);
        let mut scratch = tape.scratch();
        for (alo, ahi, blo, bhi) in [
            (0.0, 0.25, 0.5, 0.75),
            (0.0, 1.0, 0.0, 1.0),
            (0.75, 1.0, 0.0, 0.25),
            (0.5, 0.5, 0.25, 0.25),
            (0.0, 0.0, 0.0, 1.0),
        ] {
            let dims = [Interval::new(alo, ahi), Interval::new(blo, bhi)];
            let cell = BoxN::new(dims.to_vec());
            assert_same(
                tape.eval_cell(&dims, &mut scratch),
                reference(&path, &cell),
                &format!("cell {cell:?}"),
            );
        }
    }

    #[test]
    fn cse_shares_the_repeated_sum() {
        let path = demo_path();
        let tape = Tape::for_path(&path);
        // α₀ + α₁ appears in both scores but compiles once; the tape is
        // strictly shorter than the pre-CSE node count.
        assert!(tape.len() < tape.tree_nodes(), "{}", tape.len());
        // Exactly the six unique op applications survive: the result's
        // Mul + Add, the two constraint roots, and the shared α₀ + α₁
        // plus the pdf (constant pdf parameters fold into const slots).
        assert_eq!(tape.len(), 6, "tape: {} instrs", tape.len());
    }

    #[test]
    fn constant_subterms_prefold() {
        // (2 + 3) · α₀ — built without the smart constructor so the
        // constant addition survives to the compiler.
        let v = Arc::new(SymVal::Prim(
            PrimOp::Mul,
            vec![
                Arc::new(SymVal::Prim(PrimOp::Add, vec![c(2.0), c(3.0)])),
                s(0),
            ],
        ));
        let tape = Tape::for_value(1, &v);
        assert_eq!(tape.len(), 1, "only the multiply remains");
        let mut scratch = tape.scratch();
        let b = Interval::new(0.25, 0.5);
        let got = tape.eval_value(&[b], &mut scratch);
        let want = v.range_over_box(&BoxN::new(vec![b]));
        assert_eq!(got.lo().to_bits(), want.lo().to_bits());
        assert_eq!(got.hi().to_bits(), want.hi().to_bits());
    }

    #[test]
    fn cheapest_constraint_is_checked_first() {
        // Constraint 0 is expensive (pdf), constraint 1 is one subtract;
        // the schedule must test the subtract first.
        let path = SymPath {
            result: s(0),
            n_samples: 1,
            constraints: vec![
                SymConstraint {
                    value: SymVal::prim(
                        PrimOp::Sub,
                        vec![
                            SymVal::prim(PrimOp::NormalPdf, vec![c(0.0), c(1.0), s(0)]),
                            c(0.3),
                        ],
                    ),
                    dir: CmpDir::GtZero,
                },
                SymConstraint {
                    value: SymVal::prim(PrimOp::Sub, vec![s(0), c(0.5)]),
                    dir: CmpDir::LeZero,
                },
            ],
            scores: vec![],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let tape = Tape::for_path(&path);
        assert_eq!(tape.checks.len(), 2);
        assert!(
            tape.checks[0].after < tape.checks[1].after,
            "cheap check must come first: {:?}",
            tape.checks
        );
        // Still agrees with the tree walks on a straddling cell.
        let mut scratch = tape.scratch();
        for cell in [Interval::new(0.0, 1.0), Interval::new(0.6, 1.0)] {
            assert_same(
                tape.eval_cell(&[cell], &mut scratch),
                reference(&path, &BoxN::new(vec![cell])),
                "cheap-first schedule",
            );
        }
    }

    #[test]
    fn block_eval_matches_scalar_eval_lane_by_lane() {
        let path = demo_path();
        let tape = Tape::for_path(&path);
        let mut scalar = tape.scratch();
        let mut block = tape.scratch();
        // 20 cells: more than one lane block, mixed in/out cells.
        let cells: Vec<[Interval; 2]> = (0..20)
            .map(|i| {
                let x = i as f64 / 20.0;
                [Interval::new(x, x + 0.05), Interval::new(1.0 - x, 1.0)]
            })
            .collect();
        for chunk in cells.chunks(LANES) {
            for (lane, dims) in chunk.iter().enumerate() {
                block.set_input(0, lane, dims[0]);
                block.set_input(1, lane, dims[1]);
            }
            let any = tape.eval_block(&mut block, chunk.len());
            for (lane, dims) in chunk.iter().enumerate() {
                let want = tape.eval_cell(dims, &mut scalar);
                let got = if any { block.lane(lane) } else { None };
                assert_same(got, want, &format!("lane {lane}"));
            }
        }
    }

    #[test]
    fn simd_lane_backend_is_bit_identical_to_scalar() {
        // Both backends are always compiled; the cargo feature only
        // flips the default. Drive them explicitly over cells that
        // exercise every fast-path op (demo_path has Add/Sub/Mul via
        // the constraints and scores) including empty/degenerate boxes.
        let path = demo_path();
        let tape = Tape::for_path(&path);
        let mut scalar = tape.scratch();
        let mut vector = tape.scratch();
        let cells: Vec<[Interval; 2]> = (0..40)
            .map(|i| {
                let x = i as f64 / 40.0;
                [Interval::new(x, x + 0.025), Interval::new(1.0 - x, 1.0)]
            })
            .collect();
        for chunk in cells.chunks(LANES) {
            for (lane, dims) in chunk.iter().enumerate() {
                scalar.set_input(0, lane, dims[0]);
                scalar.set_input(1, lane, dims[1]);
                vector.set_input(0, lane, dims[0]);
                vector.set_input(1, lane, dims[1]);
            }
            let any_s = tape.eval_block_via(&mut scalar, chunk.len(), false);
            let any_v = tape.eval_block_via(&mut vector, chunk.len(), true);
            assert_eq!(any_s, any_v);
            for lane in 0..chunk.len() {
                let want = if any_s { scalar.lane(lane) } else { None };
                let got = if any_v { vector.lane(lane) } else { None };
                assert_same(got, want, &format!("simd vs scalar lane {lane}"));
            }
        }
    }

    #[test]
    fn simd_min_max_abs_match_scalar_on_signed_inputs() {
        // demo_path never exercises Min/Max/Abs; build a value tape
        // that does, over inputs straddling zero so every Abs case and
        // NaN-free Min/Max corner fires identically on both backends.
        let v = SymVal::prim(
            PrimOp::Min,
            vec![
                SymVal::prim(PrimOp::Abs, vec![s(0)]),
                SymVal::prim(
                    PrimOp::Max,
                    vec![s(1), SymVal::prim(PrimOp::Neg, vec![s(0)])],
                ),
            ],
        );
        let tape = Tape::for_value(2, &v);
        let mut scalar = tape.scratch();
        let mut vector = tape.scratch();
        let spans = [
            Interval::new(-2.0, -1.0),
            Interval::new(-1.0, 1.0),
            Interval::new(0.0, 3.0),
            Interval::new(f64::NEG_INFINITY, 0.5),
        ];
        let mut lane = 0;
        for &a in &spans {
            for &b in &spans {
                scalar.set_input(0, lane, a);
                scalar.set_input(1, lane, b);
                vector.set_input(0, lane, a);
                vector.set_input(1, lane, b);
                lane += 1;
            }
        }
        assert_eq!(lane, LANES);
        assert!(tape.eval_block_via(&mut scalar, LANES, false));
        assert!(tape.eval_block_via(&mut vector, LANES, true));
        for l in 0..LANES {
            assert_same(vector.lane(l), scalar.lane(l), &format!("lane {l}"));
        }
    }

    #[test]
    fn eval_boxes_handles_irregular_batches_reentrantly() {
        let path = demo_path();
        let tape = Tape::for_path(&path);
        let mut scratch = tape.scratch();
        let mut scalar = tape.scratch();
        // Batch sizes that are not lane multiples, reusing one scratch
        // across rounds like the adaptive refiner does.
        for batch in [1usize, 7, LANES, LANES + 3, 2 * LANES + 1] {
            let boxes: Vec<BoxN> = (0..batch)
                .map(|i| {
                    let x = i as f64 / batch as f64;
                    BoxN::new(vec![
                        Interval::new(x / 2.0, x / 2.0 + 0.3),
                        Interval::new(0.2, 0.2 + x / 2.0),
                    ])
                })
                .collect();
            let mut got: Vec<Option<CellBounds>> = vec![None; batch];
            let mut last = 0usize;
            tape.eval_boxes(&mut scratch, &boxes, |i, cell| {
                assert!(got[i].is_none() && i >= last, "ascending index order");
                last = i;
                got[i] = Some(cell);
            });
            for (i, b) in boxes.iter().enumerate() {
                let dims: Vec<Interval> = b.intervals().to_vec();
                let want = tape.eval_cell(&dims, &mut scalar);
                assert_same(got[i], want, &format!("batch {batch} box {i}"));
            }
        }
    }

    #[test]
    fn sampleless_tapes_evaluate_on_the_empty_box() {
        let path = SymPath {
            result: c(2.0),
            n_samples: 0,
            constraints: vec![SymConstraint {
                value: SymVal::prim(PrimOp::Sub, vec![c(0.25), c(0.5)]),
                dir: CmpDir::LeZero,
            }],
            scores: vec![c(0.25)],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let tape = Tape::for_path(&path);
        assert!(tape.is_empty(), "everything pre-folds");
        let got = tape.eval_cell(&[], &mut tape.scratch()).expect("inside");
        assert_eq!(got.value, Interval::point(2.0));
        assert_eq!(got.weight, Interval::point(0.25));
        assert!(got.definite);
    }

    #[test]
    fn seeded_compile_is_bit_identical_to_unseeded() {
        use gubpi_lang::{infer, parse};
        use gubpi_types::infer_interval_types;
        // A program whose constants (0.5, 1.1, 0.1) also appear in the
        // demo path's trees, so the seeded pool actually gets hits.
        let p = parse("observe (sample + sample) from normal(1.1, 0.1); 0.5").unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        let seed = KernelSeed::from_facts(&facts);
        assert!(!seed.is_empty());

        let path = demo_path();
        let plain = Tape::for_path(&path);
        let seeded = Tape::for_path_seeded(&path, Some(&seed));
        assert_eq!(plain.len(), seeded.len(), "same instructions survive");
        let mut s_plain = plain.scratch();
        let mut s_seeded = seeded.scratch();
        for (alo, ahi, blo, bhi) in [
            (0.0, 0.25, 0.5, 0.75),
            (0.0, 1.0, 0.0, 1.0),
            (0.75, 1.0, 0.0, 0.25),
            (0.5, 0.5, 0.25, 0.25),
        ] {
            let dims = [Interval::new(alo, ahi), Interval::new(blo, bhi)];
            assert_same(
                seeded.eval_cell(&dims, &mut s_seeded),
                plain.eval_cell(&dims, &mut s_plain),
                &format!("seeded vs plain on {dims:?}"),
            );
        }
    }

    #[test]
    fn seed_hits_are_counted() {
        use gubpi_lang::{infer, parse};
        use gubpi_types::infer_interval_types;
        let p = parse("3 * sample + 0.5").unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        let seed = KernelSeed::from_facts(&facts);
        let before = kernel_stats();
        // 3·α₀ + 0.5 re-uses both seeded constants.
        let v = SymVal::prim(
            PrimOp::Add,
            vec![SymVal::prim(PrimOp::Mul, vec![c(3.0), s(0)]), c(0.5)],
        );
        let path = SymPath {
            result: v,
            n_samples: 1,
            constraints: vec![],
            scores: vec![],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let _ = Tape::for_path_seeded(&path, Some(&seed));
        let after = kernel_stats();
        assert_eq!(after.seeded_tapes, before.seeded_tapes + 1);
        assert!(
            after.seed_const_hits >= before.seed_const_hits + 2,
            "3 and 0.5 must hit the seeded pool"
        );
    }

    #[test]
    fn kernel_stats_accumulate() {
        let before = kernel_stats();
        let tape = Tape::for_path(&demo_path());
        note_kernel_cells(42);
        let after = kernel_stats();
        assert_eq!(after.tapes, before.tapes + 1);
        assert_eq!(after.tape_instrs, before.tape_instrs + tape.len() as u64);
        assert!(after.tree_nodes > before.tree_nodes);
        assert!(after.cells >= before.cells + 42);
        assert!(tape.cost() > 0);
    }
}
