//! Symbolic paths `Ψ = (V, n, Δ, Ξ)` (Appendix B).

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use gubpi_interval::{BoxN, Interval};

use crate::symval::SymVal;

/// Direction of a recorded branch constraint.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CmpDir {
    /// `V ≤ 0` (the then-branch of `if(V, N, P)`).
    LeZero,
    /// `V > 0` (the else-branch).
    GtZero,
}

/// A symbolic constraint `V ≤ 0` or `V > 0` recorded in `Δ`.
#[derive(Clone, Debug, PartialEq)]
pub struct SymConstraint {
    /// The symbolic value being compared against 0.
    pub value: Arc<SymVal>,
    /// Which side of the branch was taken.
    pub dir: CmpDir,
}

impl SymConstraint {
    /// Do concrete samples `s` satisfy the constraint? With intervals in
    /// the value, `definitely` requires *all* refinements to satisfy it
    /// (the `∀` of `⟦Ψ⟧_lb`); otherwise *some* refinement suffices
    /// (`∃`, for `⟦Ψ⟧_ub`).
    pub fn satisfied(&self, s: &[f64], definitely: bool) -> bool {
        let range = self.value.eval(s);
        self.holds_on(range, definitely)
    }

    /// Constraint satisfaction for a whole range of values.
    pub fn holds_on(&self, range: Interval, definitely: bool) -> bool {
        match (self.dir, definitely) {
            (CmpDir::LeZero, true) => range.hi() <= 0.0,
            (CmpDir::LeZero, false) => range.lo() <= 0.0,
            (CmpDir::GtZero, true) => range.lo() > 0.0,
            (CmpDir::GtZero, false) => range.hi() > 0.0,
        }
    }
}

impl fmt::Display for SymConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            CmpDir::LeZero => write!(f, "{} <= 0", self.value),
            CmpDir::GtZero => write!(f, "{} > 0", self.value),
        }
    }
}

/// Tail-enclosure data attached to a ⊤ path: the geometric-remainder
/// ingredients of the recursion whose exploration the budget cut off.
///
/// Carried as plain data — attaching it never changes the path's own
/// denotation. `gubpi_core::pathbounds` substitutes the ⊤ path's
/// `[0, ∞]` score placeholder with the finite enclosure
/// `[0, x_hi / (1 − c_hi)]` when `per_step_weight.hi() < 1` (and tail
/// accounting is enabled); otherwise the trivial ⊤ contribution stands.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TailEnclosure {
    /// How many unfoldings of the truncating recursion the path
    /// explored before the cut. Census data for the plain geometric
    /// formula (the explored prefix's decay already lives in `Δ` and
    /// `Ξ`), but load-bearing for an eventually-geometric `prefix`:
    /// the two-phase formula discounts by `k₀ − unfoldings_explored`
    /// remaining prefix steps.
    pub unfoldings_explored: u32,
    /// Upper enclosure `c` of the one-unfolding continue mass.
    pub per_step_weight: Interval,
    /// Upper enclosure `x` of the out-of-body score product.
    pub continuation_weight: Interval,
    /// Eventually-geometric certificate from the ranking pass (mirrors
    /// `gubpi_analysis::RankedTail`), for recursions whose plain
    /// `per_step_weight` sits at or above the `c = 1` boundary.
    pub prefix: Option<TailPrefix>,
}

/// The eventually-geometric component of a [`TailEnclosure`]: after at
/// most `prefix_bound` unfoldings the continue mass decays at `rate`,
/// and suffix executions terminating before that carry total weight at
/// most `prefix_weight` (see `gubpi_analysis::ranking`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TailPrefix {
    /// `k₀`: unfoldings until the decay phase provably starts.
    pub prefix_bound: u32,
    /// `c_eff`: the post-prefix per-step continue mass (hi < 1 usable).
    pub rate: Interval,
    /// `w_prefix`: total weight of prefix-phase terminations.
    pub prefix_weight: Interval,
}

/// A finished symbolic (interval) path `Ψ = (V, n, Δ, Ξ)`.
///
/// `PartialEq` is structural (float literals compare by value, so two
/// paths differing only in `0.0` vs `-0.0` compare equal — both denote
/// the same measure). The analyzer's shared memo cache uses it to
/// verify [`SymPath::fingerprint`] matches before reusing an entry
/// across `Analyzer` instances.
#[derive(Clone, Debug, PartialEq)]
pub struct SymPath {
    /// The result value `V`.
    pub result: Arc<SymVal>,
    /// Number of sample variables drawn along the path.
    pub n_samples: usize,
    /// The branch constraints `Δ`.
    pub constraints: Vec<SymConstraint>,
    /// The score values `Ξ`.
    pub scores: Vec<Arc<SymVal>>,
    /// Did `approxFix` (or a budget overflow) introduce interval
    /// literals? Exact-path denotations exist only when `false`.
    pub truncated: bool,
    /// Is this a ⊤ path closing off a subtree the executor could not
    /// afford to explore (path budget, fuel or stack depth exhausted)?
    /// Strictly stronger than [`truncated`](SymPath::truncated): an
    /// `approxFix` replacement keeps the path's own structure, a ⊤ path
    /// covers *everything* beyond its cut. `repro --stats` reports the
    /// count, separating "recursion depth hit `max_fix_unfoldings`"
    /// from "path budget too small".
    pub budget_truncated: bool,
    /// For ⊤ paths cut inside a recursion with a provable geometric
    /// tail: the remainder enclosure (see [`TailEnclosure`]). Always
    /// `None` for non-⊤ paths.
    pub tail: Option<TailEnclosure>,
}

impl SymPath {
    /// Is every sample variable used at most once in the result, in each
    /// constraint and in each score value (Assumption 1, §4.2)?
    pub fn satisfies_single_use(&self) -> bool {
        let single = |v: &Arc<SymVal>| {
            let mut counts = Vec::new();
            v.count_sample_uses(&mut counts);
            counts.iter().all(|&c| c <= 1)
        };
        single(&self.result)
            && self.constraints.iter().all(|c| single(&c.value))
            && self.scores.iter().all(single)
    }

    /// The product of score values over a box of sample values, as an
    /// interval (the `Π W` factor of `⟦Ψ⟧_lb` / `⟦Ψ⟧_ub`).
    pub fn weight_range_over_box(&self, b: &BoxN) -> Interval {
        let mut acc = Interval::ONE;
        for w in &self.scores {
            acc = acc * w.range_over_box(b).clamp_non_neg();
        }
        acc
    }

    /// Do all constraints hold on the box — definitely (`∀`) or possibly
    /// (`∃`)?
    pub fn constraints_on_box(&self, b: &BoxN, definitely: bool) -> bool {
        self.constraints
            .iter()
            .all(|c| c.holds_on(c.value.range_over_box(b), definitely))
    }

    /// A structural 64-bit fingerprint of the path: result, sample count,
    /// constraints (with direction), scores and the truncation flag, with
    /// float literals hashed by bit pattern. Structurally identical paths
    /// fingerprint identically across runs (the hasher is keyed with
    /// fixed constants), so the analyzer can use it as a memo-cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.n_samples.hash(&mut h);
        self.truncated.hash(&mut h);
        self.budget_truncated.hash(&mut h);
        match &self.tail {
            None => 0u8.hash(&mut h),
            Some(t) => {
                1u8.hash(&mut h);
                t.unfoldings_explored.hash(&mut h);
                t.per_step_weight.lo().to_bits().hash(&mut h);
                t.per_step_weight.hi().to_bits().hash(&mut h);
                t.continuation_weight.lo().to_bits().hash(&mut h);
                t.continuation_weight.hi().to_bits().hash(&mut h);
                match &t.prefix {
                    None => 0u8.hash(&mut h),
                    Some(p) => {
                        1u8.hash(&mut h);
                        p.prefix_bound.hash(&mut h);
                        p.rate.lo().to_bits().hash(&mut h);
                        p.rate.hi().to_bits().hash(&mut h);
                        p.prefix_weight.lo().to_bits().hash(&mut h);
                        p.prefix_weight.hi().to_bits().hash(&mut h);
                    }
                }
            }
        }
        hash_symval(&self.result, &mut h);
        self.constraints.len().hash(&mut h);
        for c in &self.constraints {
            matches!(c.dir, CmpDir::LeZero).hash(&mut h);
            hash_symval(&c.value, &mut h);
        }
        self.scores.len().hash(&mut h);
        for w in &self.scores {
            hash_symval(w, &mut h);
        }
        h.finish()
    }
}

fn hash_symval(v: &SymVal, h: &mut impl Hasher) {
    match v {
        SymVal::Const(c) => {
            0u8.hash(h);
            c.to_bits().hash(h);
        }
        SymVal::Interval(i) => {
            1u8.hash(h);
            i.lo().to_bits().hash(h);
            i.hi().to_bits().hash(h);
        }
        SymVal::Sample(i) => {
            2u8.hash(h);
            i.hash(h);
        }
        SymVal::Prim(op, args) => {
            3u8.hash(h);
            op.hash(h);
            args.len().hash(h);
            for a in args {
                hash_symval(a, h);
            }
        }
    }
}

impl fmt::Display for SymPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ψ(result = {}, n = {}, Δ = {{",
            self.result, self.n_samples
        )?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}, Ξ = {{")?;
        for (i, w) in self.scores.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::PrimOp;

    fn s(i: usize) -> Arc<SymVal> {
        Arc::new(SymVal::Sample(i))
    }
    fn c(x: f64) -> Arc<SymVal> {
        Arc::new(SymVal::Const(x))
    }

    #[test]
    fn constraint_satisfaction_on_points() {
        // α₀ − 0.5 ≤ 0
        let g = SymConstraint {
            value: SymVal::prim(PrimOp::Sub, vec![s(0), c(0.5)]),
            dir: CmpDir::LeZero,
        };
        assert!(g.satisfied(&[0.3], true));
        assert!(!g.satisfied(&[0.7], true));
        let h = SymConstraint {
            value: SymVal::prim(PrimOp::Sub, vec![s(0), c(0.5)]),
            dir: CmpDir::GtZero,
        };
        assert!(h.satisfied(&[0.7], true));
    }

    #[test]
    fn forall_vs_exists_with_intervals() {
        // (α₀ + [0, 1]) ≤ 0 at α₀ = −0.5: range [−0.5, 0.5]
        let v = SymVal::prim(
            PrimOp::Add,
            vec![s(0), Arc::new(SymVal::Interval(Interval::UNIT))],
        );
        let g = SymConstraint {
            value: v,
            dir: CmpDir::LeZero,
        };
        assert!(!g.satisfied(&[-0.5], true)); // not all refinements
        assert!(g.satisfied(&[-0.5], false)); // some refinement
    }

    #[test]
    fn weight_range_multiplies_scores() {
        let p = SymPath {
            result: s(0),
            n_samples: 1,
            constraints: vec![],
            scores: vec![c(2.0), s(0)],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let b = BoxN::new(vec![Interval::new(0.25, 0.5)]);
        assert_eq!(p.weight_range_over_box(&b), Interval::new(0.5, 1.0));
    }

    #[test]
    fn single_use_check() {
        let good = SymPath {
            result: s(0),
            n_samples: 2,
            constraints: vec![SymConstraint {
                value: SymVal::prim(PrimOp::Sub, vec![s(1), c(0.5)]),
                dir: CmpDir::LeZero,
            }],
            scores: vec![],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        assert!(good.satisfies_single_use());
        let bad = SymPath {
            result: SymVal::prim(PrimOp::Sub, vec![s(0), s(0)]),
            n_samples: 1,
            constraints: vec![],
            scores: vec![],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        assert!(!bad.satisfies_single_use());
    }

    #[test]
    fn paths_are_send_and_sync() {
        // The parallel bounding engine shares `&[SymPath]` across worker
        // threads; this must stay a compile-time guarantee.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SymPath>();
        assert_send_sync::<SymVal>();
    }

    #[test]
    fn fingerprints_separate_structure() {
        let base = SymPath {
            result: s(0),
            n_samples: 1,
            constraints: vec![],
            scores: vec![c(2.0)],
            truncated: false,
            budget_truncated: false,
            tail: None,
        };
        let same = base.clone();
        assert_eq!(base.fingerprint(), same.fingerprint());
        let mut other_score = base.clone();
        other_score.scores = vec![c(3.0)];
        assert_ne!(base.fingerprint(), other_score.fingerprint());
        let mut truncated = base.clone();
        truncated.truncated = true;
        assert_ne!(base.fingerprint(), truncated.fingerprint());
        let mut constrained = base.clone();
        constrained.constraints.push(SymConstraint {
            value: SymVal::prim(PrimOp::Sub, vec![s(0), c(0.5)]),
            dir: CmpDir::LeZero,
        });
        assert_ne!(base.fingerprint(), constrained.fingerprint());
        let mut flipped = constrained.clone();
        flipped.constraints[0].dir = CmpDir::GtZero;
        assert_ne!(constrained.fingerprint(), flipped.fingerprint());
        let mut tailed = base.clone();
        tailed.tail = Some(TailEnclosure {
            unfoldings_explored: 3,
            per_step_weight: Interval::new(0.0, 0.5),
            continuation_weight: Interval::new(0.0, 1.0),
            prefix: None,
        });
        assert_ne!(base.fingerprint(), tailed.fingerprint());
        let mut deeper = tailed.clone();
        deeper.tail.as_mut().unwrap().unfoldings_explored = 4;
        assert_ne!(tailed.fingerprint(), deeper.fingerprint());
        // The eventually-geometric component must separate too — the
        // memo cache keys bound substitutions on it.
        let mut ranked = tailed.clone();
        ranked.tail.as_mut().unwrap().prefix = Some(TailPrefix {
            prefix_bound: 0,
            rate: Interval::ZERO,
            prefix_weight: Interval::new(0.0, 1.0),
        });
        assert_ne!(tailed.fingerprint(), ranked.fingerprint());
        let mut longer = ranked.clone();
        longer
            .tail
            .as_mut()
            .unwrap()
            .prefix
            .as_mut()
            .unwrap()
            .prefix_bound = 7;
        assert_ne!(ranked.fingerprint(), longer.fingerprint());
    }
}
