//! Property tests for symbolic values: the linear-form extraction and
//! the box-range evaluation must agree with direct evaluation.

use std::sync::Arc;

use gubpi_interval::{BoxN, Interval};
use gubpi_lang::PrimOp;
use gubpi_symbolic::SymVal;
use proptest::prelude::*;

/// Random interval-linear symbolic values over `dim` samples, built from
/// the linear operators only.
fn linear_symval(dim: usize) -> impl Strategy<Value = Arc<SymVal>> {
    let leaf = prop_oneof![
        (0..dim).prop_map(|i| Arc::new(SymVal::Sample(i))),
        (-5.0f64..5.0).prop_map(|c| Arc::new(SymVal::Const(c))),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymVal::prim(PrimOp::Add, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymVal::prim(PrimOp::Sub, vec![a, b])),
            (inner.clone(), -3.0f64..3.0).prop_map(|(a, k)| {
                SymVal::prim(PrimOp::Mul, vec![Arc::new(SymVal::Const(k)), a])
            }),
            inner
                .clone()
                .prop_map(|a| SymVal::prim(PrimOp::Neg, vec![a])),
        ]
    })
}

/// Arbitrary (possibly non-linear) symbolic values.
fn any_symval(dim: usize) -> impl Strategy<Value = Arc<SymVal>> {
    let leaf = prop_oneof![
        (0..dim).prop_map(|i| Arc::new(SymVal::Sample(i))),
        (-3.0f64..3.0).prop_map(|c| Arc::new(SymVal::Const(c))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymVal::prim(PrimOp::Add, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymVal::prim(PrimOp::Mul, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymVal::prim(PrimOp::Min, vec![a, b])),
            inner
                .clone()
                .prop_map(|a| SymVal::prim(PrimOp::Abs, vec![a])),
            inner
                .clone()
                .prop_map(|a| SymVal::prim(PrimOp::Sigmoid, vec![a])),
        ]
    })
}

proptest! {
    /// A successfully extracted linear form evaluates identically to the
    /// original symbolic value.
    #[test]
    fn linear_form_agrees_with_eval(v in linear_symval(3),
                                    s in proptest::collection::vec(0.0f64..1.0, 3)) {
        let (lin, iv) = v.linear_form(3).expect("built from linear ops");
        prop_assert!(iv.is_point() && iv.lo() == 0.0, "no interval literals used");
        let direct = v.eval(&s);
        prop_assert!(direct.is_point());
        let via_form = lin.eval(&s);
        prop_assert!((direct.lo() - via_form).abs() < 1e-9 * (1.0 + via_form.abs()),
                     "{} vs {}", direct.lo(), via_form);
    }

    /// Box ranges are sound for arbitrary values: the value at any point
    /// of the box lies within the computed range.
    #[test]
    fn range_over_box_is_sound(v in any_symval(3),
                               s in proptest::collection::vec(0.0f64..1.0, 3)) {
        let b = BoxN::unit_cube(3);
        let range = v.range_over_box(&b);
        let point = v.eval(&s);
        prop_assert!(range.outward().contains(point.lo()),
                     "{point:?} outside {range:?} for {v}");
    }

    /// Decomposition round-trip: evaluating the skeleton with parts pinned
    /// to their point values reproduces the direct evaluation.
    #[test]
    fn decomposition_roundtrip(v in any_symval(3),
                               s in proptest::collection::vec(0.0f64..1.0, 3)) {
        let d = v.linear_decomposition(3);
        let part_vals: Vec<Interval> = d
            .parts
            .iter()
            .map(|(lin, iv)| Interval::point(lin.eval(&s)) + *iv)
            .collect();
        let via = d.eval_with_part_ranges(&part_vals);
        let direct = v.eval(&s);
        // Linear forms re-associate sums (Σ wᵢxᵢ + c vs the original
        // tree), so allow a small relative tolerance, not just one ulp.
        let tol = 1e-12 * (1.0 + direct.lo().abs());
        prop_assert!(via.lo() - tol <= direct.lo() && direct.lo() <= via.hi() + tol,
                     "{direct:?} outside {via:?} for {v}");
    }
}
