//! Dense two-phase simplex for small LPs.
#![allow(clippy::needless_range_loop)] // index loops mirror tableau notation
//!
//! Solves `max / min c·x` subject to `A x ≤ b`, `x ≥ 0` — the form in
//! which all polytopes of the linear trace semantics arrive (sample
//! variables live in `[0, 1]^n`, with the cube constraints included as
//! rows). Bland's anti-cycling rule is used throughout; tolerances are
//! absolute (`1e-9`), adequate for the small well-scaled systems produced
//! by the analyzer.

/// Outcome of an LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// An optimal vertex: `(objective value, point)`.
    Optimal(f64, Vec<f64>),
}

const EPS: f64 = 1e-9;

/// Solves `optimize c·x` s.t. `rows[i].0 · x ≤ rows[i].1` and `x ≥ 0`.
///
/// `maximize` selects the direction. Row coefficient vectors must all
/// have length `dim`.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn solve_lp(c: &[f64], maximize: bool, rows: &[(Vec<f64>, f64)], dim: usize) -> LpOutcome {
    assert_eq!(c.len(), dim, "objective dimension mismatch");
    for (a, _) in rows {
        assert_eq!(a.len(), dim, "row dimension mismatch");
    }
    let m = rows.len();

    // Columns: dim structural | m slacks | artificials… ; plus rhs.
    // Rows with negative rhs are negated (slack coeff −1) and get an
    // artificial basic variable.
    let mut need_art: Vec<bool> = Vec::with_capacity(m);
    for (_, b) in rows {
        need_art.push(*b < 0.0);
    }
    let n_art = need_art.iter().filter(|&&x| x).count();
    let ncols = dim + m + n_art;

    let mut a = vec![vec![0.0f64; ncols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut art_col = dim + m;
    for (i, (coef, b)) in rows.iter().enumerate() {
        let neg = need_art[i];
        let sign = if neg { -1.0 } else { 1.0 };
        for (j, &w) in coef.iter().enumerate() {
            a[i][j] = sign * w;
        }
        a[i][dim + i] = sign; // slack
        a[i][ncols] = sign * b;
        if neg {
            a[i][art_col] = 1.0;
            basis[i] = art_col;
            art_col += 1;
        } else {
            basis[i] = dim + i;
        }
    }

    // ---- Phase 1: minimize the sum of artificials -----------------------
    if n_art > 0 {
        let mut cost = vec![0.0f64; ncols + 1];
        for j in dim + m..ncols {
            cost[j] = 1.0;
        }
        // Zero out basic (artificial) columns of the cost row.
        for i in 0..m {
            if basis[i] >= dim + m {
                let r = a[i].clone();
                for j in 0..=ncols {
                    cost[j] -= r[j];
                }
            }
        }
        if iterate(&mut a, &mut basis, &mut cost, ncols).is_err() {
            // Phase-1 objective is bounded below by 0; unboundedness here
            // signals numerical trouble — report infeasible conservatively.
            return LpOutcome::Infeasible;
        }
        let z1 = -cost[ncols];
        if z1 > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any degenerate artificials out of the basis.
        for i in 0..m {
            if basis[i] >= dim + m {
                if let Some(j) = (0..dim + m).find(|&j| a[i][j].abs() > EPS) {
                    pivot(&mut a, &mut basis, &mut vec![0.0; ncols + 1], i, j);
                }
                // If no pivot column exists the row is all-zero
                // (redundant); leaving the artificial basic at value 0 is
                // harmless for phase 2 since its column is never entered.
            }
        }
    }

    // ---- Phase 2 ---------------------------------------------------------
    // Minimize cmin·x where cmin = −c for maximisation.
    let mut cost = vec![0.0f64; ncols + 1];
    for j in 0..dim {
        cost[j] = if maximize { -c[j] } else { c[j] };
    }
    // Forbid artificials from re-entering.
    for j in dim + m..ncols {
        cost[j] = f64::INFINITY;
    }
    // Express the cost row in terms of non-basic variables.
    for i in 0..m {
        let bj = basis[i];
        if cost[bj] != 0.0 && cost[bj].is_finite() {
            let factor = cost[bj];
            let r = a[i].clone();
            for j in 0..=ncols {
                if cost[j].is_finite() {
                    cost[j] -= factor * r[j];
                }
            }
        }
    }
    if iterate(&mut a, &mut basis, &mut cost, ncols).is_err() {
        return LpOutcome::Unbounded;
    }

    // Read the solution.
    let mut x = vec![0.0f64; dim];
    for i in 0..m {
        if basis[i] < dim {
            x[basis[i]] = a[i][ncols];
        }
    }
    let z_min = -cost[ncols];
    let value = if maximize { -z_min } else { z_min };
    LpOutcome::Optimal(value, x)
}

/// Solves `optimize c·x` s.t. `rows[i].0 · x ≤ rows[i].1` with **free**
/// variables (no sign restriction), via the split `x = u − v` with
/// `u, v ≥ 0`.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn solve_lp_free(c: &[f64], maximize: bool, rows: &[(Vec<f64>, f64)], dim: usize) -> LpOutcome {
    let c2: Vec<f64> = c.iter().copied().chain(c.iter().map(|x| -x)).collect();
    let rows2: Vec<(Vec<f64>, f64)> = rows
        .iter()
        .map(|(a, b)| {
            let a2: Vec<f64> = a.iter().copied().chain(a.iter().map(|x| -x)).collect();
            (a2, *b)
        })
        .collect();
    match solve_lp(&c2, maximize, &rows2, 2 * dim) {
        LpOutcome::Optimal(v, uv) => {
            let x: Vec<f64> = (0..dim).map(|i| uv[i] - uv[dim + i]).collect();
            LpOutcome::Optimal(v, x)
        }
        other => other,
    }
}

/// Runs simplex iterations until optimal (`Ok`) or unbounded (`Err`).
fn iterate(
    a: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &mut [f64],
    ncols: usize,
) -> Result<(), ()> {
    let m = a.len();
    for _round in 0..100_000 {
        // Bland: entering column = smallest index with negative reduced cost.
        let mut enter = None;
        for (j, &cj) in cost.iter().enumerate().take(ncols) {
            if cj.is_finite() && cj < -EPS {
                enter = Some(j);
                break;
            }
        }
        let Some(col) = enter else {
            return Ok(()); // optimal
        };
        // Ratio test; Bland tie-break on the smallest basis variable.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if a[i][col] > EPS {
                let ratio = a[i][ncols] / a[i][col];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS || (ratio < br + EPS && basis[i] < basis[bi]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, _)) = leave else {
            return Err(()); // unbounded
        };
        pivot(a, basis, cost, row, col);
    }
    // Iteration limit: treat as optimal-enough; Bland's rule should
    // prevent reaching this for the problem sizes at hand.
    Ok(())
}

/// Pivots the tableau (and cost row) on `(row, col)`.
fn pivot(a: &mut [Vec<f64>], basis: &mut [usize], cost: &mut [f64], row: usize, col: usize) {
    let ncols = a[row].len() - 1;
    let p = a[row][col];
    for j in 0..=ncols {
        a[row][j] /= p;
    }
    a[row][col] = 1.0; // exact
    for i in 0..a.len() {
        if i != row && a[i][col].abs() > 0.0 {
            let f = a[i][col];
            for j in 0..=ncols {
                a[i][j] -= f * a[row][j];
            }
            a[i][col] = 0.0;
        }
    }
    if cost[col].is_finite() && cost[col] != 0.0 {
        let f = cost[col];
        for j in 0..=ncols {
            if cost[j].is_finite() {
                cost[j] -= f * a[row][j];
            }
        }
        cost[col] = 0.0;
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(rs: &[(&[f64], f64)]) -> Vec<(Vec<f64>, f64)> {
        rs.iter().map(|(a, b)| (a.to_vec(), *b)).collect()
    }

    #[test]
    fn maximize_on_unit_square() {
        // max x + y s.t. x ≤ 1, y ≤ 1 → 2 at (1,1).
        let r = rows(&[(&[1.0, 0.0], 1.0), (&[0.0, 1.0], 1.0)]);
        match solve_lp(&[1.0, 1.0], true, &r, 2) {
            LpOutcome::Optimal(v, x) => {
                assert!((v - 2.0).abs() < 1e-9);
                assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn negative_rhs_triggers_phase_one() {
        // x ≥ 0.25 encoded as −x ≤ −0.25; min x → 0.25.
        let r = rows(&[(&[-1.0], -0.25), (&[1.0], 1.0)]);
        match solve_lp(&[1.0], false, &r, 1) {
            LpOutcome::Optimal(v, _) => assert!((v - 0.25).abs() < 1e-9),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn infeasible_detection() {
        // x ≤ 0.2 and x ≥ 0.8.
        let r = rows(&[(&[1.0], 0.2), (&[-1.0], -0.8)]);
        assert_eq!(solve_lp(&[1.0], true, &r, 1), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detection() {
        // max x with no upper bound.
        let r = rows(&[(&[-1.0], 0.0)]);
        assert_eq!(solve_lp(&[1.0], true, &r, 1), LpOutcome::Unbounded);
    }

    #[test]
    fn simplex_on_triangle() {
        // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 → vertex (4, 0): 12.
        let r = rows(&[(&[1.0, 1.0], 4.0), (&[1.0, 3.0], 6.0)]);
        match solve_lp(&[3.0, 2.0], true, &r, 2) {
            LpOutcome::Optimal(v, x) => {
                assert!((v - 12.0).abs() < 1e-9);
                assert!((x[0] - 4.0).abs() < 1e-9);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn minimize_with_equality_like_band() {
        // 0.5 ≤ x + y ≤ 0.5 forces x + y = 0.5; min y → 0 at x = 0.5 ≤ 1.
        let r = rows(&[
            (&[1.0, 1.0], 0.5),
            (&[-1.0, -1.0], -0.5),
            (&[1.0, 0.0], 1.0),
            (&[0.0, 1.0], 1.0),
        ]);
        match solve_lp(&[0.0, 1.0], false, &r, 2) {
            LpOutcome::Optimal(v, x) => {
                assert!(v.abs() < 1e-9);
                assert!((x[0] - 0.5).abs() < 1e-9);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn degenerate_redundant_rows() {
        // Duplicate constraints must not break the solver.
        let r = rows(&[
            (&[1.0, 0.0], 0.5),
            (&[1.0, 0.0], 0.5),
            (&[0.0, 1.0], 0.5),
            (&[-1.0, 0.0], -0.5), // x ≥ 0.5 — forces x = 0.5
        ]);
        match solve_lp(&[1.0, 1.0], true, &r, 2) {
            LpOutcome::Optimal(v, _) => assert!((v - 1.0).abs() < 1e-9),
            o => panic!("unexpected {o:?}"),
        }
    }
}
