//! Linear programming and convex-polytope volume computation.
//!
//! The linear interval trace semantics of the GuBPI paper (§6.4) reduces
//! posterior bounds to two geometric primitives over convex polytopes
//! `𝔓 ⊆ [0,1]^n` given in H-representation:
//!
//! 1. **bounding a linear functional** `w·x` over `𝔓` — used to box the
//!    score values `W_i` (solved by a dense two-phase [`simplex`] LP);
//! 2. **volume computation** `vol(𝔓^t)` — the paper uses the external
//!    Vinci tool; this crate substitutes
//!    [`HPolytope::volume_lasserre`], an implementation of Lasserre's
//!    facet-recursion formula
//!    `vol(P) = (1/n) Σᵢ ((bᵢ − aᵢ·x₀)/‖aᵢ‖) vol_{n−1}(Fᵢ)`,
//!    plus [`HPolytope::volume_bounds`], a certified branch-and-bound
//!    box-subdivision method producing guaranteed `[lo, hi]` volume
//!    bounds (used to cross-check Lasserre and wherever certified bounds
//!    are preferred).
//!
//! # Example
//!
//! ```
//! use gubpi_polytope::HPolytope;
//!
//! // The triangle x + y ≤ 1 inside the unit square has area 1/2.
//! let mut p = HPolytope::unit_cube(2);
//! p.add_constraint(vec![1.0, 1.0], 1.0);
//! assert!((p.volume_lasserre() - 0.5).abs() < 1e-9);
//! let (lo, hi) = p.volume_bounds(4096);
//! assert!(lo <= 0.5 && 0.5 <= hi);
//! ```

mod hpoly;
mod linexpr;
pub mod simplex;
mod volume;

pub use hpoly::HPolytope;
pub use linexpr::LinExpr;
pub use simplex::{solve_lp, solve_lp_free, LpOutcome};
