//! Polytope volume: Lasserre's exact facet recursion and certified
//! branch-and-bound box bounds.
//!
//! These two methods replace the external Vinci tool used by the paper's
//! artifact (see DESIGN.md). [`HPolytope::volume_lasserre`] computes the
//! exact volume by the divergence-theorem identity (with reference point
//! `x₀ = 0`)
//!
//! ```text
//! vol(P) = (1/n) Σᵢ (bᵢ / ‖aᵢ‖) · vol_{n−1}(Fᵢ)
//! ```
//!
//! recursing on facets `Fᵢ = P ∩ {aᵢ·x = bᵢ}` projected onto a
//! coordinate hyperplane. [`HPolytope::volume_bounds`] subdivides the
//! bounding box, classifying cells as inside / outside / boundary by
//! exact interval evaluation of the constraints, giving guaranteed lower
//! and upper bounds that converge as the budget grows.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gubpi_interval::BoxN;

use crate::hpoly::HPolytope;
use crate::LinExpr;

const EPS: f64 = 1e-9;

impl HPolytope {
    /// Exact volume by Lasserre's recursion.
    ///
    /// Axis-aligned constraints are first eliminated (variables touched
    /// only by per-coordinate bounds contribute a width factor and
    /// disappear), so boxes cost `O(m·n)` and only genuinely coupled
    /// variables enter the exponential recursion (`T(n) = m·T(n−1)`,
    /// intended for coupled dimension `≲ 8`). Degenerate (empty or
    /// lower-dimensional) polytopes yield 0.
    pub fn volume_lasserre(&self) -> f64 {
        let Some(red) = self.reduce_axis_aligned() else {
            return 0.0;
        };
        if red.rows.is_empty() {
            return red.factor;
        }
        red.factor * vol_rec(&red.rows, red.dim, 2)
    }

    /// The number of variables involved in non-axis-aligned constraints —
    /// the effective dimension of the exact volume recursion.
    pub fn coupled_dim(&self) -> usize {
        self.reduce_axis_aligned().map_or(0, |r| r.dim)
    }

    /// Volume as a `(lo, hi)` pair: exact (`lo == hi`) when the coupled
    /// dimension is at most `exact_dim_cap`, certified box-subdivision
    /// bounds with the given budget otherwise.
    pub fn volume_range(&self, exact_dim_cap: usize, budget: usize) -> (f64, f64) {
        let Some(red) = self.reduce_axis_aligned() else {
            return (0.0, 0.0);
        };
        if red.rows.is_empty() {
            return (red.factor, red.factor);
        }
        if red.dim <= exact_dim_cap {
            let v = red.factor * vol_rec(&red.rows, red.dim, 2);
            (v, v)
        } else {
            // Rebuild the reduced polytope for box subdivision. The rows
            // already contain the per-variable bounds.
            let mut p = HPolytope::nonneg_orthant(red.dim);
            for (a, b) in &red.rows {
                p.add_constraint(a.clone(), *b);
            }
            let (lo, hi) = p.volume_bounds(budget);
            (red.factor * lo, red.factor * hi)
        }
    }

    /// Separates axis-aligned from coupled constraints: computes the
    /// per-variable interval implied by single-coordinate rows, drops
    /// variables not mentioned in any coupled row (their widths multiply
    /// into `factor`), and renumbers the rest. Returns `None` when the
    /// axis bounds alone are already infeasible.
    fn reduce_axis_aligned(&self) -> Option<Reduced> {
        let n = self.dim();
        // Per-variable bounds from the orthant and axis rows.
        let mut lo = vec![0.0f64; n];
        let mut hi = vec![f64::INFINITY; n];
        let mut coupled: Vec<(Vec<f64>, f64)> = Vec::new();
        for (a, b) in self.rows() {
            let nz: Vec<usize> = (0..n).filter(|&j| a[j] != 0.0).collect();
            match nz.len() {
                0 => {
                    if *b < -EPS {
                        return None;
                    }
                }
                1 => {
                    let j = nz[0];
                    let bound = b / a[j];
                    if a[j] > 0.0 {
                        hi[j] = hi[j].min(bound);
                    } else {
                        lo[j] = lo[j].max(bound);
                    }
                }
                _ => coupled.push((a.clone(), *b)),
            }
        }
        for j in 0..n {
            if hi[j] < lo[j] - EPS {
                return None;
            }
            hi[j] = hi[j].max(lo[j]);
        }
        // Which variables appear in coupled rows?
        let mut involved = vec![false; n];
        for (a, _) in &coupled {
            for j in 0..n {
                if a[j] != 0.0 {
                    involved[j] = true;
                }
            }
        }
        let mut factor = 1.0f64;
        let mut remap: Vec<Option<usize>> = vec![None; n];
        let mut dim = 0usize;
        for j in 0..n {
            if involved[j] {
                remap[j] = Some(dim);
                dim += 1;
            } else {
                factor *= hi[j] - lo[j];
            }
        }
        if factor == 0.0 {
            return Some(Reduced {
                factor: 0.0,
                dim: 0,
                rows: Vec::new(),
            });
        }
        // Rebuild rows over the involved variables, adding their axis
        // bounds explicitly.
        let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for (a, b) in &coupled {
            let mut na = vec![0.0; dim];
            for j in 0..n {
                if let Some(k) = remap[j] {
                    na[k] = a[j];
                }
            }
            rows.push((na, *b));
        }
        for j in 0..n {
            if let Some(k) = remap[j] {
                let mut up = vec![0.0; dim];
                up[k] = 1.0;
                rows.push((up, hi[j]));
                let mut down = vec![0.0; dim];
                down[k] = -1.0;
                rows.push((down, -lo[j]));
            }
        }
        Some(Reduced { factor, dim, rows })
    }

    /// Certified volume bounds `[lo, hi]` by box subdivision.
    ///
    /// Splits at most `max_boxes` boundary cells; both bounds are sound
    /// regardless of the budget, and `hi − lo → 0` as the budget grows
    /// (at the boundary-measure rate).
    pub fn volume_bounds(&self, max_boxes: usize) -> (f64, f64) {
        let Some(bb) = self.bounding_box() else {
            return (0.0, 0.0);
        };
        if bb.dim() == 0 {
            return if self.is_empty() {
                (0.0, 0.0)
            } else {
                (1.0, 1.0)
            };
        }
        let mut inside = 0.0f64;
        let mut heap: BinaryHeap<VolBox> = BinaryHeap::new();
        let mut boundary_total = 0.0f64;
        match self.classify(&bb) {
            Cell::Inside => return (bb.volume(), bb.volume()),
            Cell::Outside => return (0.0, 0.0),
            Cell::Boundary => {
                boundary_total += bb.volume();
                heap.push(VolBox(bb));
            }
        }
        let mut splits = 0usize;
        while splits < max_boxes {
            let Some(VolBox(b)) = heap.pop() else {
                break;
            };
            boundary_total -= b.volume();
            let Some((l, r)) = b.bisect_widest() else {
                // Degenerate boundary box: count toward the upper bound.
                boundary_total += b.volume();
                break;
            };
            for child in [l, r] {
                match self.classify(&child) {
                    Cell::Inside => inside += child.volume(),
                    Cell::Outside => {}
                    Cell::Boundary => {
                        boundary_total += child.volume();
                        heap.push(VolBox(child));
                    }
                }
            }
            splits += 1;
        }
        (inside, inside + boundary_total)
    }

    /// Classifies a box against the polytope by interval evaluation.
    fn classify(&self, b: &BoxN) -> Cell {
        let mut all_inside = true;
        for (a, rhs) in self.rows() {
            let range = LinExpr::new(a.clone(), 0.0).range_over_box(b);
            if range.lo() > *rhs {
                return Cell::Outside;
            }
            if range.hi() > *rhs {
                all_inside = false;
            }
        }
        if all_inside {
            Cell::Inside
        } else {
            Cell::Boundary
        }
    }
}

enum Cell {
    Inside,
    Outside,
    Boundary,
}

/// Result of axis-aligned reduction.
struct Reduced {
    /// Product of widths of eliminated (axis-only) variables.
    factor: f64,
    /// Number of remaining (coupled) variables.
    dim: usize,
    /// Rows over the remaining variables, including their axis bounds.
    rows: Vec<(Vec<f64>, f64)>,
}

/// Max-heap ordering by box volume.
struct VolBox(BoxN);

impl PartialEq for VolBox {
    fn eq(&self, other: &Self) -> bool {
        self.0.volume() == other.0.volume()
    }
}
impl Eq for VolBox {}
impl PartialOrd for VolBox {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for VolBox {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.volume().total_cmp(&other.0.volume())
    }
}

/// Recursive volume of `{x | rows}` (variables are free; all bounds must
/// be explicit rows). `lp_levels` controls how many recursion levels
/// still run LP-based redundancy removal; below that, only cheap
/// normalisation/deduplication and axis reduction are used — projections
/// turn coupled rows into per-variable bounds, which the reduction then
/// eliminates, keeping the branching factor small.
fn vol_rec(rows: &[(Vec<f64>, f64)], dim: usize, lp_levels: u32) -> f64 {
    // Per-level axis-aligned reduction over *free* variables.
    let Some(red) = reduce_rows_free(rows, dim) else {
        return 0.0;
    };
    let factor = red.factor;
    if factor == 0.0 {
        return 0.0;
    }
    let dim = red.dim;
    let rows = red.rows;
    if dim == 0 {
        return factor;
    }
    if dim == 1 {
        return factor * interval_length_1d(&rows);
    }
    let rows = if lp_levels > 0 {
        simplify_rows(&rows, dim)
    } else {
        dedup_rows(&rows)
    };
    if rows.is_empty() {
        return f64::INFINITY; // unbounded (cannot happen for cube subsets)
    }
    let mut total = 0.0f64;
    for (i, (a, b)) in rows.iter().enumerate() {
        // Pivot coordinate: largest |a_k| for numerical stability.
        let (k, ak) = match a
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
        {
            Some((k, &ak)) if ak.abs() > EPS => (k, ak),
            _ => continue, // zero row — no facet
        };
        if b.abs() <= EPS {
            // Facet hyperplane through the origin: zero flux term.
            continue;
        }
        // Project every other row onto the hyperplane a·x = b by
        // substituting x_k = (b − Σ_{j≠k} a_j x_j) / a_k.
        let mut sub_rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(rows.len() - 1);
        for (j, (c, d)) in rows.iter().enumerate() {
            if j == i {
                continue;
            }
            let ck = c[k];
            let mut new_c = Vec::with_capacity(dim - 1);
            for t in 0..dim {
                if t == k {
                    continue;
                }
                new_c.push(c[t] - ck * a[t] / ak);
            }
            let new_d = d - ck * b / ak;
            sub_rows.push((new_c, new_d));
        }
        let facet_proj_vol = vol_rec(&sub_rows, dim - 1, lp_levels.saturating_sub(1));
        if facet_proj_vol.is_finite() && facet_proj_vol > 0.0 {
            total += (b / ak.abs()) * facet_proj_vol;
        }
    }
    factor * (total / dim as f64).max(0.0)
}

/// Axis-aligned reduction for rows over *free* variables (no implicit
/// orthant). Returns `None` when the per-variable bounds alone are
/// infeasible; uninvolved variables with unbounded width make the factor
/// infinite.
fn reduce_rows_free(rows: &[(Vec<f64>, f64)], n: usize) -> Option<Reduced> {
    let mut lo = vec![f64::NEG_INFINITY; n];
    let mut hi = vec![f64::INFINITY; n];
    let mut coupled: Vec<(Vec<f64>, f64)> = Vec::new();
    for (a, b) in rows {
        let nz: Vec<usize> = (0..n).filter(|&j| a[j].abs() > EPS).collect();
        match nz.len() {
            0 => {
                if *b < -EPS {
                    return None;
                }
            }
            1 => {
                let j = nz[0];
                let bound = b / a[j];
                if a[j] > 0.0 {
                    hi[j] = hi[j].min(bound);
                } else {
                    lo[j] = lo[j].max(bound);
                }
            }
            _ => coupled.push((a.clone(), *b)),
        }
    }
    for j in 0..n {
        if hi[j] < lo[j] - EPS {
            return None;
        }
        hi[j] = hi[j].max(lo[j]);
    }
    let mut involved = vec![false; n];
    for (a, _) in &coupled {
        for j in 0..n {
            if a[j].abs() > EPS {
                involved[j] = true;
            }
        }
    }
    let mut factor = 1.0f64;
    let mut remap: Vec<Option<usize>> = vec![None; n];
    let mut dim = 0usize;
    for j in 0..n {
        if involved[j] {
            remap[j] = Some(dim);
            dim += 1;
        } else {
            factor *= hi[j] - lo[j]; // may be ∞ for unbounded free vars
        }
    }
    if factor == 0.0 {
        return Some(Reduced {
            factor: 0.0,
            dim: 0,
            rows: Vec::new(),
        });
    }
    let mut out_rows: Vec<(Vec<f64>, f64)> = Vec::new();
    for (a, b) in &coupled {
        let mut na = vec![0.0; dim];
        for j in 0..n {
            if let Some(k) = remap[j] {
                na[k] = a[j];
            }
        }
        out_rows.push((na, *b));
    }
    for j in 0..n {
        if let Some(k) = remap[j] {
            if hi[j].is_finite() {
                let mut up = vec![0.0; dim];
                up[k] = 1.0;
                out_rows.push((up, hi[j]));
            }
            if lo[j].is_finite() {
                let mut down = vec![0.0; dim];
                down[k] = -1.0;
                out_rows.push((down, -lo[j]));
            }
        }
    }
    Some(Reduced {
        factor,
        dim,
        rows: out_rows,
    })
}

/// Normalises and deduplicates rows without LP calls.
fn dedup_rows(rows: &[(Vec<f64>, f64)]) -> Vec<(Vec<f64>, f64)> {
    let mut kept: Vec<(Vec<f64>, f64)> = Vec::new();
    'next: for (a, b) in rows {
        let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= EPS {
            continue;
        }
        let na: Vec<f64> = a.iter().map(|x| x / norm).collect();
        let nb = b / norm;
        for (ka, kb) in &mut kept {
            if ka.iter().zip(&na).all(|(x, y)| (x - y).abs() < 1e-9) {
                *kb = kb.min(nb);
                continue 'next;
            }
        }
        kept.push((na, nb));
    }
    kept
}

/// Length of the 1-D feasible interval of `rows`.
fn interval_length_1d(rows: &[(Vec<f64>, f64)]) -> f64 {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for (a, b) in rows {
        let a = a[0];
        if a.abs() <= EPS {
            if *b < -EPS {
                return 0.0;
            }
            continue;
        }
        let bound = b / a;
        if a > 0.0 {
            hi = hi.min(bound);
        } else {
            lo = lo.max(bound);
        }
    }
    if hi.is_infinite() || lo.is_infinite() {
        return f64::INFINITY;
    }
    (hi - lo).max(0.0)
}

/// Normalises, deduplicates and (LP-)removes redundant rows.
fn simplify_rows(rows: &[(Vec<f64>, f64)], dim: usize) -> Vec<(Vec<f64>, f64)> {
    // Normalise to ‖a‖ = 1 so duplicates compare exactly-ish.
    let mut normed: Vec<(Vec<f64>, f64)> = Vec::with_capacity(rows.len());
    for (a, b) in rows {
        let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= EPS {
            continue; // constant row; feasibility handled by caller LPs
        }
        normed.push((a.iter().map(|x| x / norm).collect(), b / norm));
    }
    // Dedup near-identical rows keeping the tightest rhs.
    let mut kept: Vec<(Vec<f64>, f64)> = Vec::new();
    'next: for (a, b) in normed {
        for (ka, kb) in &mut kept {
            let same = ka.iter().zip(&a).all(|(x, y)| (x - y).abs() < 1e-9);
            if same {
                *kb = kb.min(b);
                continue 'next;
            }
        }
        kept.push((a, b));
    }
    // LP-based redundancy removal with FREE variables: the recursion's
    // row system is the whole truth (orthant facets are explicit rows),
    // so the check must not smuggle in the simplex solver's implicit
    // `x ≥ 0`.
    let mut result: Vec<(Vec<f64>, f64)> = Vec::new();
    for i in 0..kept.len() {
        let (a, b) = &kept[i];
        let mut others: Vec<(Vec<f64>, f64)> = result.clone();
        others.extend(kept[i + 1..].iter().cloned());
        match crate::simplex::solve_lp_free(a, true, &others, dim) {
            crate::simplex::LpOutcome::Optimal(v, _) if v <= b + EPS => {}
            _ => result.push((a.clone(), *b)),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_interval::Interval;

    #[test]
    fn unit_cube_volume() {
        for n in 1..=4 {
            let p = HPolytope::unit_cube(n);
            assert!((p.volume_lasserre() - 1.0).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn standard_simplex_volume() {
        // x₁ + ⋯ + x_n ≤ 1 in the cube: volume 1/n!.
        let mut expect = 1.0;
        for n in 1..=5 {
            expect /= n as f64;
            let mut p = HPolytope::unit_cube(n);
            p.add_constraint(vec![1.0; n], 1.0);
            let v = p.volume_lasserre();
            assert!(
                (v - expect).abs() < 1e-9 * (1.0 + expect),
                "n={n}: {v} vs {expect}"
            );
        }
    }

    #[test]
    fn halfspace_cut_volume() {
        // x ≤ 0.3 in the unit square: area 0.3.
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 0.0], 0.3);
        assert!((p.volume_lasserre() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn diagonal_band_volume() {
        // 0.25 ≤ x − y ≤ 0.75 in the unit square.
        // Area = P(x−y≤0.75) − P(x−y≤0.25) with triangles:
        //   P(x−y ≤ t) = 1 − (1−t)²/2 for t ∈ [0,1]
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, -1.0], 0.75);
        p.add_constraint(vec![-1.0, 1.0], -0.25);
        let expect = (1.0 - 0.25f64.powi(2) / 2.0) - (1.0 - 0.75f64.powi(2) / 2.0);
        assert!((p.volume_lasserre() - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_polytope_volume_zero() {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 0.0], 0.2);
        p.add_constraint(vec![-1.0, 0.0], -0.8);
        assert_eq!(p.volume_lasserre(), 0.0);
        assert_eq!(p.volume_bounds(100), (0.0, 0.0));
    }

    #[test]
    fn degenerate_polytope_volume_zero() {
        // x = 0.5 slice has measure 0.
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 0.0], 0.5);
        p.add_constraint(vec![-1.0, 0.0], -0.5);
        assert!(p.volume_lasserre().abs() < 1e-9);
    }

    #[test]
    fn box_bounds_sandwich_lasserre() {
        let mut p = HPolytope::unit_cube(3);
        p.add_constraint(vec![1.0, 1.0, 1.0], 1.5);
        p.add_constraint(vec![1.0, -1.0, 0.5], 0.6);
        let exact = p.volume_lasserre();
        let (lo, hi) = p.volume_bounds(20_000);
        assert!(lo <= exact + 1e-9, "lo={lo} exact={exact}");
        assert!(exact <= hi + 1e-9, "hi={hi} exact={exact}");
        assert!(hi - lo < 0.2, "bounds too loose: [{lo}, {hi}]");
    }

    #[test]
    fn box_bounds_converge() {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 1.0], 1.0);
        let (lo1, hi1) = p.volume_bounds(64);
        let (lo2, hi2) = p.volume_bounds(4096);
        assert!(hi2 - lo2 < hi1 - lo1);
        assert!(lo2 <= 0.5 && 0.5 <= hi2);
        assert!(hi2 - lo2 < 0.05);
    }

    #[test]
    fn axis_aligned_reduction_makes_boxes_instant() {
        // A 12-D box would be hopeless for the raw recursion; the
        // reduction computes it as a product of widths.
        let mut p = HPolytope::unit_cube(12);
        for i in 0..12 {
            let mut a = vec![0.0; 12];
            a[i] = 1.0;
            p.add_constraint(a, 0.5); // x_i ≤ 0.5
        }
        assert_eq!(p.coupled_dim(), 0);
        let v = p.volume_lasserre();
        assert!((v - 0.5f64.powi(12)).abs() < 1e-15);
    }

    #[test]
    fn reduction_keeps_coupled_variables() {
        // 10 dims, but only x₀ + x₁ ≤ 1 couples anything.
        let mut p = HPolytope::unit_cube(10);
        p.add_constraint(vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 1.0);
        assert_eq!(p.coupled_dim(), 2);
        assert!((p.volume_lasserre() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn volume_range_exact_vs_certified() {
        let mut p = HPolytope::unit_cube(3);
        p.add_constraint(vec![1.0, 1.0, 1.0], 1.5);
        let (lo_e, hi_e) = p.volume_range(8, 1000);
        assert_eq!(lo_e, hi_e, "exact below the cap");
        let (lo_c, hi_c) = p.volume_range(0, 8000);
        assert!(lo_c <= lo_e && hi_e <= hi_c, "certified brackets exact");
        assert!(hi_c - lo_c < 0.3);
    }

    #[test]
    fn infeasible_axis_bounds_give_zero() {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![-1.0, 0.0], -1.5); // x ≥ 1.5 vs x ≤ 1
        assert_eq!(p.volume_lasserre(), 0.0);
        assert_eq!(p.volume_range(8, 100), (0.0, 0.0));
    }

    #[test]
    fn volume_of_shifted_box() {
        let b = BoxN::new(vec![Interval::new(0.25, 0.75), Interval::new(0.5, 1.0)]);
        let p = HPolytope::from_box(&b);
        assert!((p.volume_lasserre() - 0.25).abs() < 1e-9);
        let (lo, hi) = p.volume_bounds(10);
        assert!((lo - 0.25).abs() < 1e-9 && (hi - 0.25).abs() < 1e-9);
    }
}
