//! Linear expressions `w·x + c` over sample variables.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use gubpi_interval::{BoxN, Interval};

/// A linear expression `w₁x₁ + ⋯ + w_nx_n + c`.
///
/// The symbolic executor extracts these from symbolic values (§6.4 calls
/// them *interval linear functions* when the constant is an interval; we
/// keep the constant pointwise and track interval slack separately).
#[derive(Clone, PartialEq, Debug)]
pub struct LinExpr {
    coeffs: Vec<f64>,
    constant: f64,
}

impl LinExpr {
    /// The constant expression `c` over `dim` variables.
    pub fn constant(dim: usize, c: f64) -> LinExpr {
        LinExpr {
            coeffs: vec![0.0; dim],
            constant: c,
        }
    }

    /// The single variable `x_i` over `dim` variables.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ dim`.
    pub fn var(dim: usize, i: usize) -> LinExpr {
        assert!(i < dim, "variable index out of range");
        let mut coeffs = vec![0.0; dim];
        coeffs[i] = 1.0;
        LinExpr {
            coeffs,
            constant: 0.0,
        }
    }

    /// Builds from raw parts.
    pub fn new(coeffs: Vec<f64>, constant: f64) -> LinExpr {
        LinExpr { coeffs, constant }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient vector `w`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The constant offset `c`.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// Is this a constant (all coefficients zero)?
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&w| w == 0.0)
    }

    /// Evaluates at a point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        self.coeffs.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.constant
    }

    /// Exact range over an axis-aligned box (interval arithmetic is exact
    /// for linear functions of independent variables).
    pub fn range_over_box(&self, b: &BoxN) -> Interval {
        assert_eq!(b.dim(), self.dim(), "dimension mismatch");
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (w, iv) in self.coeffs.iter().zip(b.intervals()) {
            if *w >= 0.0 {
                lo += w * iv.lo();
                hi += w * iv.hi();
            } else {
                lo += w * iv.hi();
                hi += w * iv.lo();
            }
        }
        Interval::new(lo.min(hi), hi.max(lo))
    }

    /// Scales by a constant.
    pub fn scale(&self, k: f64) -> LinExpr {
        LinExpr {
            coeffs: self.coeffs.iter().map(|w| w * k).collect(),
            constant: self.constant * k,
        }
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: &LinExpr) -> LinExpr {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + rhs.constant,
        }
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: &LinExpr) -> LinExpr {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            constant: self.constant - rhs.constant,
        }
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(-1.0)
    }
}

impl Mul<f64> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        self.scale(k)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, w) in self.coeffs.iter().enumerate() {
            if *w == 0.0 {
                continue;
            }
            if first {
                write!(f, "{w}·a{i}")?;
                first = false;
            } else if *w < 0.0 {
                write!(f, " - {}·a{i}", -w)?;
            } else {
                write!(f, " + {w}·a{i}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant != 0.0 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)
            } else {
                write!(f, " + {}", self.constant)
            }
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_and_arithmetic() {
        let x = LinExpr::var(2, 0);
        let y = LinExpr::var(2, 1);
        let e = &(&x + &y.scale(2.0)) + &LinExpr::constant(2, 1.0); // x + 2y + 1
        assert_eq!(e.eval(&[3.0, 4.0]), 12.0);
        let d = &e - &x; // 2y + 1
        assert_eq!(d.eval(&[100.0, 1.0]), 3.0);
        assert!((-&d).eval(&[0.0, 1.0]) == -3.0);
        assert!(!e.is_constant());
        assert!(LinExpr::constant(3, 5.0).is_constant());
    }

    #[test]
    fn range_over_box_is_exact() {
        // x − 2y over [0,1] × [0,0.5]: range [−1, 1].
        let e = LinExpr::new(vec![1.0, -2.0], 0.0);
        let b = BoxN::new(vec![Interval::UNIT, Interval::new(0.0, 0.5)]);
        assert_eq!(e.range_over_box(&b), Interval::new(-1.0, 1.0));
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::new(vec![1.0, -0.5], 2.0);
        assert_eq!(e.to_string(), "1·a0 - 0.5·a1 + 2");
        assert_eq!(LinExpr::constant(2, 3.0).to_string(), "3");
    }
}
