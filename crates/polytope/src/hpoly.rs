//! H-representation polytopes over `[0, 1]^n`-like domains.

use gubpi_interval::{BoxN, Interval};

use crate::simplex::{solve_lp, LpOutcome};
use crate::LinExpr;

/// A convex polytope `{ x ≥ 0 | aᵢ·x ≤ bᵢ }` in H-representation.
///
/// The analyzer's polytopes always live inside `[0, 1]^n` (sample
/// variables), so [`HPolytope::unit_cube`] is the usual starting point.
#[derive(Clone, Debug, PartialEq)]
pub struct HPolytope {
    dim: usize,
    rows: Vec<(Vec<f64>, f64)>,
}

impl HPolytope {
    /// A polytope with no constraints beyond `x ≥ 0` (implicit).
    pub fn nonneg_orthant(dim: usize) -> HPolytope {
        HPolytope {
            dim,
            rows: Vec::new(),
        }
    }

    /// The unit cube `[0, 1]^n` (upper bounds as rows; `x ≥ 0` implicit).
    pub fn unit_cube(dim: usize) -> HPolytope {
        let mut rows = Vec::with_capacity(dim);
        for i in 0..dim {
            let mut a = vec![0.0; dim];
            a[i] = 1.0;
            rows.push((a, 1.0));
        }
        HPolytope { dim, rows }
    }

    /// The polytope of an axis-aligned box inside the non-negative
    /// orthant.
    ///
    /// # Panics
    ///
    /// Panics if the box has a negative lower endpoint.
    pub fn from_box(b: &BoxN) -> HPolytope {
        let dim = b.dim();
        let mut p = HPolytope::nonneg_orthant(dim);
        for (i, iv) in b.intervals().iter().enumerate() {
            assert!(iv.lo() >= 0.0, "box must lie in the non-negative orthant");
            let mut up = vec![0.0; dim];
            up[i] = 1.0;
            p.add_constraint(up, iv.hi());
            if iv.lo() > 0.0 {
                let mut down = vec![0.0; dim];
                down[i] = -1.0;
                p.add_constraint(down, -iv.lo());
            }
        }
        p
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraint rows `(a, b)` meaning `a·x ≤ b`.
    pub fn rows(&self) -> &[(Vec<f64>, f64)] {
        &self.rows
    }

    /// Adds the constraint `a·x ≤ b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.dim()`.
    pub fn add_constraint(&mut self, a: Vec<f64>, b: f64) {
        assert_eq!(a.len(), self.dim, "constraint dimension mismatch");
        self.rows.push((a, b));
    }

    /// Adds `e ≤ 0` for a linear expression (`e.coeffs·x ≤ −e.constant`).
    pub fn add_le_zero(&mut self, e: &LinExpr) {
        self.add_constraint(e.coeffs().to_vec(), -e.constant_term());
    }

    /// Adds `e ≥ 0`, i.e. `−e ≤ 0`.
    pub fn add_ge_zero(&mut self, e: &LinExpr) {
        self.add_le_zero(&-e);
    }

    /// Is the polytope empty (within LP tolerance)?
    pub fn is_empty(&self) -> bool {
        matches!(
            solve_lp(&vec![0.0; self.dim], false, &self.rows, self.dim),
            LpOutcome::Infeasible
        )
    }

    /// Minimises `w·x` over the polytope.
    pub fn minimize(&self, w: &[f64]) -> LpOutcome {
        solve_lp(w, false, &self.rows, self.dim)
    }

    /// Maximises `w·x` over the polytope.
    pub fn maximize(&self, w: &[f64]) -> LpOutcome {
        solve_lp(w, true, &self.rows, self.dim)
    }

    /// The exact range of a linear expression over the polytope, or
    /// `None` when the polytope is empty.
    pub fn range_of(&self, e: &LinExpr) -> Option<Interval> {
        let lo = match self.minimize(e.coeffs()) {
            LpOutcome::Optimal(v, _) => v + e.constant_term(),
            LpOutcome::Unbounded => f64::NEG_INFINITY,
            LpOutcome::Infeasible => return None,
        };
        let hi = match self.maximize(e.coeffs()) {
            LpOutcome::Optimal(v, _) => v + e.constant_term(),
            LpOutcome::Unbounded => f64::INFINITY,
            LpOutcome::Infeasible => return None,
        };
        Some(Interval::new(lo.min(hi), hi.max(lo)))
    }

    /// The tightest axis-aligned bounding box (via `2n` LPs), or `None`
    /// when empty.
    pub fn bounding_box(&self) -> Option<BoxN> {
        let mut dims = Vec::with_capacity(self.dim);
        for i in 0..self.dim {
            let e = LinExpr::var(self.dim, i);
            dims.push(self.range_of(&e)?);
        }
        Some(BoxN::new(dims))
    }

    /// Does the polytope contain `x` (within tolerance)?
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.dim
            && x.iter().all(|&v| v >= -tol)
            && self
                .rows
                .iter()
                .all(|(a, b)| a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + tol)
    }

    /// Removes constraints implied by the others (for each row, maximise
    /// its left-hand side subject to the rest; redundant iff `max ≤ b`).
    pub fn without_redundant_rows(&self) -> HPolytope {
        let mut kept: Vec<(Vec<f64>, f64)> = Vec::new();
        for i in 0..self.rows.len() {
            let (a, b) = &self.rows[i];
            let mut others: Vec<(Vec<f64>, f64)> = kept.clone();
            others.extend(self.rows[i + 1..].iter().cloned());
            match solve_lp(a, true, &others, self.dim) {
                LpOutcome::Optimal(v, _) if v <= b + 1e-9 => {
                    // implied by the others — drop
                }
                LpOutcome::Infeasible => {
                    // empty polytope; keep the row (harmless)
                    kept.push((a.clone(), *b));
                }
                _ => kept.push((a.clone(), *b)),
            }
        }
        HPolytope {
            dim: self.dim,
            rows: kept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_ranges() {
        let p = HPolytope::unit_cube(3);
        let e = LinExpr::new(vec![1.0, -1.0, 2.0], 0.5);
        assert_eq!(p.range_of(&e), Some(Interval::new(-0.5, 3.5)));
        assert!(!p.is_empty());
        assert!(p.contains(&[0.5, 0.5, 0.5], 1e-12));
        assert!(!p.contains(&[1.5, 0.0, 0.0], 1e-12));
    }

    #[test]
    fn halfspace_cut() {
        let mut p = HPolytope::unit_cube(2);
        // x + y ≤ 0.5
        p.add_le_zero(&LinExpr::new(vec![1.0, 1.0], -0.5));
        assert_eq!(
            p.range_of(&LinExpr::var(2, 0)),
            Some(Interval::new(0.0, 0.5))
        );
        // adding x ≥ 0.8 empties it
        let mut q = p.clone();
        q.add_ge_zero(&LinExpr::new(vec![1.0, 0.0], -0.8));
        assert!(q.is_empty());
        assert_eq!(q.range_of(&LinExpr::var(2, 0)), None);
    }

    #[test]
    fn bounding_box_of_triangle() {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 1.0], 0.75);
        let bb = p.bounding_box().unwrap();
        assert_eq!(bb[0], Interval::new(0.0, 0.75));
        assert_eq!(bb[1], Interval::new(0.0, 0.75));
    }

    #[test]
    fn redundant_rows_are_removed() {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 0.0], 2.0); // implied by x ≤ 1
        p.add_constraint(vec![1.0, 1.0], 0.5);
        p.add_constraint(vec![1.0, 1.0], 0.9); // implied by ≤ 0.5
        let r = p.without_redundant_rows();
        assert!(r.rows().len() <= 3, "got {:?}", r.rows());
        // Same feasible set.
        assert_eq!(
            r.range_of(&LinExpr::var(2, 0)),
            p.range_of(&LinExpr::var(2, 0))
        );
    }

    #[test]
    fn from_box_roundtrip() {
        let b = BoxN::new(vec![Interval::new(0.25, 0.75), Interval::new(0.0, 0.5)]);
        let p = HPolytope::from_box(&b);
        assert!(p.contains(&[0.5, 0.25], 1e-12));
        assert!(!p.contains(&[0.1, 0.25], 1e-12));
        let bb = p.bounding_box().unwrap();
        assert!((bb[0].lo() - 0.25).abs() < 1e-9);
        assert!((bb[1].hi() - 0.5).abs() < 1e-9);
    }
}
