//! Property tests: the two volume algorithms must agree.
//!
//! Lasserre's facet recursion is exact-but-floating-point; the box
//! subdivision is certified. On random polytopes (random halfspace cuts
//! of the unit cube) the Lasserre value must fall inside the certified
//! `[lo, hi]` bounds, and both must agree with a high-resolution grid
//! estimate in 2-D.

use gubpi_polytope::{HPolytope, LinExpr, LpOutcome};
use proptest::prelude::*;

fn random_cut() -> impl Strategy<Value = (Vec<f64>, f64)> {
    (proptest::collection::vec(-1.0f64..1.0, 3), -0.5f64..1.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn lasserre_within_certified_bounds(cuts in proptest::collection::vec(random_cut(), 0..4)) {
        let mut p = HPolytope::unit_cube(3);
        for (a, b) in &cuts {
            p.add_constraint(a.clone(), *b);
        }
        let exact = p.volume_lasserre();
        let (lo, hi) = p.volume_bounds(6_000);
        // Allow a whisker of floating-point slack.
        prop_assert!(lo - 1e-7 <= exact, "lo={lo} exact={exact} cuts={cuts:?}");
        prop_assert!(exact <= hi + 1e-7, "hi={hi} exact={exact} cuts={cuts:?}");
    }

    #[test]
    fn two_d_grid_cross_check(a0 in -1.0f64..1.0, a1 in -1.0f64..1.0, b in -0.5f64..1.5) {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![a0, a1], b);
        let exact = p.volume_lasserre();
        // 400×400 midpoint grid estimate.
        let n = 400usize;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                let x = (i as f64 + 0.5) / n as f64;
                let y = (j as f64 + 0.5) / n as f64;
                if a0 * x + a1 * y <= b {
                    hits += 1;
                }
            }
        }
        let grid = hits as f64 / (n * n) as f64;
        prop_assert!((exact - grid).abs() < 0.02, "exact={exact} grid={grid}");
    }

    #[test]
    fn lp_range_contains_feasible_points(a0 in -1.0f64..1.0, a1 in -1.0f64..1.0,
                                         b in 0.2f64..1.5, px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![a0, a1], b);
        let e = LinExpr::new(vec![0.7, -0.3], 0.1);
        if p.contains(&[px, py], 0.0) {
            let range = p.range_of(&e).expect("nonempty");
            let v = e.eval(&[px, py]);
            prop_assert!(range.lo() - 1e-9 <= v && v <= range.hi() + 1e-9);
        }
    }

    #[test]
    fn lp_optimum_is_feasible_and_extreme(c0 in -1.0f64..1.0, c1 in -1.0f64..1.0,
                                          b in 0.2f64..1.8) {
        let mut p = HPolytope::unit_cube(2);
        p.add_constraint(vec![1.0, 1.0], b);
        if let LpOutcome::Optimal(v, x) = p.maximize(&[c0, c1]) {
            prop_assert!(p.contains(&x, 1e-7), "optimum {x:?} infeasible");
            prop_assert!((c0 * x[0] + c1 * x[1] - v).abs() < 1e-7);
            // No grid point beats the optimum.
            for i in 0..20 {
                for j in 0..20 {
                    let gx = i as f64 / 19.0;
                    let gy = j as f64 / 19.0;
                    if p.contains(&[gx, gy], 0.0) {
                        prop_assert!(c0 * gx + c1 * gy <= v + 1e-7);
                    }
                }
            }
        }
    }
}
