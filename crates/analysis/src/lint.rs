//! Program lints derived from [`ProgramFacts`].
//!
//! Each lint points at a source span (rendered as `line:col` via
//! [`gubpi_lang::line_col`]) and quotes the offending subterm with the
//! pretty printer. Two severities: **warnings** flag constructs that are
//! almost certainly modelling mistakes (zero-weight observations,
//! out-of-domain distribution parameters, unreachable branches, unused
//! sampling bindings), **notes** flag constructs that are legitimate but
//! interact badly with guaranteed bounds (recursions without weight
//! contraction, unbounded score factors). `repro analyze
//! --deny-warnings` fails on warnings only, so the repository's models —
//! which rely on recursion and `fail` deliberately — stay clean.

use gubpi_interval::Interval;
use gubpi_lang::{line_col, pretty, Expr, ExprKind, PrimOp, Program, Span};
use gubpi_types::IntervalTyping;

use crate::facts::ProgramFacts;
use crate::ranking::RankVerdict;

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Almost certainly a modelling mistake; `--deny-warnings` fails.
    Warning,
    /// Worth knowing, often deliberate.
    Note,
}

/// The distinct kinds of findings.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A `score`/`observe` whose factor is provably 0 on every run.
    ZeroWeightScore,
    /// A distribution parameter provably outside its valid domain.
    OutOfDomainParameter,
    /// An `if` branch that can never be taken.
    UnreachableBranch,
    /// A `let`-bound variable that draws samples but is never used.
    UnusedSample,
    /// A recursion whose per-unfolding weight is not provably < 1.
    TruncationRiskRecursion,
    /// A score factor with no finite upper bound.
    UnboundedScore,
    /// A recursion for which neither a geometric nor an
    /// eventually-geometric tail fact could be established.
    NoTailBoundRecursion,
}

impl LintKind {
    /// Stable kebab-case name, used in rendered output and CI greps.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::ZeroWeightScore => "zero-weight-score",
            LintKind::OutOfDomainParameter => "out-of-domain-parameter",
            LintKind::UnreachableBranch => "unreachable-branch",
            LintKind::UnusedSample => "unused-sample",
            LintKind::TruncationRiskRecursion => "truncation-risk-recursion",
            LintKind::UnboundedScore => "unbounded-score",
            LintKind::NoTailBoundRecursion => "no-tail-bound-recursion",
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Lint {
    /// What was found.
    pub kind: LintKind,
    /// Warning or note.
    pub severity: Severity,
    /// Where (byte span into the source).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Lint {
    /// Renders the lint against the program source, in the style
    /// `3:14: warning[zero-weight-score]: …`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start as usize);
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        format!(
            "{line}:{col}: {sev}[{}]: {}",
            self.kind.name(),
            self.message
        )
    }
}

/// Runs every lint over the program, sorted by source position (ties
/// broken by kind) for deterministic output.
pub fn lint_program(program: &Program, typing: &IntervalTyping, facts: &ProgramFacts) -> Vec<Lint> {
    let _ = typing;
    let mut lints = Vec::new();
    program.root.walk(&mut |e| {
        if !facts.was_evaluated(e.id) && !matches!(e.kind, ExprKind::Fix(..)) {
            return;
        }
        match &e.kind {
            ExprKind::Score(arg) => lint_score(e, arg, facts, &mut lints),
            ExprKind::Prim(op, args) => lint_prim(*op, args, facts, &mut lints),
            ExprKind::If(c, t, els) => lint_if(e, c, t, els, facts, &mut lints),
            ExprKind::Fix(..) => lint_fix(e, facts, &mut lints),
            _ => {}
        }
    });
    for unused in facts.unused_samples() {
        lints.push(Lint {
            kind: LintKind::UnusedSample,
            severity: Severity::Warning,
            span: unused.span,
            message: format!(
                "`{}` is never used but its definition draws samples; \
                 the draws still lengthen every trace",
                unused.name
            ),
        });
    }
    lints.sort_by_key(|l| (l.span.start, l.span.end, l.kind.name()));
    lints
}

fn lint_score(e: &Expr, arg: &Expr, facts: &ProgramFacts, lints: &mut Vec<Lint>) {
    let Some(w) = facts.score_weight(e.id) else {
        return;
    };
    // A literal `score(0)`/`fail` is an explicit rejection, not a
    // mistake; everything else that is provably 0 everywhere is.
    let literal_zero = matches!(arg.kind, ExprKind::Const(r) if r == 0.0);
    if w == Interval::ZERO && !literal_zero {
        lints.push(Lint {
            kind: LintKind::ZeroWeightScore,
            severity: Severity::Warning,
            span: e.span,
            message: format!(
                "this observation has zero weight on every run: `{}` is always 0, \
                 so the posterior conditions on an impossible event",
                pretty(arg)
            ),
        });
    }
    if w.hi().is_infinite() {
        lints.push(Lint {
            kind: LintKind::UnboundedScore,
            severity: Severity::Note,
            span: e.span,
            message: format!(
                "this score factor has no finite upper bound (`{}` ranges over {w:?}); \
                 upper posterior bounds may be infinite",
                pretty(arg)
            ),
        });
    }
}

/// `(op, index of the offending parameter)` for density/quantile
/// primitives whose parameter interval lies entirely outside the valid
/// domain.
fn lint_prim(op: PrimOp, args: &[Expr], facts: &ProgramFacts, lints: &mut Vec<Lint>) {
    let arg_value = |i: usize| facts.value(args[i].id);
    let mut bad: Option<(usize, Interval, &str)> = None;
    let scale_bad = |i: Interval| i.hi() <= 0.0;
    match op {
        PrimOp::NormalPdf | PrimOp::CauchyPdf => {
            if let Some(s) = arg_value(1) {
                if scale_bad(s) {
                    bad = Some((1, s, "scale must be positive"));
                }
            }
        }
        PrimOp::ExponentialPdf => {
            if let Some(s) = arg_value(0) {
                if scale_bad(s) {
                    bad = Some((0, s, "rate must be positive"));
                }
            }
        }
        PrimOp::BetaPdf | PrimOp::BetaQuantile => {
            for i in 0..2 {
                if let Some(s) = arg_value(i) {
                    if scale_bad(s) {
                        bad = Some((i, s, "shape must be positive"));
                        break;
                    }
                }
            }
        }
        PrimOp::UniformPdf => {
            if let (Some(a), Some(b)) = (arg_value(0), arg_value(1)) {
                if a.lo() >= b.hi() {
                    bad = Some((0, a, "the support is empty (lower bound ≥ upper bound)"));
                }
            }
        }
        _ => {}
    }
    if let Some((i, s, why)) = bad {
        lints.push(Lint {
            kind: LintKind::OutOfDomainParameter,
            severity: Severity::Warning,
            span: args[i].span,
            message: format!(
                "parameter `{}` of {} is never in its valid domain ({why}; \
                 its value is always in {s:?}), so the density is 0 everywhere",
                pretty(&args[i]),
                op.name(),
            ),
        });
    }
}

fn lint_if(
    e: &Expr,
    guard: &Expr,
    t: &Expr,
    els: &Expr,
    facts: &ProgramFacts,
    lints: &mut Vec<Lint>,
) {
    let Some(flow) = facts.branch_flow(e.id) else {
        return;
    };
    let dead = if flow.then_taken && !flow.else_taken {
        Some((els, ">"))
    } else if flow.else_taken && !flow.then_taken {
        Some((t, "≤"))
    } else {
        None
    };
    if let Some((side, cmp)) = dead {
        lints.push(Lint {
            kind: LintKind::UnreachableBranch,
            severity: Severity::Warning,
            span: side.span,
            message: format!(
                "this branch can never be taken: `{} {cmp} 0` is impossible",
                pretty(guard)
            ),
        });
    }
}

fn lint_fix(e: &Expr, facts: &ProgramFacts, lints: &mut Vec<Lint>) {
    let Some(w) = facts.contraction(e.id) else {
        return;
    };
    if w.hi() >= 1.0 {
        lints.push(Lint {
            kind: LintKind::TruncationRiskRecursion,
            severity: Severity::Note,
            span: e.span,
            message: format!(
                "per-unfolding weight {w:?} is not provably below 1: truncated \
                 recursion tails keep full mass, so deep recursions may dominate \
                 the bound width (raise the unfolding budget if bounds look loose)"
            ),
        });
    }
    // Deliberate recursion is legitimate, so this stays a note — but a
    // μ node that defeated the ranking pass keeps bare `[0, ∞]` upper
    // contributions on every budget-truncated path, and the synthesis
    // failure reason usually names the offending construct.
    if let Some(RankVerdict::Failed { reason }) = facts.ranking_verdict(e.id) {
        lints.push(Lint {
            kind: LintKind::NoTailBoundRecursion,
            severity: Severity::Note,
            span: e.span,
            message: format!(
                "no geometric or eventually-geometric tail bound could be \
                 synthesized for this recursion ({reason}); budget-truncated \
                 explorations keep the bare [0, ∞] upper contribution"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_types::infer_interval_types;

    fn lints_for(src: &str) -> Vec<Lint> {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        lint_program(&p, &typing, &facts)
    }

    fn kinds(lints: &[Lint]) -> Vec<LintKind> {
        lints.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn zero_weight_observation_warns_but_fail_does_not() {
        let noisy = lints_for("observe 5 from uniform(0, 1); sample");
        assert!(kinds(&noisy).contains(&LintKind::ZeroWeightScore));
        let deliberate = lints_for("if sample <= 0.5 then sample else fail");
        assert!(!kinds(&deliberate).contains(&LintKind::ZeroWeightScore));
    }

    #[test]
    fn out_of_domain_scale_parameter_warns() {
        let lints = lints_for("observe 0 from normal(0, 0 - 0.5); sample");
        assert!(kinds(&lints).contains(&LintKind::OutOfDomainParameter));
        // The same observation also has zero weight everywhere.
        assert!(kinds(&lints).contains(&LintKind::ZeroWeightScore));
    }

    #[test]
    fn unreachable_branch_warns_once_with_location() {
        let src = "let a = if 1 <= 0 then 7 else 8 in a + sample";
        let lints = lints_for(src);
        let hits: Vec<&Lint> = lints
            .iter()
            .filter(|l| l.kind == LintKind::UnreachableBranch)
            .collect();
        assert_eq!(hits.len(), 1);
        let rendered = hits[0].render(src);
        assert!(
            rendered.starts_with("1:24: warning[unreachable-branch]"),
            "{rendered}"
        );
    }

    #[test]
    fn recursion_base_cases_are_not_unreachable() {
        // The widened μ-body pass must keep both sides of the guard
        // statically possible even though three unfoldings never reach
        // the base case.
        let lints =
            lints_for("let rec count x = if 10 - x <= 0 then x else count (x + 1) in count 0");
        assert!(!kinds(&lints).contains(&LintKind::UnreachableBranch));
    }

    #[test]
    fn unused_sample_binding_warns() {
        let lints = lints_for("let waste = sample in sample");
        assert!(kinds(&lints).contains(&LintKind::UnusedSample));
        assert!(lints_for("let used = sample in used").is_empty());
    }

    #[test]
    fn truncation_risk_is_a_note_not_a_warning() {
        let lints = lints_for("let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1");
        let hit = lints
            .iter()
            .find(|l| l.kind == LintKind::TruncationRiskRecursion)
            .expect("weight [1,1] recursion must note truncation risk");
        assert_eq!(hit.severity, Severity::Note);
        assert!(!lints.iter().any(|l| l.severity == Severity::Warning));
    }

    #[test]
    fn unbounded_scores_are_noted() {
        let lints = lints_for("score(1 / sample); sample");
        let hit = lints
            .iter()
            .find(|l| l.kind == LintKind::UnboundedScore)
            .expect("1/sample is unbounded");
        assert_eq!(hit.severity, Severity::Note);
    }

    #[test]
    fn recursions_without_any_tail_bound_are_noted_with_the_reason() {
        // Tree recursion: two calls on one execution path defeat both
        // the geometric and the eventually-geometric argument.
        let lints =
            lints_for("let rec t x = if sample <= 0.5 then x else t (x + 1) + t (x + 2) in t 0");
        let hit = lints
            .iter()
            .find(|l| l.kind == LintKind::NoTailBoundRecursion)
            .expect("tree recursion has no tail bound");
        assert_eq!(hit.severity, Severity::Note);
        assert!(hit.message.contains("single-call"), "{}", hit.message);
        // A loop the ranking pass rescues must NOT fire the lint.
        let rescued =
            lints_for("let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1");
        assert!(!kinds(&rescued).contains(&LintKind::NoTailBoundRecursion));
    }

    #[test]
    fn all_seven_kinds_are_reachable() {
        let mut seen = std::collections::HashSet::new();
        for src in [
            "observe 5 from uniform(0, 1); sample",
            "observe 0 from normal(0, 0 - 0.5); sample",
            "let a = if 1 <= 0 then 7 else 8 in a + sample",
            "let waste = sample in sample",
            "let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1",
            "score(1 / sample); sample",
            "let rec t x = if sample <= 0.5 then x else t (x + 1) + t (x + 2) in t 0",
        ] {
            for l in lints_for(src) {
                seen.insert(l.kind);
            }
        }
        assert_eq!(seen.len(), 7, "kinds seen: {seen:?}");
    }
}
