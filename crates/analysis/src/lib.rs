//! Pre-execution static analysis for GuBPI.
//!
//! Before the symbolic executor runs, a single abstract-interpretation
//! pass over the SPCF AST produces a [`ProgramFacts`] table: per-subterm
//! value intervals (computed with the same `eval_interval` primitives
//! the path-bound kernel trusts), per-`score` weight enclosures, branch
//! reachability, and per-recursion weight-contraction estimates read off
//! the weight-aware interval types.
//!
//! A second pass, **ranking synthesis** ([`ranking`]), runs over the
//! facts: for each `μ` node it extracts the per-unfolding argument
//! transformer as an interval-affine map and certifies — by interval
//! arithmetic alone — an *eventually*-geometric tail fact
//! ([`RankedTail`]: bounded prefix `k₀`, post-prefix rate, prefix
//! weight) for data-guarded recursions the plain contraction estimate
//! cannot bound below 1.
//!
//! Four consumers:
//!
//! * the **symbolic executor** skips provably zero-mass branches (every
//!   `else fail`), dropping paths whose contribution to *both* posterior
//!   bounds is exactly `0.0` — pruned runs are bit-identical to
//!   `--no-prune` runs, just with fewer paths;
//! * the **path-bound kernel** seeds its constant pool and its
//!   constraint evaluation order from the static intervals instead of
//!   re-deriving them per query;
//! * **tail enclosures**: budget-truncated ⊤ paths carry the plain
//!   contraction and, when synthesized, the ranked prefix — bounding
//!   substitutes a finite geometric (or two-phase eventually-geometric)
//!   remainder for the bare `[0, ∞]` placeholder;
//! * the **lint layer** ([`lint_program`]) reports modelling mistakes —
//!   zero-weight observations, out-of-domain distribution parameters,
//!   unreachable branches, unused sampling bindings, truncation-prone
//!   recursions, recursions with no synthesizable tail bound — with
//!   pretty-printed locations (`repro analyze`).
//!
//! # Example
//!
//! ```
//! use gubpi_analysis::{lint_program, LintKind, ProgramFacts};
//! use gubpi_lang::{infer, parse};
//! use gubpi_types::infer_interval_types;
//!
//! let p = parse("if sample <= 0.5 then sample else fail").unwrap();
//! let simple = infer(&p).unwrap();
//! let typing = infer_interval_types(&p, &simple);
//! let facts = ProgramFacts::compute(&p, &typing);
//! assert_eq!(facts.dead_branch_count(), 1); // the `fail` branch
//! assert!(lint_program(&p, &typing, &facts).is_empty()); // deliberate
//! ```

pub mod facts;
pub mod lint;
pub mod ranking;

pub use facts::{BranchFlow, FactsOptions, ProgramFacts, TailFact, UnusedSample};
pub use lint::{lint_program, Lint, LintKind, Severity};
pub use ranking::{AffineMap, RankVerdict, RankedTail, RankingEvidence};
