//! The abstract interpreter and its result table, [`ProgramFacts`].
//!
//! One environment-based pass over the program in the interval domain,
//! mirroring the symbolic executor's shape (call-by-value, both branches
//! of an undecidable `if`, `approxFix` via the weight-aware interval
//! types) but with *intervals* in place of symbolic values. Every
//! evaluation of a node joins into a per-[`NodeId`] table, so the facts
//! cover all runtime environments the executor can reach:
//!
//! * **value facts** — an interval enclosing every value the subterm can
//!   evaluate to (exactly the `eval_interval` primitives the path-bound
//!   kernel trusts);
//! * **weight facts** — per `score` node, an enclosure of the scored
//!   value: can this weight ever be 0, is it bounded above;
//! * **branch flow** — which sides of each `if` were statically
//!   possible;
//! * **contraction facts** — per `μ` node, the weight a full application
//!   chain multiplies in (off the interval types), the estimate for
//!   whether budget truncation can dominate the bounds.
//!
//! # Soundness under recursion
//!
//! A fixpoint is unfolded [`FactsOptions::max_fix_unfoldings`] times;
//! when the budget runs out the call returns the `approxFix` interval
//! from the typing *and* the body is re-evaluated once in a **widened**
//! environment (parameter bound to its interval *type*, recursive calls
//! answered by the typing directly). The widened pass makes the
//! per-node joins cover every deeper unfolding, so value facts stay
//! conservative inside `μ`-bodies too. If the interpreter ever has to
//! abort (depth or fuel exhausted — not reachable for any model in this
//! repository), all interpreter-derived tables are dropped and only the
//! syntactic and typing-derived facts remain: consumers degrade to "no
//! information", never to wrong information.
//!
//! # The pruning contract
//!
//! [`ProgramFacts::score_is_zero`] and [`ProgramFacts::dead_branch_cost`]
//! are the two facts the executor may act on, and both are deliberately
//! much stronger than "statically zero". A score node qualifies only if
//! its argument is built from constants and primitives alone (no
//! variables, no samples): the symbolic value the executor pushes for it
//! is then the *same* constant computation, so its range over **any**
//! box is exactly `[0, 0]` and the path's contribution to both the lower
//! and the upper bound is exactly `0.0` — dropping it keeps every bound
//! bit-identical. A branch qualifies as dead only if it must execute
//! such a score and contains no `if` and no application, so the only
//! ways it could end *before* scoring are fuel or stack exhaustion —
//! which the executor rules out at prune time via the recorded
//! evaluation cost.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use gubpi_interval::Interval;
use gubpi_lang::{Expr, ExprKind, Name, NodeId, Program, Span};
use gubpi_types::{ITy, IntervalTyping};

/// Options controlling the abstract interpretation.
#[derive(Copy, Clone, Debug)]
pub struct FactsOptions {
    /// Fixpoint unfoldings before the typing-based approximation (plus
    /// one widened pass) takes over. Small values lose little: the
    /// widened pass covers the tail.
    pub max_fix_unfoldings: u32,
    /// Recursion guard for the interpreter's own stack.
    pub max_depth: u32,
    /// Step budget; exhausting it aborts the interpretation (see the
    /// module docs — aborted runs keep only syntactic facts).
    pub fuel: u64,
}

impl Default for FactsOptions {
    fn default() -> FactsOptions {
        FactsOptions {
            max_fix_unfoldings: 3,
            max_depth: 400,
            fuel: 2_000_000,
        }
    }
}

/// Which sides of an `if` the abstract interpreter saw taken.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchFlow {
    /// The `≤ 0` side was statically possible.
    pub then_taken: bool,
    /// The `> 0` side was statically possible.
    pub else_taken: bool,
}

/// A `let`-bound variable that is never used although its definition
/// draws samples (the draw still counts towards the trace, so this is
/// usually a modelling mistake).
#[derive(Clone, Debug)]
pub struct UnusedSample {
    /// The binder name.
    pub name: Name,
    /// Source location of the binding application.
    pub span: Span,
}

/// Static facts about one program, produced by [`ProgramFacts::compute`].
#[derive(Clone, Debug, Default)]
pub struct ProgramFacts {
    values: HashMap<NodeId, Interval>,
    score_args: HashMap<NodeId, Interval>,
    flows: HashMap<NodeId, BranchFlow>,
    evaluated: HashSet<NodeId>,
    zero_scores: HashSet<NodeId>,
    dead_branches: HashMap<NodeId, u64>,
    contraction: HashMap<NodeId, Interval>,
    fix_values: HashMap<NodeId, Interval>,
    unused_samples: Vec<UnusedSample>,
    constant_pool: Vec<Interval>,
    aborted: bool,
}

impl ProgramFacts {
    /// Runs the abstract interpreter with default options.
    pub fn compute(program: &Program, typing: &IntervalTyping) -> ProgramFacts {
        ProgramFacts::compute_with(program, typing, FactsOptions::default())
    }

    /// [`ProgramFacts::compute`] with explicit options.
    pub fn compute_with(
        program: &Program,
        typing: &IntervalTyping,
        opts: FactsOptions,
    ) -> ProgramFacts {
        let mut interp = Interp {
            typing,
            opts,
            facts: ProgramFacts::default(),
            widened: HashSet::new(),
            fuel: opts.fuel,
            aborted: false,
        };
        interp.eval(&program.root, &AEnv::empty(), opts.max_fix_unfoldings, 0);
        let mut facts = interp.facts;
        if interp.aborted {
            // Partial joins under-approximate; keep nothing the
            // interpreter produced.
            facts.values.clear();
            facts.score_args.clear();
            facts.flows.clear();
            facts.evaluated.clear();
            facts.aborted = true;
        }
        facts.finish(program, typing);
        facts
    }

    /// Joined post-pass: derive the executor-facing facts and the
    /// syntactic lint inputs from the raw evaluation tables.
    fn finish(&mut self, program: &Program, typing: &IntervalTyping) {
        let mut pool: Vec<Interval> = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |pool: &mut Vec<Interval>, i: Interval| {
            if seen.insert((i.lo().to_bits(), i.hi().to_bits())) {
                pool.push(i);
            }
        };
        program.root.walk(&mut |e| match &e.kind {
            ExprKind::Score(arg)
                if self.score_args.get(&e.id) == Some(&Interval::ZERO)
                    && substitution_stable(arg) =>
            {
                self.zero_scores.insert(e.id);
            }
            ExprKind::Fix(..) => {
                if let Some((_, value, weight)) = typing.fix_apply_chain(e.id) {
                    self.contraction.insert(e.id, weight);
                    self.fix_values.insert(e.id, value);
                }
            }
            ExprKind::App(f, arg) => {
                if let ExprKind::Lam(x, body) = &f.kind {
                    if !x.starts_with('$') && contains_sample(arg) && !body.free_vars().contains(x)
                    {
                        self.unused_samples.push(UnusedSample {
                            name: x.clone(),
                            span: e.span,
                        });
                    }
                }
            }
            _ => {}
        });
        // Dead branches need the zero-score set, so a second walk.
        let mut dead = Vec::new();
        program.root.walk(&mut |e| {
            if let ExprKind::If(_, t, els) = &e.kind {
                for side in [t, els] {
                    if branch_is_inert(side) && self.must_score_zero(side) {
                        dead.push((side.id, side.size() as u64));
                    }
                }
            }
        });
        self.dead_branches.extend(dead);
        // Deterministic constant pool for kernel seeding: program
        // literals first, then the approxFix intervals, in preorder.
        program.root.walk(&mut |e| {
            if let ExprKind::Const(r) = e.kind {
                push(&mut pool, Interval::point(r));
            }
        });
        program.root.walk(&mut |e| {
            if let ExprKind::Fix(..) = e.kind {
                if let Some((_, value, weight)) = typing.fix_apply_chain(e.id) {
                    push(&mut pool, value);
                    push(&mut pool, weight.clamp_non_neg());
                }
            }
        });
        self.constant_pool = pool;
    }

    /// Does evaluating `e` necessarily push a provably-zero score before
    /// doing anything that could fork or truncate? (`e` is known inert.)
    fn must_score_zero(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Score(m) => self.zero_scores.contains(&e.id) || self.must_score_zero(m),
            ExprKind::Prim(_, args) => args.iter().any(|a| self.must_score_zero(a)),
            _ => false,
        }
    }

    /// The interval enclosing every value this node can evaluate to
    /// (absent for unevaluated nodes and non-numeric results).
    pub fn value(&self, id: NodeId) -> Option<Interval> {
        self.values.get(&id).copied()
    }

    /// Per `score` node: the enclosure of the scored value (the factor
    /// this node multiplies into the path weight).
    pub fn score_weight(&self, id: NodeId) -> Option<Interval> {
        self.score_args.get(&id).copied()
    }

    /// True when this `score` node provably multiplies the weight by an
    /// exact 0 on every run — substitution-stable, so the executor may
    /// drop the path without perturbing any bound (see module docs).
    pub fn score_is_zero(&self, id: NodeId) -> bool {
        self.zero_scores.contains(&id)
    }

    /// For a branch root of an `if`: `Some(cost)` when the branch is
    /// provably zero-mass and inert, with `cost` an upper bound on the
    /// fuel and stack depth its evaluation could consume. The executor
    /// may skip the branch whenever its remaining fuel and depth exceed
    /// `cost` (otherwise the unpruned run could have truncated *inside*
    /// the branch before scoring, producing a ⊤ path with real mass).
    pub fn dead_branch_cost(&self, id: NodeId) -> Option<u64> {
        self.dead_branches.get(&id).copied()
    }

    /// Which sides of an evaluated `if` were statically possible.
    pub fn branch_flow(&self, id: NodeId) -> Option<BranchFlow> {
        self.flows.get(&id).copied()
    }

    /// Per `μ` node: the weight a full application chain multiplies in
    /// (`[e,f]` of §6.2). A high endpoint `≥ 1` means unfolding makes no
    /// provable progress in weight — budget truncation risk.
    pub fn contraction(&self, id: NodeId) -> Option<Interval> {
        self.contraction.get(&id).copied()
    }

    /// Per `μ` node: the value interval of its ground result.
    pub fn fix_value(&self, id: NodeId) -> Option<Interval> {
        self.fix_values.get(&id).copied()
    }

    /// Did the abstract interpreter reach this node at least once?
    pub fn was_evaluated(&self, id: NodeId) -> bool {
        self.evaluated.contains(&id)
    }

    /// Unused `let`-bindings whose definitions draw samples.
    pub fn unused_samples(&self) -> &[UnusedSample] {
        &self.unused_samples
    }

    /// The deduplicated interval constants the paths over this program
    /// can mention (literals and approxFix replacements), in a
    /// deterministic order — the kernel pre-interns these.
    pub fn constant_pool(&self) -> &[Interval] {
        &self.constant_pool
    }

    /// Number of provably-zero score nodes.
    pub fn zero_score_count(&self) -> usize {
        self.zero_scores.len()
    }

    /// Number of provably-dead branch roots.
    pub fn dead_branch_count(&self) -> usize {
        self.dead_branches.len()
    }

    /// True when the interpreter aborted and only syntactic facts
    /// remain (never the case for this repository's models).
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }
}

/// Only constants and primitives: the symbolic value the executor builds
/// for such a term repeats the identical constant computation, so its
/// interval over any box equals the static interval bit-for-bit.
fn substitution_stable(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Const(_) => true,
        ExprKind::Prim(_, args) => args.iter().all(substitution_stable),
        _ => false,
    }
}

/// No `if` and no application anywhere in the evaluated spine: the
/// executor can neither fork nor enter a function body here, so
/// evaluation runs straight through (λ/μ values are inert — their bodies
/// only run when applied, and applications are excluded).
fn branch_is_inert(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::If(..) | ExprKind::App(..) => false,
        ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => true,
        ExprKind::Lam(..) | ExprKind::Fix(..) => true,
        ExprKind::Prim(_, args) => args.iter().all(branch_is_inert),
        ExprKind::Score(m) => branch_is_inert(m),
    }
}

/// Does the evaluated spine of `e` draw samples?
fn contains_sample(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Sample => true,
        ExprKind::Var(_) | ExprKind::Const(_) => false,
        // Inert values: their bodies do not run here.
        ExprKind::Lam(..) | ExprKind::Fix(..) => false,
        ExprKind::App(f, a) => contains_sample(f) || contains_sample(a),
        ExprKind::If(c, t, els) => contains_sample(c) || contains_sample(t) || contains_sample(els),
        ExprKind::Prim(_, args) => args.iter().any(contains_sample),
        ExprKind::Score(m) => contains_sample(m),
    }
}

/// Abstract runtime values.
#[derive(Clone)]
enum AbsVal<'a> {
    Num(Interval),
    Closure {
        param: &'a Name,
        body: &'a Expr,
        env: AEnv<'a>,
    },
    Fix {
        node: NodeId,
        fname: &'a Name,
        param: &'a Name,
        body: &'a Expr,
        env: AEnv<'a>,
    },
    /// A curried `approxFix` stub still absorbing arguments.
    ApproxFun {
        remaining: u32,
        value: Interval,
    },
    /// An exhausted fixpoint inside its own widened pass: applications
    /// answer with the typing approximation and never re-enter the body.
    FixStub {
        node: NodeId,
    },
    /// No information (also: any non-representable join).
    Top,
}

/// Persistent environment, `Rc`-linked like the executor's.
#[derive(Clone, Default)]
struct AEnv<'a>(Option<Rc<ANode<'a>>>);

struct ANode<'a> {
    name: &'a str,
    value: AbsVal<'a>,
    rest: AEnv<'a>,
}

impl<'a> AEnv<'a> {
    fn empty() -> AEnv<'a> {
        AEnv(None)
    }
    fn bind(&self, name: &'a str, value: AbsVal<'a>) -> AEnv<'a> {
        AEnv(Some(Rc::new(ANode {
            name,
            value,
            rest: self.clone(),
        })))
    }
    fn lookup(&self, name: &str) -> Option<&AbsVal<'a>> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// Join in the abstract domain; anything without a representable join
/// collapses to `Top` (sound: consumers treat `Top` as "no fact").
fn join<'a>(a: AbsVal<'a>, b: AbsVal<'a>) -> AbsVal<'a> {
    use AbsVal::*;
    match (a, b) {
        (Num(x), Num(y)) => Num(x.join(y)),
        (
            ApproxFun {
                remaining: r1,
                value: v1,
            },
            ApproxFun {
                remaining: r2,
                value: v2,
            },
        ) if r1 == r2 => ApproxFun {
            remaining: r1,
            value: v1.join(v2),
        },
        (FixStub { node: n1 }, FixStub { node: n2 }) if n1 == n2 => FixStub { node: n1 },
        (
            Closure {
                param: p1,
                body: b1,
                env: e1,
            },
            Closure {
                param: _,
                body: b2,
                env: e2,
            },
        ) if b1.id == b2.id => match join_env(&e1, &e2) {
            Some(env) => Closure {
                param: p1,
                body: b1,
                env,
            },
            None => Top,
        },
        (
            Fix {
                node: n1,
                fname,
                param,
                body,
                env: e1,
            },
            Fix {
                node: n2, env: e2, ..
            },
        ) if n1 == n2 => match join_env(&e1, &e2) {
            Some(env) => Fix {
                node: n1,
                fname,
                param,
                body,
                env,
            },
            None => Top,
        },
        _ => Top,
    }
}

/// Pointwise join of two environments of identical shape (same names in
/// the same order — true for joins of the same closure body).
fn join_env<'a>(a: &AEnv<'a>, b: &AEnv<'a>) -> Option<AEnv<'a>> {
    match (&a.0, &b.0) {
        (None, None) => Some(AEnv::empty()),
        (Some(x), Some(y)) if x.name == y.name => {
            if Rc::ptr_eq(x, y) {
                return Some(a.clone());
            }
            let rest = join_env(&x.rest, &y.rest)?;
            Some(rest.bind(x.name, join(x.value.clone(), y.value.clone())))
        }
        _ => None,
    }
}

struct Interp<'a> {
    typing: &'a IntervalTyping,
    opts: FactsOptions,
    facts: ProgramFacts,
    /// Fix nodes whose widened pass already ran (once per node).
    widened: HashSet<NodeId>,
    fuel: u64,
    aborted: bool,
}

impl<'a> Interp<'a> {
    fn eval(&mut self, e: &'a Expr, env: &AEnv<'a>, unfold: u32, depth: u32) -> AbsVal<'a> {
        if self.aborted {
            return AbsVal::Top;
        }
        if depth >= self.opts.max_depth || self.fuel == 0 {
            self.aborted = true;
            return AbsVal::Top;
        }
        self.fuel -= 1;
        self.facts.evaluated.insert(e.id);
        let v = match &e.kind {
            ExprKind::Var(x) => env.lookup(x).cloned().unwrap_or(AbsVal::Top),
            ExprKind::Const(r) => AbsVal::Num(Interval::point(*r)),
            ExprKind::Sample => AbsVal::Num(Interval::UNIT),
            ExprKind::Lam(param, body) => AbsVal::Closure {
                param,
                body,
                env: env.clone(),
            },
            ExprKind::Fix(fname, param, body) => AbsVal::Fix {
                node: e.id,
                fname,
                param,
                body,
                env: env.clone(),
            },
            ExprKind::App(f, a) => {
                let fv = self.eval(f, env, unfold, depth + 1);
                let av = self.eval(a, env, unfold, depth + 1);
                self.apply(fv, av, unfold, depth + 1)
            }
            ExprKind::If(c, t, els) => {
                let guard = self.eval(c, env, unfold, depth + 1);
                let range = match &guard {
                    AbsVal::Num(i) => *i,
                    _ => Interval::REAL,
                };
                let (take_then, take_else) = if range.hi() <= 0.0 {
                    (true, false)
                } else if range.lo() > 0.0 {
                    (false, true)
                } else {
                    (true, true)
                };
                {
                    let flow = self.facts.flows.entry(e.id).or_default();
                    flow.then_taken |= take_then;
                    flow.else_taken |= take_else;
                }
                match (take_then, take_else) {
                    (true, false) => self.eval(t, env, unfold, depth + 1),
                    (false, true) => self.eval(els, env, unfold, depth + 1),
                    _ => {
                        let tv = self.eval(t, env, unfold, depth + 1);
                        let ev = self.eval(els, env, unfold, depth + 1);
                        join(tv, ev)
                    }
                }
            }
            ExprKind::Prim(op, args) => {
                let argv: Vec<Interval> = args
                    .iter()
                    .map(|a| match self.eval(a, env, unfold, depth + 1) {
                        AbsVal::Num(i) => i,
                        _ => Interval::REAL,
                    })
                    .collect();
                AbsVal::Num(op.eval_interval(&argv))
            }
            ExprKind::Score(m) => {
                let v = self.eval(m, env, unfold, depth + 1);
                let i = match &v {
                    AbsVal::Num(i) => *i,
                    _ => Interval::REAL,
                };
                self.facts
                    .score_args
                    .entry(e.id)
                    .and_modify(|old| *old = old.join(i))
                    .or_insert(i);
                v
            }
        };
        if let AbsVal::Num(i) = v {
            self.facts
                .values
                .entry(e.id)
                .and_modify(|old| *old = old.join(i))
                .or_insert(i);
        }
        v
    }

    fn apply(&mut self, f: AbsVal<'a>, a: AbsVal<'a>, unfold: u32, depth: u32) -> AbsVal<'a> {
        match f {
            AbsVal::Closure { param, body, env } => {
                let env2 = env.bind(param, a);
                self.eval(body, &env2, unfold, depth)
            }
            AbsVal::Fix {
                node,
                fname,
                param,
                body,
                env,
            } => {
                let approx = self.approx_fix(node);
                if unfold == 0 {
                    // Widened pass (once per μ node): re-run the body
                    // with the parameter at its interval *type* and
                    // recursive calls answered by the typing, so the
                    // per-node joins cover every deeper unfolding.
                    if self.widened.insert(node) {
                        let widened_arg = self.fix_param_bound(node);
                        let env2 = env
                            .bind(fname, AbsVal::FixStub { node })
                            .bind(param, widened_arg);
                        self.eval(body, &env2, 0, depth);
                    }
                    approx
                } else {
                    let rec = AbsVal::Fix {
                        node,
                        fname,
                        param,
                        body,
                        env: env.clone(),
                    };
                    let env2 = env.bind(fname, rec).bind(param, a);
                    let unfolded = self.eval(body, &env2, unfold - 1, depth);
                    join(approx, unfolded)
                }
            }
            AbsVal::ApproxFun { remaining, value } => {
                if remaining == 0 {
                    AbsVal::Num(value)
                } else {
                    AbsVal::ApproxFun {
                        remaining: remaining - 1,
                        value,
                    }
                }
            }
            AbsVal::FixStub { node } => self.approx_fix(node),
            AbsVal::Num(_) | AbsVal::Top => AbsVal::Top,
        }
    }

    /// The typing-based result of applying an exhausted fixpoint
    /// (mirrors the executor's `approxFix`, including currying).
    fn approx_fix(&self, node: NodeId) -> AbsVal<'a> {
        match self.typing.fix_apply_chain(node) {
            Some((0, value, _)) => AbsVal::Num(value),
            Some((extra, value, _)) => AbsVal::ApproxFun {
                remaining: extra - 1,
                value,
            },
            None => AbsVal::Top,
        }
    }

    /// The interval type of a fixpoint's parameter: a sound enclosure of
    /// every argument any unfolding can receive.
    fn fix_param_bound(&self, node: NodeId) -> AbsVal<'a> {
        match self.typing.wty(node) {
            Some(wty) => match &wty.ty {
                ITy::Fun(param, _) => match param.as_interval() {
                    Some(i) => AbsVal::Num(i),
                    None => AbsVal::Top,
                },
                ITy::Base(_) => AbsVal::Top,
            },
            None => AbsVal::Top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_types::infer_interval_types;

    fn facts_for(src: &str) -> (Program, ProgramFacts) {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        (p, facts)
    }

    fn node_of(p: &Program, pred: impl Fn(&Expr) -> bool) -> NodeId {
        let mut found = None;
        p.root.walk(&mut |e| {
            if found.is_none() && pred(e) {
                found = Some(e.id);
            }
        });
        found.expect("no matching node")
    }

    #[test]
    fn straight_line_values_are_exact() {
        let (p, facts) = facts_for("3 * sample + 1");
        assert!(!facts.is_aborted());
        assert_eq!(facts.value(p.root.id), Some(Interval::new(1.0, 4.0)));
    }

    #[test]
    fn fail_branches_are_provably_dead() {
        let (p, facts) = facts_for("if sample <= 0.5 then sample else fail");
        let score = node_of(&p, |e| matches!(e.kind, ExprKind::Score(_)));
        assert!(facts.score_is_zero(score));
        assert_eq!(facts.score_weight(score), Some(Interval::ZERO));
        // The whole else branch (the score node) is a dead branch root.
        assert_eq!(facts.dead_branch_cost(score), Some(2));
        assert_eq!(facts.dead_branch_count(), 1);
    }

    #[test]
    fn variable_scores_are_not_pruning_candidates() {
        // Statically zero, but the argument mentions a variable: the
        // lint may fire, the executor must not prune.
        let (p, facts) = facts_for("let x = 0 * sample in score(x); 1");
        let score = node_of(&p, |e| matches!(e.kind, ExprKind::Score(_)));
        assert_eq!(facts.score_weight(score), Some(Interval::ZERO));
        assert!(!facts.score_is_zero(score));
        assert_eq!(facts.dead_branch_count(), 0);
    }

    #[test]
    fn branch_flow_records_decided_and_open_guards() {
        let (p, facts) = facts_for(
            "let a = if 1 <= 0 then 7 else 8 in
             if sample - 0.5 <= 0 then a else a + 1",
        );
        let mut flows = Vec::new();
        p.root.walk(&mut |e| {
            if matches!(e.kind, ExprKind::If(..)) {
                flows.push(facts.branch_flow(e.id).unwrap());
            }
        });
        assert_eq!(flows.len(), 2);
        assert!(flows.contains(&BranchFlow {
            then_taken: false,
            else_taken: true,
        }));
        assert!(flows.contains(&BranchFlow {
            then_taken: true,
            else_taken: true,
        }));
    }

    #[test]
    fn widened_pass_keeps_fix_body_facts_sound() {
        // With an unfolding budget of 3 the naive joins would conclude
        // x ∈ [0, 3]; the widened pass must stretch the body facts to
        // the parameter's interval type instead.
        let (p, facts) =
            facts_for("let rec count x = if 10 - x <= 0 then x else count (x + 1) in count 0");
        let arg = node_of(&p, |e| {
            matches!(&e.kind, ExprKind::Prim(op, args) if *op == gubpi_lang::PrimOp::Add
                && matches!(args[0].kind, ExprKind::Var(_)))
        });
        let v = facts.value(arg).expect("body argument evaluated");
        assert!(
            v.hi() >= 11.0 || v.hi().is_infinite(),
            "runtime reaches count(10); fact was {v:?}"
        );
    }

    #[test]
    fn contraction_facts_come_from_the_typing() {
        let (p, facts) =
            facts_for("let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1");
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        // No score inside the loop: weight [1,1], no contraction.
        assert_eq!(facts.contraction(fix), Some(Interval::ONE));
        assert!(facts.fix_value(fix).is_some());
    }

    #[test]
    fn unused_sampling_bindings_are_reported() {
        let (_, facts) = facts_for("let waste = sample in 2");
        assert_eq!(facts.unused_samples().len(), 1);
        assert_eq!(&*facts.unused_samples()[0].name, "waste");
        // Internal sequencing binders are exempt.
        let (_, clean) = facts_for("observe sample from normal(0.5, 1); 2");
        assert!(clean.unused_samples().is_empty());
    }

    #[test]
    fn constant_pool_is_deterministic_and_deduplicated() {
        let (_, a) = facts_for("if sample <= 0.5 then 0.5 else 2 + 0.5");
        let (_, b) = facts_for("if sample <= 0.5 then 0.5 else 2 + 0.5");
        assert_eq!(a.constant_pool().len(), b.constant_pool().len());
        assert!(a
            .constant_pool()
            .iter()
            .zip(b.constant_pool())
            .all(|(x, y)| x == y));
        let halves = a
            .constant_pool()
            .iter()
            .filter(|i| **i == Interval::point(0.5))
            .count();
        assert_eq!(halves, 1, "pool must deduplicate");
    }

    #[test]
    fn higher_order_programs_do_not_confuse_the_interpreter() {
        let (p, facts) = facts_for("let app f x = f x in app (fn y -> y + sample) 1");
        assert_eq!(facts.value(p.root.id), Some(Interval::new(1.0, 2.0)));
    }
}
