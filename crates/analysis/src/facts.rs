//! The abstract interpreter and its result table, [`ProgramFacts`].
//!
//! One environment-based pass over the program in the interval domain,
//! mirroring the symbolic executor's shape (call-by-value, both branches
//! of an undecidable `if`, `approxFix` via the weight-aware interval
//! types) but with *intervals* in place of symbolic values. Every
//! evaluation of a node joins into a per-[`NodeId`] table, so the facts
//! cover all runtime environments the executor can reach:
//!
//! * **value facts** — an interval enclosing every value the subterm can
//!   evaluate to (exactly the `eval_interval` primitives the path-bound
//!   kernel trusts);
//! * **weight facts** — per `score` node, an enclosure of the scored
//!   value: can this weight ever be 0, is it bounded above;
//! * **branch flow** — which sides of each `if` were statically
//!   possible;
//! * **contraction facts** — per `μ` node, the weight a full application
//!   chain multiplies in (off the interval types), the estimate for
//!   whether budget truncation can dominate the bounds.
//!
//! # Soundness under recursion
//!
//! A fixpoint is unfolded [`FactsOptions::max_fix_unfoldings`] times;
//! when the budget runs out the call returns the `approxFix` interval
//! from the typing *and* the body is re-evaluated once in a **widened**
//! environment (parameter bound to its interval *type*, recursive calls
//! answered by the typing directly). The widened pass makes the
//! per-node joins cover every deeper unfolding, so value facts stay
//! conservative inside `μ`-bodies too. If the interpreter ever has to
//! abort (depth or fuel exhausted — not reachable for any model in this
//! repository), all interpreter-derived tables are dropped and only the
//! syntactic and typing-derived facts remain: consumers degrade to "no
//! information", never to wrong information.
//!
//! # The pruning contract
//!
//! [`ProgramFacts::score_is_zero`] and [`ProgramFacts::dead_branch_cost`]
//! are the two facts the executor may act on, and both are deliberately
//! much stronger than "statically zero". A score node qualifies only if
//! its argument is built from constants and primitives alone (no
//! variables, no samples): the symbolic value the executor pushes for it
//! is then the *same* constant computation, so its range over **any**
//! box is exactly `[0, 0]` and the path's contribution to both the lower
//! and the upper bound is exactly `0.0` — dropping it keeps every bound
//! bit-identical. A branch qualifies as dead only if it must execute
//! such a score and contains no `if` and no application, so the only
//! ways it could end *before* scoring are fuel or stack exhaustion —
//! which the executor rules out at prune time via the recorded
//! evaluation cost.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use gubpi_interval::Interval;
use gubpi_lang::{Expr, ExprKind, Name, NodeId, PrimOp, Program, Span};
use gubpi_types::{ITy, IntervalTyping};

use crate::ranking::{self, RankVerdict, RankedTail};

/// Options controlling the abstract interpretation.
#[derive(Copy, Clone, Debug)]
pub struct FactsOptions {
    /// Fixpoint unfoldings before the typing-based approximation (plus
    /// one widened pass) takes over. Small values lose little: the
    /// widened pass covers the tail.
    pub max_fix_unfoldings: u32,
    /// Recursion guard for the interpreter's own stack.
    pub max_depth: u32,
    /// Step budget; exhausting it aborts the interpretation (see the
    /// module docs — aborted runs keep only syntactic facts).
    pub fuel: u64,
}

impl Default for FactsOptions {
    fn default() -> FactsOptions {
        FactsOptions {
            max_fix_unfoldings: 3,
            max_depth: 400,
            fuel: 2_000_000,
        }
    }
}

/// Which sides of an `if` the abstract interpreter saw taken.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchFlow {
    /// The `≤ 0` side was statically possible.
    pub then_taken: bool,
    /// The `> 0` side was statically possible.
    pub else_taken: bool,
}

/// Per `μ` node: the ingredients of a geometric tail enclosure for
/// budget-truncated explorations of this recursion (see
/// `gubpi_core::pathbounds`).
///
/// `per_step` bounds the *continue mass* of one unfolding — the
/// expectation, over the fresh samples one body traversal draws, of the
/// accumulated score factors restricted to executions that reach the
/// recursive call. `continuation` bounds the product of every score
/// factor evaluated *outside* the body (each many-shot site is required
/// to stay ≤ 1 and contributes 1; each once-shot site contributes its
/// static high endpoint).
///
/// The fact is only recorded when the remainder of a truncated
/// exploration is provably dominated by the geometric series these two
/// intervals define: a single recursive call per body execution path,
/// every in-body score factor ≤ 1, and a finite continuation product.
/// A recorded fact with `per_step.hi() ≥ 1` is still useful census data
/// ("this loop makes no provable progress"), but consumers must then
/// fall back to the trivial ⊤ contribution — never divide by
/// `1 − per_step.hi()` at or past the boundary.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TailFact {
    /// Upper enclosure of the one-unfolding continue mass `c`.
    pub per_step: Interval,
    /// Upper enclosure of the out-of-body score product `x` (≥ 1).
    pub continuation: Interval,
    /// Eventually-geometric certificate synthesized by the ranking pass
    /// (see [`crate::ranking`]) — the consumer's rescue when
    /// `per_step.hi() ≥ 1` blocks the plain geometric series.
    pub ranked: Option<RankedTail>,
}

/// A `let`-bound variable that is never used although its definition
/// draws samples (the draw still counts towards the trace, so this is
/// usually a modelling mistake).
#[derive(Clone, Debug)]
pub struct UnusedSample {
    /// The binder name.
    pub name: Name,
    /// Source location of the binding application.
    pub span: Span,
}

/// Static facts about one program, produced by [`ProgramFacts::compute`].
#[derive(Clone, Debug, Default)]
pub struct ProgramFacts {
    values: HashMap<NodeId, Interval>,
    score_args: HashMap<NodeId, Interval>,
    flows: HashMap<NodeId, BranchFlow>,
    evaluated: HashSet<NodeId>,
    zero_scores: HashSet<NodeId>,
    dead_branches: HashMap<NodeId, u64>,
    contraction: HashMap<NodeId, Interval>,
    fix_values: HashMap<NodeId, Interval>,
    tail_facts: HashMap<NodeId, TailFact>,
    ranking: HashMap<NodeId, RankVerdict>,
    unused_samples: Vec<UnusedSample>,
    constant_pool: Vec<Interval>,
    aborted: bool,
}

impl ProgramFacts {
    /// Runs the abstract interpreter with default options.
    pub fn compute(program: &Program, typing: &IntervalTyping) -> ProgramFacts {
        ProgramFacts::compute_with(program, typing, FactsOptions::default())
    }

    /// [`ProgramFacts::compute`] with explicit options.
    pub fn compute_with(
        program: &Program,
        typing: &IntervalTyping,
        opts: FactsOptions,
    ) -> ProgramFacts {
        let mut interp = Interp {
            typing,
            opts,
            facts: ProgramFacts::default(),
            widened: HashSet::new(),
            fuel: opts.fuel,
            aborted: false,
        };
        interp.eval(&program.root, &AEnv::empty(), opts.max_fix_unfoldings, 0);
        let mut facts = interp.facts;
        if interp.aborted {
            // Partial joins under-approximate; keep nothing the
            // interpreter produced.
            facts.values.clear();
            facts.score_args.clear();
            facts.flows.clear();
            facts.evaluated.clear();
            facts.aborted = true;
        }
        facts.finish(program, typing);
        facts
    }

    /// Joined post-pass: derive the executor-facing facts and the
    /// syntactic lint inputs from the raw evaluation tables.
    fn finish(&mut self, program: &Program, typing: &IntervalTyping) {
        let mut pool: Vec<Interval> = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |pool: &mut Vec<Interval>, i: Interval| {
            if seen.insert((i.lo().to_bits(), i.hi().to_bits())) {
                pool.push(i);
            }
        };
        program.root.walk(&mut |e| match &e.kind {
            ExprKind::Score(arg)
                if self.score_args.get(&e.id) == Some(&Interval::ZERO)
                    && substitution_stable(arg) =>
            {
                self.zero_scores.insert(e.id);
            }
            ExprKind::Fix(..) => {
                if let Some((_, value, weight)) = typing.fix_apply_chain(e.id) {
                    self.contraction.insert(e.id, weight);
                    self.fix_values.insert(e.id, value);
                }
            }
            ExprKind::App(f, arg) => {
                if let ExprKind::Lam(x, body) = &f.kind {
                    if !x.starts_with('$') && contains_sample(arg) && !body.free_vars().contains(x)
                    {
                        self.unused_samples.push(UnusedSample {
                            name: x.clone(),
                            span: e.span,
                        });
                    }
                }
            }
            _ => {}
        });
        // Tail facts per μ node (needs the score-weight table).
        let mut tails = Vec::new();
        program.root.walk(&mut |e| {
            if let ExprKind::Fix(fname, _, body) = &e.kind {
                if let Some(tf) = self.tail_fact_for(program, fname, body) {
                    tails.push((e.id, tf));
                }
            }
        });
        self.tail_facts.extend(tails);
        // Ranking verdicts per μ node (needs the tail facts above);
        // successful syntheses ride on the fact the consumers read.
        let mut verdicts = Vec::new();
        program.root.walk(&mut |e| {
            if let ExprKind::Fix(fname, param, body) = &e.kind {
                let v = ranking::assess_fix(program, typing, self, e, fname, param, body);
                verdicts.push((e.id, v));
            }
        });
        for (id, v) in verdicts {
            if let RankVerdict::Synthesized { ranked, .. } = &v {
                if let Some(tf) = self.tail_facts.get_mut(&id) {
                    tf.ranked = Some(*ranked);
                }
            }
            self.ranking.insert(id, v);
        }
        // Dead branches need the zero-score set, so a second walk.
        let mut dead = Vec::new();
        program.root.walk(&mut |e| {
            if let ExprKind::If(_, t, els) = &e.kind {
                for side in [t, els] {
                    if branch_is_inert(side) && self.must_score_zero(side) {
                        dead.push((side.id, side.size() as u64));
                    }
                }
            }
        });
        self.dead_branches.extend(dead);
        // Deterministic constant pool for kernel seeding: program
        // literals first, then the approxFix intervals, in preorder.
        program.root.walk(&mut |e| {
            if let ExprKind::Const(r) = e.kind {
                push(&mut pool, Interval::point(r));
            }
        });
        program.root.walk(&mut |e| {
            if let ExprKind::Fix(..) = e.kind {
                if let Some((_, value, weight)) = typing.fix_apply_chain(e.id) {
                    push(&mut pool, value);
                    push(&mut pool, weight.clamp_non_neg());
                }
            }
        });
        self.constant_pool = pool;
    }

    /// Derives the [`TailFact`] for one `μ` node, or `None` when the
    /// geometric-remainder argument does not apply (see [`TailFact`]).
    fn tail_fact_for(&self, program: &Program, fname: &Name, body: &Expr) -> Option<TailFact> {
        // Every score the body can execute must have a known static
        // weight enclosure with high endpoint ≤ 1, so any number of
        // body traversals multiplies the weight by at most 1.
        let mut scores_ok = true;
        body.walk(&mut |s| {
            if matches!(s.kind, ExprKind::Score(_)) {
                match self.score_weight(s.id) {
                    Some(w) if w.hi() <= 1.0 => {}
                    _ => scores_ok = false,
                }
            }
        });
        if !scores_ok {
            return None;
        }
        let c = self.continue_mass(body, fname)?;
        if !c.is_finite() || c < 0.0 {
            return None;
        }
        let x = self.continuation_factor(program, body.id)?;
        Some(TailFact {
            per_step: Interval::new(0.0, c),
            continuation: Interval::new(0.0, x),
            ranked: None, // the ranking pass fills this in afterwards
        })
    }

    /// Upper bound on the *continue mass* of one body traversal: the
    /// expectation over the traversal's fresh samples of the score
    /// factors accumulated on executions that reach the recursive call.
    /// `None` when no finite bound applies — a bare `fname` escaping
    /// into a value, more than one call on a single execution path, or
    /// a call inside a guard or score argument.
    pub(crate) fn continue_mass(&self, e: &Expr, fname: &Name) -> Option<f64> {
        let mentions = |e: &Expr| e.free_vars().contains(fname);
        if !mentions(e) {
            return Some(0.0);
        }
        match &e.kind {
            ExprKind::If(c, t, els) => {
                if mentions(c) {
                    return None;
                }
                let ct = self.continue_mass(t, fname)?;
                let ce = self.continue_mass(els, fname)?;
                // A fresh-coin guard splits the mass by the coin's
                // probabilities; any other guard may deterministically
                // select either side, so only the max is sound.
                Some(match coin_probs(c) {
                    Some((pt, pe)) => pt * ct + pe * ce,
                    None => ct.max(ce),
                })
            }
            ExprKind::App(f, a) => {
                if let ExprKind::Lam(_, lam_body) = &f.kind {
                    // `let`-style sequencing: `a` runs first, then the
                    // body exactly once. Score factors accumulated in
                    // `a` scale the mass that continues into the body.
                    if mentions(a) && mentions(lam_body) {
                        return None;
                    }
                    let ca = self.continue_mass(a, fname)?;
                    let cb = self.continue_mass(lam_body, fname)?;
                    Some(ca + self.path_weight_hi(a) * cb)
                } else if let Some(args) = call_of(e, fname) {
                    // The recursive call itself. Weight accumulated in
                    // the arguments is ≤ 1 (in-body scores are ≤ 1).
                    if args.iter().any(|arg| mentions(arg)) {
                        return None;
                    }
                    Some(1.0)
                } else {
                    if mentions(f) && mentions(a) {
                        return None;
                    }
                    Some(self.continue_mass(f, fname)? + self.continue_mass(a, fname)?)
                }
            }
            ExprKind::Prim(_, args) => {
                if args.iter().filter(|a| mentions(a)).count() > 1 {
                    return None;
                }
                let mut sum = 0.0;
                for a in args {
                    sum += self.continue_mass(a, fname)?;
                }
                Some(sum)
            }
            // `fname` under a score, inside a λ/μ value, or as a bare
            // reference: the single-call geometry no longer holds.
            _ => None,
        }
    }

    /// Upper bound (≤ 1) on the score product along *any* execution
    /// path of the `fname`-free prefix `e` of a fix body. Score sites
    /// of closures invoked from `e` are not traversed — sound, because
    /// every in-body score factor is ≤ 1 and extra ≤ 1 factors only
    /// shrink the product.
    fn path_weight_hi(&self, e: &Expr) -> f64 {
        match &e.kind {
            ExprKind::Score(m) => {
                let w = self
                    .score_weight(e.id)
                    .map(|w| w.hi().clamp(0.0, 1.0))
                    .unwrap_or(1.0);
                self.path_weight_hi(m) * w
            }
            ExprKind::If(c, t, els) => {
                self.path_weight_hi(c) * self.path_weight_hi(t).max(self.path_weight_hi(els))
            }
            ExprKind::Prim(_, args) => args.iter().map(|a| self.path_weight_hi(a)).product(),
            ExprKind::App(f, a) => match &f.kind {
                ExprKind::Lam(_, b) => self.path_weight_hi(a) * self.path_weight_hi(b),
                _ => self.path_weight_hi(f) * self.path_weight_hi(a),
            },
            _ => 1.0,
        }
    }

    /// Upper bound on the product of every score factor evaluated
    /// outside the fix body rooted at `body_id`: many-shot sites must
    /// stay ≤ 1 (contributing 1), once-shot sites contribute their
    /// static high endpoint. `None` when a site has no usable bound —
    /// the sequential-composition widening of the tail enclosure.
    pub(crate) fn continuation_factor(&self, program: &Program, body_id: NodeId) -> Option<f64> {
        fn go(
            facts: &ProgramFacts,
            e: &Expr,
            body_id: NodeId,
            many: bool,
            x: &mut f64,
            ok: &mut bool,
        ) {
            if !*ok || e.id == body_id {
                return;
            }
            match &e.kind {
                ExprKind::Score(m) => {
                    match facts.score_weight(e.id) {
                        Some(w) if w.hi() <= 1.0 => {}
                        Some(w) if !many && w.hi().is_finite() => *x *= w.hi().max(1.0),
                        _ => {
                            *ok = false;
                            return;
                        }
                    }
                    go(facts, m, body_id, many, x, ok);
                }
                // λ/μ bodies may run any number of times — except a
                // `let`-style λ applied on the spot, which runs once.
                ExprKind::Lam(_, b) | ExprKind::Fix(_, _, b) => go(facts, b, body_id, true, x, ok),
                ExprKind::App(f, a) => {
                    if let ExprKind::Lam(_, b) = &f.kind {
                        go(facts, a, body_id, many, x, ok);
                        go(facts, b, body_id, many, x, ok);
                    } else {
                        go(facts, f, body_id, many, x, ok);
                        go(facts, a, body_id, many, x, ok);
                    }
                }
                ExprKind::If(c, t, els) => {
                    go(facts, c, body_id, many, x, ok);
                    go(facts, t, body_id, many, x, ok);
                    go(facts, els, body_id, many, x, ok);
                }
                ExprKind::Prim(_, args) => {
                    for a in args {
                        go(facts, a, body_id, many, x, ok);
                    }
                }
                ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => {}
            }
        }
        let mut x = 1.0;
        let mut ok = true;
        go(self, &program.root, body_id, false, &mut x, &mut ok);
        (ok && x.is_finite()).then_some(x)
    }

    /// Does evaluating `e` necessarily push a provably-zero score before
    /// doing anything that could fork or truncate? (`e` is known inert.)
    fn must_score_zero(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Score(m) => self.zero_scores.contains(&e.id) || self.must_score_zero(m),
            ExprKind::Prim(_, args) => args.iter().any(|a| self.must_score_zero(a)),
            _ => false,
        }
    }

    /// The interval enclosing every value this node can evaluate to
    /// (absent for unevaluated nodes and non-numeric results).
    pub fn value(&self, id: NodeId) -> Option<Interval> {
        self.values.get(&id).copied()
    }

    /// Per `score` node: the enclosure of the scored value (the factor
    /// this node multiplies into the path weight).
    pub fn score_weight(&self, id: NodeId) -> Option<Interval> {
        self.score_args.get(&id).copied()
    }

    /// True when this `score` node provably multiplies the weight by an
    /// exact 0 on every run — substitution-stable, so the executor may
    /// drop the path without perturbing any bound (see module docs).
    pub fn score_is_zero(&self, id: NodeId) -> bool {
        self.zero_scores.contains(&id)
    }

    /// For a branch root of an `if`: `Some(cost)` when the branch is
    /// provably zero-mass and inert, with `cost` an upper bound on the
    /// fuel and stack depth its evaluation could consume. The executor
    /// may skip the branch whenever its remaining fuel and depth exceed
    /// `cost` (otherwise the unpruned run could have truncated *inside*
    /// the branch before scoring, producing a ⊤ path with real mass).
    pub fn dead_branch_cost(&self, id: NodeId) -> Option<u64> {
        self.dead_branches.get(&id).copied()
    }

    /// Which sides of an evaluated `if` were statically possible.
    pub fn branch_flow(&self, id: NodeId) -> Option<BranchFlow> {
        self.flows.get(&id).copied()
    }

    /// Per `μ` node: the weight a full application chain multiplies in
    /// (`[e,f]` of §6.2). A high endpoint `≥ 1` means unfolding makes no
    /// provable progress in weight — budget truncation risk.
    pub fn contraction(&self, id: NodeId) -> Option<Interval> {
        self.contraction.get(&id).copied()
    }

    /// Per `μ` node: the value interval of its ground result.
    pub fn fix_value(&self, id: NodeId) -> Option<Interval> {
        self.fix_values.get(&id).copied()
    }

    /// Per `μ` node: the geometric tail-enclosure ingredients for
    /// budget-truncated explorations of this recursion, when the
    /// single-call/bounded-score structure admits them (see
    /// [`TailFact`]).
    pub fn tail_fact(&self, id: NodeId) -> Option<TailFact> {
        self.tail_facts.get(&id).copied()
    }

    /// Number of `μ` nodes with a recorded tail fact.
    pub fn tail_fact_count(&self) -> usize {
        self.tail_facts.len()
    }

    /// Per `μ` node: the ranking pass verdict — plain geometric,
    /// synthesized eventually-geometric, or a failure with a
    /// human-readable reason (see [`crate::ranking`]).
    pub fn ranking_verdict(&self, id: NodeId) -> Option<&RankVerdict> {
        self.ranking.get(&id)
    }

    /// Number of `μ` nodes whose tail fact carries a synthesized
    /// eventually-geometric certificate.
    pub fn ranked_tail_count(&self) -> usize {
        self.tail_facts
            .values()
            .filter(|t| t.ranked.is_some())
            .count()
    }

    /// Did the abstract interpreter reach this node at least once?
    pub fn was_evaluated(&self, id: NodeId) -> bool {
        self.evaluated.contains(&id)
    }

    /// Unused `let`-bindings whose definitions draw samples.
    pub fn unused_samples(&self) -> &[UnusedSample] {
        &self.unused_samples
    }

    /// The deduplicated interval constants the paths over this program
    /// can mention (literals and approxFix replacements), in a
    /// deterministic order — the kernel pre-interns these.
    pub fn constant_pool(&self) -> &[Interval] {
        &self.constant_pool
    }

    /// Number of provably-zero score nodes.
    pub fn zero_score_count(&self) -> usize {
        self.zero_scores.len()
    }

    /// Number of provably-dead branch roots.
    pub fn dead_branch_count(&self) -> usize {
        self.dead_branches.len()
    }

    /// True when the interpreter aborted and only syntactic facts
    /// remain (never the case for this repository's models).
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }
}

/// Fresh-coin guard probabilities: for guards of the shapes the parser
/// emits for comparisons against a constant on a *fresh* uniform sample
/// (`sample − k`, `k − sample`, bare `sample`), the exact probability
/// of the `≤ 0` and `> 0` sides. Boundary atoms have measure zero
/// under the uniform draw, so the two sides partition the mass.
fn coin_probs(guard: &Expr) -> Option<(f64, f64)> {
    let p_then = match &guard.kind {
        ExprKind::Sample => 0.0,
        ExprKind::Prim(PrimOp::Sub, args) if args.len() == 2 => {
            match (&args[0].kind, &args[1].kind) {
                (ExprKind::Sample, ExprKind::Const(k)) if k.is_finite() => k.clamp(0.0, 1.0),
                (ExprKind::Const(k), ExprKind::Sample) if k.is_finite() => 1.0 - k.clamp(0.0, 1.0),
                _ => return None,
            }
        }
        _ => return None,
    };
    Some((p_then, 1.0 - p_then))
}

/// When `e` is an application chain headed by `Var(fname)`, the
/// argument expressions of the chain.
pub(crate) fn call_of<'a>(e: &'a Expr, fname: &Name) -> Option<Vec<&'a Expr>> {
    let mut args = Vec::new();
    let mut cur = e;
    loop {
        match &cur.kind {
            ExprKind::App(f, a) => {
                args.push(&**a);
                cur = f;
            }
            ExprKind::Var(x) if x == fname => return Some(args),
            _ => return None,
        }
    }
}

/// Only constants and primitives: the symbolic value the executor builds
/// for such a term repeats the identical constant computation, so its
/// interval over any box equals the static interval bit-for-bit.
fn substitution_stable(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Const(_) => true,
        ExprKind::Prim(_, args) => args.iter().all(substitution_stable),
        _ => false,
    }
}

/// No `if` and no application anywhere in the evaluated spine: the
/// executor can neither fork nor enter a function body here, so
/// evaluation runs straight through (λ/μ values are inert — their bodies
/// only run when applied, and applications are excluded).
fn branch_is_inert(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::If(..) | ExprKind::App(..) => false,
        ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => true,
        ExprKind::Lam(..) | ExprKind::Fix(..) => true,
        ExprKind::Prim(_, args) => args.iter().all(branch_is_inert),
        ExprKind::Score(m) => branch_is_inert(m),
    }
}

/// Does the evaluated spine of `e` draw samples?
fn contains_sample(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Sample => true,
        ExprKind::Var(_) | ExprKind::Const(_) => false,
        // Inert values: their bodies do not run here.
        ExprKind::Lam(..) | ExprKind::Fix(..) => false,
        ExprKind::App(f, a) => contains_sample(f) || contains_sample(a),
        ExprKind::If(c, t, els) => contains_sample(c) || contains_sample(t) || contains_sample(els),
        ExprKind::Prim(_, args) => args.iter().any(contains_sample),
        ExprKind::Score(m) => contains_sample(m),
    }
}

/// Abstract runtime values.
#[derive(Clone)]
enum AbsVal<'a> {
    Num(Interval),
    Closure {
        param: &'a Name,
        body: &'a Expr,
        env: AEnv<'a>,
    },
    Fix {
        node: NodeId,
        fname: &'a Name,
        param: &'a Name,
        body: &'a Expr,
        env: AEnv<'a>,
    },
    /// A curried `approxFix` stub still absorbing arguments.
    ApproxFun {
        remaining: u32,
        value: Interval,
    },
    /// An exhausted fixpoint inside its own widened pass: applications
    /// answer with the typing approximation and never re-enter the body.
    FixStub {
        node: NodeId,
    },
    /// No information (also: any non-representable join).
    Top,
}

/// Persistent environment, `Rc`-linked like the executor's.
#[derive(Clone, Default)]
struct AEnv<'a>(Option<Rc<ANode<'a>>>);

struct ANode<'a> {
    name: &'a str,
    value: AbsVal<'a>,
    rest: AEnv<'a>,
}

impl<'a> AEnv<'a> {
    fn empty() -> AEnv<'a> {
        AEnv(None)
    }
    fn bind(&self, name: &'a str, value: AbsVal<'a>) -> AEnv<'a> {
        AEnv(Some(Rc::new(ANode {
            name,
            value,
            rest: self.clone(),
        })))
    }
    fn lookup(&self, name: &str) -> Option<&AbsVal<'a>> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

/// Join in the abstract domain; anything without a representable join
/// collapses to `Top` (sound: consumers treat `Top` as "no fact").
fn join<'a>(a: AbsVal<'a>, b: AbsVal<'a>) -> AbsVal<'a> {
    use AbsVal::*;
    match (a, b) {
        (Num(x), Num(y)) => Num(x.join(y)),
        (
            ApproxFun {
                remaining: r1,
                value: v1,
            },
            ApproxFun {
                remaining: r2,
                value: v2,
            },
        ) if r1 == r2 => ApproxFun {
            remaining: r1,
            value: v1.join(v2),
        },
        (FixStub { node: n1 }, FixStub { node: n2 }) if n1 == n2 => FixStub { node: n1 },
        (
            Closure {
                param: p1,
                body: b1,
                env: e1,
            },
            Closure {
                param: _,
                body: b2,
                env: e2,
            },
        ) if b1.id == b2.id => match join_env(&e1, &e2) {
            Some(env) => Closure {
                param: p1,
                body: b1,
                env,
            },
            None => Top,
        },
        (
            Fix {
                node: n1,
                fname,
                param,
                body,
                env: e1,
            },
            Fix {
                node: n2, env: e2, ..
            },
        ) if n1 == n2 => match join_env(&e1, &e2) {
            Some(env) => Fix {
                node: n1,
                fname,
                param,
                body,
                env,
            },
            None => Top,
        },
        _ => Top,
    }
}

/// Pointwise join of two environments of identical shape (same names in
/// the same order — true for joins of the same closure body).
fn join_env<'a>(a: &AEnv<'a>, b: &AEnv<'a>) -> Option<AEnv<'a>> {
    match (&a.0, &b.0) {
        (None, None) => Some(AEnv::empty()),
        (Some(x), Some(y)) if x.name == y.name => {
            if Rc::ptr_eq(x, y) {
                return Some(a.clone());
            }
            let rest = join_env(&x.rest, &y.rest)?;
            Some(rest.bind(x.name, join(x.value.clone(), y.value.clone())))
        }
        _ => None,
    }
}

struct Interp<'a> {
    typing: &'a IntervalTyping,
    opts: FactsOptions,
    facts: ProgramFacts,
    /// Fix nodes whose widened pass already ran (once per node).
    widened: HashSet<NodeId>,
    fuel: u64,
    aborted: bool,
}

impl<'a> Interp<'a> {
    fn eval(&mut self, e: &'a Expr, env: &AEnv<'a>, unfold: u32, depth: u32) -> AbsVal<'a> {
        if self.aborted {
            return AbsVal::Top;
        }
        if depth >= self.opts.max_depth || self.fuel == 0 {
            self.aborted = true;
            return AbsVal::Top;
        }
        self.fuel -= 1;
        self.facts.evaluated.insert(e.id);
        let v = match &e.kind {
            ExprKind::Var(x) => env.lookup(x).cloned().unwrap_or(AbsVal::Top),
            ExprKind::Const(r) => AbsVal::Num(Interval::point(*r)),
            ExprKind::Sample => AbsVal::Num(Interval::UNIT),
            ExprKind::Lam(param, body) => AbsVal::Closure {
                param,
                body,
                env: env.clone(),
            },
            ExprKind::Fix(fname, param, body) => AbsVal::Fix {
                node: e.id,
                fname,
                param,
                body,
                env: env.clone(),
            },
            ExprKind::App(f, a) => {
                let fv = self.eval(f, env, unfold, depth + 1);
                let av = self.eval(a, env, unfold, depth + 1);
                self.apply(fv, av, unfold, depth + 1)
            }
            ExprKind::If(c, t, els) => {
                let guard = self.eval(c, env, unfold, depth + 1);
                let range = match &guard {
                    AbsVal::Num(i) => *i,
                    _ => Interval::REAL,
                };
                let (take_then, take_else) = if range.hi() <= 0.0 {
                    (true, false)
                } else if range.lo() > 0.0 {
                    (false, true)
                } else {
                    (true, true)
                };
                {
                    let flow = self.facts.flows.entry(e.id).or_default();
                    flow.then_taken |= take_then;
                    flow.else_taken |= take_else;
                }
                match (take_then, take_else) {
                    (true, false) => self.eval(t, env, unfold, depth + 1),
                    (false, true) => self.eval(els, env, unfold, depth + 1),
                    _ => {
                        let tv = self.eval(t, env, unfold, depth + 1);
                        let ev = self.eval(els, env, unfold, depth + 1);
                        join(tv, ev)
                    }
                }
            }
            ExprKind::Prim(op, args) => {
                let argv: Vec<Interval> = args
                    .iter()
                    .map(|a| match self.eval(a, env, unfold, depth + 1) {
                        AbsVal::Num(i) => i,
                        _ => Interval::REAL,
                    })
                    .collect();
                AbsVal::Num(op.eval_interval(&argv))
            }
            ExprKind::Score(m) => {
                let v = self.eval(m, env, unfold, depth + 1);
                let i = match &v {
                    AbsVal::Num(i) => *i,
                    _ => Interval::REAL,
                };
                self.facts
                    .score_args
                    .entry(e.id)
                    .and_modify(|old| *old = old.join(i))
                    .or_insert(i);
                v
            }
        };
        if let AbsVal::Num(i) = v {
            self.facts
                .values
                .entry(e.id)
                .and_modify(|old| *old = old.join(i))
                .or_insert(i);
        }
        v
    }

    fn apply(&mut self, f: AbsVal<'a>, a: AbsVal<'a>, unfold: u32, depth: u32) -> AbsVal<'a> {
        match f {
            AbsVal::Closure { param, body, env } => {
                let env2 = env.bind(param, a);
                self.eval(body, &env2, unfold, depth)
            }
            AbsVal::Fix {
                node,
                fname,
                param,
                body,
                env,
            } => {
                let approx = self.approx_fix(node);
                if unfold == 0 {
                    // Widened pass (once per μ node): re-run the body
                    // with the parameter at its interval *type* and
                    // recursive calls answered by the typing, so the
                    // per-node joins cover every deeper unfolding.
                    if self.widened.insert(node) {
                        let widened_arg = self.fix_param_bound(node);
                        let env2 = env
                            .bind(fname, AbsVal::FixStub { node })
                            .bind(param, widened_arg);
                        self.eval(body, &env2, 0, depth);
                    }
                    approx
                } else {
                    let rec = AbsVal::Fix {
                        node,
                        fname,
                        param,
                        body,
                        env: env.clone(),
                    };
                    let env2 = env.bind(fname, rec).bind(param, a);
                    let unfolded = self.eval(body, &env2, unfold - 1, depth);
                    join(approx, unfolded)
                }
            }
            AbsVal::ApproxFun { remaining, value } => {
                if remaining == 0 {
                    AbsVal::Num(value)
                } else {
                    AbsVal::ApproxFun {
                        remaining: remaining - 1,
                        value,
                    }
                }
            }
            AbsVal::FixStub { node } => self.approx_fix(node),
            AbsVal::Num(_) | AbsVal::Top => AbsVal::Top,
        }
    }

    /// The typing-based result of applying an exhausted fixpoint
    /// (mirrors the executor's `approxFix`, including currying).
    fn approx_fix(&self, node: NodeId) -> AbsVal<'a> {
        match self.typing.fix_apply_chain(node) {
            Some((0, value, _)) => AbsVal::Num(value),
            Some((extra, value, _)) => AbsVal::ApproxFun {
                remaining: extra - 1,
                value,
            },
            None => AbsVal::Top,
        }
    }

    /// The interval type of a fixpoint's parameter: a sound enclosure of
    /// every argument any unfolding can receive.
    fn fix_param_bound(&self, node: NodeId) -> AbsVal<'a> {
        match self.typing.wty(node) {
            Some(wty) => match &wty.ty {
                ITy::Fun(param, _) => match param.as_interval() {
                    Some(i) => AbsVal::Num(i),
                    None => AbsVal::Top,
                },
                ITy::Base(_) => AbsVal::Top,
            },
            None => AbsVal::Top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse};
    use gubpi_types::infer_interval_types;

    fn facts_for(src: &str) -> (Program, ProgramFacts) {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        (p, facts)
    }

    fn node_of(p: &Program, pred: impl Fn(&Expr) -> bool) -> NodeId {
        let mut found = None;
        p.root.walk(&mut |e| {
            if found.is_none() && pred(e) {
                found = Some(e.id);
            }
        });
        found.expect("no matching node")
    }

    #[test]
    fn straight_line_values_are_exact() {
        let (p, facts) = facts_for("3 * sample + 1");
        assert!(!facts.is_aborted());
        assert_eq!(facts.value(p.root.id), Some(Interval::new(1.0, 4.0)));
    }

    #[test]
    fn fail_branches_are_provably_dead() {
        let (p, facts) = facts_for("if sample <= 0.5 then sample else fail");
        let score = node_of(&p, |e| matches!(e.kind, ExprKind::Score(_)));
        assert!(facts.score_is_zero(score));
        assert_eq!(facts.score_weight(score), Some(Interval::ZERO));
        // The whole else branch (the score node) is a dead branch root.
        assert_eq!(facts.dead_branch_cost(score), Some(2));
        assert_eq!(facts.dead_branch_count(), 1);
    }

    #[test]
    fn variable_scores_are_not_pruning_candidates() {
        // Statically zero, but the argument mentions a variable: the
        // lint may fire, the executor must not prune.
        let (p, facts) = facts_for("let x = 0 * sample in score(x); 1");
        let score = node_of(&p, |e| matches!(e.kind, ExprKind::Score(_)));
        assert_eq!(facts.score_weight(score), Some(Interval::ZERO));
        assert!(!facts.score_is_zero(score));
        assert_eq!(facts.dead_branch_count(), 0);
    }

    #[test]
    fn branch_flow_records_decided_and_open_guards() {
        let (p, facts) = facts_for(
            "let a = if 1 <= 0 then 7 else 8 in
             if sample - 0.5 <= 0 then a else a + 1",
        );
        let mut flows = Vec::new();
        p.root.walk(&mut |e| {
            if matches!(e.kind, ExprKind::If(..)) {
                flows.push(facts.branch_flow(e.id).unwrap());
            }
        });
        assert_eq!(flows.len(), 2);
        assert!(flows.contains(&BranchFlow {
            then_taken: false,
            else_taken: true,
        }));
        assert!(flows.contains(&BranchFlow {
            then_taken: true,
            else_taken: true,
        }));
    }

    #[test]
    fn widened_pass_keeps_fix_body_facts_sound() {
        // With an unfolding budget of 3 the naive joins would conclude
        // x ∈ [0, 3]; the widened pass must stretch the body facts to
        // the parameter's interval type instead.
        let (p, facts) =
            facts_for("let rec count x = if 10 - x <= 0 then x else count (x + 1) in count 0");
        let arg = node_of(&p, |e| {
            matches!(&e.kind, ExprKind::Prim(op, args) if *op == gubpi_lang::PrimOp::Add
                && matches!(args[0].kind, ExprKind::Var(_)))
        });
        let v = facts.value(arg).expect("body argument evaluated");
        assert!(
            v.hi() >= 11.0 || v.hi().is_infinite(),
            "runtime reaches count(10); fact was {v:?}"
        );
    }

    #[test]
    fn contraction_facts_come_from_the_typing() {
        let (p, facts) =
            facts_for("let rec walk x = if x <= 0 then 0 else walk (x - sample) in walk 1");
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        // No score inside the loop: weight [1,1], no contraction.
        assert_eq!(facts.contraction(fix), Some(Interval::ONE));
        assert!(facts.fix_value(fix).is_some());
    }

    #[test]
    fn tail_facts_cover_coin_guarded_loops() {
        // Plain geometric: continue with probability 1/2, no scores.
        let (p, facts) =
            facts_for("let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0");
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        let tf = facts.tail_fact(fix).expect("geo admits a tail fact");
        assert_eq!(tf.per_step, Interval::new(0.0, 0.5));
        assert_eq!(tf.continuation, Interval::new(0.0, 1.0));

        // Scored geometric: coin 1/2 times in-body score 1/2.
        let (p, facts) = facts_for(
            "let rec geo x = if sample <= 0.5 then x else (score(0.5); geo (x + 1)) in geo 0",
        );
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        let tf = facts.tail_fact(fix).expect("scored geo admits a tail fact");
        assert_eq!(tf.per_step, Interval::new(0.0, 0.25));

        // Flipped guard polarity: recurse on the `> 0` side with p 0.4.
        let (p, facts) = facts_for(
            "let rec go x = if sample <= 0.6 then x else go (x + sample uniform(0, 1)) in go 0",
        );
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        let tf = facts
            .tail_fact(fix)
            .expect("cav-example-7 admits a tail fact");
        assert!((tf.per_step.hi() - 0.4).abs() < 1e-12, "{tf:?}");
    }

    #[test]
    fn data_guarded_loops_sit_at_the_tail_boundary() {
        // The pedestrian shape: the recursion guard reads program state,
        // so no provable per-step decay — the fact is recorded at the
        // boundary (c = 1) and consumers must fall back to ⊤. The
        // out-of-loop observation is a once-shot site with hi > 1.
        let (p, facts) = facts_for(
            "let start = 3 * sample in
             let rec walk x =
               if x <= 0 then 0 else
                 let step = sample in
                 if sample <= 0.5 then step + walk (x + step)
                 else step + walk (x - step)
             in
             let d = walk start in
             observe d from normal(1.1, 0.1); start",
        );
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        let tf = facts.tail_fact(fix).expect("structure qualifies");
        assert_eq!(tf.per_step.hi(), 1.0, "no provable decay");
        assert!(tf.continuation.hi() > 1.0, "observe factor: {tf:?}");
        assert!(tf.continuation.hi().is_finite());
        // The ranking pass rescues the c = 1 boundary: the escape-mass
        // certificate rides on the fact (details in `ranking::tests`).
        let ranked = tf
            .ranked
            .expect("pedestrian gets a synthesized certificate");
        assert_eq!(ranked.prefix_bound, 0);
        assert!(ranked.rate.hi() < 1.0);
        assert_eq!(facts.ranked_tail_count(), 1);
        assert!(matches!(
            facts.ranking_verdict(fix),
            Some(RankVerdict::Synthesized { .. })
        ));
    }

    #[test]
    fn unbounded_scores_and_tree_recursion_get_no_tail_fact() {
        // An observation *inside* the loop multiplies a factor > 1 per
        // traversal — the geometric argument needs in-body scores ≤ 1.
        let (p, facts) = facts_for(
            "let rec walk x =
               if x <= 0 then 0 else
                 (observe x from normal(1.1, 0.1); walk (x - sample))
             in walk 1",
        );
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        assert_eq!(facts.tail_fact(fix), None);

        // Two recursive calls on one execution path: not geometric.
        let (p, facts) =
            facts_for("let rec t x = if sample <= 0.5 then x else t (x + 1) + t (x + 2) in t 0");
        let fix = node_of(&p, |e| matches!(e.kind, ExprKind::Fix(..)));
        assert_eq!(facts.tail_fact(fix), None);
        assert_eq!(facts.tail_fact_count(), 0);
    }

    #[test]
    fn unused_sampling_bindings_are_reported() {
        let (_, facts) = facts_for("let waste = sample in 2");
        assert_eq!(facts.unused_samples().len(), 1);
        assert_eq!(&*facts.unused_samples()[0].name, "waste");
        // Internal sequencing binders are exempt.
        let (_, clean) = facts_for("observe sample from normal(0.5, 1); 2");
        assert!(clean.unused_samples().is_empty());
    }

    #[test]
    fn constant_pool_is_deterministic_and_deduplicated() {
        let (_, a) = facts_for("if sample <= 0.5 then 0.5 else 2 + 0.5");
        let (_, b) = facts_for("if sample <= 0.5 then 0.5 else 2 + 0.5");
        assert_eq!(a.constant_pool().len(), b.constant_pool().len());
        assert!(a
            .constant_pool()
            .iter()
            .zip(b.constant_pool())
            .all(|(x, y)| x == y));
        let halves = a
            .constant_pool()
            .iter()
            .filter(|i| **i == Interval::point(0.5))
            .count();
        assert_eq!(halves, 1, "pool must deduplicate");
    }

    #[test]
    fn higher_order_programs_do_not_confuse_the_interpreter() {
        let (p, facts) = facts_for("let app f x = f x in app (fn y -> y + sample) 1");
        assert_eq!(facts.value(p.root.id), Some(Interval::new(1.0, 2.0)));
    }
}
