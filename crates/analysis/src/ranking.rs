//! Ranking-function synthesis: eventually-geometric tail certificates
//! for data-guarded recursions.
//!
//! The plain geometric tail fact ([`TailFact`](crate::TailFact)) turns a
//! budget-⊤ path into a finite upper-bound contribution only when the
//! per-unfolding continue mass is provably below 1. Data-guarded loops —
//! the paper's pedestrian model is the flagship — sit exactly at the
//! `c = 1` boundary: the widened μ-body pass cannot contract a guard
//! that reads program state, so their ⊤ paths kept the bare `[0, ∞]`
//! placeholder. This pass recovers a finite enclosure for them by
//! reasoning about the *recursion argument* instead of the per-step
//! weight alone.
//!
//! For each `μ` node the pass
//!
//! 1. extracts the **argument transformer** — the per-unfolding map on
//!    the recursion parameter as an interval-affine form `x ↦ a·x + b`,
//!    joined over every recursive call site, with the existing
//!    [`ProgramFacts`] interval machinery supplying the non-parameter
//!    coefficients;
//! 2. normalizes the loop guard into a **descent problem** (`continue
//!    while x > θ`, mirroring ascent loops through `x ↦ −x`); and
//! 3. certifies one of two linear ranking templates by pure interval
//!    arithmetic (no external solver):
//!
//!    * **bounded prefix** — the transformer is non-expansive
//!      (`a ⊆ [0, 1]`) and strictly decreasing, so iterating the
//!      interval map from the parameter's typed entry bound drives the
//!      reachable set out of the continue region after a computable
//!      `k₀` unfoldings: the guard *must* fail within `k₀` steps;
//!    * **escape mass** — the single-call geometry of the plain tail
//!      fact (one recursive call per execution path, every in-body
//!      score factor ≤ 1) makes the suffix executions of a cut a
//!      sub-probability space, so the total weight of *terminating*
//!      continuations is at most `prefix_weight = 1` even when no
//!      per-step decay is provable. This is what rescues the
//!      pedestrian's symmetric random walk, whose survival mass decays
//!      only polynomially — no honest geometric rate exists, but the
//!      exit mass is still bounded.
//!
//! A successful synthesis is recorded as a [`RankedTail`] riding on the
//! plain fact; `gubpi_core::pathbounds` consumes it through the
//! two-phase closed form
//!
//! ```text
//! x_hi · (w_prefix + c_eff^{max(0, k₀ − k_explored)} / (1 − c_eff))
//! ```
//!
//! whose `k₀ = 0`, `w_prefix = 0` specialization is exactly the plain
//! geometric series `x_hi / (1 − c_eff)` (that case keeps its original
//! code path, bit for bit). Failures keep a human-readable reason,
//! surfaced by the `no-tail-bound-recursion` lint and by
//! `repro tail-report`.

use std::fmt;

use gubpi_interval::{add_down, add_up, Interval};
use gubpi_lang::{Expr, ExprKind, Name, PrimOp, Program};
use gubpi_types::{ITy, IntervalTyping};

use crate::facts::{call_of, ProgramFacts};

/// Iteration cap for the bounded-prefix descent: a loop that needs more
/// unfoldings than this to provably exit gets no prefix certificate
/// (the two-phase formula would not benefit from a six-digit `k₀`
/// anyway — explored prefixes are budget-bounded far below it).
const MAX_PREFIX_ITERS: u32 = 4096;

/// An eventually-geometric tail certificate for one `μ` node: after at
/// most `prefix_bound` unfoldings the recursion's continue mass decays
/// at `rate`, and executions terminating *before* the decay phase carry
/// total weight at most `prefix_weight`.
///
/// The certified inequality consumed by `gubpi_core::pathbounds` for a
/// ⊤ path cut after `k` explored unfoldings is
///
/// ```text
/// E[suffix score] ≤ x_hi · (w_hi + c_hi^{max(0, k₀ − k)} / (1 − c_hi))
/// ```
///
/// with `x_hi` the plain fact's continuation factor, `w_hi` the high
/// endpoint of `prefix_weight` and `c_hi < 1` that of `rate`. Both
/// synthesis templates emit `prefix_weight = [0, 1]` (the sub-probability
/// exit mass) and `rate = [0, 0]`; the formula's general `c` handling is
/// exercised by the consumer's unit tests and kept for future templates
/// that certify a genuine post-prefix coin rate.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RankedTail {
    /// `k₀`: unfoldings after which the decay phase provably starts
    /// (for the bounded-prefix template, the step by which the guard
    /// must have failed).
    pub prefix_bound: u32,
    /// `c_eff`: upper enclosure of the per-step continue mass once the
    /// decay phase starts. Usable only when `rate.hi() < 1`.
    pub rate: Interval,
    /// `w_prefix`: upper enclosure of the total weight of suffix
    /// executions that terminate during the prefix phase.
    pub prefix_weight: Interval,
}

/// The interval-affine per-unfolding argument transformer `x ↦ a·x + b`,
/// joined over every recursive call site.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AffineMap {
    /// Multiplicative coefficient enclosure `a`.
    pub a: Interval,
    /// Additive offset enclosure `b`.
    pub b: Interval,
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x ↦ {:?}·x + {:?}", self.a, self.b)
    }
}

/// How a synthesis succeeded (the evidence behind a [`RankedTail`]).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum RankingEvidence {
    /// The descent iteration emptied the continue region after
    /// `prefix_bound` steps: the guard must fail within the prefix.
    BoundedPrefix {
        /// The certified argument transformer.
        transformer: AffineMap,
    },
    /// No provable prefix, but the single-call/unit-score structure
    /// bounds the terminating suffix mass by `prefix_weight`.
    EscapeMass {
        /// The extracted argument transformer (reported as evidence;
        /// the mass argument itself does not depend on it).
        transformer: AffineMap,
    },
}

/// Per-`μ` outcome of the ranking pass.
#[derive(Clone, Debug, PartialEq)]
pub enum RankVerdict {
    /// The plain tail fact already contracts (`per_step < 1`); the
    /// geometric series applies and no ranking argument is needed.
    Geometric {
        /// The plain fact's per-step continue mass (high endpoint).
        rate: f64,
    },
    /// An eventually-geometric certificate was synthesized.
    Synthesized {
        /// The emitted certificate (also attached to the tail fact).
        ranked: RankedTail,
        /// Which template certified it.
        evidence: RankingEvidence,
    },
    /// Neither a geometric nor an eventually-geometric fact holds.
    Failed {
        /// Human-readable synthesis-failure reason (lint / report text).
        reason: String,
    },
}

impl RankVerdict {
    /// Stable one-word label for reports (`synthesized` /
    /// `plain-geometric` / `none`).
    pub fn label(&self) -> &'static str {
        match self {
            RankVerdict::Geometric { .. } => "plain-geometric",
            RankVerdict::Synthesized { .. } => "synthesized",
            RankVerdict::Failed { .. } => "none",
        }
    }

    /// One-line human-readable description.
    pub fn describe(&self) -> String {
        match self {
            RankVerdict::Geometric { rate } => {
                format!("plain geometric tail (per-step continue mass ≤ {rate})")
            }
            RankVerdict::Synthesized { ranked, evidence } => match evidence {
                RankingEvidence::BoundedPrefix { transformer } => format!(
                    "eventually geometric: guard must fail within {} unfoldings \
                     (transformer {transformer}, prefix weight ≤ {})",
                    ranked.prefix_bound,
                    ranked.prefix_weight.hi()
                ),
                RankingEvidence::EscapeMass { transformer } => format!(
                    "eventually geometric: terminating suffix mass ≤ {} by the \
                     single-call escape-mass argument (transformer {transformer})",
                    ranked.prefix_weight.hi()
                ),
            },
            RankVerdict::Failed { reason } => format!("no tail bound: {reason}"),
        }
    }
}

/// Runs the ranking assessment for one `μ` node. `facts` must already
/// hold the plain tail facts (the pass runs as the last step of
/// [`ProgramFacts::compute`]).
pub(crate) fn assess_fix(
    program: &Program,
    typing: &IntervalTyping,
    facts: &ProgramFacts,
    fix: &Expr,
    fname: &Name,
    param: &Name,
    body: &Expr,
) -> RankVerdict {
    let Some(plain) = facts.tail_fact(fix.id) else {
        return RankVerdict::Failed {
            reason: structural_failure_reason(program, facts, fname, body),
        };
    };
    if plain.per_step.hi() < 1.0 {
        return RankVerdict::Geometric {
            rate: plain.per_step.hi(),
        };
    }
    // The guard-shaped body: a top-level branch with exactly one
    // recursion-free side (the exit).
    let ExprKind::If(guard, then_b, else_b) = &body.kind else {
        return RankVerdict::Failed {
            reason: "the loop body is not guard-shaped (no top-level branch)".to_owned(),
        };
    };
    let then_recurses = mentions(then_b, fname);
    let else_recurses = mentions(else_b, fname);
    let (exit_side, continue_on_le) = match (then_recurses, else_recurses) {
        (false, true) => (then_b, false),
        (true, false) => (else_b, true),
        (true, true) => {
            return RankVerdict::Failed {
                reason: "both sides of the loop guard recurse — no recursion-free exit branch"
                    .to_owned(),
            }
        }
        (false, false) => {
            return RankVerdict::Failed {
                reason: "no recursive call under the top-level guard (the recursion happens \
                         in the guard itself or outside the branch)"
                    .to_owned(),
            }
        }
    };
    // The argument transformer, joined over all recursive call sites.
    let transformer = match extract_transformer(body, fname, param, facts) {
        Ok(t) => t,
        Err(reason) => return RankVerdict::Failed { reason },
    };
    // Template 1: bounded prefix via descent iteration.
    if let Some(prefix_bound) = bounded_prefix(
        typing,
        facts,
        fix,
        param,
        guard,
        continue_on_le,
        transformer,
    ) {
        return RankVerdict::Synthesized {
            ranked: RankedTail {
                prefix_bound,
                rate: Interval::ZERO,
                prefix_weight: Interval::UNIT,
            },
            evidence: RankingEvidence::BoundedPrefix { transformer },
        };
    }
    // Template 2: escape mass. Soundness needs only the single-call /
    // unit-score structure already certified by the plain fact; the
    // reachability check keeps the verdict honest (an exit branch the
    // analysis proves dead would make the certificate vacuous).
    let exit_reachable = facts.branch_flow(body.id).is_none_or(|flow| {
        if exit_side.id == then_b.id {
            flow.then_taken
        } else {
            flow.else_taken
        }
    });
    if !exit_reachable {
        return RankVerdict::Failed {
            reason: "the loop's exit branch is statically unreachable".to_owned(),
        };
    }
    RankVerdict::Synthesized {
        ranked: RankedTail {
            prefix_bound: 0,
            rate: Interval::ZERO,
            prefix_weight: Interval::UNIT,
        },
        evidence: RankingEvidence::EscapeMass { transformer },
    }
}

/// Why a `μ` node has no plain tail fact — re-derives which of the
/// structural preconditions failed, in check order.
fn structural_failure_reason(
    program: &Program,
    facts: &ProgramFacts,
    fname: &Name,
    body: &Expr,
) -> String {
    let mut bad_score = false;
    body.walk(&mut |s| {
        if matches!(s.kind, ExprKind::Score(_)) {
            match facts.score_weight(s.id) {
                Some(w) if w.hi() <= 1.0 => {}
                _ => bad_score = true,
            }
        }
    });
    if bad_score {
        return "an in-body score factor is not provably ≤ 1, so repeated unfoldings \
                may amplify weight without bound"
            .to_owned();
    }
    match facts.continue_mass(body, fname) {
        None => "the recursion is not single-call: a body execution path may reach \
                 more than one recursive call (or the recursion name escapes into a \
                 guard, score, or value)"
            .to_owned(),
        Some(c) if !c.is_finite() || c < 0.0 => {
            format!("the per-unfolding continue mass has no usable bound ({c})")
        }
        Some(_) => match facts.continuation_factor(program, body.id) {
            None => "the out-of-body score product has no finite bound (a many-shot \
                     score site may exceed 1)"
                .to_owned(),
            Some(_) => {
                // All three sub-checks pass individually — the fact was
                // dropped for a combination the derivation rejects.
                "the geometric-remainder preconditions do not hold for this recursion".to_owned()
            }
        },
    }
}

fn mentions(e: &Expr, name: &Name) -> bool {
    e.free_vars().contains(name)
}

/// Extracts `x ↦ a·x + b` joined over every recursive call site in the
/// body, or a human-readable reason why that is not possible.
fn extract_transformer(
    body: &Expr,
    fname: &Name,
    param: &Name,
    facts: &ProgramFacts,
) -> Result<AffineMap, String> {
    let mut sites: Vec<&Expr> = Vec::new();
    collect_call_sites(body, fname, &mut sites);
    if sites.is_empty() {
        return Err("no saturated recursive call site found in the loop body".to_owned());
    }
    let mut joined: Option<AffineMap> = None;
    for call in &sites {
        let args = call_of(call, fname).expect("collect_call_sites only yields calls");
        let [arg] = args[..] else {
            return Err(format!(
                "the recursion takes {} arguments — only single-parameter \
                 recursions admit the affine transformer",
                args.len()
            ));
        };
        let Some((a, b)) = affine_in(arg, param, facts) else {
            return Err(format!(
                "the recursive argument `{}` is not interval-affine in the parameter `{param}`",
                gubpi_lang::pretty(arg)
            ));
        };
        joined = Some(match joined {
            None => AffineMap { a, b },
            Some(acc) => AffineMap {
                a: acc.a.join(a),
                b: acc.b.join(b),
            },
        });
    }
    Ok(joined.expect("at least one site"))
}

/// Collects every application chain headed by `Var(fname)` (outermost
/// chains only — the head variable of a chain is not itself a chain).
fn collect_call_sites<'a>(e: &'a Expr, fname: &Name, out: &mut Vec<&'a Expr>) {
    if call_of(e, fname).is_some() {
        out.push(e);
        // Arguments may contain further calls (rejected later by the
        // transformer extraction, but keep the walk complete); the
        // chain head itself is not a site.
        let mut cur = e;
        while let ExprKind::App(f, a) = &cur.kind {
            collect_call_sites(a, fname, out);
            cur = f;
        }
        return;
    }
    match &e.kind {
        ExprKind::App(f, a) => {
            collect_call_sites(f, fname, out);
            collect_call_sites(a, fname, out);
        }
        ExprKind::If(c, t, els) => {
            collect_call_sites(c, fname, out);
            collect_call_sites(t, fname, out);
            collect_call_sites(els, fname, out);
        }
        ExprKind::Prim(_, args) => {
            for a in args {
                collect_call_sites(a, fname, out);
            }
        }
        ExprKind::Score(m) => collect_call_sites(m, fname, out),
        ExprKind::Lam(_, b) | ExprKind::Fix(_, _, b) => collect_call_sites(b, fname, out),
        ExprKind::Var(_) | ExprKind::Const(_) | ExprKind::Sample => {}
    }
}

/// Interval sum with directed rounding on both endpoints: exact when
/// the endpoint sums are exact (so unit coefficients stay exactly 1),
/// one ulp outward only against an actual rounding. The raw `Interval`
/// `+` rounds to nearest, which is not sound to iterate.
fn add_out(x: Interval, y: Interval) -> Interval {
    let lo = add_down(x.lo(), y.lo());
    let hi = add_up(x.hi(), y.hi());
    if lo.is_nan() || hi.is_nan() {
        // `∞ − ∞` endpoints: fall back to the NaN-repairing sum.
        (x + y).outward()
    } else {
        Interval::new(lo, hi)
    }
}

/// The interval-affine form of `e` in `param`: `Some((a, b))` with
/// `e ⊆ a·param + b` pointwise, using the abstract interpreter's value
/// facts for every param-free subterm. `None` when `e` is not affine in
/// the parameter (or a param-free subterm has no recorded value).
fn affine_in(e: &Expr, param: &Name, facts: &ProgramFacts) -> Option<(Interval, Interval)> {
    if !mentions(e, param) {
        return facts.value(e.id).map(|v| (Interval::ZERO, v));
    }
    match &e.kind {
        ExprKind::Var(x) if **x == **param => Some((Interval::ONE, Interval::ZERO)),
        ExprKind::Prim(op, args) => match (op, &args[..]) {
            (PrimOp::Add, [l, r]) => {
                let (la, lb) = affine_in(l, param, facts)?;
                let (ra, rb) = affine_in(r, param, facts)?;
                Some((add_out(la, ra), add_out(lb, rb)))
            }
            (PrimOp::Sub, [l, r]) => {
                let (la, lb) = affine_in(l, param, facts)?;
                let (ra, rb) = affine_in(r, param, facts)?;
                Some((add_out(la, -ra), add_out(lb, -rb)))
            }
            (PrimOp::Neg, [m]) => {
                let (a, b) = affine_in(m, param, facts)?;
                Some((-a, -b))
            }
            (PrimOp::Mul, [l, r]) => {
                // One side must be param-free; scaling by its value
                // enclosure keeps the form affine. `outward` here is
                // coarser than the directed sums (a `1·x` coefficient
                // widens off 1), which only costs precision, never
                // soundness — countdown loops scale by ±1 via Add/Sub.
                let (dep, free) = if mentions(l, param) { (l, r) } else { (r, l) };
                if mentions(free, param) {
                    return None;
                }
                let k = facts.value(free.id)?;
                let (a, b) = affine_in(dep, param, facts)?;
                Some(((a * k).outward(), (b * k).outward()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Template 1: certify that the loop guard must fail within `k₀`
/// unfoldings by iterating the transformer over the continue region,
/// starting from the parameter's typed entry enclosure. Returns the
/// certified `k₀`, or `None` when no bounded prefix is provable.
fn bounded_prefix(
    typing: &IntervalTyping,
    facts: &ProgramFacts,
    fix: &Expr,
    param: &Name,
    guard: &Expr,
    continue_on_le: bool,
    transformer: AffineMap,
) -> Option<u32> {
    // Guard as a unit-affine form `±x + β` (exact coefficient, so the
    // descent normalization below needs no directed rounding on `a`).
    let (ga, gb) = affine_in(guard, param, facts)?;
    let neg_one = Interval::point(-1.0);
    // Normalize to the descent orientation: continue region `[θ, ∞)`
    // on a variable `y` that the transformer maps as `y ↦ a·y + b`.
    // Ascent loops mirror through `y = −x` (exact negation).
    let (theta, a, b, entry) = if ga == Interval::ONE && !continue_on_le {
        // continue while x + β > 0  ⇒  x ∈ (−β_hi, ∞)
        (
            -gb.hi(),
            transformer.a,
            transformer.b,
            fix_param_interval(typing, fix)?,
        )
    } else if ga == Interval::ONE && continue_on_le {
        // continue while x + β ≤ 0  ⇒  x ∈ (−∞, −β_lo]: mirror.
        (
            gb.lo(),
            transformer.a,
            -transformer.b,
            -fix_param_interval(typing, fix)?,
        )
    } else if ga == neg_one && continue_on_le {
        // continue while β − x ≤ 0  ⇒  x ∈ [β_lo, ∞).
        (
            gb.lo(),
            transformer.a,
            transformer.b,
            fix_param_interval(typing, fix)?,
        )
    } else if ga == neg_one && !continue_on_le {
        // continue while β − x > 0  ⇒  x ∈ (−∞, β_hi): mirror.
        (
            -gb.hi(),
            transformer.a,
            -transformer.b,
            -fix_param_interval(typing, fix)?,
        )
    } else {
        return None; // not unit-affine in the parameter
    };
    if !theta.is_finite() || entry.hi().is_infinite() {
        return None;
    }
    // Non-expansive, strictly decreasing on the continue region: with
    // `a ⊆ [0, 1]` and `b_hi < 0` the reachable upper endpoint drops by
    // at least `−b_hi` per step while it stays ≥ max(θ, 0)… the
    // interval iteration below checks the actual descent, so only
    // non-expansiveness is required up front.
    if a.lo() < 0.0 || a.hi() > 1.0 {
        return None;
    }
    let region = Interval::new(theta, f64::INFINITY);
    let mut reach = entry;
    for k in 0..MAX_PREFIX_ITERS {
        let Some(cont) = reach.meet(region) else {
            return Some(k); // continue region provably empty: guard fails
        };
        // The exact-unit coefficient skips the multiply so decrement
        // loops iterate without per-step ulp drift.
        let scaled = if a == Interval::ONE {
            cont
        } else {
            (a * cont).outward()
        };
        let next = add_out(scaled, b);
        if next.hi() >= reach.hi() {
            return None; // no provable progress — bail out
        }
        reach = next;
    }
    None
}

/// The interval type of the fixpoint's parameter: a sound enclosure of
/// every argument any application of this recursion can receive
/// (mirrors the widened pass in [`ProgramFacts`]).
fn fix_param_interval(typing: &IntervalTyping, fix: &Expr) -> Option<Interval> {
    match &typing.wty(fix.id)?.ty {
        ITy::Fun(param, _) => param.as_interval(),
        ITy::Base(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gubpi_lang::{infer, parse, NodeId};
    use gubpi_types::infer_interval_types;

    fn facts_for(src: &str) -> (Program, ProgramFacts) {
        let p = parse(src).unwrap();
        let simple = infer(&p).unwrap();
        let typing = infer_interval_types(&p, &simple);
        let facts = ProgramFacts::compute(&p, &typing);
        (p, facts)
    }

    fn fix_node(p: &Program) -> NodeId {
        let mut found = None;
        p.root.walk(&mut |e| {
            if found.is_none() && matches!(e.kind, ExprKind::Fix(..)) {
                found = Some(e.id);
            }
        });
        found.expect("program has a μ node")
    }

    #[test]
    fn contracting_loops_stay_plain_geometric() {
        let (p, facts) =
            facts_for("let rec geo x = if sample <= 0.5 then x else geo (x + 1) in geo 0");
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        assert!(
            matches!(v, RankVerdict::Geometric { rate } if *rate == 0.5),
            "{v:?}"
        );
        assert_eq!(v.label(), "plain-geometric");
    }

    #[test]
    fn countdown_loops_get_a_bounded_prefix_certificate() {
        let (p, facts) = facts_for(
            "let rec count x = if x <= 0 then 0 else count (x - 1) in count (2 + sample)",
        );
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        let RankVerdict::Synthesized { ranked, evidence } = v else {
            panic!("countdown must synthesize, got {v:?}");
        };
        assert!(
            matches!(evidence, RankingEvidence::BoundedPrefix { .. }),
            "{evidence:?}"
        );
        // Entry x ≤ 3, decrement exactly 1: exit within 3 true steps;
        // the interval iteration may over-approximate by a step or two.
        assert!(
            (3..=6).contains(&ranked.prefix_bound),
            "k₀ = {}",
            ranked.prefix_bound
        );
        assert_eq!(ranked.rate, Interval::ZERO);
        assert_eq!(ranked.prefix_weight, Interval::UNIT);
        // The certificate rides on the tail fact itself.
        assert_eq!(facts.tail_fact(fix_node(&p)).unwrap().ranked, Some(*ranked));
    }

    #[test]
    fn ascent_loops_mirror_into_the_same_certificate() {
        let (p, facts) =
            facts_for("let rec count x = if 10 - x <= 0 then x else count (x + 1) in count 0");
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        let RankVerdict::Synthesized { ranked, evidence } = v else {
            panic!("ascent countdown must synthesize, got {v:?}");
        };
        assert!(
            matches!(evidence, RankingEvidence::BoundedPrefix { .. }),
            "{evidence:?}"
        );
        assert!(
            (10..=13).contains(&ranked.prefix_bound),
            "k₀ = {}",
            ranked.prefix_bound
        );
    }

    #[test]
    fn the_pedestrian_walk_falls_back_to_escape_mass() {
        // Symmetric random walk: b = [−1, 1] makes no descent progress
        // and the param type is unbounded, so the bounded-prefix
        // template must fail — but the single-call structure still
        // bounds the terminating suffix mass by 1.
        let (p, facts) = facts_for(
            "let start = 3 * sample in
             let rec walk x =
               if x <= 0 then 0 else
                 let step = sample in
                 if sample <= 0.5 then step + walk (x + step)
                 else step + walk (x - step)
             in
             let d = walk start in
             observe d from normal(1.1, 0.1); start",
        );
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        let RankVerdict::Synthesized { ranked, evidence } = v else {
            panic!("pedestrian must synthesize, got {v:?}");
        };
        let RankingEvidence::EscapeMass { transformer } = evidence else {
            panic!("pedestrian has no bounded prefix, got {evidence:?}");
        };
        assert_eq!(transformer.a, Interval::ONE);
        assert_eq!(transformer.b, Interval::new(-1.0, 1.0));
        assert_eq!(ranked.prefix_bound, 0);
        assert_eq!(ranked.rate, Interval::ZERO);
        assert_eq!(ranked.prefix_weight, Interval::UNIT);
        assert!(facts.tail_fact(fix_node(&p)).unwrap().ranked.is_some());
    }

    #[test]
    fn structural_failures_carry_readable_reasons() {
        // Tree recursion: two calls on one execution path.
        let (p, facts) =
            facts_for("let rec t x = if sample <= 0.5 then x else t (x + 1) + t (x + 2) in t 0");
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        let RankVerdict::Failed { reason } = v else {
            panic!("tree recursion must fail, got {v:?}");
        };
        assert!(reason.contains("single-call"), "{reason}");

        // Unbounded in-body score.
        let (p, facts) = facts_for(
            "let rec walk x =
               if x <= 0 then 0 else
                 (observe x from normal(1.1, 0.1); walk (x - sample))
             in walk 1",
        );
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        let RankVerdict::Failed { reason } = v else {
            panic!("scored walk must fail, got {v:?}");
        };
        assert!(reason.contains("score factor"), "{reason}");
        assert_eq!(v.label(), "none");
    }

    #[test]
    fn non_affine_arguments_fail_with_the_transformer_reason() {
        // x² is not affine in x; the guard-shaped body still parses.
        let (p, facts) =
            facts_for("let rec f x = if x <= 0 then 0 else f (x * x - 2) in f (sample + 1)");
        let v = facts.ranking_verdict(fix_node(&p)).unwrap();
        let RankVerdict::Failed { reason } = v else {
            panic!("quadratic argument must fail, got {v:?}");
        };
        assert!(reason.contains("interval-affine"), "{reason}");
    }

    #[test]
    fn affine_extraction_handles_let_bound_samples() {
        let (p, facts) =
            facts_for("let rec f x = if x <= 0 then 0 else let s = sample in f (x - 2 * s) in f 1");
        let fix = fix_node(&p);
        let tf = facts.tail_fact(fix).expect("structure qualifies");
        assert!(
            tf.ranked.is_some(),
            "verdict: {:?}",
            facts.ranking_verdict(fix)
        );
    }

    #[test]
    fn verdict_descriptions_render() {
        let (p, facts) = facts_for(
            "let rec count x = if x <= 0 then 0 else count (x - 1) in count (2 + sample)",
        );
        let d = facts.ranking_verdict(fix_node(&p)).unwrap().describe();
        assert!(d.contains("guard must fail within"), "{d}");
    }
}
