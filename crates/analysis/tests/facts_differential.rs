//! Differential soundness for the pre-execution abstract interpreter:
//! on randomly generated fix-free programs, the static value interval of
//! the root must contain the concrete value of every terminating run of
//! the trace semantics (`run_on_trace`). This is the property the
//! symbolic executor and the kernel seed rely on — a violation here
//! would make dead-branch pruning and constant seeding unsound.
//!
//! Programs are generated as *source strings* from a seeded xorshift so
//! the whole front end (parser, simple types, interval types) is in the
//! differential loop, not just the abstract interpreter.

use gubpi_analysis::ProgramFacts;
use gubpi_lang::{infer, parse};
use gubpi_semantics::bigstep::{run_on_trace_prefix_with, EvalOptions};
use gubpi_types::infer_interval_types;
use proptest::prelude::*;

fn next(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A random fix-free expression of the real-typed fragment: constants,
/// `sample`, let-bound variables, `+`/`-`/`*`, `max`, and `if _ <= _`.
/// Division and recursion are excluded so every generated program is
/// finite-valued and terminates on any sufficiently long trace.
fn gen_expr(s: &mut u64, depth: u32, vars: &mut Vec<String>) -> String {
    if depth == 0 || next(s).is_multiple_of(4) {
        return match next(s) % 4 {
            0 => format!("{:.2}", (next(s) % 17) as f64 / 4.0),
            1 | 3 => "sample".to_owned(),
            _ if !vars.is_empty() => {
                let i = (next(s) as usize) % vars.len();
                vars[i].clone()
            }
            _ => "sample".to_owned(),
        };
    }
    match next(s) % 6 {
        0 => format!(
            "({} + {})",
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars)
        ),
        1 => format!(
            "({} - {})",
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars)
        ),
        2 => format!(
            "({} * {})",
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars)
        ),
        3 => format!(
            "max({}, {})",
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars)
        ),
        4 => format!(
            "(if {} <= {} then {} else {})",
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars),
            gen_expr(s, depth - 1, vars)
        ),
        _ => {
            let name = format!("v{}", vars.len());
            let bound = gen_expr(s, depth - 1, vars);
            vars.push(name.clone());
            let body = gen_expr(s, depth - 1, vars);
            vars.pop();
            format!("(let {name} = {bound} in {body})")
        }
    }
}

/// Guards the property test against vacuity: most generated programs
/// must terminate on a generic trace AND have a recorded static value
/// interval, so the containment assertion below really fires.
#[test]
fn generator_produces_checkable_cases() {
    let trace: Vec<f64> = (0..48).map(|i| (i as f64 * 0.377) % 1.0).collect();
    let mut checked = 0usize;
    for seed in 1..=200u64 {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut vars = Vec::new();
        let src = gen_expr(&mut s, 4, &mut vars);
        let program = parse(&src).expect("generated program parses");
        let simple = infer(&program).expect("generated program type-checks");
        let typing = infer_interval_types(&program, &simple);
        let facts = ProgramFacts::compute(&program, &typing);
        if facts.is_aborted() {
            continue;
        }
        let run = run_on_trace_prefix_with(&program, &trace, EvalOptions::default());
        if run.is_ok() && facts.value(program.root.id).is_some() {
            checked += 1;
        }
    }
    assert!(
        checked > 120,
        "only {checked}/200 generated programs reach the containment check"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn static_value_interval_contains_every_terminating_run(
        seed in 1u64..u64::MAX,
        trace in proptest::collection::vec(0.0f64..1.0, 48),
    ) {
        let mut s = seed;
        let mut vars = Vec::new();
        let src = gen_expr(&mut s, 4, &mut vars);
        let program = parse(&src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e:?}\n{src}"));
        let simple = infer(&program)
            .unwrap_or_else(|e| panic!("generated program must type-check: {e:?}\n{src}"));
        let typing = infer_interval_types(&program, &simple);
        let facts = ProgramFacts::compute(&program, &typing);
        if facts.is_aborted() {
            return;
        }
        // The program reads a prefix of the trace (branches decide how
        // many draws happen); a failed run claims nothing — the facts
        // only speak about terminating runs.
        if let Ok((out, _)) =
            run_on_trace_prefix_with(&program, &trace, EvalOptions::default())
        {
            if let Some(iv) = facts.value(program.root.id) {
                prop_assert!(
                    iv.lo() <= out.value && out.value <= iv.hi(),
                    "concrete value {} escapes static interval [{}, {}]\n{src}",
                    out.value,
                    iv.lo(),
                    iv.hi()
                );
            }
        }
    }
}
